"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires a wheel build backend; on offline machines
without `wheel`, use `python setup.py develop` instead. All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
