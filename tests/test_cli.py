"""Tests for the repro-corpus command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def built_dir(tmp_path_factory, corpus):
    # Reuse the session corpus via write_corpus to avoid a second build.
    from repro.corpus import write_corpus

    root = tmp_path_factory.mktemp("cli-corpus")
    write_corpus(corpus, root)
    return root


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_args(self):
        args = build_parser().parse_args(["build", "/tmp/x"])
        assert args.command == "build"

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "table1"])
        assert args.seed == 7


class TestCommands:
    def test_stats(self, built_dir, capsys):
        assert main(["stats", str(built_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"] == 198

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert out.count("\n") >= 12
        assert "(14 Taverna, 4 Wings)" in out

    def test_query_table(self, built_dir, capsys):
        code = main([
            "query", str(built_dir),
            "SELECT (COUNT(?b) AS ?n) WHERE { ?b a prov:Bundle }",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "86" in out

    def test_query_csv(self, built_dir, capsys):
        main([
            "query", str(built_dir),
            "ASK { ?x a prov:Bundle }",
        ])
        assert capsys.readouterr().out.strip() == "true"

    def test_query_from_file(self, built_dir, tmp_path, capsys):
        query_file = tmp_path / "q.rq"
        query_file.write_text("SELECT (COUNT(?x) AS ?n) WHERE { ?x a prov:Agent }")
        assert main(["query", str(built_dir), f"@{query_file}", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["head"]["vars"] == ["n"]

    def test_build_command(self, tmp_path, capsys):
        # Smallest end-to-end check of the build path (uses the real builder).
        target = tmp_path / "out"
        assert main(["build", str(target)]) == 0
        out = capsys.readouterr().out
        assert "workflows: 120" in out
        assert (target / "manifest.json").exists()


class TestStoreCommands:
    @pytest.fixture(scope="class")
    def store_dir(self, built_dir, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-store") / "store"
        assert main(["store", "ingest", str(built_dir), "--store", str(path)]) == 0
        return path

    def test_ingest_reports_parsed_files(self, built_dir, store_dir, capsys):
        # store_dir fixture already ingested; a second run is a no-op
        assert main(["store", "ingest", str(built_dir), "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["parsed_files"] == 0
        assert payload["skipped_files"] == 198
        assert "no files re-parsed" in out

    def test_info(self, store_dir, capsys):
        assert main(["store", "info", str(store_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 198
        assert payload["segments"]["spog"]["records"] == payload["quads"] > 0

    def test_info_missing_store_errors(self, tmp_path, capsys):
        assert main(["store", "info", str(tmp_path / "nope")]) == 1
        assert "no quad store" in capsys.readouterr().err

    def test_query_with_store(self, built_dir, store_dir, capsys):
        code = main([
            "query", str(built_dir),
            "SELECT (COUNT(?b) AS ?n) WHERE { ?b a prov:Bundle }",
            "--store", str(store_dir),
        ])
        assert code == 0
        assert "86" in capsys.readouterr().out

    def test_serve_requires_source(self, capsys):
        assert main(["serve"]) == 2
        assert "corpus directory" in capsys.readouterr().err

    def test_ingest_missing_corpus_errors_without_side_effects(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["store", "ingest", str(missing)]) == 1
        assert "no corpus directory" in capsys.readouterr().err
        assert not missing.exists()  # must not mkdir a store at the typo'd path

    def test_build_store_flag_defaults_next_to_corpus(self, tmp_path, capsys):
        root = tmp_path / "corpus"
        assert main(["build", str(root), "--store"]) == 0
        assert f"quad store: {root / '.store'}" in capsys.readouterr().out
        assert (root / ".store" / "store.json").exists()


class TestObsCommands:
    _TTL = (
        "@prefix ex: <http://example.org/> .\n"
        "@prefix prov: <http://www.w3.org/ns/prov#> .\n"
        "ex:run1 a prov:Activity ; prov:used ex:data1 .\n"
        "ex:data1 a prov:Entity .\n"
    )

    @pytest.fixture()
    def observed_store(self, tmp_path, capsys):
        from repro.obs import events, shm

        corpus = tmp_path / "corpus"
        (corpus / "Taverna" / "dom" / "t-1").mkdir(parents=True)
        (corpus / "Taverna" / "dom" / "t-1" / "run1.prov.ttl").write_text(self._TTL)
        obs_dir = tmp_path / "obs"
        code = main(["store", "ingest", str(corpus),
                     "--store", str(tmp_path / "store"),
                     "--obs-dir", str(obs_dir)])
        out = capsys.readouterr().out
        # Detach keeps the shard file on disk (as a finished CLI process
        # would); unconfigure then only forgets the module-global state so
        # the rest of the suite keeps its unobserved baseline.
        shm.detach()
        shm.unconfigure()
        events.unconfigure()
        assert code == 0
        return obs_dir, out

    def test_ingest_obs_dir_announced_and_populated(self, observed_store):
        obs_dir, out = observed_store
        assert f"obs dir: {obs_dir}" in out
        assert (obs_dir / "obs.json").exists()
        assert (obs_dir / "events.jsonl").exists()

    def test_ingest_emits_done_event(self, observed_store):
        from repro.obs.events import read_events

        (done,) = [r for r in read_events(str(observed_store[0]))
                   if r["kind"] == "ingest.done"]
        assert done["parsed"] == 1
        assert done["quads"] > 0

    def test_obs_top_text(self, observed_store, capsys):
        obs_dir, _ = observed_store
        assert main(["obs", "top", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert f"obs dir: {obs_dir}" in out
        assert "repro_ingest_parse_quads_total" in out

    def test_obs_top_json(self, observed_store, capsys):
        assert main(["obs", "top", str(observed_store[0]), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "shards" in payload
        quads = payload["metrics"]["repro_ingest_parse_quads_total"]
        assert quads["samples"][0]["value"] > 0

    def test_obs_top_missing_dir_errors(self, tmp_path, capsys):
        assert main(["obs", "top", str(tmp_path / "nope")]) == 1
        assert "no observability directory" in capsys.readouterr().err

    def test_obs_dir_flag_parses_on_build_and_serve(self):
        args = build_parser().parse_args(
            ["build", "/tmp/x", "--obs-dir", "/tmp/obs"])
        assert str(args.obs_dir) == "/tmp/obs"
        args = build_parser().parse_args(
            ["serve", "/tmp/x", "--obs-dir", "/tmp/obs"])
        assert str(args.obs_dir) == "/tmp/obs"
