"""Tests for the repro-corpus command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def built_dir(tmp_path_factory, corpus):
    # Reuse the session corpus via write_corpus to avoid a second build.
    from repro.corpus import write_corpus

    root = tmp_path_factory.mktemp("cli-corpus")
    write_corpus(corpus, root)
    return root


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_args(self):
        args = build_parser().parse_args(["build", "/tmp/x"])
        assert args.command == "build"

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "table1"])
        assert args.seed == 7


class TestCommands:
    def test_stats(self, built_dir, capsys):
        assert main(["stats", str(built_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"] == 198

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert out.count("\n") >= 12
        assert "(14 Taverna, 4 Wings)" in out

    def test_query_table(self, built_dir, capsys):
        code = main([
            "query", str(built_dir),
            "SELECT (COUNT(?b) AS ?n) WHERE { ?b a prov:Bundle }",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "86" in out

    def test_query_csv(self, built_dir, capsys):
        main([
            "query", str(built_dir),
            "ASK { ?x a prov:Bundle }",
        ])
        assert capsys.readouterr().out.strip() == "true"

    def test_query_from_file(self, built_dir, tmp_path, capsys):
        query_file = tmp_path / "q.rq"
        query_file.write_text("SELECT (COUNT(?x) AS ?n) WHERE { ?x a prov:Agent }")
        assert main(["query", str(built_dir), f"@{query_file}", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["head"]["vars"] == ["n"]

    def test_build_command(self, tmp_path, capsys):
        # Smallest end-to-end check of the build path (uses the real builder).
        target = tmp_path / "out"
        assert main(["build", str(target)]) == 0
        out = capsys.readouterr().out
        assert "workflows: 120" in out
        assert (target / "manifest.json").exists()


class TestStoreCommands:
    @pytest.fixture(scope="class")
    def store_dir(self, built_dir, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-store") / "store"
        assert main(["store", "ingest", str(built_dir), "--store", str(path)]) == 0
        return path

    def test_ingest_reports_parsed_files(self, built_dir, store_dir, capsys):
        # store_dir fixture already ingested; a second run is a no-op
        assert main(["store", "ingest", str(built_dir), "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.rindex("}") + 1])
        assert payload["parsed_files"] == 0
        assert payload["skipped_files"] == 198
        assert "no files re-parsed" in out

    def test_info(self, store_dir, capsys):
        assert main(["store", "info", str(store_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 198
        assert payload["segments"]["spog"]["records"] == payload["quads"] > 0

    def test_info_missing_store_errors(self, tmp_path, capsys):
        assert main(["store", "info", str(tmp_path / "nope")]) == 1
        assert "no quad store" in capsys.readouterr().err

    def test_query_with_store(self, built_dir, store_dir, capsys):
        code = main([
            "query", str(built_dir),
            "SELECT (COUNT(?b) AS ?n) WHERE { ?b a prov:Bundle }",
            "--store", str(store_dir),
        ])
        assert code == 0
        assert "86" in capsys.readouterr().out

    def test_serve_requires_source(self, capsys):
        assert main(["serve"]) == 2
        assert "corpus directory" in capsys.readouterr().err

    def test_ingest_missing_corpus_errors_without_side_effects(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["store", "ingest", str(missing)]) == 1
        assert "no corpus directory" in capsys.readouterr().err
        assert not missing.exists()  # must not mkdir a store at the typo'd path

    def test_build_store_flag_defaults_next_to_corpus(self, tmp_path, capsys):
        root = tmp_path / "corpus"
        assert main(["build", str(root), "--store"]) == 0
        assert f"quad store: {root / '.store'}" in capsys.readouterr().out
        assert (root / ".store" / "store.json").exists()
