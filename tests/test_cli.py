"""Tests for the repro-corpus command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def built_dir(tmp_path_factory, corpus):
    # Reuse the session corpus via write_corpus to avoid a second build.
    from repro.corpus import write_corpus

    root = tmp_path_factory.mktemp("cli-corpus")
    write_corpus(corpus, root)
    return root


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_args(self):
        args = build_parser().parse_args(["build", "/tmp/x"])
        assert args.command == "build"

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "table1"])
        assert args.seed == 7


class TestCommands:
    def test_stats(self, built_dir, capsys):
        assert main(["stats", str(built_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"] == 198

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert out.count("\n") >= 12
        assert "(14 Taverna, 4 Wings)" in out

    def test_query_table(self, built_dir, capsys):
        code = main([
            "query", str(built_dir),
            "SELECT (COUNT(?b) AS ?n) WHERE { ?b a prov:Bundle }",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "86" in out

    def test_query_csv(self, built_dir, capsys):
        main([
            "query", str(built_dir),
            "ASK { ?x a prov:Bundle }",
        ])
        assert capsys.readouterr().out.strip() == "true"

    def test_query_from_file(self, built_dir, tmp_path, capsys):
        query_file = tmp_path / "q.rq"
        query_file.write_text("SELECT (COUNT(?x) AS ?n) WHERE { ?x a prov:Agent }")
        assert main(["query", str(built_dir), f"@{query_file}", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["head"]["vars"] == ["n"]

    def test_build_command(self, tmp_path, capsys):
        # Smallest end-to-end check of the build path (uses the real builder).
        target = tmp_path / "out"
        assert main(["build", str(target)]) == 0
        out = capsys.readouterr().out
        assert "workflows: 120" in out
        assert (target / "manifest.json").exists()
