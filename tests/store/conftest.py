"""Fixtures for the persistent quad store tests.

`tiny_corpus_dir` is a hand-written two-file corpus (one Turtle trace,
one TriG trace with a named graph) cheap enough to rebuild per test;
`built_corpus_dir` reuses the session-scoped 198-run corpus written once
to disk, shared by the durability/parity tests.
"""

from __future__ import annotations

import pytest

TINY_TTL = """\
@prefix ex: <http://example.org/> .
@prefix prov: <http://www.w3.org/ns/prov#> .

ex:run1 a prov:Activity ;
    prov:used ex:data1, ex:data2 ;
    prov:startedAtTime "2013-01-01T00:00:00Z"^^<http://www.w3.org/2001/XMLSchema#dateTime> .
ex:data1 a prov:Entity ; ex:label "input one" .
ex:data2 a prov:Entity ; ex:label "entrada"@es .
"""

TINY_TRIG = """\
@prefix ex: <http://example.org/> .
@prefix prov: <http://www.w3.org/ns/prov#> .

ex:bundle1 a prov:Bundle .
GRAPH ex:bundle1 {
    ex:run2 a prov:Activity ; prov:used ex:data1 .
    ex:out1 a prov:Entity ; prov:wasGeneratedBy ex:run2 .
}
"""


@pytest.fixture
def tiny_corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    (root / "Taverna" / "dom" / "t-1").mkdir(parents=True)
    (root / "Taverna" / "dom" / "t-1" / "run1.prov.ttl").write_text(TINY_TTL)
    (root / "Wings" / "dom" / "w-1").mkdir(parents=True)
    (root / "Wings" / "dom" / "w-1" / "run2.prov.trig").write_text(TINY_TRIG)
    return root


@pytest.fixture(scope="session")
def built_corpus_dir(tmp_path_factory, corpus):
    from repro.corpus import write_corpus

    root = tmp_path_factory.mktemp("store-corpus")
    write_corpus(corpus, root)
    return root
