"""Durability + parity over the full corpus (acceptance criteria).

Build the store from the full 198-run corpus, then check:

* Q1-Q6 answered through the store match the in-memory `Dataset` answers
  (row-canonicalized: ORDER BY ties may legitimately differ between
  insertion-order and sorted-id iteration);
* close -> reopen preserves those answers exactly;
* a truncated WAL tail (simulated crash) recovers to the last per-file
  commit point and a follow-up ingest completes the corpus.
"""

import pytest

from repro.queries import (
    Q1_WORKFLOW_RUNS,
    q2_runs_of_template,
    q3_template_io,
    q4_process_runs,
    q5_who_executed,
    q6_services_executed,
    taverna_workflow_iri,
    wings_template_iri,
)
from repro.sparql import QueryEngine
from repro.store import QuadStore, StoreDataset, ingest_corpus
from repro.taverna import TAVERNA_RUN_NS
from repro.wings import OPMW_EXPORT_NS


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory, built_corpus_dir):
    path = tmp_path_factory.mktemp("quadstore") / "store"
    with QuadStore(path) as store:
        report = ingest_corpus(store, built_corpus_dir)
        assert len(report.parsed) == 198
    return path


@pytest.fixture(scope="module")
def exemplar_queries(corpus):
    taverna = next(t for t in corpus.by_system("taverna") if not t.failed)
    wings = next(t for t in corpus.by_system("wings") if not t.failed)
    taverna_template = corpus.templates[taverna.template_id]
    queries = {
        "q1": Q1_WORKFLOW_RUNS,
        "q2": q2_runs_of_template(
            taverna_workflow_iri(taverna.template_id, taverna_template.name)
        ),
        "q3": q3_template_io(wings_template_iri(wings.template_id)),
        "q4": q4_process_runs(TAVERNA_RUN_NS.term(f"{taverna.run_id}/")),
        "q5": q5_who_executed(
            OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{wings.run_id}")
        ),
        "q6": q6_services_executed(
            OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{wings.run_id}")
        ),
    }
    return queries


def _canonical(result):
    """Row-order-independent form of a SELECT result."""
    return sorted(
        tuple(row[v].n3() if row[v] is not None else "" for v in result.variables)
        for row in result
    )


def _answers(source, queries):
    engine = QueryEngine(source)
    return {name: _canonical(engine.query(text)) for name, text in queries.items()}


class TestQueryParity:
    def test_q1_to_q6_match_in_memory(self, store_dir, corpus_dataset, exemplar_queries):
        with QuadStore(store_dir) as store:
            store_answers = _answers(StoreDataset(store), exemplar_queries)
        memory_answers = _answers(corpus_dataset, exemplar_queries)
        for name in exemplar_queries:
            assert store_answers[name] == memory_answers[name], name
        assert len(store_answers["q1"]) == 198

    def test_reopen_roundtrip_identical(self, store_dir, exemplar_queries):
        with QuadStore(store_dir) as store:
            first = _answers(StoreDataset(store), exemplar_queries)
            generation = store.generation
            info = store.store_info()
        with QuadStore(store_dir) as store:
            assert store.generation == generation
            reopened_info = store.store_info()
            for key in ("quads", "graphs", "files", "terms", "segments", "dictionary_bytes"):
                assert reopened_info[key] == info[key], key
            assert _answers(StoreDataset(store), exemplar_queries) == first


class TestCrashRecovery:
    def test_truncated_wal_tail_recovers(self, built_corpus_dir, tmp_path):
        # Ingest without compaction so everything still lives in the WAL,
        # then chop the tail mid-record to simulate a crash.
        path = tmp_path / "store"
        store = QuadStore(path)
        report = ingest_corpus(store, built_corpus_dir, compact=False)
        assert store.has_pending()
        committed_files = dict(store._pending_files)
        store.wal.close()
        store.dictionary.close()  # drop handles without compacting (crash)
        wal_path = path / "wal.log"
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[: len(data) - 37])  # tear the last record
        # Reopen: replay folds in every file whose FILE marker survived.
        with QuadStore(path) as recovered:
            files_after = recovered.files
            assert 0 < len(files_after) < len(committed_files) + 1
            for relpath in files_after:
                assert committed_files[relpath] == files_after[relpath]
            # the torn file is simply re-ingested
            followup = ingest_corpus(recovered, built_corpus_dir)
            assert not followup.rebuilt
            assert len(followup.parsed) == 198 - len(files_after)
            assert len(recovered.files) == 198
            total = recovered.quad_count
        with QuadStore(path) as final, QuadStore(tmp_path / "fresh") as fresh:
            ingest_corpus(fresh, built_corpus_dir)
            assert final.quad_count == fresh.quad_count == total

    def test_segment_bytes_identical_after_recovery(self, built_corpus_dir, tmp_path):
        # A recovered store compacts to byte-identical segments vs a
        # clean build: sorted id-quads are deterministic given the same
        # ingest order (ids are allocated in file order).
        crashed = tmp_path / "crashed"
        store = QuadStore(crashed)
        ingest_corpus(store, built_corpus_dir, compact=False)
        store.wal.close()
        store.dictionary.close()
        with QuadStore(crashed) as recovered:  # replay + compact
            ingest_corpus(recovered, built_corpus_dir)
        clean = tmp_path / "clean"
        with QuadStore(clean) as fresh:
            ingest_corpus(fresh, built_corpus_dir)
        for name in ("spog.seg", "posg.seg", "ospg.seg", "gspo.seg", "dict.heap"):
            assert (crashed / name).read_bytes() == (clean / name).read_bytes(), name
