"""Tests for the write-ahead log: replay, per-file atomicity, corruption."""

from repro.store import WriteAheadLog
from repro.store.wal import WalReplay

DIGEST = "ab" * 32


def _log_one_file(wal, relpath="a.ttl", terms=(b"\x01t1", b"\x01t2"), quads=((1, 2, 3, 0),)):
    for t in terms:
        wal.append_term(t)
    for q in quads:
        wal.append_quad(*q)
    wal.commit_file(relpath, DIGEST)


class TestReplay:
    def test_empty_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        replay = wal.replay()
        assert replay.empty
        assert not replay.truncated

    def test_committed_file_replays(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _log_one_file(wal)
        wal.append_prefix("ex", "http://example.org/")
        wal.commit_file("b.ttl", DIGEST)
        wal.close()
        replay = WriteAheadLog(tmp_path).replay()
        assert replay.terms == [b"\x01t1", b"\x01t2"]
        assert replay.quads == [(1, 2, 3, 0)]
        assert replay.prefixes == [("ex", "http://example.org/")]
        assert replay.files == {"a.ttl": DIGEST, "b.ttl": DIGEST}
        assert not replay.truncated

    def test_uncommitted_tail_dropped(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _log_one_file(wal)
        # terms + quads with no FILE marker: crash before commit
        wal.append_term(b"\x01orphan")
        wal.append_quad(9, 9, 9, 0)
        wal.close()
        replay = WriteAheadLog(tmp_path).replay()
        assert replay.files == {"a.ttl": DIGEST}
        assert b"\x01orphan" not in replay.terms
        assert (9, 9, 9, 0) not in replay.quads
        assert replay.truncated

    def test_short_tail_dropped(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _log_one_file(wal)
        wal.close()
        committed = (tmp_path / "wal.log").stat().st_size
        _log_one_file(WriteAheadLog(tmp_path), relpath="b.ttl")
        # chop mid-record, halfway into the second file's bytes
        full = (tmp_path / "wal.log").read_bytes()
        (tmp_path / "wal.log").write_bytes(full[: committed + (len(full) - committed) // 2])
        replay = WriteAheadLog(tmp_path).replay()
        assert replay.files == {"a.ttl": DIGEST}
        assert replay.truncated
        assert replay.committed_bytes == committed

    def test_corrupt_crc_tail_dropped(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _log_one_file(wal)
        wal.close()
        committed = (tmp_path / "wal.log").stat().st_size
        wal2 = WriteAheadLog(tmp_path)
        _log_one_file(wal2, relpath="b.ttl")
        wal2.close()
        data = bytearray((tmp_path / "wal.log").read_bytes())
        data[committed + 6] ^= 0xFF  # flip a byte inside the second batch
        (tmp_path / "wal.log").write_bytes(bytes(data))
        replay = WriteAheadLog(tmp_path).replay()
        assert replay.files == {"a.ttl": DIGEST}
        assert replay.truncated

    def test_truncate_to_makes_replay_clean(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _log_one_file(wal)
        wal.append_term(b"\x01orphan")
        wal.close()
        replay = WriteAheadLog(tmp_path).replay()
        assert replay.truncated
        wal2 = WriteAheadLog(tmp_path)
        wal2.truncate_to(replay.committed_bytes)
        clean = wal2.replay()
        assert not clean.truncated
        assert clean.files == {"a.ttl": DIGEST}

    def test_clear_resets_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        _log_one_file(wal)
        wal.clear()
        assert (tmp_path / "wal.log").stat().st_size == 0
        assert WriteAheadLog(tmp_path).replay().empty


class TestWalReplayModel:
    def test_empty_property(self):
        assert WalReplay().empty
        assert not WalReplay(files={"x": DIGEST}).empty
