"""Parallel corpus ingest: byte-identical segments and failure context.

Workers only parse; the parent stays the single dictionary/WAL writer
and commits batches in file order, so every on-disk artifact (dict heap,
segment files, manifest) must be byte-for-byte what a serial ingest
writes.
"""

from __future__ import annotations

import hashlib
import multiprocessing

import pytest

from repro.rdf.turtle import TurtleError
from repro.store import QuadStore, ingest_corpus

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel ingest tests rely on fork start method",
)


def _store_bytes(root):
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(root.iterdir())
        if path.is_file()
    }


def _ingest(tmp_path, corpus_dir, jobs, tag):
    with QuadStore(tmp_path / f"store-{tag}") as store:
        report = ingest_corpus(store, corpus_dir, jobs=jobs)
    return (tmp_path / f"store-{tag}"), report


@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_ingest_byte_identical(jobs, tiny_corpus_dir, tmp_path):
    serial_root, serial_report = _ingest(tmp_path, tiny_corpus_dir, 1, "serial")
    parallel_root, parallel_report = _ingest(tmp_path, tiny_corpus_dir, jobs, f"j{jobs}")
    assert _store_bytes(parallel_root) == _store_bytes(serial_root)
    assert parallel_report.parsed == serial_report.parsed
    assert parallel_report.quads_added == serial_report.quads_added


@pytest.mark.slow
def test_parallel_ingest_full_corpus_byte_identical(built_corpus_dir, tmp_path):
    serial_root, serial_report = _ingest(tmp_path, built_corpus_dir, 1, "serial")
    parallel_root, parallel_report = _ingest(tmp_path, built_corpus_dir, 2, "j2")
    assert len(parallel_report.parsed) == 198
    assert _store_bytes(parallel_root) == _store_bytes(serial_root)


def test_parallel_reingest_is_noop(tiny_corpus_dir, tmp_path):
    with QuadStore(tmp_path / "store") as store:
        ingest_corpus(store, tiny_corpus_dir, jobs=2)
        report = ingest_corpus(store, tiny_corpus_dir, jobs=2)
    assert report.no_op
    assert len(report.skipped) == 2


def test_parse_failure_in_worker_names_the_file(tiny_corpus_dir, tmp_path):
    bad = tiny_corpus_dir / "Taverna" / "dom" / "t-1" / "broken.prov.ttl"
    bad.write_text("@prefix ex: <http://example.org/> .\nex:run4 a ;;; garbage\n")
    with QuadStore(tmp_path / "store") as store:
        with pytest.raises(TurtleError) as excinfo:
            ingest_corpus(store, tiny_corpus_dir, jobs=2)
    # The original exception class crosses the process boundary with its
    # parse location intact; the ingest context rides along as metadata.
    assert "broken.prov.ttl" in str(excinfo.value)
    assert excinfo.value.lineno == 2
    assert getattr(excinfo.value, "remote_context", "").startswith("while ingesting")
    assert "Traceback" in getattr(excinfo.value, "remote_traceback", "")
