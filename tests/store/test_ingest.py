"""Tests for incremental corpus ingest: hashing, no-ops, rebuilds."""

import pytest

from repro.rdf import Namespace
from repro.rdf.turtle import TurtleError
from repro.store import QuadStore, StoreDataset, ingest_corpus

EX = Namespace("http://example.org/")

NEW_TRACE = """\
@prefix ex: <http://example.org/> .
@prefix prov: <http://www.w3.org/ns/prov#> .
ex:run3 a prov:Activity ; prov:used ex:data9 .
"""


@pytest.fixture
def store(tmp_path):
    with QuadStore(tmp_path / "store") as s:
        yield s


class TestIncrementalIngest:
    def test_first_ingest_parses_everything(self, store, tiny_corpus_dir):
        report = ingest_corpus(store, tiny_corpus_dir)
        assert len(report.parsed) == 2
        assert report.skipped == []
        assert not report.rebuilt
        assert report.quads_added == store.quad_count > 0

    def test_second_ingest_is_noop(self, store, tiny_corpus_dir):
        ingest_corpus(store, tiny_corpus_dir)
        generation = store.generation
        report = ingest_corpus(store, tiny_corpus_dir)
        assert report.no_op
        assert report.parsed == []
        assert len(report.skipped) == 2
        assert store.generation == generation

    def test_new_file_ingested_incrementally(self, store, tiny_corpus_dir):
        ingest_corpus(store, tiny_corpus_dir)
        before = store.quad_count
        new = tiny_corpus_dir / "Taverna" / "dom" / "t-1" / "run3.prov.ttl"
        new.write_text(NEW_TRACE)
        report = ingest_corpus(store, tiny_corpus_dir)
        assert not report.rebuilt  # additive: no rebuild needed
        assert report.parsed == ["Taverna/dom/t-1/run3.prov.ttl"]
        assert len(report.skipped) == 2
        assert store.quad_count == before + 2

    def test_changed_file_triggers_rebuild(self, store, tiny_corpus_dir):
        ingest_corpus(store, tiny_corpus_dir)
        target = tiny_corpus_dir / "Taverna" / "dom" / "t-1" / "run1.prov.ttl"
        target.write_text(NEW_TRACE)
        report = ingest_corpus(store, tiny_corpus_dir)
        assert report.rebuilt
        assert len(report.parsed) == 2  # everything re-parsed
        # stale quads from the old file contents are gone
        ds = StoreDataset(store)
        assert list(ds.union_graph().triples(EX.run1, None, None)) == []
        assert len(list(ds.union_graph().triples(EX.run3, None, None))) == 2

    def test_removed_file_triggers_rebuild(self, store, tiny_corpus_dir):
        ingest_corpus(store, tiny_corpus_dir)
        (tiny_corpus_dir / "Wings" / "dom" / "w-1" / "run2.prov.trig").unlink()
        report = ingest_corpus(store, tiny_corpus_dir)
        assert report.rebuilt
        assert report.removed == ["Wings/dom/w-1/run2.prov.trig"]
        assert store.files.keys() == {"Taverna/dom/t-1/run1.prov.ttl"}
        assert StoreDataset(store).graph_names() == []

    def test_parse_error_aborts_cleanly(self, store, tiny_corpus_dir):
        ingest_corpus(store, tiny_corpus_dir)
        quads = store.quad_count
        files = store.files
        bad = tiny_corpus_dir / "Taverna" / "dom" / "t-1" / "bad.prov.ttl"
        bad.write_text("@prefix ex: <http://example.org/ .\nex:a ex:b ???")
        with pytest.raises(TurtleError) as excinfo:
            ingest_corpus(store, tiny_corpus_dir)
        assert "Taverna/dom/t-1/bad.prov.ttl" in str(excinfo.value)
        # the failed file left no trace in the store
        store.compact()
        assert store.quad_count == quads
        assert store.files == files
        # fixing the file makes the next ingest succeed
        bad.write_text(NEW_TRACE)
        report = ingest_corpus(store, tiny_corpus_dir)
        assert report.parsed == ["Taverna/dom/t-1/bad.prov.ttl"]

    def test_missing_corpus_dir_rejected(self, store, tmp_path):
        with pytest.raises(FileNotFoundError):
            ingest_corpus(store, tmp_path / "nowhere")

    def test_prefixes_captured(self, store, tiny_corpus_dir):
        ingest_corpus(store, tiny_corpus_dir)
        assert store.prefixes.get("prov") == "http://www.w3.org/ns/prov#"
        ds = StoreDataset(store)
        assert ds.namespaces.expand("prov:used").value == "http://www.w3.org/ns/prov#used"

    def test_report_summary_fields(self, store, tiny_corpus_dir):
        summary = ingest_corpus(store, tiny_corpus_dir).summary()
        assert summary["parsed_files"] == 2
        assert summary["rebuilt"] is False
        assert summary["quads_added"] == store.quad_count
        assert summary["duration_s"] >= 0
