"""Regression tests for store abort/read-path correctness bugs.

Three latent bugs fixed in the same PR:

* ``abort_file()`` left prefixes recorded during the aborted file in
  ``_pending_prefixes`` even though their WAL records were truncated —
  the next ``compact()`` persisted state a crash-replay would not have.
* ``store_info()`` / ``runtime_counters()`` / ``segment()`` read
  ``_segments`` without the store lock while ``compact()``/``reset()``
  closed those readers and swapped the dict, so a concurrent ``/stats``
  scrape or an in-flight segment scan could hit a closed mmap.
"""

import threading

import pytest

from repro.rdf import Namespace
from repro.store import QuadStore, ingest_corpus

EX = Namespace("http://example.org/")


def _ingest_one(store, relpath, digest, subject):
    store.begin_file(relpath, digest)
    store.add_quad(
        store.add_term(subject), store.add_term(EX.p), store.add_term(EX.o)
    )
    store.commit_file()


class TestAbortPrefixRollback:
    def test_abort_file_rolls_back_prefixes(self, tmp_path):
        store = QuadStore(tmp_path / "s")
        store.begin_file("a.ttl", "00" * 32)
        store.add_prefix("keep", "http://keep.example/")
        store.add_quad(
            store.add_term(EX.s), store.add_term(EX.p), store.add_term(EX.o)
        )
        store.commit_file()
        store.begin_file("b.ttl", "11" * 32)
        store.add_prefix("leak", "http://leak.example/")
        store.abort_file()
        # The aborted file's prefix must not survive to the manifest: its
        # WAL record was truncated, so a crash right here would replay to
        # a store without it — in-memory state has to agree.
        store.compact()
        assert store.prefixes == {"keep": "http://keep.example/"}
        store.close()
        with QuadStore(tmp_path / "s") as reopened:
            assert reopened.prefixes == {"keep": "http://keep.example/"}

    def test_abort_then_commit_other_file_keeps_later_prefix(self, tmp_path):
        store = QuadStore(tmp_path / "s")
        store.begin_file("a.ttl", "00" * 32)
        store.add_prefix("dead", "http://dead.example/")
        store.abort_file()
        store.begin_file("b.ttl", "11" * 32)
        store.add_prefix("live", "http://live.example/")
        store.add_quad(
            store.add_term(EX.s), store.add_term(EX.p), store.add_term(EX.o)
        )
        store.commit_file()
        store.compact()
        assert store.prefixes == {"live": "http://live.example/"}
        store.close()


class TestReadPathsDuringCompaction:
    def test_segment_scan_survives_compaction(self, tiny_corpus_dir, tmp_path):
        """A scan started before a compaction must finish on its snapshot
        instead of crashing on a closed mmap."""
        store = QuadStore(tmp_path / "s")
        ingest_corpus(store, tiny_corpus_dir)
        reader = store.segment("spog")
        records_before = len(reader)
        scan = reader.scan()
        first = next(scan)
        _ingest_one(store, "extra.ttl", "22" * 32, EX.s9)
        store.compact()  # swaps in fresh readers for the new generation
        rest = list(scan)  # must not raise "mmap closed or invalid"
        assert [first] + rest == sorted([first] + rest)
        assert 1 + len(rest) == records_before
        store.close()

    def test_store_info_concurrent_with_compaction(self, tmp_path):
        """Hammer the /stats read path while compactions swap readers."""
        store = QuadStore(tmp_path / "s")
        _ingest_one(store, "seed.ttl", "00" * 32, EX.s0)
        store.compact()
        errors = []
        stop = threading.Event()

        def scrape():
            while not stop.is_set():
                try:
                    info = store.store_info()
                    assert info["quads"] >= 1
                    store.runtime_counters()
                    store.segment("spog").count_prefix(())
                except Exception as exc:  # pragma: no cover - the bug
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=scrape) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i in range(30):
                _ingest_one(store, f"f{i}.ttl", f"{i:02d}" * 32, EX[f"s{i}"])
                store.compact()
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors, errors
        store.close()
