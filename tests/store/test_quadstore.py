"""Tests for QuadStore lifecycle and the StoreGraph/StoreDataset views.

The parity tests ingest the tiny corpus into both a QuadStore-backed
StoreDataset and a plain in-memory Dataset, then check every bound/free
combination of triple patterns returns the same triple sets.
"""

import itertools

import pytest

from repro.rdf import Dataset, Namespace, PROV, RDF
from repro.store import (
    QuadStore,
    StoreDataset,
    StoreError,
    StoreWriteError,
    ingest_corpus,
)

EX = Namespace("http://example.org/")


@pytest.fixture
def pair(tiny_corpus_dir, tmp_path):
    """(StoreDataset, in-memory Dataset) over the same tiny corpus."""
    store = QuadStore(tmp_path / "store")
    ingest_corpus(store, tiny_corpus_dir)
    yield StoreDataset(store), _memory_dataset(tiny_corpus_dir)
    store.close()


def _memory_dataset(corpus_dir):
    from repro.rdf.trig import parse_trig
    from repro.rdf.turtle import parse_turtle

    merged = Dataset()
    for path in sorted(corpus_dir.rglob("*.prov.ttl")):
        parse_turtle(path.read_text(), graph=merged.default)
    for path in sorted(corpus_dir.rglob("*.prov.trig")):
        ds = parse_trig(path.read_text())
        merged.default.add_all(ds.default)
        for name in ds.graph_names():
            merged.graph(name).add_all(ds.graph(name))
    return merged


def _canon(triples):
    return sorted((t.subject.n3(), t.predicate.n3(), t.object.n3()) for t in triples)


class TestPatternParity:
    BOUND = {
        "s": EX.run1,
        "p": PROV.used,
        "o": EX.data1,
    }

    @pytest.mark.parametrize(
        "mask", list(itertools.product([False, True], repeat=3)),
        ids=lambda m: "".join("spo"[i] if b else "-" for i, b in enumerate(m)),
    )
    def test_union_patterns(self, pair, mask):
        store_ds, mem_ds = pair
        args = [
            self.BOUND[name] if bound else None
            for name, bound in zip("spo", mask)
        ]
        got = _canon(store_ds.union_graph().triples(*args))
        want = _canon(mem_ds.union_graph().triples(*args))
        assert got == want

    @pytest.mark.parametrize(
        "mask", list(itertools.product([False, True], repeat=3)),
        ids=lambda m: "".join("spo"[i] if b else "-" for i, b in enumerate(m)),
    )
    def test_default_graph_patterns(self, pair, mask):
        store_ds, mem_ds = pair
        args = [
            self.BOUND[name] if bound else None
            for name, bound in zip("spo", mask)
        ]
        assert _canon(store_ds.default.triples(*args)) == _canon(
            mem_ds.default.triples(*args)
        )

    def test_named_graph_patterns(self, pair):
        store_ds, mem_ds = pair
        name = EX.bundle1
        assert _canon(store_ds.graph(name)) == _canon(mem_ds.graph(name))
        assert _canon(store_ds.graph(name).triples(None, RDF.type, None)) == _canon(
            mem_ds.graph(name).triples(None, RDF.type, None)
        )

    def test_counts_match(self, pair):
        store_ds, mem_ds = pair
        for args in [(), (EX.run1, None, None), (None, PROV.used, None),
                     (None, None, EX.data1), (EX.run1, PROV.used, EX.data1)]:
            args = args or (None, None, None)
            assert store_ds.union_graph().count(*args) == mem_ds.union_graph().count(*args)

    def test_unknown_term_matches_nothing(self, pair):
        store_ds, _ = pair
        assert list(store_ds.union_graph().triples(EX.never_seen, None, None)) == []
        assert store_ds.union_graph().count(None, EX.never_seen, None) == 0

    def test_contains_and_iter(self, pair):
        store_ds, mem_ds = pair
        triple = next(iter(mem_ds.union_graph()))
        assert triple in store_ds.union_graph()
        assert len(list(store_ds.union_graph())) == len(store_ds.union_graph())

    def test_predicates_and_resources(self, pair):
        store_ds, mem_ds = pair
        assert set(store_ds.union_graph().predicates()) == set(
            mem_ds.union_graph().predicates()
        )
        assert store_ds.union_graph().resources() == mem_ds.union_graph().resources()

    def test_quads_match(self, pair):
        store_ds, mem_ds = pair
        def canon_quads(ds):
            return sorted(
                (q.subject.n3(), q.predicate.n3(), q.object.n3(),
                 q.graph.n3() if q.graph is not None else "")
                for q in ds.quads()
            )
        assert canon_quads(store_ds) == canon_quads(mem_ds)

    def test_graph_names_and_has_graph(self, pair):
        store_ds, mem_ds = pair
        assert store_ds.graph_names() == mem_ds.graph_names()
        assert store_ds.has_graph(EX.bundle1)
        assert not store_ds.has_graph(EX.bundle99)

    def test_unknown_graph_is_empty(self, pair):
        store_ds, _ = pair
        g = store_ds.graph(EX.bundle99)
        assert len(g) == 0
        # and a store cannot create graphs on access
        assert not store_ds.has_graph(EX.bundle99)


class TestReadOnly:
    def test_graph_mutators_raise(self, pair):
        store_ds, _ = pair
        triple = (EX.x, RDF.type, PROV.Entity)
        with pytest.raises(StoreWriteError):
            store_ds.default.add(triple)
        with pytest.raises(StoreWriteError):
            store_ds.union_graph().remove(triple)
        with pytest.raises(StoreWriteError):
            store_ds.default.clear()

    def test_dataset_mutators_raise(self, pair):
        store_ds, _ = pair
        with pytest.raises(StoreWriteError):
            store_ds.add((EX.x, RDF.type, PROV.Entity))
        with pytest.raises(StoreWriteError):
            store_ds.graph(EX.bundle99).add((EX.x, RDF.type, PROV.Entity))


class TestLifecycle:
    def test_reopen_preserves_contents(self, tiny_corpus_dir, tmp_path):
        with QuadStore(tmp_path / "s") as store:
            ingest_corpus(store, tiny_corpus_dir)
            before = _canon(StoreDataset(store).union_graph())
            generation = store.generation
        with QuadStore(tmp_path / "s") as store:
            assert store.generation == generation
            assert _canon(StoreDataset(store).union_graph()) == before

    def test_generation_bumps_on_change_only(self, tiny_corpus_dir, tmp_path):
        with QuadStore(tmp_path / "s") as store:
            ingest_corpus(store, tiny_corpus_dir)
            g1 = store.generation
            ingest_corpus(store, tiny_corpus_dir)  # no-op
            assert store.generation == g1

    def test_format_version_guard(self, tiny_corpus_dir, tmp_path):
        import json

        with QuadStore(tmp_path / "s") as store:
            ingest_corpus(store, tiny_corpus_dir)
        manifest = tmp_path / "s" / "store.json"
        payload = json.loads(manifest.read_text())
        payload["format_version"] = 99
        manifest.write_text(json.dumps(payload))
        with pytest.raises(StoreError):
            QuadStore(tmp_path / "s")

    def test_abort_file_rolls_back(self, tmp_path):
        store = QuadStore(tmp_path / "s")
        store.begin_file("a.ttl", "00" * 32)
        store.add_quad(store.add_term(EX.s), store.add_term(EX.p), store.add_term(EX.o))
        store.commit_file()
        terms_before = len(store.dictionary)
        store.begin_file("b.ttl", "11" * 32)
        store.add_quad(
            store.add_term(EX.s2), store.add_term(EX.p2), store.add_term(EX.o2)
        )
        store.abort_file()
        assert len(store.dictionary) == terms_before
        assert store.dictionary.lookup(EX.s2) is None
        store.compact()
        assert store.files == {"a.ttl": "00" * 32}
        assert store.quad_count == 1
        store.close()

    def test_close_during_ingest_rejected(self, tmp_path):
        store = QuadStore(tmp_path / "s")
        store.begin_file("a.ttl", "00" * 32)
        with pytest.raises(StoreError):
            store.close()
        store.abort_file()
        store.close()

    def test_reset_clears_but_advances_generation(self, tiny_corpus_dir, tmp_path):
        store = QuadStore(tmp_path / "s")
        ingest_corpus(store, tiny_corpus_dir)
        generation = store.generation
        store.reset()
        assert store.quad_count == 0
        assert store.files == {}
        assert store.generation > generation
        store.close()

    def test_store_info_shape(self, tiny_corpus_dir, tmp_path):
        with QuadStore(tmp_path / "s") as store:
            ingest_corpus(store, tiny_corpus_dir)
            info = store.store_info()
        assert info["quads"] == store.quad_count
        assert set(info["segments"]) == {"spog", "posg", "ospg", "gspo"}
        for segment in info["segments"].values():
            assert segment["records"] == info["quads"]
            assert segment["bytes"] == info["quads"] * 16
        assert info["dictionary_bytes"]["dict.heap"] > 0
