"""Tests for the term dictionary (encode/decode, persistence, LRU)."""

import pytest

from repro.rdf import Namespace
from repro.rdf.terms import BlankNode, IRI, Literal, XSD
from repro.store import TermDictionary, decode_term, encode_term

EX = Namespace("http://example.org/")

TERMS = [
    IRI("http://example.org/thing"),
    BlankNode("b42"),
    Literal("plain string"),
    Literal("42", datatype=XSD.INTEGER),
    Literal("2013-01-01T00:00:00Z", datatype=XSD.DATETIME),
    Literal("hola", language="es"),
    Literal("", datatype=XSD.STRING),
]


class TestEncoding:
    @pytest.mark.parametrize(
        "term", TERMS, ids=[f"{type(t).__name__}{i}" for i, t in enumerate(TERMS)]
    )
    def test_roundtrip(self, term):
        assert decode_term(encode_term(term)) == term

    def test_distinct_kinds_never_collide(self):
        # "x" as IRI, bnode, plain literal and lang literal must encode
        # to distinct byte strings.
        variants = [IRI("x"), BlankNode("x"), Literal("x"), Literal("x", language="en")]
        assert len({encode_term(t) for t in variants}) == len(variants)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_term(b"\xff???")


class TestDictionary:
    def test_ids_dense_from_one(self, tmp_path):
        d = TermDictionary(tmp_path)
        ids = [d.add(t) for t in TERMS]
        assert ids == list(range(1, len(TERMS) + 1))
        # adding again returns the same ids
        assert [d.add(t) for t in TERMS] == ids
        d.close()

    def test_lookup_unknown_is_none(self, tmp_path):
        d = TermDictionary(tmp_path)
        assert d.lookup(EX.nope) is None
        d.add(EX.yes)
        assert d.lookup(EX.yes) == 1
        assert d.lookup(EX.nope) is None
        d.close()

    def test_persistence_across_reopen(self, tmp_path):
        d = TermDictionary(tmp_path)
        ids = {t: d.add(t) for t in TERMS}
        d.compact()
        d.close()
        reopened = TermDictionary(tmp_path)
        assert len(reopened) == len(TERMS)
        for term, term_id in ids.items():
            assert reopened.lookup(term) == term_id, term
            assert reopened.decode(term_id) == term
        reopened.close()

    def test_compact_then_more_terms(self, tmp_path):
        d = TermDictionary(tmp_path)
        a = d.add(EX.a)
        d.compact()
        b = d.add(EX.b)
        assert (a, b) == (1, 2)
        d.compact()
        d.close()
        reopened = TermDictionary(tmp_path)
        assert reopened.lookup(EX.a) == 1
        assert reopened.lookup(EX.b) == 2
        reopened.close()

    def test_decode_cache_is_bounded(self, tmp_path):
        d = TermDictionary(tmp_path, decode_cache_size=4)
        for i in range(20):
            d.add(EX.term(f"t{i}"))
        d.compact()
        for i in range(1, 21):
            d.decode(i)
        info = d.cache_info()
        assert info["size"] <= 4
        assert info["maxsize"] == 4
        assert info["misses"] >= 20
        d.close()

    def test_decode_cache_hit_counter(self, tmp_path):
        d = TermDictionary(tmp_path)
        term_id = d.add(EX.hot)
        d.decode(term_id)
        d.decode(term_id)
        info = d.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        d.close()

    def test_rollback_discards_delta(self, tmp_path):
        d = TermDictionary(tmp_path)
        d.add(EX.keep)
        d.compact()
        watermark = len(d)
        d.add(EX.drop1)
        d.add(EX.drop2)
        d.rollback_to(watermark)
        assert len(d) == watermark
        assert d.lookup(EX.drop1) is None
        # the freed ids are reused
        assert d.add(EX.other) == watermark + 1
        d.close()

    def test_rollback_below_persisted_rejected(self, tmp_path):
        d = TermDictionary(tmp_path)
        d.add(EX.a)
        d.compact()
        with pytest.raises(ValueError):
            d.rollback_to(0)
        d.close()

    def test_hash_index_survives_many_terms(self, tmp_path):
        # enough terms to force several hash-table sizes and probe chains
        d = TermDictionary(tmp_path)
        terms = [EX.term(f"n{i}") for i in range(500)]
        ids = [d.add(t) for t in terms]
        d.compact()
        d.close()
        reopened = TermDictionary(tmp_path)
        assert [reopened.lookup(t) for t in terms] == ids
        reopened.close()
