"""External-merge ingest: spill runs, dictionary folds, crash recovery.

The contract under test: segment, dictionary, and path-index bytes are
**identical** whether the pending set was sorted in memory (spilling
disabled) or flushed through any number of sorted spill runs and k-way
merged — the spill budget tunes memory, never output.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.pathindex import build_path_index
from repro.store import QuadStore, ingest_corpus
from repro.store.spill import SPILL_STATE_FILE


def _write_synthetic_corpus(root, files=10, chains=25):
    """A many-run corpus with shared and per-file terms, used/generated
    edges (so the path index has derivation work to do), and enough
    distinct quads that a small budget forces several spills."""
    prelude = (
        "@prefix ex: <http://example.org/> .\n"
        "@prefix prov: <http://www.w3.org/ns/prov#> .\n\n"
    )
    for i in range(files):
        lines = [prelude]
        for j in range(chains):
            act = f"ex:act_{i}_{j}"
            src = f"ex:data_{i}_{j}"
            out = f"ex:out_{i}_{j}"
            lines.append(
                f"{act} a prov:Activity ; prov:used {src}, ex:shared_{j} .\n"
                f"{src} a prov:Entity ; ex:label \"d {i} {j}\" .\n"
                f"{out} a prov:Entity ; prov:wasGeneratedBy {act} .\n"
            )
        directory = root / "Taverna" / "dom" / f"t-{i}"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"run{i}.prov.ttl").write_text("".join(lines))
    return root


def _store_digests(store_path):
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(store_path.iterdir())
        if path.is_file()
    }


@pytest.fixture
def synthetic_corpus_dir(tmp_path):
    return _write_synthetic_corpus(tmp_path / "corpus")


def _ingest(corpus_dir, store_path, budget, compact=True, path_index=False):
    store = QuadStore(store_path, spill_quad_budget=budget)
    ingest_corpus(store, corpus_dir, compact=compact, path_index=path_index)
    return store


class TestSpillByteIdentity:
    def test_segment_and_dict_bytes_match_in_memory_path(
        self, synthetic_corpus_dir, tmp_path
    ):
        baseline = _ingest(synthetic_corpus_dir, tmp_path / "mem", budget=0)
        spilled = _ingest(synthetic_corpus_dir, tmp_path / "spill", budget=120)
        assert spilled.quad_count == baseline.quad_count
        baseline.close()
        spilled.close()
        assert _store_digests(tmp_path / "spill") == _store_digests(tmp_path / "mem")

    def test_small_budget_actually_spills(self, synthetic_corpus_dir, tmp_path):
        store = QuadStore(tmp_path / "s", spill_quad_budget=120)
        spills = []
        original = store._spill_pending

        def counting():
            spills.append(len(store._pending_quads))
            original()

        store._spill_pending = counting
        ingest_corpus(store, synthetic_corpus_dir, path_index=False)
        store.close()
        assert len(spills) >= 3

    def test_spill_files_removed_after_compaction(
        self, synthetic_corpus_dir, tmp_path
    ):
        store = _ingest(synthetic_corpus_dir, tmp_path / "s", budget=120)
        store.close()
        leftovers = [
            p.name for p in (tmp_path / "s").iterdir()
            if p.name.startswith("spill-") or p.name == SPILL_STATE_FILE
        ]
        assert leftovers == []

    def test_path_index_bytes_match_at_any_edge_budget(
        self, synthetic_corpus_dir, tmp_path
    ):
        digests = {}
        for tag, edge_budget in (("mem", None), ("spool", 64)):
            store = _ingest(synthetic_corpus_dir, tmp_path / tag, budget=0)
            manifest = build_path_index(store, spill_edge_budget=edge_budget)
            store.close()
            assert manifest["edge_count"] > 0
            digests[tag] = _store_digests(tmp_path / tag)
        assert digests["spool"] == digests["mem"]
        assert not any(n.startswith("paths.spool-") for n in digests["mem"])


class TestSpillRecovery:
    def test_reopen_after_crash_between_spills(
        self, synthetic_corpus_dir, tmp_path
    ):
        baseline = _ingest(synthetic_corpus_dir, tmp_path / "clean", budget=0)
        baseline.close()

        # Ingest with spills but *no* compaction, then abandon the store
        # without closing it: spill runs + spill.json + a residual WAL
        # are left on disk, exactly what a crash leaves behind.
        crashed = _ingest(
            synthetic_corpus_dir, tmp_path / "crash", budget=120, compact=False
        )
        assert crashed._spill_state["batches"]
        assert crashed.has_pending()

        reopened = QuadStore(tmp_path / "crash")
        assert not reopened.has_pending()
        assert reopened.quad_count == baseline.quad_count
        reopened.close()
        crash_digests = {
            name: digest
            for name, digest in _store_digests(tmp_path / "crash").items()
        }
        assert crash_digests == _store_digests(tmp_path / "clean")

    def test_orphan_runs_removed_at_open(self, synthetic_corpus_dir, tmp_path):
        store = _ingest(synthetic_corpus_dir, tmp_path / "s", budget=0)
        store.close()
        # A crash mid-spill leaves run files never committed to spill.json.
        orphan = tmp_path / "s" / "spill-000099.spog.run"
        orphan.write_bytes(b"\x00" * 16)
        reopened = QuadStore(tmp_path / "s")
        assert not orphan.exists()
        reopened.close()

    def test_store_info_reports_spill_state(self, synthetic_corpus_dir, tmp_path):
        store = _ingest(
            synthetic_corpus_dir, tmp_path / "s", budget=120, compact=False
        )
        info = store.store_info()
        assert info["spill"]["budget"] == 120
        assert info["spill"]["batches"] >= 1
        assert info["spill"]["quad_records"] > 0
        store.close()
        with QuadStore(tmp_path / "s") as reopened:
            assert reopened.store_info()["spill"]["batches"] == 0
