"""Tests for the Taverna system: engine, PROV export conventions, t2flow."""

import datetime as dt

import pytest

from repro.prov.model import Association, Usage
from repro.prov.rdf_io import to_graph
from repro.rdf import PROV, RDF
from repro.rdf.terms import IRI
from repro.taverna import (
    TAVERNA_RUN_NS,
    TAVERNAPROV,
    TavernaEngine,
    export_run,
    export_template_description,
    from_t2flow,
    to_t2flow,
)
from repro.vocab import wfdesc, wfprov
from repro.workflow import FaultPlan
from repro.workflow.errors import WorkflowDefinitionError
from tests.conftest import make_linear_template


@pytest.fixture
def engine(registry, clock):
    return TavernaEngine(registry, clock)


@pytest.fixture
def run(engine, linear_template):
    return engine.run(linear_template, {"accession": "P1"}, run_id="r1", user="jzhao")


class TestEngine:
    def test_run_iris(self, run):
        assert run.run_iri == TAVERNA_RUN_NS.term("r1/")
        assert run.process_iri("fetch").value.endswith("/process/fetch/")

    def test_rejects_wings_template(self, engine):
        wings_template = make_linear_template(system="wings", template_id="w1")
        with pytest.raises(ValueError):
            engine.run(wings_template, {"accession": "P1"}, run_id="r1")

    def test_failure_captured_not_raised(self, engine, linear_template):
        run = engine.run(
            linear_template, {"accession": "P1"}, run_id="r2",
            fault_plan=FaultPlan.single("fetch", "resource-unavailable"),
        )
        assert run.failed


class TestProvExportConventions:
    """Each test checks one cell of the paper's Tables 2/3 for Taverna."""

    @pytest.fixture
    def graph(self, run, linear_template):
        doc = export_run(run)
        export_template_description(linear_template, doc)
        return to_graph(doc)

    def test_activities_and_timestamps(self, graph):
        assert list(graph.triples(None, RDF.type, PROV.Activity))
        assert list(graph.triples(None, PROV.startedAtTime, None))
        assert list(graph.triples(None, PROV.endedAtTime, None))

    def test_engine_is_software_agent(self, graph):
        assert list(graph.triples(None, RDF.type, PROV.SoftwareAgent))
        assert list(graph.triples(None, RDF.type, wfprov.WorkflowEngine))

    def test_used_and_generated(self, graph):
        assert list(graph.triples(None, PROV.used, None))
        assert list(graph.triples(None, PROV.wasGeneratedBy, None))

    def test_association_with_hadplan(self, graph):
        assert list(graph.triples(None, PROV.wasAssociatedWith, None))
        assert list(graph.triples(None, PROV.hadPlan, None))

    def test_no_plan_class_asserted(self, graph):
        assert not list(graph.triples(None, RDF.type, PROV.Plan))

    def test_no_attribution(self, graph):
        assert not list(graph.triples(None, PROV.wasAttributedTo, None))

    def test_no_delegation_no_derivation_no_influence(self, graph):
        assert not list(graph.triples(None, PROV.actedOnBehalfOf, None))
        assert not list(graph.triples(None, PROV.wasDerivedFrom, None))
        assert not list(graph.triples(None, PROV.wasInfluencedBy, None))

    def test_no_bundle_no_atlocation(self, graph):
        assert not list(graph.triples(None, RDF.type, PROV.Bundle))
        assert not list(graph.triples(None, PROV.atLocation, None))

    def test_wfprov_typing(self, graph):
        assert list(graph.triples(None, RDF.type, wfprov.WorkflowRun))
        assert list(graph.triples(None, RDF.type, wfprov.ProcessRun))
        assert list(graph.triples(None, RDF.type, wfprov.Artifact))

    def test_wfdesc_description_present(self, graph):
        assert list(graph.triples(None, RDF.type, wfdesc.Workflow))
        assert list(graph.triples(None, RDF.type, wfdesc.Process))
        assert list(graph.triples(None, wfdesc.hasDataLink, None))

    def test_run_status_annotation(self, graph):
        statuses = [t.object.lexical for t in graph.triples(None, TAVERNAPROV.runStatus, None)]
        assert statuses == ["completed"]


class TestFailedRunExport:
    def test_truncated_trace(self, engine, linear_template):
        run = engine.run(
            linear_template, {"accession": "P1"}, run_id="rf",
            fault_plan=FaultPlan.single("shape", "illegal-input-value"),
        )
        graph = to_graph(export_run(run))
        process_runs = list(graph.triples(None, RDF.type, wfprov.ProcessRun))
        assert len(process_runs) == 2  # fetch + shape, publish never ran
        failed = list(graph.triples(None, TAVERNAPROV.processStatus, None))
        assert len(failed) == 1 and failed[0].object.lexical == "failed"
        errors = [t.object.lexical for t in graph.triples(None, TAVERNAPROV.errorMessage, None)]
        assert any("illegal-input-value" in e for e in errors)


class TestNestedExport:
    def test_was_informed_by_emitted(self, registry, clock):
        from repro.corpus.generator import TemplateGenerator
        from repro.corpus.domains import DOMAINS

        gen = TemplateGenerator()
        nested_template = gen.taverna_template(DOMAINS[0], 4)  # index 4 = nested flavor
        engine = TavernaEngine(registry, clock)
        reg_gen = gen.build_registry()
        engine2 = TavernaEngine(reg_gen, clock)
        run = engine2.run(nested_template, gen.inputs_for(nested_template), run_id="rn")
        graph = to_graph(export_run(run))
        informed = list(graph.triples(None, PROV.wasInformedBy, None))
        assert informed, "nested workflow must be connected via prov:wasInformedBy"
        workflow_runs = list(graph.triples(None, RDF.type, wfprov.WorkflowRun))
        assert len(workflow_runs) == 2  # top + nested


class TestT2flow:
    def test_roundtrip_simple(self, linear_template):
        text = to_t2flow(linear_template)
        parsed = from_t2flow(text)
        assert parsed.template_id == linear_template.template_id
        assert set(parsed.processors) == set(linear_template.processors)
        assert parsed.size() == linear_template.size()
        assert parsed.processors["fetch"].service == "remote-svc"
        assert parsed.processors["shape"].config == {"label": "shape"}

    def test_roundtrip_ports_and_depths(self, linear_template):
        parsed = from_t2flow(to_t2flow(linear_template))
        assert parsed.processors["fetch"].outputs[0].depth == 1

    def test_roundtrip_parameters(self):
        t = make_linear_template(template_id="wp")
        t._frozen = False
        t.add_parameter("k", "5", data_type="string")
        parsed = from_t2flow(to_t2flow(t))
        assert parsed.parameters[0].name == "k"

    def test_roundtrip_nested(self):
        from repro.corpus.generator import TemplateGenerator
        from repro.corpus.domains import DOMAINS

        gen = TemplateGenerator()
        nested = gen.taverna_template(DOMAINS[0], 4)
        parsed = from_t2flow(to_t2flow(nested))
        sub = next(p for p in parsed.processors.values() if p.is_subworkflow)
        assert sub.subworkflow.size()[0] >= 1

    def test_malformed_xml_rejected(self):
        with pytest.raises(WorkflowDefinitionError):
            from_t2flow("<not-closed")

    def test_wrong_root_rejected(self):
        with pytest.raises(WorkflowDefinitionError):
            from_t2flow("<other/>")

    def test_missing_id_rejected(self):
        with pytest.raises(WorkflowDefinitionError):
            from_t2flow('<workflow name="x"><dataflow role="top"/></workflow>')
