"""Tests for the six exemplar queries (Section 4 of the paper)."""

import pytest

from repro.queries import (
    CorpusQueries,
    q6_services_executed,
    taverna_workflow_iri,
    wings_template_iri,
)
from repro.taverna import TAVERNA_RUN_NS
from repro.wings import OPMW_EXPORT_NS


@pytest.fixture(scope="module")
def queries(corpus_dataset):
    return CorpusQueries(corpus_dataset)


@pytest.fixture(scope="module")
def taverna_run_iri(corpus):
    trace = next(t for t in corpus.by_system("taverna") if not t.failed)
    return TAVERNA_RUN_NS.term(f"{trace.run_id}/"), trace


@pytest.fixture(scope="module")
def wings_account_iri(corpus):
    trace = next(t for t in corpus.by_system("wings") if not t.failed)
    return OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{trace.run_id}"), trace


class TestQ1WorkflowRuns:
    def test_returns_all_198_runs(self, queries):
        assert len(queries.workflow_runs()) == 198

    def test_all_runs_have_start_time(self, queries):
        assert all(row.start is not None for row in queries.workflow_runs())

    def test_all_runs_have_end_time(self, queries):
        # Taverna via prov:endedAtTime, Wings via opmw:overallEndTime.
        assert all(row.end is not None for row in queries.workflow_runs())

    def test_ordered_by_start(self, queries):
        starts = [row.start.to_python() for row in queries.workflow_runs()]
        assert starts == sorted(starts)

    def test_nested_runs_excluded(self, queries, corpus):
        runs = {row.run.value for row in queries.workflow_runs()}
        assert not any("/nested/" in r for r in runs)


class TestQ2RunsOfTemplate:
    def test_taverna_multi_run_template(self, queries, corpus):
        template_id = next(t for t in corpus.multi_run_templates() if t.startswith("t-"))
        template = corpus.templates[template_id]
        counts = queries.runs_of_template(taverna_workflow_iri(template_id, template.name))
        expected_failed = sum(1 for t in corpus.by_template(template_id) if t.failed)
        assert counts == {"total": 3, "failed": expected_failed}

    def test_wings_failed_template(self, queries, corpus):
        trace = next(t for t in corpus.failed_traces() if t.system == "wings")
        counts = queries.runs_of_template(wings_template_iri(trace.template_id))
        assert counts["failed"] >= 1
        assert counts["total"] == len(corpus.by_template(trace.template_id))

    def test_unknown_template_zero(self, queries):
        counts = queries.runs_of_template("http://nowhere.example/wf")
        assert counts["total"] == 0

    def test_totals_sum_to_198_and_30(self, queries, corpus):
        total = failed = 0
        for template in corpus.templates.values():
            if template.system == "taverna":
                iri = taverna_workflow_iri(template.template_id, template.name)
            else:
                iri = wings_template_iri(template.template_id)
            counts = queries.runs_of_template(iri)
            total += counts["total"]
            failed += counts["failed"]
        assert total == 198
        assert failed == 30


class TestQ3TemplateIO:
    def test_taverna_io(self, queries, corpus, taverna_run_iri):
        _, trace = taverna_run_iri
        template = corpus.templates[trace.template_id]
        io = queries.template_io(taverna_workflow_iri(template.template_id, template.name))
        assert io, "expected at least one run"
        for run_entry in io.values():
            assert run_entry["inputs"]
        run_key = TAVERNA_RUN_NS.term(f"{trace.run_id}/").value
        assert len(io[run_key]["outputs"]) == len(trace.result.outputs)

    def test_wings_io(self, queries, corpus, wings_account_iri):
        _, trace = wings_account_iri
        io = queries.template_io(wings_template_iri(trace.template_id))
        account_key = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{trace.run_id}").value
        assert account_key in io
        assert io[account_key]["inputs"]
        assert io[account_key]["outputs"]


class TestQ4ProcessRuns:
    def test_taverna_has_timestamps(self, queries, taverna_run_iri, corpus):
        iri, trace = taverna_run_iri
        rows = queries.process_runs(iri)
        assert len(rows) > 0
        processes = {row.process.value for row in rows}
        # one process run per step, plus one per implicit-iteration element
        expected = len(trace.result.step_runs) + sum(
            len(s.iterations) for s in trace.result.step_runs
        )
        assert len(processes) == expected
        assert all(row.start is not None and row.end is not None for row in rows)

    def test_wings_has_no_timestamps(self, queries, wings_account_iri, corpus):
        iri, trace = wings_account_iri
        rows = queries.process_runs(iri)
        assert len(rows) > 0
        assert all(row.start is None and row.end is None for row in rows)

    def test_io_columns_populated(self, queries, taverna_run_iri):
        iri, _ = taverna_run_iri
        rows = queries.process_runs(iri)
        assert any(row.input is not None for row in rows)
        assert any(row.output is not None for row in rows)


class TestQ5WhoExecuted:
    def test_taverna_engine_agent(self, queries, taverna_run_iri):
        iri, _ = taverna_run_iri
        agents = queries.who_executed(iri)
        assert agents == ["http://ns.taverna.org.uk/2011/software/taverna-2.4.0"]

    def test_wings_user_agent(self, queries, wings_account_iri):
        iri, trace = wings_account_iri
        agents = queries.who_executed(iri)
        assert agents == [f"http://www.opmw.org/export/resource/Agent/{trace.user}"]

    def test_unknown_run_empty(self, queries):
        assert queries.who_executed("http://nowhere.example/run") == []


class TestQ6Services:
    def test_wings_only(self, queries, taverna_run_iri, wings_account_iri):
        taverna_iri, _ = taverna_run_iri
        wings_iri, _ = wings_account_iri
        assert queries.services_executed(taverna_iri) == []
        assert queries.services_executed(wings_iri)

    def test_components_match_template(self, queries, wings_account_iri, corpus):
        iri, trace = wings_account_iri
        services = queries.services_executed(iri)
        template = corpus.templates[trace.template_id]
        expected = {p.operation for p in template.processors.values()}
        got = {s.rsplit("/", 1)[1] for s in services}
        assert got <= expected

    def test_sparql_text_exposed(self):
        text = q6_services_executed("http://a/run")
        assert "opmw:hasExecutableComponent" in text
        assert "GRAPH" in text
