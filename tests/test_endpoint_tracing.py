"""End-to-end request tracing and profiling on the SPARQL endpoint.

One id resolves everywhere: the ``traceparent`` a client sends comes
back as ``X-Trace-Id`` (on errors too), keys the slow-query-log record,
and retrieves the span tree at ``GET /trace/<id>``.
"""

import json
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.endpoint import SparqlEndpoint
from repro.rdf import Graph, Namespace, PROV, RDF

EX = Namespace("http://example.org/")

TRACEPARENT = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
TRACE_ID = "4bf92f3577b34da6a3ce929d0e0e4736"


@pytest.fixture()
def endpoint():
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add((EX.r1, RDF.type, PROV.Activity))
    # slow_query_ms=0 records every query; trace_slow_ms=0 admits every
    # request's span tree, so tests can retrieve them deterministically.
    server = SparqlEndpoint(g, slow_query_ms=0.0, trace_slow_ms=0.0).start()
    yield server
    server.stop()


def _get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    return urllib.request.urlopen(request, timeout=10)


def _wait_admitted(server, trace_id, timeout=5.0):
    """Tail admission happens just *after* the response is written, so a
    client that immediately asks /trace can race it; wait it out."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.trace_ring.get(trace_id) is not None:
            return
        time.sleep(0.005)
    raise AssertionError(f"trace {trace_id} never admitted to the ring")


def _query_url(endpoint, query="SELECT ?x WHERE { ?x a prov:Activity }"):
    return endpoint.query_url + "?" + urllib.parse.urlencode({"query": query})


class TestTraceHeaders:
    def test_inbound_traceparent_echoed(self, endpoint):
        with _get(_query_url(endpoint), {"traceparent": TRACEPARENT}) as response:
            assert response.headers["X-Trace-Id"] == TRACE_ID
            assert float(response.headers["X-Query-Duration-ms"]) >= 0.0

    def test_fresh_root_without_traceparent(self, endpoint):
        with _get(_query_url(endpoint)) as response:
            trace_id = response.headers["X-Trace-Id"]
        assert len(trace_id) == 32
        assert trace_id != "0" * 32

    def test_malformed_traceparent_restarts_trace(self, endpoint):
        with _get(_query_url(endpoint), {"traceparent": "00-000-bad"}) as response:
            trace_id = response.headers["X-Trace-Id"]
        assert len(trace_id) == 32
        assert trace_id != "000"

    def test_error_responses_carry_headers(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(endpoint.query_url)  # missing query parameter → 400
        error = excinfo.value
        assert error.code == 400
        assert len(error.headers["X-Trace-Id"]) == 32
        assert float(error.headers["X-Query-Duration-ms"]) >= 0.0

    def test_404_carries_headers(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(endpoint.url + "/nope", {"traceparent": TRACEPARENT})
        assert excinfo.value.code == 404
        assert excinfo.value.headers["X-Trace-Id"] == TRACE_ID


class TestTraceRing:
    def test_span_tree_retrievable_by_trace_id(self, endpoint):
        with _get(_query_url(endpoint), {"traceparent": TRACEPARENT}):
            pass
        _wait_admitted(endpoint, TRACE_ID)
        with _get(endpoint.url + "/trace/" + TRACE_ID) as response:
            record = json.loads(response.read())
        assert record["trace_id"] == TRACE_ID
        assert record["route"] == "/sparql"
        assert record["status"] == 200
        names = {span["name"] for span in record["spans"]}
        assert "http.request" in names
        assert "sparql.query" in names
        (root,) = record["tree"]
        assert root["name"] == "http.request"
        assert root["children"], "query spans must nest under the request"

    def test_unknown_trace_id_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(endpoint.url + "/trace/" + "ab" * 16)
        assert excinfo.value.code == 404

    def test_evicted_trace_id_404(self, endpoint):
        endpoint.trace_ring.capacity = 1
        ids = []
        for _ in range(2):
            with _get(_query_url(endpoint)) as response:
                ids.append(response.headers["X-Trace-Id"])
        first, second = ids
        _wait_admitted(endpoint, second)  # admitting the 2nd evicts the 1st
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(endpoint.url + "/trace/" + first)
        assert excinfo.value.code == 404

    def test_trace_index_lists_ids(self, endpoint):
        with _get(_query_url(endpoint), {"traceparent": TRACEPARENT}):
            pass
        _wait_admitted(endpoint, TRACE_ID)
        with _get(endpoint.url + "/trace") as response:
            payload = json.loads(response.read())
        assert TRACE_ID in payload["trace_ids"]
        assert payload["ring"]["admitted"] >= 1

    def test_fast_requests_not_admitted(self):
        g = Graph()
        g.add((EX.r1, RDF.type, PROV.Activity))
        server = SparqlEndpoint(g, trace_slow_ms=60_000.0).start()
        try:
            with _get(_query_url(server), {"traceparent": TRACEPARENT}):
                pass
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/trace/" + TRACE_ID)
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_errors_admitted_even_when_fast(self):
        g = Graph()
        g.add((EX.r1, RDF.type, PROV.Activity))
        server = SparqlEndpoint(g, trace_slow_ms=60_000.0).start()
        try:
            with pytest.raises(urllib.error.HTTPError):
                _get(server.query_url, {"traceparent": TRACEPARENT})  # 400
            _wait_admitted(server, TRACE_ID)
            with _get(server.url + "/trace/" + TRACE_ID) as response:
                record = json.loads(response.read())
            assert record["status"] == 400
        finally:
            server.stop()


class TestSlowlogJoin:
    def test_slowlog_record_carries_trace_id(self, endpoint):
        with _get(_query_url(endpoint), {"traceparent": TRACEPARENT}):
            pass
        with _get(endpoint.url + "/slowlog") as response:
            payload = json.loads(response.read())
        assert any(e.get("trace_id") == TRACE_ID for e in payload["entries"])


class TestProfileRoute:
    def test_folded_output(self, endpoint):
        with _get(endpoint.url + "/debug/profile?seconds=0.2") as response:
            folded = response.read().decode()
            assert int(response.headers["X-Profile-Samples"]) >= 1
        assert folded.strip(), "sampling a live process must see stacks"
        for line in folded.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and count.isdigit()

    def test_speedscope_output(self, endpoint):
        url = endpoint.url + "/debug/profile?seconds=0.2&format=speedscope"
        with _get(url) as response:
            doc = json.loads(response.read())
        assert doc["profiles"]
        assert doc["shared"]["frames"]

    def test_bad_params_400(self, endpoint):
        for query in ("seconds=nope", "format=flamegraph"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(endpoint.url + "/debug/profile?" + query)
            assert excinfo.value.code == 400

    def test_stats_reports_tracing_and_profiler(self, endpoint):
        with _get(endpoint.url + "/stats") as response:
            stats = json.loads(response.read())
        assert stats["tracing"]["slow_ms"] == 0.0
        assert "admitted" in stats["tracing"]["ring"]
        assert stats["profiler"] == {"running": False}

    def test_always_on_profiler_lifecycle(self):
        from repro.obs import profiler as profiler_mod

        g = Graph()
        g.add((EX.r1, RDF.type, PROV.Activity))
        server = SparqlEndpoint(g, profile_hz=100.0).start()
        try:
            with _get(server.url + "/stats") as response:
                stats = json.loads(response.read())
            assert stats["profiler"]["running"] is True
            assert stats["profiler"]["hz"] == 100.0
            with _get(server.url + "/debug/profile?seconds=0.2") as response:
                assert response.read().decode().strip()
        finally:
            server.stop()
        assert profiler_mod.get_profiler() is None
