"""Unit tests for namespaces and prefix management."""

import pytest

from repro.rdf.namespace import (
    CORE_PREFIXES,
    Namespace,
    NamespaceManager,
    PROV,
    WFPROV,
)
from repro.rdf.terms import IRI


class TestNamespace:
    def test_attribute_access(self):
        ns = Namespace("http://example.org/")
        assert ns.thing == IRI("http://example.org/thing")

    def test_item_access(self):
        ns = Namespace("http://example.org/")
        assert ns["with-dash"] == IRI("http://example.org/with-dash")

    def test_contains_iri(self):
        assert PROV.Entity in PROV
        assert IRI("http://other.org/x") not in PROV

    def test_contains_string(self):
        assert "http://www.w3.org/ns/prov#used" in PROV

    def test_equality(self):
        assert Namespace("http://a/") == Namespace("http://a/")
        assert Namespace("http://a/") != Namespace("http://b/")

    def test_empty_base_rejected(self):
        with pytest.raises(ValueError):
            Namespace("")

    def test_underscore_attribute_raises(self):
        ns = Namespace("http://example.org/")
        with pytest.raises(AttributeError):
            ns._private


class TestNamespaceManager:
    def test_core_prefixes_bound_by_default(self):
        nsm = NamespaceManager()
        for prefix in ("prov", "wfprov", "opmw", "rdf", "xsd"):
            assert prefix in nsm

    def test_expand(self):
        nsm = NamespaceManager()
        assert nsm.expand("prov:Entity") == PROV.Entity

    def test_expand_unknown_prefix(self):
        nsm = NamespaceManager()
        with pytest.raises(KeyError):
            nsm.expand("nope:thing")

    def test_expand_not_a_curie(self):
        nsm = NamespaceManager()
        with pytest.raises(ValueError):
            nsm.expand("plainword")

    def test_compact(self):
        nsm = NamespaceManager()
        assert nsm.compact(PROV.Entity) == "prov:Entity"
        assert nsm.compact(WFPROV.WorkflowRun) == "wfprov:WorkflowRun"

    def test_compact_unknown_returns_none(self):
        nsm = NamespaceManager()
        assert nsm.compact(IRI("http://nowhere.example/x")) is None

    def test_compact_longest_match_wins(self):
        nsm = NamespaceManager(bind_core=False)
        nsm.bind("a", "http://example.org/")
        nsm.bind("b", "http://example.org/deep/")
        assert nsm.compact(IRI("http://example.org/deep/x")) == "b:x"

    def test_compact_rejects_invalid_local(self):
        nsm = NamespaceManager(bind_core=False)
        nsm.bind("ex", "http://example.org/")
        # a local part with '/' is not a valid PN_LOCAL in our profile
        assert nsm.compact(IRI("http://example.org/a/b")) is None

    def test_rebind_replaces(self):
        nsm = NamespaceManager(bind_core=False)
        nsm.bind("x", "http://one.example/")
        nsm.bind("x", "http://two.example/")
        assert nsm.expand("x:y") == IRI("http://two.example/y")

    def test_bind_no_replace_conflict(self):
        nsm = NamespaceManager(bind_core=False)
        nsm.bind("x", "http://one.example/")
        with pytest.raises(ValueError):
            nsm.bind("x", "http://two.example/", replace=False)

    def test_bind_no_replace_same_is_noop(self):
        nsm = NamespaceManager(bind_core=False)
        nsm.bind("x", "http://one.example/")
        nsm.bind("x", "http://one.example/", replace=False)
        assert len(nsm) == 1

    def test_namespaces_sorted(self):
        nsm = NamespaceManager(bind_core=False)
        nsm.bind("zz", "http://z.example/")
        nsm.bind("aa", "http://a.example/")
        assert [p for p, _ in nsm.namespaces()] == ["aa", "zz"]

    def test_copy_is_independent(self):
        nsm = NamespaceManager(bind_core=False)
        nsm.bind("x", "http://one.example/")
        clone = nsm.copy()
        clone.bind("y", "http://two.example/")
        assert "y" not in nsm

    def test_core_prefix_table_consistent(self):
        assert CORE_PREFIXES["prov"] == PROV.base
