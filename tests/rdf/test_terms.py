"""Unit tests for RDF terms: IRIs, blank nodes, literals, conversions."""

import datetime as dt

import pytest

from repro.rdf.terms import (
    XSD,
    BlankNode,
    IRI,
    Literal,
    escape_string,
    format_datetime,
    from_python,
    is_valid_iri,
    parse_datetime,
    unescape_string,
)


class TestIRI:
    def test_construction_and_str(self):
        iri = IRI("http://example.org/thing")
        assert str(iri) == "http://example.org/thing"
        assert iri.n3() == "<http://example.org/thing>"

    def test_equality_and_hash(self):
        assert IRI("http://a/") == IRI("http://a/")
        assert IRI("http://a/") != IRI("http://b/")
        assert hash(IRI("http://a/")) == hash(IRI("http://a/"))

    def test_rejects_invalid_characters(self):
        for bad in ("has space", "angle<bracket", 'quo"te', "back\\slash", ""):
            with pytest.raises(ValueError):
                IRI(bad)

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            IRI(42)

    def test_immutable(self):
        iri = IRI("http://a/")
        with pytest.raises(AttributeError):
            iri.value = "http://b/"

    def test_local_name_hash(self):
        assert IRI("http://www.w3.org/ns/prov#Entity").local_name == "Entity"

    def test_local_name_slash(self):
        assert IRI("http://example.org/data/item1").local_name == "item1"

    def test_namespace(self):
        iri = IRI("http://www.w3.org/ns/prov#Entity")
        assert iri.namespace == "http://www.w3.org/ns/prov#"

    def test_is_valid_iri(self):
        assert is_valid_iri("urn:uuid:1234")
        assert not is_valid_iri("bad iri")


class TestBlankNode:
    def test_explicit_id(self):
        b = BlankNode("b1")
        assert b.id == "b1"
        assert b.n3() == "_:b1"

    def test_auto_id_unique(self):
        BlankNode.reset_counter()
        a, b = BlankNode(), BlankNode()
        assert a != b

    def test_invalid_id(self):
        with pytest.raises(ValueError):
            BlankNode("has space")
        with pytest.raises(ValueError):
            BlankNode("")

    def test_equality(self):
        assert BlankNode("x") == BlankNode("x")
        assert BlankNode("x") != BlankNode("y")


class TestLiteral:
    def test_plain_string(self):
        lit = Literal("hello")
        assert lit.datatype.value == XSD.STRING
        assert lit.language is None
        assert lit.n3() == '"hello"'

    def test_language_tagged(self):
        lit = Literal("bonjour", language="FR")
        assert lit.language == "fr"  # canonical lowercase
        assert lit.n3() == '"bonjour"@fr'

    def test_language_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.STRING, language="en")

    def test_invalid_language_tag(self):
        with pytest.raises(ValueError):
            Literal("x", language="not a tag!")

    def test_typed_n3(self):
        lit = Literal("42", datatype=XSD.INTEGER)
        assert lit.n3() == '"42"^^<http://www.w3.org/2001/XMLSchema#integer>'

    def test_escaping_in_n3(self):
        lit = Literal('say "hi"\nplease')
        assert lit.n3() == '"say \\"hi\\"\\nplease"'

    def test_to_python_integer(self):
        assert Literal("7", datatype=XSD.INTEGER).to_python() == 7

    def test_to_python_double(self):
        assert Literal("2.5", datatype=XSD.DOUBLE).to_python() == 2.5

    def test_to_python_boolean(self):
        assert Literal("true", datatype=XSD.BOOLEAN).to_python() is True
        assert Literal("0", datatype=XSD.BOOLEAN).to_python() is False

    def test_to_python_datetime(self):
        value = Literal("2013-01-05T08:30:00", datatype=XSD.DATETIME).to_python()
        assert value == dt.datetime(2013, 1, 5, 8, 30)

    def test_to_python_malformed_falls_back_to_lexical(self):
        assert Literal("not-a-number", datatype=XSD.INTEGER).to_python() == "not-a-number"

    def test_to_python_unknown_datatype(self):
        lit = Literal("x", datatype="http://example.org/custom")
        assert lit.to_python() == "x"

    def test_is_numeric(self):
        assert Literal("1", datatype=XSD.INTEGER).is_numeric
        assert not Literal("1").is_numeric

    def test_equality_considers_datatype(self):
        assert Literal("1", datatype=XSD.INTEGER) != Literal("1", datatype=XSD.DOUBLE)
        assert Literal("1", datatype=XSD.INTEGER) == Literal("1", datatype=XSD.INTEGER)


class TestDatetimeLexical:
    def test_parse_with_utc(self):
        value = parse_datetime("2013-03-01T12:00:00Z")
        assert value.tzinfo == dt.timezone.utc

    def test_parse_with_offset(self):
        value = parse_datetime("2013-03-01T12:00:00+02:00")
        assert value.utcoffset() == dt.timedelta(hours=2)

    def test_parse_fraction(self):
        value = parse_datetime("2013-03-01T12:00:00.250")
        assert value.microsecond == 250000

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            parse_datetime("yesterday")

    def test_format_roundtrip(self):
        original = dt.datetime(2013, 3, 1, 12, 0, 0, 125000, tzinfo=dt.timezone.utc)
        assert parse_datetime(format_datetime(original)) == original

    def test_format_naive(self):
        assert format_datetime(dt.datetime(2013, 3, 1, 12)) == "2013-03-01T12:00:00"


class TestEscaping:
    def test_roundtrip_control_characters(self):
        original = "tab\t newline\n quote\" backslash\\ bell\x07"
        assert unescape_string(escape_string(original)) == original

    def test_unicode_escape(self):
        assert unescape_string("\\u0041") == "A"
        assert unescape_string("\\U00000042") == "B"

    def test_dangling_escape_rejected(self):
        with pytest.raises(ValueError):
            unescape_string("bad\\")


class TestFromPython:
    def test_bool_before_int(self):
        lit = from_python(True)
        assert lit.datatype.value == XSD.BOOLEAN
        assert lit.lexical == "true"

    def test_int(self):
        assert from_python(5).datatype.value == XSD.INTEGER

    def test_float(self):
        assert from_python(1.5).datatype.value == XSD.DOUBLE

    def test_datetime(self):
        lit = from_python(dt.datetime(2013, 1, 1, 9))
        assert lit.datatype.value == XSD.DATETIME

    def test_date(self):
        assert from_python(dt.date(2013, 1, 1)).datatype.value == XSD.DATE

    def test_string(self):
        assert from_python("x").datatype.value == XSD.STRING

    def test_passthrough(self):
        lit = Literal("x")
        assert from_python(lit) is lit

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            from_python(object())


class TestOrdering:
    def test_kind_order(self):
        b, i, l = BlankNode("a"), IRI("http://a/"), Literal("a")
        assert sorted([l, i, b]) == [b, i, l]

    def test_iri_lexicographic(self):
        assert IRI("http://a/") < IRI("http://b/")
