"""Unit tests for N-Triples, Turtle, TriG, and JSON-LD serializations."""

import datetime as dt

import pytest

from repro.rdf import (
    Dataset,
    Graph,
    Namespace,
    PROV,
    RDF,
    from_python,
    parse_nquads,
    parse_ntriples,
    parse_trig,
    parse_turtle,
    serialize_nquads,
    serialize_ntriples,
    serialize_trig,
    serialize_turtle,
)
from repro.rdf.jsonld import dumps as jsonld_dumps, loads as jsonld_loads
from repro.rdf.ntriples import NTriplesError
from repro.rdf.terms import BlankNode, IRI, Literal, XSD
from repro.rdf.turtle import TurtleError

EX = Namespace("http://example.org/")


def rich_graph():
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add((EX.run, RDF.type, PROV.Activity))
    g.add((EX.run, PROV.startedAtTime, from_python(dt.datetime(2013, 1, 1, 12))))
    g.add((EX.run, PROV.used, EX.data))
    g.add((EX.data, RDF.type, PROV.Entity))
    g.add((EX.data, EX.title, Literal('a "quoted" title', language="en")))
    g.add((EX.data, EX.size, 42))
    g.add((EX.data, EX.ratio, Literal("0.5", datatype=XSD.DECIMAL)))
    g.add((EX.data, EX.ok, True))
    g.add((BlankNode("n1"), PROV.used, EX.data))
    return g


class TestNTriples:
    def test_roundtrip(self):
        g = rich_graph()
        assert parse_ntriples(serialize_ntriples(g)) == g

    def test_sorted_output_is_stable(self):
        assert serialize_ntriples(rich_graph()) == serialize_ntriples(rich_graph())

    def test_comments_and_blanks_ignored(self):
        text = "# comment\n\n<http://a/> <http://p/> \"x\" .\n"
        g = parse_ntriples(text)
        assert len(g) == 1

    def test_literal_forms(self):
        text = (
            '<http://a/> <http://p/> "plain" .\n'
            '<http://a/> <http://p/> "tagged"@en .\n'
            '<http://a/> <http://p/> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
        )
        g = parse_ntriples(text)
        assert len(g) == 3

    def test_missing_dot_rejected(self):
        with pytest.raises(NTriplesError):
            parse_ntriples('<http://a/> <http://p/> "x"')

    def test_literal_subject_rejected(self):
        with pytest.raises(NTriplesError):
            parse_ntriples('"x" <http://p/> <http://a/> .')

    def test_bnode_predicate_rejected(self):
        with pytest.raises(NTriplesError):
            parse_ntriples("<http://a/> _:b <http://c/> .")

    def test_error_carries_line_number(self):
        with pytest.raises(NTriplesError) as exc:
            parse_ntriples('<http://a/> <http://p/> "ok" .\ngarbage\n')
        assert exc.value.lineno == 2


class TestNQuads:
    def test_roundtrip_with_named_graphs(self):
        ds = Dataset()
        ds.default.add((EX.a, PROV.used, EX.b))
        ds.graph(EX.g1).add((EX.c, PROV.used, EX.d))
        text = serialize_nquads(ds)
        ds2 = parse_nquads(text)
        assert len(ds2) == 2
        assert (EX.c, PROV.used, EX.d) in ds2.graph(EX.g1)

    def test_triple_lines_go_to_default(self):
        ds = parse_nquads("<http://a/> <http://p/> <http://b/> .\n")
        assert len(ds.default) == 1


class TestTurtle:
    def test_roundtrip(self):
        g = rich_graph()
        assert parse_turtle(serialize_turtle(g)) == g

    def test_deterministic_output(self):
        assert serialize_turtle(rich_graph()) == serialize_turtle(rich_graph())

    def test_uses_curies_and_a(self):
        text = serialize_turtle(rich_graph())
        assert "ex:run a prov:Activity" in text
        assert "@prefix prov:" in text

    def test_integer_shorthand(self):
        text = serialize_turtle(rich_graph())
        assert "ex:size 42" in text

    def test_boolean_shorthand(self):
        assert "ex:ok true" in serialize_turtle(rich_graph())

    def test_parse_semicolon_comma_groups(self):
        text = """
        @prefix ex: <http://example.org/> .
        ex:s ex:p ex:o1, ex:o2 ;
             ex:q "v" .
        """
        g = parse_turtle(text)
        assert len(g) == 3

    def test_parse_prefix_sparql_style(self):
        g = parse_turtle("PREFIX ex: <http://example.org/>\nex:a ex:p ex:b .")
        assert len(g) == 1

    def test_parse_base(self):
        g = parse_turtle("@base <http://example.org/> .\n<a> <p> <b> .")
        assert next(iter(g)).subject == IRI("http://example.org/a")

    def test_parse_blank_node_property_list(self):
        g = parse_turtle(
            "@prefix ex: <http://example.org/> .\n"
            "ex:s ex:p [ ex:q ex:o ] ."
        )
        assert len(g) == 2

    def test_parse_collection(self):
        g = parse_turtle(
            "@prefix ex: <http://example.org/> .\n"
            "ex:s ex:p (ex:a ex:b) ."
        )
        # head + 2x(first, rest)
        assert len(g) == 5
        assert len(list(g.triples(None, RDF.first, None))) == 2

    def test_parse_empty_collection_is_nil(self):
        g = parse_turtle(
            "@prefix ex: <http://example.org/> .\nex:s ex:p () ."
        )
        assert (EX.s, EX.p, RDF.nil) in g

    def test_unknown_prefix_rejected(self):
        with pytest.raises(TurtleError):
            parse_turtle("nope:a nope:b nope:c .")

    def test_missing_dot_rejected(self):
        with pytest.raises(TurtleError):
            parse_turtle("@prefix ex: <http://example.org/> .\nex:a ex:b ex:c")

    def test_numeric_literals(self):
        g = parse_turtle(
            "@prefix ex: <http://e/> .\nex:s ex:a 5 ; ex:b 2.5 ; ex:c 1.0e3 ; ex:d true ."
        )
        datatypes = {t.object.datatype.value for t in g if isinstance(t.object, Literal)}
        assert datatypes == {XSD.INTEGER, XSD.DECIMAL, XSD.DOUBLE, XSD.BOOLEAN}

    def test_long_string(self):
        g = parse_turtle('@prefix ex: <http://e/> .\nex:s ex:p """multi\nline""" .')
        lit = next(iter(g)).object
        assert "\n" in lit.lexical


class TestTriG:
    def test_roundtrip(self):
        ds = Dataset()
        ds.namespaces.bind("ex", EX)
        ds.default.add((EX.bundle, RDF.type, PROV.Bundle))
        ds.graph(EX.bundle).add((EX.run, RDF.type, PROV.Activity))
        ds.graph(EX.bundle).add((EX.run, PROV.used, EX.data))
        text = serialize_trig(ds)
        ds2 = parse_trig(text)
        assert len(ds2) == len(ds)
        assert (EX.run, PROV.used, EX.data) in ds2.graph(EX.bundle)

    def test_graph_keyword_optional(self):
        text = (
            "@prefix ex: <http://example.org/> .\n"
            "ex:g1 { ex:a ex:p ex:b . }\n"
        )
        ds = parse_trig(text)
        assert (EX.a, EX.p, EX.b) in ds.graph(EX.g1)

    def test_default_graph_statements(self):
        text = (
            "@prefix ex: <http://example.org/> .\n"
            "ex:x ex:p ex:y .\n"
            "GRAPH ex:g1 { ex:a ex:p ex:b }\n"
        )
        ds = parse_trig(text)
        assert (EX.x, EX.p, EX.y) in ds.default
        assert (EX.a, EX.p, EX.b) in ds.graph(EX.g1)


class TestJsonLd:
    def test_roundtrip(self):
        g = rich_graph()
        assert jsonld_loads(jsonld_dumps(g)) == g

    def test_type_key_used(self):
        text = jsonld_dumps(rich_graph())
        assert '"@type"' in text

    def test_plain_values_for_common_datatypes(self):
        from repro.rdf.jsonld import to_jsonld

        doc = to_jsonld(rich_graph())
        node = next(n for n in doc["@graph"] if n["@id"].endswith("/data"))
        assert node["ex:size"] == 42
        assert node["ex:ok"] is True


class TestParseErrorContext:
    """Turtle/TriG parse failures carry file, line and column context."""

    def test_lineno_and_column_attributes(self):
        with pytest.raises(TurtleError) as exc:
            parse_turtle("@prefix ex: <http://e/> .\nex:a ex:b $ .")
        assert exc.value.lineno == 2
        assert exc.value.column == 11
        assert "line 2, column 11" in str(exc.value)

    def test_source_prefixes_message(self):
        with pytest.raises(TurtleError) as exc:
            parse_turtle("nope:a nope:b nope:c .", source="Taverna/d/t/run.prov.ttl")
        assert exc.value.source == "Taverna/d/t/run.prov.ttl"
        assert str(exc.value).startswith("Taverna/d/t/run.prov.ttl: line 1")

    def test_no_source_keeps_plain_message(self):
        with pytest.raises(TurtleError) as exc:
            parse_turtle("nope:a nope:b nope:c .")
        assert exc.value.source is None
        assert str(exc.value).startswith("line 1")

    def test_trig_error_carries_source(self):
        from repro.rdf.trig import parse_trig

        bad = "@prefix ex: <http://e/> .\nGRAPH ex:g { ex:a ex:b }"
        with pytest.raises(TurtleError) as exc:
            parse_trig(bad, source="Wings/d/t/run.prov.trig")
        assert exc.value.source == "Wings/d/t/run.prov.trig"

    def test_bad_string_escape_is_turtle_error(self):
        # unescape_string raises bare ValueError; the parser must wrap it
        text = '@prefix ex: <http://e/> .\nex:s ex:p "bad \\q escape" .'
        with pytest.raises(TurtleError) as exc:
            parse_turtle(text)
        assert exc.value.lineno == 2

    def test_trig_without_dataset_is_typed_error(self):
        from repro.rdf.turtle import TurtleParser

        with pytest.raises(TurtleError):
            TurtleParser("ex:a ex:b ex:c .", allow_graphs=True)

    def test_with_source_copies(self):
        err = TurtleError("boom", 3, 7)
        attributed = err.with_source("x.ttl")
        assert (attributed.lineno, attributed.column) == (3, 7)
        assert attributed.source == "x.ttl"
        assert err.source is None
