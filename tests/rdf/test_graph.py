"""Unit tests for Graph and Dataset: indexes, pattern matching, set ops."""

import pytest

from repro.rdf import Dataset, Graph, Namespace, PROV, RDF
from repro.rdf.terms import IRI, Literal
from repro.rdf.triple import Quad, Triple

EX = Namespace("http://example.org/")


def small_graph():
    g = Graph()
    g.add((EX.a, RDF.type, PROV.Activity))
    g.add((EX.a, PROV.used, EX.e1))
    g.add((EX.a, PROV.used, EX.e2))
    g.add((EX.e1, RDF.type, PROV.Entity))
    g.add((EX.e2, RDF.type, PROV.Entity))
    return g


class TestGraphMutation:
    def test_add_returns_true_once(self):
        g = Graph()
        assert g.add((EX.a, PROV.used, EX.b)) is True
        assert g.add((EX.a, PROV.used, EX.b)) is False
        assert len(g) == 1

    def test_add_coerces_python_objects(self):
        g = Graph()
        g.add((EX.a, EX.size, 42))
        obj = next(iter(g)).object
        assert isinstance(obj, Literal) and obj.to_python() == 42

    def test_add_all_counts_inserted(self):
        g = Graph()
        n = g.add_all([(EX.a, PROV.used, EX.b), (EX.a, PROV.used, EX.b)])
        assert n == 1

    def test_remove_present(self):
        g = small_graph()
        assert g.remove((EX.a, PROV.used, EX.e1)) is True
        assert len(g) == 4
        assert (EX.a, PROV.used, EX.e1) not in g

    def test_remove_absent(self):
        g = small_graph()
        assert g.remove((EX.zz, PROV.used, EX.e1)) is False

    def test_remove_cleans_all_indexes(self):
        g = Graph()
        g.add((EX.a, PROV.used, EX.b))
        g.remove((EX.a, PROV.used, EX.b))
        assert not list(g.triples(EX.a, None, None))
        assert not list(g.triples(None, PROV.used, None))
        assert not list(g.triples(None, None, EX.b))

    def test_remove_pattern(self):
        g = small_graph()
        removed = g.remove_pattern(EX.a, PROV.used, None)
        assert removed == 2
        assert g.count(EX.a, PROV.used, None) == 0

    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ((None, None, None), 5),
            ((EX.a, None, None), 3),
            ((None, PROV.used, None), 2),
            ((None, None, PROV.Entity), 2),
            ((EX.a, PROV.used, None), 2),
            ((EX.a, None, EX.e1), 1),
            ((None, RDF.type, PROV.Entity), 2),
            ((EX.a, PROV.used, EX.e1), 1),
            ((EX.zz, None, None), 0),
        ],
    )
    def test_remove_pattern_all_cursor_paths(self, pattern, expected):
        g = small_graph()
        before = len(g)
        assert g.remove_pattern(*pattern) == expected
        assert len(g) == before - expected
        for t in g.triples(*pattern):
            raise AssertionError(f"pattern survivor {t}")
        g.check_invariants()

    def test_remove_pattern_wildcard_clears(self):
        g = small_graph()
        assert g.remove_pattern() == 5
        assert len(g) == 0
        g.check_invariants()

    def test_clear(self):
        g = small_graph()
        g.clear()
        assert len(g) == 0 and not g

    def test_remove_keeps_indexes_symmetric(self):
        g = small_graph()
        g.remove((EX.a, PROV.used, EX.e1))
        g.remove((EX.e1, RDF.type, PROV.Entity))
        g.check_invariants()
        assert g.remove((EX.a, PROV.used, EX.e1)) is False  # already gone
        g.check_invariants()

    def test_size_invariant_under_mixed_mutations(self):
        g = Graph()
        for i in range(20):
            g.add((EX[f"s{i % 5}"], EX[f"p{i % 3}"], EX[f"o{i}"]))
        g.remove_pattern(None, EX.p0, None)
        g.remove((EX.s1, EX.p1, EX.o1))
        g.add((EX.s1, EX.p1, EX.o1))
        g.remove_pattern(EX.s2, None, None)
        g.check_invariants()
        assert len(g) == len(list(g.triples()))


class TestVersioning:
    def test_add_bumps_version_once(self):
        g = Graph()
        v0 = g.version
        g.add((EX.a, PROV.used, EX.b))
        assert g.version == v0 + 1
        g.add((EX.a, PROV.used, EX.b))  # duplicate: no effective change
        assert g.version == v0 + 1

    def test_remove_bumps_only_when_present(self):
        g = small_graph()
        v = g.version
        assert g.remove((EX.zz, PROV.used, EX.e1)) is False
        assert g.version == v
        g.remove((EX.a, PROV.used, EX.e1))
        assert g.version > v

    def test_remove_pattern_and_clear_bump(self):
        g = small_graph()
        v = g.version
        assert g.remove_pattern(EX.zz, None, None) == 0
        assert g.version == v  # no-op pattern: version unchanged
        g.remove_pattern(EX.a, PROV.used, None)
        assert g.version > v
        v = g.version
        g.clear()
        assert g.version > v
        v = g.version
        g.clear()  # clearing an empty graph is a no-op
        assert g.version == v

    def test_dataset_version_tracks_member_graphs(self):
        ds = Dataset()
        v0 = ds.version
        ds.default.add((EX.a, PROV.used, EX.b))
        assert ds.version > v0
        v1 = ds.version
        ds.graph(EX.g1).add((EX.c, PROV.used, EX.d))
        assert ds.version > v1

    def test_dataset_version_monotonic_across_graph_removal(self):
        ds = Dataset()
        ds.graph(EX.g1).add_all(
            [(EX.a, PROV.used, EX.b), (EX.c, PROV.used, EX.d)]
        )
        v = ds.version
        ds.remove_graph(EX.g1)
        assert ds.version > v  # dropping triples must not rewind the clock


class TestPatternMatching:
    @pytest.mark.parametrize(
        "pattern,count",
        [
            ((None, None, None), 5),
            ((EX.a, None, None), 3),
            ((None, PROV.used, None), 2),
            ((None, None, PROV.Entity), 2),
            ((EX.a, PROV.used, None), 2),
            ((EX.a, None, EX.e1), 1),
            ((None, RDF.type, PROV.Entity), 2),
            ((EX.a, PROV.used, EX.e1), 1),
            ((EX.zz, None, None), 0),
        ],
    )
    def test_all_index_paths(self, pattern, count):
        g = small_graph()
        assert len(list(g.triples(*pattern))) == count

    def test_scan_agrees_with_indexes(self):
        g = small_graph()
        for pattern in [(None, None, None), (EX.a, None, None), (None, PROV.used, None),
                        (None, None, PROV.Entity), (EX.a, PROV.used, EX.e1)]:
            assert set(g.triples(*pattern)) == set(g.triples_scan(*pattern))

    def test_contains(self):
        g = small_graph()
        assert (EX.a, PROV.used, EX.e1) in g
        assert Triple(EX.a, PROV.used, EX.e1) in g
        assert (EX.a, PROV.used, EX.zz) not in g

    def test_value_single_unbound(self):
        g = small_graph()
        assert g.value(subject=EX.e1, predicate=RDF.type) == PROV.Entity

    def test_value_default(self):
        g = small_graph()
        assert g.value(subject=EX.zz, predicate=RDF.type, default="n/a") == "n/a"

    def test_value_requires_one_unbound(self):
        g = small_graph()
        with pytest.raises(ValueError):
            g.value(subject=EX.a)

    def test_objects_subjects_iterators(self):
        g = small_graph()
        assert set(g.objects(EX.a, PROV.used)) == {EX.e1, EX.e2}
        assert set(g.subjects(RDF.type, PROV.Entity)) == {EX.e1, EX.e2}

    def test_subjects_of_type(self):
        g = small_graph()
        assert set(g.subjects_of_type(PROV.Activity)) == {EX.a}

    def test_predicate_histogram(self):
        g = small_graph()
        hist = g.predicate_histogram()
        assert hist[PROV.used] == 2
        assert hist[RDF.type] == 3


class TestSetOperations:
    def test_union(self):
        g1 = Graph([(EX.a, PROV.used, EX.b)])
        g2 = Graph([(EX.c, PROV.used, EX.d)])
        assert len(g1.union(g2)) == 2

    def test_union_operator_is_nonmutating(self):
        g1 = Graph([(EX.a, PROV.used, EX.b)])
        g2 = Graph([(EX.c, PROV.used, EX.d)])
        _ = g1 + g2
        assert len(g1) == 1

    def test_intersection(self):
        shared = (EX.a, PROV.used, EX.b)
        g1 = Graph([shared, (EX.x, PROV.used, EX.y)])
        g2 = Graph([shared])
        assert set(g1 & g2) == {Triple(*shared)}

    def test_difference(self):
        g1 = Graph([(EX.a, PROV.used, EX.b), (EX.x, PROV.used, EX.y)])
        g2 = Graph([(EX.a, PROV.used, EX.b)])
        assert len(g1 - g2) == 1

    def test_equality(self):
        g1 = small_graph()
        g2 = small_graph()
        assert g1 == g2
        g2.add((EX.new, RDF.type, PROV.Entity))
        assert g1 != g2

    def test_copy_independent(self):
        g1 = small_graph()
        g2 = g1.copy()
        g2.add((EX.new, RDF.type, PROV.Entity))
        assert len(g1) == 5 and len(g2) == 6

    def test_sorted_triples_deterministic(self):
        g = small_graph()
        assert g.sorted_triples() == g.copy().sorted_triples()


class TestDataset:
    def test_default_and_named(self):
        ds = Dataset()
        ds.default.add((EX.a, RDF.type, PROV.Entity))
        ds.graph(EX.g1).add((EX.b, RDF.type, PROV.Entity))
        assert len(ds) == 2
        assert ds.has_graph(EX.g1)
        assert not ds.has_graph(EX.g2)

    def test_graph_names_sorted(self):
        ds = Dataset()
        ds.graph(EX.zz)
        ds.graph(EX.aa)
        assert ds.graph_names() == [EX.aa, EX.zz]

    def test_add_quad(self):
        ds = Dataset()
        ds.add(Quad(EX.a, PROV.used, EX.b, EX.g1))
        assert (EX.a, PROV.used, EX.b) in ds.graph(EX.g1)

    def test_add_triple_goes_to_default(self):
        ds = Dataset()
        ds.add((EX.a, PROV.used, EX.b))
        assert (EX.a, PROV.used, EX.b) in ds.default

    def test_quads_across_graphs(self):
        ds = Dataset()
        ds.default.add((EX.a, PROV.used, EX.b))
        ds.graph(EX.g1).add((EX.c, PROV.used, EX.d))
        quads = list(ds.quads())
        assert len(quads) == 2
        assert {q.graph for q in quads} == {None, EX.g1}

    def test_quads_restricted_to_named(self):
        ds = Dataset()
        ds.default.add((EX.a, PROV.used, EX.b))
        ds.graph(EX.g1).add((EX.c, PROV.used, EX.d))
        assert len(list(ds.quads(graph=EX.g1))) == 1
        assert len(list(ds.quads(graph=False))) == 1

    def test_union_graph(self):
        ds = Dataset()
        ds.default.add((EX.a, PROV.used, EX.b))
        ds.graph(EX.g1).add((EX.c, PROV.used, EX.d))
        merged = ds.union_graph()
        assert len(merged) == 2

    def test_remove_graph(self):
        ds = Dataset()
        ds.graph(EX.g1).add((EX.a, PROV.used, EX.b))
        assert ds.remove_graph(EX.g1) is True
        assert ds.remove_graph(EX.g1) is False
        assert len(ds) == 0
