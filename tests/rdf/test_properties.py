"""Property-based tests (hypothesis) for the RDF substrate.

Invariants:

* every serializer round-trips arbitrary graphs (N-Triples, Turtle, JSON);
* string escaping round-trips arbitrary text;
* graph set operations obey their algebraic laws;
* indexes agree with the linear scan on arbitrary patterns.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, parse_ntriples, parse_turtle, serialize_ntriples, serialize_turtle
from repro.rdf.jsonld import dumps as jsonld_dumps, loads as jsonld_loads
from repro.rdf.terms import (
    XSD,
    BlankNode,
    IRI,
    Literal,
    escape_string,
    unescape_string,
)

# -- strategies -----------------------------------------------------------------

_local = st.text(alphabet=string.ascii_letters + string.digits, min_size=1, max_size=8)

iris = _local.map(lambda s: IRI(f"http://example.org/{s}"))
bnodes = _local.map(BlankNode)
plain_literals = st.text(max_size=30).map(Literal)
typed_literals = st.integers(min_value=-10**6, max_value=10**6).map(
    lambda n: Literal(str(n), datatype=XSD.INTEGER)
)
lang_literals = st.tuples(st.text(max_size=10), st.sampled_from(["en", "fr", "de"])).map(
    lambda t: Literal(t[0], language=t[1])
)
literals = st.one_of(plain_literals, typed_literals, lang_literals)

subjects = st.one_of(iris, bnodes)
objects_ = st.one_of(iris, bnodes, literals)

triples = st.tuples(subjects, iris, objects_)
graphs = st.lists(triples, max_size=25).map(Graph)


# -- escaping ---------------------------------------------------------------------

@given(st.text(max_size=200))
def test_escape_roundtrip(text):
    assert unescape_string(escape_string(text)) == text


# -- serializer round-trips ----------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(graphs)
def test_ntriples_roundtrip(graph):
    assert parse_ntriples(serialize_ntriples(graph)) == graph


@settings(max_examples=50, deadline=None)
@given(graphs)
def test_turtle_roundtrip(graph):
    assert parse_turtle(serialize_turtle(graph)) == graph


@settings(max_examples=50, deadline=None)
@given(graphs)
def test_jsonld_roundtrip(graph):
    assert jsonld_loads(jsonld_dumps(graph)) == graph


# -- graph algebra -------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(graphs, graphs)
def test_union_commutative(g1, g2):
    assert g1.union(g2) == g2.union(g1)


@settings(max_examples=50, deadline=None)
@given(graphs, graphs)
def test_intersection_subset_of_both(g1, g2):
    meet = g1.intersection(g2)
    assert all(t in g1 and t in g2 for t in meet)


@settings(max_examples=50, deadline=None)
@given(graphs, graphs)
def test_difference_disjoint_from_subtrahend(g1, g2):
    assert all(t not in g2 for t in g1.difference(g2))


@settings(max_examples=50, deadline=None)
@given(graphs, graphs)
def test_union_size_inclusion_exclusion(g1, g2):
    assert len(g1.union(g2)) == len(g1) + len(g2) - len(g1.intersection(g2))


@settings(max_examples=30, deadline=None)
@given(graphs, subjects, iris)
def test_indexes_agree_with_scan(graph, s, p):
    for pattern in [(None, None, None), (s, None, None), (None, p, None), (s, p, None)]:
        assert set(graph.triples(*pattern)) == set(graph.triples_scan(*pattern))


@settings(max_examples=30, deadline=None)
@given(st.lists(triples, max_size=20))
def test_add_remove_restores_empty(triple_list):
    g = Graph()
    added = [t for t in triple_list if g.add(t)]
    for t in added:
        assert g.remove(t)
    assert len(g) == 0
