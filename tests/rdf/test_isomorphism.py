"""Tests for blank-node-aware graph isomorphism."""

import pytest

from repro.rdf import Graph, Namespace, PROV, RDF
from repro.rdf.isomorphism import canonical_hash, isomorphic
from repro.rdf.terms import BlankNode, Literal

EX = Namespace("http://example.org/")


def qualified_graph(bnode_name: str):
    g = Graph()
    node = BlankNode(bnode_name)
    g.add((EX.run, PROV.qualifiedAssociation, node))
    g.add((node, RDF.type, PROV.Association))
    g.add((node, PROV.agent, EX.engine))
    g.add((node, PROV.hadPlan, EX.plan))
    return g


class TestIsomorphic:
    def test_identical_graphs(self):
        assert isomorphic(qualified_graph("q1"), qualified_graph("q1"))

    def test_relabeled_blank_nodes(self):
        assert isomorphic(qualified_graph("q1"), qualified_graph("zz"))
        assert qualified_graph("q1") != qualified_graph("zz")  # literal eq fails

    def test_ground_difference_detected(self):
        g1 = qualified_graph("q1")
        g2 = qualified_graph("q1")
        g2.add((EX.run, PROV.used, EX.data))
        assert not isomorphic(g1, g2)

    def test_bnode_structure_difference_detected(self):
        g1 = qualified_graph("q1")
        g2 = qualified_graph("q1")
        g2.remove((BlankNode("q1"), PROV.hadPlan, EX.plan))
        g2.add((BlankNode("q1"), PROV.hadRole, EX.plan))
        assert not isomorphic(g1, g2)

    def test_multiple_bnodes_permuted(self):
        def two(b1, b2):
            g = Graph()
            g.add((EX.a, PROV.qualifiedUsage, BlankNode(b1)))
            g.add((BlankNode(b1), PROV.entity, EX.e1))
            g.add((EX.a, PROV.qualifiedGeneration, BlankNode(b2)))
            g.add((BlankNode(b2), PROV.activity, EX.a2))
            return g

        assert isomorphic(two("x", "y"), two("y", "x"))

    def test_symmetric_bnodes_need_branching(self):
        # Two structurally identical bnodes: refinement alone cannot split
        # them; branching must still find the bijection.
        def pair(b1, b2):
            g = Graph()
            g.add((EX.s, EX.p, BlankNode(b1)))
            g.add((EX.s, EX.p, BlankNode(b2)))
            g.add((BlankNode(b1), EX.q, BlankNode(b2)))
            return g

        assert isomorphic(pair("a", "b"), pair("m", "n"))

    def test_asymmetric_chain_vs_fork(self):
        chain = Graph()
        chain.add((BlankNode("a"), EX.next, BlankNode("b")))
        chain.add((BlankNode("b"), EX.next, BlankNode("c")))
        fork = Graph()
        fork.add((BlankNode("a"), EX.next, BlankNode("b")))
        fork.add((BlankNode("a"), EX.next, BlankNode("c")))
        assert not isomorphic(chain, fork)

    def test_size_mismatch(self):
        g1 = qualified_graph("q1")
        g2 = Graph()
        assert not isomorphic(g1, g2)

    def test_empty_graphs(self):
        assert isomorphic(Graph(), Graph())

    def test_literal_sensitivity(self):
        g1 = Graph([(BlankNode("n"), EX.value, Literal("a"))])
        g2 = Graph([(BlankNode("n"), EX.value, Literal("b"))])
        assert not isomorphic(g1, g2)


class TestCanonicalHash:
    def test_invariant_under_relabeling(self):
        assert canonical_hash(qualified_graph("q1")) == canonical_hash(qualified_graph("other"))

    def test_differs_for_different_graphs(self):
        g2 = qualified_graph("q1")
        g2.add((EX.extra, RDF.type, PROV.Entity))
        assert canonical_hash(qualified_graph("q1")) != canonical_hash(g2)

    def test_ground_only_graph(self):
        g = Graph([(EX.a, RDF.type, PROV.Entity)])
        assert canonical_hash(g) == canonical_hash(g.copy())


class TestOnTraces:
    def test_reserialized_trace_isomorphic(self, corpus):
        """Turtle round-trip preserves the graph up to bnode labels."""
        from repro.rdf import parse_turtle, serialize_turtle

        trace = next(t for t in corpus.by_system("taverna") if not t.failed)
        original = trace.graph()
        reparsed = parse_turtle(serialize_turtle(original))
        assert isomorphic(original, reparsed)

    def test_independent_exports_isomorphic(self, corpus):
        """Two exports of the same run mint bnodes independently but must
        be isomorphic."""
        from repro.prov.rdf_io import to_graph

        trace = next(t for t in corpus.by_system("taverna") if not t.failed)
        g1 = to_graph(trace.document)
        g2 = to_graph(trace.document)
        assert isomorphic(g1, g2)

    def test_different_runs_not_isomorphic(self, corpus):
        t1, t2 = corpus.traces[0], corpus.traces[1]
        assert not isomorphic(t1.graph(), t2.graph())
