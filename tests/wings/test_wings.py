"""Tests for the Wings system: catalogs, semantic validation, OPMW export."""

import datetime as dt

import pytest

from repro.prov.rdf_io import to_dataset, to_graph
from repro.rdf import PROV, RDF
from repro.vocab import opmw
from repro.wings import (
    Component,
    ComponentCatalog,
    DataCatalog,
    TypeHierarchy,
    WingsEngine,
    export_run,
    export_template,
    validate_against_catalog,
)
from repro.workflow import FaultPlan, Port, Processor, WorkflowTemplate
from repro.workflow.errors import WorkflowDefinitionError


@pytest.fixture
def types():
    th = TypeHierarchy()
    th.add("Table")
    th.add("CsvTable", parent="Table")
    th.add("Model")
    th.add("Report")
    return th


@pytest.fixture
def components(types):
    catalog = ComponentCatalog(types)
    catalog.register(Component("Train", operation="train_model",
                               input_types={"features": "Table"},
                               output_types={"model": "Model"}))
    catalog.register(Component("Score", operation="evaluate",
                               input_types={"model": "Model", "testset": "Table"},
                               output_types={"score": "Report"}))
    return catalog


@pytest.fixture
def template():
    t = WorkflowTemplate("ML-1", "ml_one", "wings", domain="machine-learning")
    t.add_input("features", data_type="Table")
    t.add_input("testset", data_type="Table")
    t.add_output("score", data_type="Report")
    t.add_processor(Processor("train", operation="Train",
                              inputs=[Port("features", "Table")],
                              outputs=[Port("model", "Model")]))
    t.add_processor(Processor("eval", operation="Score",
                              inputs=[Port("model", "Model"), Port("testset", "Table")],
                              outputs=[Port("score", "Report")]))
    t.connect(":features", "train:features")
    t.connect("train:model", "eval:model")
    t.connect(":testset", "eval:testset")
    t.connect("eval:score", ":score")
    return t.freeze()


@pytest.fixture
def engine(registry, clock, components, types):
    data = DataCatalog(types)
    data.add("train-data", "CsvTable", ["a", "b", "c"])
    data.add("test-data", "Table", ["d", "e"])
    return WingsEngine(registry, clock, components, data)


class TestTypeHierarchy:
    def test_subtype_reflexive_and_transitive(self, types):
        assert types.is_subtype("Table", "Table")
        assert types.is_subtype("CsvTable", "Table")
        assert types.is_subtype("CsvTable", "any")
        assert not types.is_subtype("Table", "CsvTable")

    def test_unknown_type_not_subtype_of_any(self, types):
        assert not types.is_subtype("Ghost", "any")

    def test_duplicate_type_rejected(self, types):
        with pytest.raises(ValueError):
            types.add("Table")

    def test_unknown_parent_rejected(self, types):
        with pytest.raises(ValueError):
            types.add("X", parent="Ghost")


class TestComponentCatalog:
    def test_register_validates_types(self, types):
        catalog = ComponentCatalog(types)
        with pytest.raises(ValueError):
            catalog.register(Component("Bad", operation="transform",
                                       input_types={"in": "Ghost"}))

    def test_duplicate_component_rejected(self, components):
        with pytest.raises(ValueError):
            components.register(Component("Train", operation="transform"))

    def test_check_binding_subtype_ok(self, components):
        components.check_binding("Train", "features", "CsvTable", "input")

    def test_check_binding_mismatch(self, components):
        with pytest.raises(WorkflowDefinitionError):
            components.check_binding("Train", "features", "Report", "input")

    def test_check_binding_unknown_port(self, components):
        with pytest.raises(WorkflowDefinitionError):
            components.check_binding("Train", "ghost", "Table", "input")


class TestDataCatalog:
    def test_default_location(self, types):
        data = DataCatalog(types)
        ds = data.add("d1", "Table", [1])
        assert ds.location.startswith("/export/wings/workspace/")

    def test_of_type_subtype_aware(self, types):
        data = DataCatalog(types)
        data.add("d1", "CsvTable", [1])
        data.add("d2", "Model", "m")
        assert [d.dataset_id for d in data.of_type("Table")] == ["d1"]

    def test_duplicate_rejected(self, types):
        data = DataCatalog(types)
        data.add("d1", "Table", [1])
        with pytest.raises(ValueError):
            data.add("d1", "Table", [2])


class TestSemanticValidation:
    def test_valid_template_passes(self, template, components):
        validate_against_catalog(template, components)

    def test_unknown_component_rejected(self, components):
        t = WorkflowTemplate("B", "b", "wings")
        t.add_processor(Processor("x", operation="Ghost", outputs=[Port("out")]))
        with pytest.raises(WorkflowDefinitionError):
            validate_against_catalog(t, components)

    def test_type_mismatch_rejected_before_execution(self, engine, components):
        t = WorkflowTemplate("B", "b", "wings")
        t.add_input("x", data_type="Report")
        t.add_output("y", data_type="Model")
        t.add_processor(Processor("train", operation="Train",
                                  inputs=[Port("features", "Report")],
                                  outputs=[Port("model", "Model")]))
        t.connect(":x", "train:features")
        t.connect("train:model", ":y")
        t.freeze()
        with pytest.raises(WorkflowDefinitionError):
            engine.run(t, {"x": "v"}, run_id="A-1")


class TestEngine:
    def test_run_with_catalog_datasets(self, engine, template):
        run = engine.run(template, {"features": "train-data", "testset": "test-data"},
                         run_id="A-1", user="dgarijo")
        assert run.result.succeeded
        # dataset ids resolved to catalog values
        assert run.result.inputs["features"].value == ["a", "b", "c"]

    def test_run_with_raw_values(self, engine, template):
        run = engine.run(template, {"features": ["x", "y"], "testset": ["z"]}, run_id="A-2")
        assert run.result.succeeded

    def test_rejects_taverna_template(self, engine):
        from tests.conftest import make_linear_template

        with pytest.raises(ValueError):
            engine.run(make_linear_template(), {"accession": "P1"}, run_id="A-3")

    def test_account_iri(self, engine, template):
        run = engine.run(template, {"features": ["x", "y"], "testset": ["z"]}, run_id="A-4")
        assert run.account_iri.value.endswith("WorkflowExecutionAccount/A-4")


class TestProvExportConventions:
    """Each test checks one cell of the paper's Tables 2/3 for Wings."""

    @pytest.fixture
    def export(self, engine, template):
        run = engine.run(template, {"features": "train-data", "testset": "test-data"},
                         run_id="A-9", user="dgarijo")
        doc = export_run(run)
        export_template(template, doc)
        return doc

    @pytest.fixture
    def graph(self, export):
        return to_graph(export)

    def test_no_activity_timestamps(self, graph):
        assert not list(graph.triples(None, PROV.startedAtTime, None))
        assert not list(graph.triples(None, PROV.endedAtTime, None))

    def test_opmw_overall_times_instead(self, graph):
        assert list(graph.triples(None, opmw.overallStartTime, None))
        assert list(graph.triples(None, opmw.overallEndTime, None))

    def test_attribution_present(self, graph):
        assert list(graph.triples(None, PROV.wasAttributedTo, None))

    def test_association_present(self, graph):
        assert list(graph.triples(None, PROV.wasAssociatedWith, None))

    def test_atlocation_present(self, graph):
        locations = list(graph.triples(None, PROV.atLocation, None))
        assert locations
        assert all(t.object.lexical.startswith("/export/wings/") for t in locations)

    def test_had_primary_source_not_derived_from(self, graph):
        assert list(graph.triples(None, PROV.hadPrimarySource, None))
        assert not list(graph.triples(None, PROV.wasDerivedFrom, None))

    def test_direct_influence_assertions(self, graph):
        assert list(graph.triples(None, PROV.wasInfluencedBy, None))

    def test_no_informed_by_no_delegation(self, graph):
        assert not list(graph.triples(None, PROV.wasInformedBy, None))
        assert not list(graph.triples(None, PROV.actedOnBehalfOf, None))

    def test_plan_class_asserted(self, graph):
        assert list(graph.triples(None, RDF.type, PROV.Plan))

    def test_bundle_and_named_graph(self, export):
        ds = to_dataset(export)
        assert len(ds.graph_names()) == 1
        account = ds.graph_names()[0]
        assert (account, RDF.type, PROV.Bundle) in ds.default

    def test_opmw_typing(self, graph):
        for cls in (opmw.WorkflowExecutionAccount, opmw.WorkflowExecutionProcess,
                    opmw.WorkflowExecutionArtifact, opmw.WorkflowTemplate):
            assert list(graph.triples(None, RDF.type, cls)), cls

    def test_executable_components_reference_semantic_names(self, graph):
        components = {t.object.value.rsplit("/", 1)[1]
                      for t in graph.triples(None, opmw.hasExecutableComponent, None)}
        assert "Train" in components and "Score" in components

    def test_failed_run_status(self, engine, template):
        run = engine.run(template, {"features": ["x", "y"], "testset": ["z"]}, run_id="A-10",
                         fault_plan=FaultPlan.single("train", "service-timeout"))
        graph = to_graph(export_run(run))
        statuses = {t.object.lexical for t in graph.triples(None, opmw.hasStatus, None)}
        assert "FAILURE" in statuses
