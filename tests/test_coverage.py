"""Tests for the coverage analysis (Tables 2 and 3)."""

import pytest

from repro.coverage import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    SUPPORT_ABSENT,
    SUPPORT_DIRECT,
    SUPPORT_INFERRED,
    TermCoverage,
    coverage_report,
    format_table2,
    format_table3,
    scan_term,
)
from repro.prov.constants import ADDITIONAL_TERMS, STARTING_POINT_TERMS, ProvTerm
from repro.rdf import Graph, Namespace, PROV, RDF

EX = Namespace("http://example.org/")


@pytest.fixture(scope="module")
def report(taverna_graph, wings_graph):
    return coverage_report(taverna_graph, wings_graph)


class TestScanTerm:
    def test_class_presence(self):
        g = Graph([(EX.x, RDF.type, PROV.Entity)])
        entity_term = next(t for t in STARTING_POINT_TERMS if t.name == "prov:Entity")
        agent_term = next(t for t in STARTING_POINT_TERMS if t.name == "prov:Agent")
        assert scan_term(g, entity_term)
        assert not scan_term(g, agent_term)

    def test_property_presence(self):
        g = Graph([(EX.a, PROV.used, EX.e)])
        used = next(t for t in STARTING_POINT_TERMS if t.name == "prov:used")
        gen = next(t for t in STARTING_POINT_TERMS if t.name == "prov:wasGeneratedBy")
        assert scan_term(g, used)
        assert not scan_term(g, gen)


class TestTable2:
    """Cell-for-cell against the paper."""

    @pytest.mark.parametrize("term_name,expected", sorted(PAPER_TABLE2.items()))
    def test_cell(self, report, term_name, expected):
        entry = report.cell(term_name)
        assert entry is not None
        measured = (
            SUPPORT_ABSENT if entry.taverna == SUPPORT_INFERRED else entry.taverna,
            SUPPORT_ABSENT if entry.wings == SUPPORT_INFERRED else entry.wings,
        )
        assert measured == expected

    def test_row_order_matches_paper(self, report):
        assert [e.term.name for e in report.starting_point] == list(
            t.name for t in STARTING_POINT_TERMS
        )


class TestTable3:
    @pytest.mark.parametrize("term_name,expected", sorted(PAPER_TABLE3.items()))
    def test_cell(self, report, term_name, expected):
        entry = report.cell(term_name)
        assert (entry.taverna, entry.wings) == expected

    def test_stars_are_inference_backed(self, report):
        plan = report.cell("prov:Plan")
        influence = report.cell("prov:wasInfluencedBy")
        assert plan.taverna == SUPPORT_INFERRED
        assert influence.taverna == SUPPORT_INFERRED


class TestReportAPI:
    def test_matches_paper(self, report):
        assert report.matches_paper()
        assert report.differences() == []

    def test_support_labels(self):
        term = ProvTerm("prov:x", PROV.used, is_class=False)
        assert TermCoverage(term, SUPPORT_DIRECT, SUPPORT_DIRECT).support_label == "Taverna and Wings"
        assert TermCoverage(term, SUPPORT_INFERRED, SUPPORT_DIRECT).support_label == "Taverna* and Wings"
        assert TermCoverage(term, SUPPORT_ABSENT, SUPPORT_DIRECT).support_label == "Wings"
        assert TermCoverage(term, SUPPORT_ABSENT, SUPPORT_ABSENT).support_label == "-"

    def test_difference_detection(self, taverna_graph):
        # Scanning Taverna traces as both systems must deviate from the paper
        # (e.g. prov:wasAttributedTo would be absent for "Wings").
        broken = coverage_report(taverna_graph, taverna_graph)
        assert not broken.matches_paper()
        assert any("wasAttributedTo" in d for d in broken.differences())

    def test_formatting_contains_paper_comments(self, report):
        t2 = format_table2(report)
        assert "prov:startedAtTime" in t2
        assert "Activity start and end not recorded in Wings" in t2
        t3 = format_table3(report)
        assert "Taverna* and Wings" in t3
        assert "prov:hadPlan is used in Taverna" in t3

    def test_table2_output_never_shows_stars(self, report):
        assert "*" not in format_table2(report).replace("Terms.", "")

    def test_all_seventeen_terms_covered(self, report):
        assert len(report.starting_point) == 12
        assert len(report.additional) == 5
