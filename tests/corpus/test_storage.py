"""Tests for the on-disk corpus layout (write + load)."""

import json

import pytest

from repro.corpus import load_corpus, write_corpus


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory, corpus):
    root = tmp_path_factory.mktemp("corpus")
    write_corpus(corpus, root)
    return root


class TestWrite:
    def test_layout_mirrors_provbench(self, corpus_dir):
        assert (corpus_dir / "manifest.json").exists()
        assert (corpus_dir / "Taverna").is_dir()
        assert (corpus_dir / "Wings").is_dir()
        ttl_files = list(corpus_dir.rglob("*.prov.ttl"))
        trig_files = list(corpus_dir.rglob("*.prov.trig"))
        assert len(ttl_files) + len(trig_files) == 198

    def test_taverna_templates_shipped_as_t2flow(self, corpus_dir):
        t2flows = list(corpus_dir.rglob("workflow.t2flow"))
        assert len(t2flows) == 70

    def test_domain_directories(self, corpus_dir):
        assert (corpus_dir / "Taverna" / "bioinformatics").is_dir()
        assert (corpus_dir / "Wings" / "machine-learning").is_dir()

    def test_manifest_contents(self, corpus_dir):
        manifest = json.loads((corpus_dir / "manifest.json").read_text())
        assert manifest["statistics"]["runs"] == 198
        assert len(manifest["traces"]) == 198
        entry = manifest["traces"][0]
        assert {"run_id", "system", "domain", "status", "path", "format"} <= set(entry)


class TestLoad:
    def test_roundtrip_counts(self, corpus_dir):
        stored = load_corpus(corpus_dir)
        assert len(stored.traces) == 198
        assert len(stored.failed_traces()) == 30
        assert len(stored.by_system("taverna")) + len(stored.by_system("wings")) == 198

    def test_loaded_graphs_match_built(self, corpus_dir, corpus):
        stored = load_corpus(corpus_dir)
        for built, loaded in list(zip(corpus.traces, stored.traces))[:10]:
            assert built.run_id == loaded.run_id
            assert len(built.graph()) == len(loaded.graph())

    def test_loaded_dataset_queryable(self, corpus_dir):
        from repro.sparql import QueryEngine

        stored = load_corpus(corpus_dir)
        engine = QueryEngine(stored.dataset())
        rows = engine.select(
            "SELECT (COUNT(?r) AS ?n) WHERE { "
            "?r a wfprov:WorkflowRun . "
            "FILTER NOT EXISTS { ?r wfprov:wasPartOfWorkflowRun ?p } }"
        )
        assert rows[0].n.to_python() == 112

    def test_wings_bundles_survive_loading(self, corpus_dir):
        stored = load_corpus(corpus_dir)
        wings = stored.by_system("wings")[0]
        ds = wings.dataset()
        assert len(ds.graph_names()) == 1

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_corpus(tmp_path)

    def test_system_graph_from_disk(self, corpus_dir, corpus):
        stored = load_corpus(corpus_dir)
        assert len(stored.system_graph("taverna")) == len(corpus.system_graph("taverna"))


class TestParseErrorContext:
    def test_corrupt_trace_error_names_relative_path(self, corpus_dir, tmp_path):
        import shutil

        from repro.rdf.turtle import TurtleError

        broken = tmp_path / "broken"
        shutil.copytree(corpus_dir, broken)
        manifest = json.loads((broken / "manifest.json").read_text())
        relpath = manifest["traces"][0]["path"]
        trace_file = broken / relpath
        trace_file.write_text(trace_file.read_text() + "\nex:dangling ex:no")
        stored = load_corpus(broken)
        with pytest.raises(TurtleError) as exc:
            stored.dataset()
        assert exc.value.source == relpath
        assert relpath in str(exc.value)


class TestStoreBackedLoad:
    def test_dataset_is_store_backed(self, corpus_dir, tmp_path):
        from repro.store import StoreDataset

        with load_corpus(corpus_dir, store=tmp_path / "store") as stored:
            ds = stored.dataset()
            assert isinstance(ds, StoreDataset)
            assert len(ds) > 0
            assert ds.store_info()["files"] == 198

    def test_store_matches_memory_counts(self, corpus_dir, tmp_path):
        memory = load_corpus(corpus_dir).dataset()
        with load_corpus(corpus_dir, store=tmp_path / "store") as stored:
            store_ds = stored.dataset()
            assert len(store_ds.union_graph()) == len(memory.union_graph())
            assert store_ds.graph_names() == memory.graph_names()

    def test_write_corpus_builds_store(self, corpus, tmp_path):
        from repro.store import QuadStore

        write_corpus(corpus, tmp_path / "c", store=tmp_path / "store")
        with QuadStore(tmp_path / "store") as store:
            assert store.quad_count > 0
            assert len(store.files) == 198
