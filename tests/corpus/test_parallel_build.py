"""Parallel corpus build: deterministic merge and failure propagation.

The contract under test is byte-identity: a ``build(jobs=N)`` corpus,
written to disk, must be indistinguishable file-by-file (sha256,
manifest included) from the serial build the rest of the suite uses.
"""

from __future__ import annotations

import hashlib
import multiprocessing

import pytest

from repro.corpus import CorpusBuilder, write_corpus
from repro.workflow.errors import WorkflowError


def _tree_digests(root):
    return {
        path.relative_to(root).as_posix(): hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


@pytest.fixture(scope="module")
def serial_tree(tmp_path_factory, corpus):
    """The session corpus (built with jobs=1) written once, hashed."""
    root = tmp_path_factory.mktemp("serial-corpus")
    write_corpus(corpus, root)
    return _tree_digests(root)


@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_build_byte_identical(jobs, corpus, serial_tree, tmp_path):
    parallel = CorpusBuilder(seed=corpus.seed).build(jobs=jobs)
    root = tmp_path / f"corpus-j{jobs}"
    write_corpus(parallel, root)
    tree = _tree_digests(root)
    assert tree == serial_tree
    # The in-memory merge must preserve plan order and metadata too.
    assert [t.run_id for t in parallel.traces] == [t.run_id for t in corpus.traces]
    assert [t.started for t in parallel.traces] == [t.started for t in corpus.traces]
    assert parallel.statistics() == corpus.statistics()


def test_resolve_jobs_contract():
    """jobs=None/0 resolve to the CPU count; explicit counts pass through."""
    from repro.parallel import resolve_jobs

    assert resolve_jobs(3) == 3
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-failure propagation test relies on fork inheritance",
)
def test_worker_failure_carries_run_context(monkeypatch):
    """A run failing inside a worker surfaces the original exception class
    with the failing run and template named — not a bare pool traceback."""

    def broken_export(*args, **kwargs):
        raise WorkflowError("synthetic export failure")

    # Export only happens in the produce phase (the workers); the parent's
    # schedule pass executes but never exports, so patching here exercises
    # the worker error path specifically.  Workers inherit the patch via
    # fork.
    monkeypatch.setattr("repro.corpus.builder.taverna_export", broken_export)
    with pytest.raises(WorkflowError) as excinfo:
        CorpusBuilder(seed=2013).build(jobs=2)
    message = str(excinfo.value)
    assert "failed in worker" in message
    assert "synthetic export failure" in message
    assert "run t-" in message and "template t-" in message
    assert "Traceback" in getattr(excinfo.value, "remote_traceback", "")


def test_schedule_pass_failure_carries_run_context(monkeypatch):
    """A failure during the parent's schedule pass names the run too."""

    def broken_run(*args, **kwargs):
        raise WorkflowError("synthetic execute failure")

    from repro.taverna.engine import TavernaEngine

    monkeypatch.setattr(TavernaEngine, "run", broken_run)
    with pytest.raises(WorkflowError) as excinfo:
        CorpusBuilder(seed=2013).build(jobs=2)
    message = str(excinfo.value)
    assert "run t-" in message and "template t-" in message
    assert "synthetic execute failure" in message


class TestCorpusIndexes:
    """The lazy run-id/template/domain indexes behind trace() and friends."""

    def test_trace_lookup(self, corpus):
        sample = corpus.traces[123]
        assert corpus.trace(sample.run_id) is sample

    def test_trace_unknown_run_raises_keyerror(self, corpus):
        with pytest.raises(KeyError, match="no-such-run"):
            corpus.trace("no-such-run")

    def test_by_template_matches_scan(self, corpus):
        template_id = corpus.traces[0].template_id
        expected = [t for t in corpus.traces if t.template_id == template_id]
        assert corpus.by_template(template_id) == expected

    def test_by_domain_matches_scan(self, corpus):
        expected = [t for t in corpus.traces if t.domain == "astronomy"]
        assert corpus.by_domain("astronomy") == expected
        assert corpus.by_domain("no-such-domain") == []
