"""Tests for corpus maintenance checking and Research Object packaging."""

import pytest

from repro.corpus.maintenance import (
    KNOWN_TERMS,
    MaintenanceReport,
    check_corpus,
    check_trace,
)
from repro.corpus.research_objects import package_corpus, package_template
from repro.rdf import Graph, Namespace, PROV, RDF
from repro.rdf.namespace import DCTERMS, WFPROV
from repro.vocab import ro

EX = Namespace("http://example.org/")


class TestMaintenance:
    def test_full_corpus_is_aligned(self, corpus):
        report = check_corpus(corpus)
        assert report.aligned, [str(i) for i in report.issues[:3]]
        assert report.traces_checked == 198
        assert report.terms_seen

    def test_unknown_term_detected(self):
        g = Graph()
        g.add((EX.a, PROV.term("wasFrobnicatedBy"), EX.b))
        g.add((EX.a, PROV.wasAssociatedWith, EX.agent))
        report = MaintenanceReport()
        check_trace(g, "run-x", report)
        kinds = {i.kind for i in report.issues}
        assert "unknown-term" in kinds

    def test_unknown_class_detected(self):
        g = Graph()
        g.add((EX.a, RDF.type, WFPROV.term("QuantumRun")))
        g.add((EX.a, PROV.wasAssociatedWith, EX.agent))
        report = MaintenanceReport()
        check_trace(g, "run-x", report)
        assert any("QuantumRun" in i.detail for i in report.issues)

    def test_foreign_namespaces_ignored(self):
        g = Graph()
        g.add((EX.a, EX.customProperty, EX.b))
        g.add((EX.a, PROV.wasAssociatedWith, EX.agent))
        report = MaintenanceReport()
        check_trace(g, "run-x", report)
        assert report.aligned

    def test_missing_agent_detected(self):
        g = Graph()
        g.add((EX.a, PROV.used, EX.b))
        report = MaintenanceReport()
        check_trace(g, "run-x", report)
        assert any(i.kind == "missing-agent" for i in report.issues)

    def test_orphan_artifact_detected_in_successful_trace(self):
        g = Graph()
        g.add((EX.orphan, RDF.type, WFPROV.Artifact))
        g.add((EX.a, PROV.wasAssociatedWith, EX.agent))
        report = MaintenanceReport()
        check_trace(g, "run-x", report, failed=False)
        assert any(i.kind == "orphan-artifact" for i in report.issues)

    def test_orphan_artifact_tolerated_in_failed_trace(self):
        g = Graph()
        g.add((EX.orphan, RDF.type, WFPROV.Artifact))
        g.add((EX.a, PROV.wasAssociatedWith, EX.agent))
        report = MaintenanceReport()
        check_trace(g, "run-x", report, failed=True)
        assert not any(i.kind == "orphan-artifact" for i in report.issues)

    def test_summary_text(self, corpus):
        report = check_corpus(corpus)
        assert "corpus aligned" in report.summary()

    def test_known_terms_registry_covers_core(self):
        assert "used" in KNOWN_TERMS[PROV.base]
        assert "WorkflowRun" in KNOWN_TERMS[WFPROV.base]


class TestResearchObjects:
    def test_package_multi_run_template(self, corpus):
        template_id = corpus.multi_run_templates()[0]
        manifest = package_template(corpus, template_id)
        assert manifest.aggregated_count == 4  # workflow + 3 traces
        assert manifest.template_id == template_id

    def test_manifest_graph_structure(self, corpus):
        template_id = corpus.multi_run_templates()[0]
        manifest = package_template(corpus, template_id)
        g = manifest.graph
        assert (manifest.ro_iri, RDF.type, ro.ResearchObject) in g
        aggregated = set(g.objects(manifest.ro_iri, ro.aggregates))
        assert manifest.workflow_resource in aggregated
        for resource in manifest.trace_resources:
            assert resource in aggregated

    def test_annotations_point_at_workflow(self, corpus):
        template_id = corpus.multi_run_templates()[0]
        manifest = package_template(corpus, template_id)
        annotations = list(
            manifest.graph.subjects(ro.annotatesAggregatedResource,
                                    manifest.workflow_resource)
        )
        assert len(annotations) == len(manifest.trace_resources)

    def test_metadata_rows(self, corpus):
        template_id = sorted(corpus.templates)[0]
        manifest = package_template(corpus, template_id)
        title = manifest.graph.value(subject=manifest.ro_iri, predicate=DCTERMS.title)
        assert title is not None

    def test_wings_template_uses_opmw_iri(self, corpus):
        wings_id = next(t for t in sorted(corpus.templates) if t.startswith("w-"))
        manifest = package_template(corpus, wings_id)
        assert "opmw.org" in manifest.workflow_resource.value

    def test_unknown_template_rejected(self, corpus):
        with pytest.raises(KeyError):
            package_template(corpus, "ghost-template")

    def test_package_corpus_counts(self, corpus):
        manifests = package_corpus(corpus)
        assert len(manifests) == 120
        assert sum(len(m.trace_resources) for m in manifests) == 198
