"""Tests for the corpus layer: domains, generator, builder, manifest."""

import pytest

from repro.corpus import (
    DOMAINS,
    CorpusBuilder,
    FAILED_RUNS,
    FAILURE_MIX,
    TemplateGenerator,
    TOTAL_RUNS,
    domain_by_slug,
    format_table1,
    table1,
    total_workflows,
)
from repro.wings import validate_against_catalog


class TestDomains:
    def test_twelve_domains(self):
        assert len(DOMAINS) == 12

    def test_counts_match_paper(self):
        assert total_workflows() == (70, 50, 120)

    def test_lookup(self):
        assert domain_by_slug("bioinformatics").name == "Bioinformatics"
        with pytest.raises(KeyError):
            domain_by_slug("alchemy")

    def test_every_domain_has_vocabulary(self):
        for domain in DOMAINS:
            assert len(domain.step_names) >= 5
            assert domain.services
            if domain.wings_workflows:
                assert domain.data_types


class TestGenerator:
    @pytest.fixture(scope="class")
    def gen(self):
        return TemplateGenerator(seed=2013)

    def test_all_templates_count(self, gen):
        templates = gen.all_templates()
        assert len(templates) == 120
        assert sum(1 for t in templates if t.system == "taverna") == 70
        assert sum(1 for t in templates if t.system == "wings") == 50

    def test_unique_template_ids(self, gen):
        ids = [t.template_id for t in gen.all_templates()]
        assert len(set(ids)) == 120

    def test_deterministic(self, gen):
        other = TemplateGenerator(seed=2013)
        a = [(t.template_id, t.size()) for t in gen.all_templates()]
        b = [(t.template_id, t.size()) for t in other.all_templates()]
        assert a == b

    def test_every_template_validates(self, gen):
        for template in gen.all_templates():
            template.validate()

    def test_wings_templates_satisfy_catalog(self, gen):
        catalog = gen.build_component_catalog()
        for template in gen.all_templates():
            if template.system == "wings":
                validate_against_catalog(template, catalog)

    def test_taverna_templates_have_remote_steps(self, gen):
        for template in gen.all_templates():
            if template.system == "taverna":
                assert template.remote_steps(), template.template_id

    def test_nested_templates_present(self, gen):
        nested = [t for t in gen.all_templates()
                  if any(p.is_subworkflow for p in t.processors.values())]
        assert len(nested) >= 5

    def test_registry_covers_all_domain_services(self, gen):
        registry = gen.build_registry()
        for domain in DOMAINS:
            for service in domain.services:
                assert service in registry

    def test_data_catalog_has_wings_inputs(self, gen):
        data = gen.build_data_catalog()
        assert len(data) == 50

    def test_inputs_for_variants_differ(self, gen):
        template = gen.all_templates()[0]
        assert gen.inputs_for(template, 0) != gen.inputs_for(template, 1)
        assert gen.inputs_for(template, 0) == gen.inputs_for(template, 0)


class TestRunPlan:
    @pytest.fixture(scope="class")
    def plan(self):
        builder = CorpusBuilder(seed=2013)
        return builder.plan_runs(builder.generator.all_templates())

    def test_total_runs(self, plan):
        assert len(plan) == TOTAL_RUNS == 198

    def test_every_template_runs_at_least_once(self, plan):
        assert len({e.template_id for e in plan}) == 120

    def test_failures_match_mix(self, plan):
        failing = [e for e in plan if e.will_fail]
        assert len(failing) == FAILED_RUNS == 30
        causes = {}
        for entry in failing:
            causes[entry.fault_cause] = causes.get(entry.fault_cause, 0) + 1
        assert causes == FAILURE_MIX

    def test_run_ids_unique(self, plan):
        assert len({e.run_id for e in plan}) == 198

    def test_multi_run_templates_have_three(self, plan):
        counts = {}
        for entry in plan:
            counts[entry.template_id] = counts.get(entry.template_id, 0) + 1
        assert sorted(set(counts.values())) == [1, 3]
        assert sum(1 for v in counts.values() if v == 3) == 39

    def test_plan_deterministic(self):
        b1, b2 = CorpusBuilder(seed=2013), CorpusBuilder(seed=2013)
        p1 = b1.plan_runs(b1.generator.all_templates())
        p2 = b2.plan_runs(b2.generator.all_templates())
        assert p1 == p2

    def test_different_seed_different_plan(self):
        b1, b2 = CorpusBuilder(seed=2013), CorpusBuilder(seed=7)
        p1 = b1.plan_runs(b1.generator.all_templates())
        p2 = b2.plan_runs(b2.generator.all_templates())
        assert p1 != p2


class TestBuiltCorpus:
    def test_paper_statistics(self, corpus):
        stats = corpus.statistics()
        assert stats["workflows"] == 120
        assert stats["taverna_workflows"] == 70
        assert stats["wings_workflows"] == 50
        assert stats["runs"] == 198
        assert stats["failed_runs"] == 30
        assert stats["failure_causes"] == FAILURE_MIX
        assert stats["domains"] == 12

    def test_every_workflow_executed_at_least_once(self, corpus):
        assert {t.template_id for t in corpus.traces} == set(corpus.templates)

    def test_failed_traces_are_truncated(self, corpus):
        for trace in corpus.failed_traces():
            assert trace.result.unexecuted_steps() or trace.result.failed_step
            assert trace.failure_cause in FAILURE_MIX

    def test_traces_ordered_in_time(self, corpus):
        starts = [t.started for t in corpus.traces]
        assert starts == sorted(starts)

    def test_runs_span_months(self, corpus):
        span = corpus.traces[-1].started - corpus.traces[0].started
        assert span.days > 60

    def test_taverna_traces_are_turtle(self, corpus):
        for trace in corpus.by_system("taverna")[:5]:
            assert trace.rdf_format == "turtle"
            assert "@prefix prov:" in trace.text

    def test_wings_traces_are_trig_with_bundles(self, corpus):
        for trace in corpus.by_system("wings")[:5]:
            assert trace.rdf_format == "trig"
            assert "GRAPH" in trace.text

    def test_trace_text_parses_back(self, corpus):
        from repro.rdf import parse_trig, parse_turtle

        taverna = corpus.by_system("taverna")[0]
        assert len(parse_turtle(taverna.text)) == len(taverna.graph())
        wings = corpus.by_system("wings")[0]
        assert len(parse_trig(wings.text).union_graph()) > 0

    def test_multi_run_templates(self, corpus):
        assert len(corpus.multi_run_templates()) == 39

    def test_by_domain(self, corpus):
        bio = corpus.by_domain("bioinformatics")
        assert bio and all(t.domain == "bioinformatics" for t in bio)

    def test_trace_lookup(self, corpus):
        trace = corpus.traces[0]
        assert corpus.trace(trace.run_id) is trace
        with pytest.raises(KeyError):
            corpus.trace("ghost-run")

    def test_rebuild_is_byte_identical(self):
        # Determinism across builds: the substituted corpus is reproducible.
        a = CorpusBuilder(seed=99).build()
        b = CorpusBuilder(seed=99).build()
        assert [t.text for t in a.traces[:10]] == [t.text for t in b.traces[:10]]
        assert a.statistics() == b.statistics()


class TestTable1:
    def test_rows_in_paper_order(self, corpus):
        rows = table1(corpus)
        assert [r.field for r in rows] == [
            "Data format", "Data model", "Size",
            "Tools used for generating provenance", "Domain",
            "Submission group", "License",
        ]

    def test_fixed_rows_match_paper(self, corpus):
        by_field = {r.field: r.value for r in table1(corpus)}
        assert by_field["Data model"] == "PROV-O"
        assert by_field["Submission group"] == "Wf4Ever-Wings"
        assert "Creative Commons Attribution 3.0" in by_field["License"]
        assert "RDF" in by_field["Data format"]

    def test_size_row_is_measured(self, corpus):
        by_field = {r.field: r.value for r in table1(corpus)}
        expected_mb = corpus.statistics()["size_bytes"] / (1024 * 1024)
        assert f"{expected_mb:.1f} Megabytes" in by_field["Size"]

    def test_format_table1_mentions_counts(self, corpus):
        text = format_table1(corpus)
        assert "Workflows: 120" in text
        assert "Runs: 198" in text
        assert "Failed: 30" in text


class TestFigure1:
    def test_histogram_shape(self, corpus):
        histogram = corpus.domain_histogram()
        assert len(histogram) == 12
        assert sum(t for _, t, _ in histogram) == 70
        assert sum(w for _, _, w in histogram) == 50

    def test_histogram_matches_trace_domains(self, corpus):
        for name, taverna_count, wings_count in corpus.domain_histogram():
            slug = domain_by_slug
        for domain in DOMAINS:
            templates = [t for t in corpus.templates.values() if t.domain == domain.slug]
            assert sum(1 for t in templates if t.system == "taverna") == domain.taverna_workflows
            assert sum(1 for t in templates if t.system == "wings") == domain.wings_workflows
