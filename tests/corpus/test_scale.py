"""The --scale knob and the streaming build/write path.

Scale multiplies every planning constant linearly and deterministically;
scale 1 *is* the paper's corpus, so the scaled formulas must reduce to
the original ones exactly.  The streaming path (``build_and_write``)
must produce a byte-identical tree to materializing the corpus and
writing it afterwards, at any job count.
"""

from __future__ import annotations

import hashlib
from collections import Counter

import pytest

from repro.corpus import CorpusBuilder, build_and_write, write_corpus
from repro.corpus.builder import (
    FAILED_RUNS,
    FAILURE_MIX,
    MULTI_RUN_FAILURES,
    MULTI_RUN_TEMPLATES,
    TOTAL_RUNS,
)
from repro.corpus.domains import DOMAINS

TOTAL_WORKFLOWS = sum(d.taverna_workflows + d.wings_workflows for d in DOMAINS)


def _tree_digests(root):
    """relative path -> sha256, for every file under *root*."""
    return {
        path.relative_to(root).as_posix():
            hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


class TestScaleKnob:
    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            CorpusBuilder(scale=0)
        with pytest.raises(ValueError):
            CorpusBuilder(scale=-3)

    def test_scale_two_plan_counts(self):
        builder = CorpusBuilder(scale=2)
        templates, plan = builder.plan()
        assert len(templates) == 2 * TOTAL_WORKFLOWS
        assert len(plan) == 2 * TOTAL_RUNS
        failing = [e for e in plan if e.will_fail]
        assert len(failing) == 2 * FAILED_RUNS
        causes = Counter(e.fault_cause for e in failing)
        assert causes == {c: 2 * n for c, n in FAILURE_MIX.items()}
        # 2·6 failures land on the last run of a multi-run template.
        multi_failing = [e for e in failing if e.sequence > 1]
        assert len(multi_failing) == 2 * MULTI_RUN_FAILURES
        multi_templates = {e.template_id for e in plan if e.sequence > 1}
        assert len(multi_templates) == 2 * MULTI_RUN_TEMPLATES

    def test_scale_one_is_the_default_plan(self):
        default_templates, default_plan = CorpusBuilder().plan()
        scaled_templates, scaled_plan = CorpusBuilder(scale=1).plan()
        assert sorted(default_templates) == sorted(scaled_templates)
        assert default_plan == scaled_plan

    def test_scale_is_deterministic(self):
        _, a = CorpusBuilder(scale=3).plan()
        _, b = CorpusBuilder(scale=3).plan()
        assert a == b


class TestStreamingWrite:
    def test_streaming_tree_matches_materialized(self, corpus, tmp_path):
        materialized = tmp_path / "materialized"
        streamed = tmp_path / "streamed"
        write_corpus(corpus, materialized)
        build_and_write(CorpusBuilder(seed=2013), streamed)
        assert _tree_digests(streamed) == _tree_digests(materialized)

    def test_on_trace_reports_running_totals(self, tmp_path):
        seen = []
        build_and_write(
            CorpusBuilder(seed=2013, scale=1), tmp_path / "c",
            on_trace=lambda done, total, writer: seen.append(
                (done, total, writer.triples)
            ),
        )
        dones = [done for done, _, _ in seen]
        assert dones == list(range(1, TOTAL_RUNS + 1))
        assert all(total == TOTAL_RUNS for _, total, _ in seen)
        triples = [t for _, _, t in seen]
        assert triples == sorted(triples) and triples[-1] > triples[0]


@pytest.mark.slow
class TestScaleEndToEnd:
    def test_scale_five_jobs_determinism(self, tmp_path):
        """A scale-5 corpus streams out byte-identical at any job count."""
        serial = tmp_path / "serial"
        parallel = tmp_path / "parallel"
        build_and_write(CorpusBuilder(scale=5), serial, jobs=1)
        build_and_write(CorpusBuilder(scale=5), parallel, jobs=2)
        assert _tree_digests(parallel) == _tree_digests(serial)
