"""Shared fixtures.

The built corpus is expensive enough (~2 s) to share: `corpus` is
session-scoped and used read-only by every test that needs real traces.
Tests that mutate corpus structures must build their own (see
`small_builder`).
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.corpus import CorpusBuilder
from repro.rdf import Graph, Namespace, PROV, RDF, from_python
from repro.workflow import (
    Port,
    Processor,
    Service,
    ServiceRegistry,
    SimulatedClock,
    WorkflowTemplate,
)

EX = Namespace("http://example.org/")


@pytest.fixture(scope="session")
def corpus():
    """The full 198-run corpus, built once per test session (read-only)."""
    return CorpusBuilder(seed=2013).build()


@pytest.fixture(scope="session")
def corpus_dataset(corpus):
    return corpus.dataset()


@pytest.fixture(scope="session")
def taverna_graph(corpus):
    return corpus.system_graph("taverna")


@pytest.fixture(scope="session")
def wings_graph(corpus):
    return corpus.system_graph("wings")


@pytest.fixture
def ex():
    return EX


@pytest.fixture
def sample_graph():
    """A small provenance graph: 3 activities, 3 entities, timestamps."""
    g = Graph()
    g.namespaces.bind("ex", EX)
    for i in range(3):
        run = EX[f"run{i}"]
        g.add((run, RDF.type, PROV.Activity))
        g.add((run, PROV.startedAtTime, from_python(dt.datetime(2013, 1, 1, 10 + i))))
        if i < 2:
            g.add((run, PROV.endedAtTime, from_python(dt.datetime(2013, 1, 1, 11 + i))))
        g.add((run, PROV.used, EX[f"data{i}"]))
        g.add((EX[f"data{i}"], RDF.type, PROV.Entity))
        g.add((EX[f"data{i}"], EX.size, from_python(10 * i)))
    return g


@pytest.fixture
def registry():
    reg = ServiceRegistry()
    reg.register(Service("remote-svc", kind="rest", endpoint="http://svc.example.org/api"))
    return reg


@pytest.fixture
def clock():
    return SimulatedClock(dt.datetime(2012, 6, 1, 9, 0, 0))


def make_linear_template(system: str = "taverna", template_id: str = "wf-lin",
                         service: str = "remote-svc") -> WorkflowTemplate:
    """fetch → transform → report, the simplest realistic pipeline."""
    t = WorkflowTemplate(template_id, f"{template_id}_name", system, domain="bioinformatics")
    t.add_input("accession", data_type="string")
    t.add_output("report")
    t.add_processor(Processor(
        "fetch", operation="fetch_dataset",
        inputs=[Port("accession")], outputs=[Port("sequences", depth=1)],
        service=service,
    ))
    t.add_processor(Processor(
        "shape", operation="transform",
        inputs=[Port("in", depth=1)], outputs=[Port("out")], config={"label": "shape"},
    ))
    t.add_processor(Processor(
        "publish", operation="render_report",
        inputs=[Port("body")], outputs=[Port("report")],
    ))
    t.connect(":accession", "fetch:accession")
    t.connect("fetch:sequences", "shape:in")
    t.connect("shape:out", "publish:body")
    t.connect("publish:report", ":report")
    return t.freeze()


@pytest.fixture
def linear_template():
    return make_linear_template()
