"""Unit tests for SPARQL expression evaluation and built-in functions."""

import datetime as dt

import pytest

from repro.rdf.terms import BlankNode, IRI, Literal, XSD, from_python
from repro.sparql.algebra import (
    And,
    Arithmetic,
    Compare,
    FunctionCall,
    InExpr,
    Not,
    Or,
    TermExpr,
    Var,
    VarExpr,
)
from repro.sparql.functions import (
    ExprError,
    effective_boolean_value,
    evaluate_expression,
    order_key,
)


def lit(value):
    return from_python(value)


def call(name, *args):
    return FunctionCall(name, [TermExpr(a) if not isinstance(a, (VarExpr,)) else a
                               for a in map(_wrap, args)])


def _wrap(value):
    if isinstance(value, (IRI, Literal, BlankNode)):
        return value
    return from_python(value)


def ev(expr, binding=None):
    return evaluate_expression(expr, binding or {})


class TestEffectiveBooleanValue:
    def test_boolean(self):
        assert effective_boolean_value(lit(True)) is True
        assert effective_boolean_value(lit(False)) is False

    def test_string_nonempty(self):
        assert effective_boolean_value(Literal("x")) is True
        assert effective_boolean_value(Literal("")) is False

    def test_numeric(self):
        assert effective_boolean_value(lit(5)) is True
        assert effective_boolean_value(lit(0)) is False

    def test_iri_is_error(self):
        with pytest.raises(ExprError):
            effective_boolean_value(IRI("http://a/"))


class TestLogical:
    def test_and_or(self):
        t, f = TermExpr(lit(True)), TermExpr(lit(False))
        assert ev(And(t, t)).lexical == "true"
        assert ev(And(t, f)).lexical == "false"
        assert ev(Or(f, t)).lexical == "true"
        assert ev(Not(f)).lexical == "true"

    def test_error_and_false_is_false(self):
        err = VarExpr(Var("unbound"))
        f = TermExpr(lit(False))
        assert ev(And(err, f)).lexical == "false"
        assert ev(And(f, err)).lexical == "false"

    def test_error_and_true_propagates(self):
        err = VarExpr(Var("unbound"))
        t = TermExpr(lit(True))
        with pytest.raises(ExprError):
            ev(And(err, t))

    def test_error_or_true_is_true(self):
        err = VarExpr(Var("unbound"))
        t = TermExpr(lit(True))
        assert ev(Or(err, t)).lexical == "true"
        assert ev(Or(t, err)).lexical == "true"


class TestComparison:
    def test_numeric_cross_type(self):
        expr = Compare("=", TermExpr(lit(1)), TermExpr(Literal("1.0", datatype=XSD.DOUBLE)))
        assert ev(expr).lexical == "true"

    def test_ordering(self):
        assert ev(Compare("<", TermExpr(lit(1)), TermExpr(lit(2)))).lexical == "true"
        assert ev(Compare(">=", TermExpr(lit(2)), TermExpr(lit(2)))).lexical == "true"

    def test_datetime_comparison(self):
        a = TermExpr(lit(dt.datetime(2013, 1, 1)))
        b = TermExpr(lit(dt.datetime(2013, 6, 1)))
        assert ev(Compare("<", a, b)).lexical == "true"

    def test_string_comparison(self):
        assert ev(Compare("<", TermExpr(Literal("a")), TermExpr(Literal("b")))).lexical == "true"

    def test_iri_equality_only(self):
        a, b = TermExpr(IRI("http://a/")), TermExpr(IRI("http://b/"))
        assert ev(Compare("!=", a, b)).lexical == "true"
        with pytest.raises(ExprError):
            ev(Compare("<", a, b))

    def test_type_mismatch_ordering_error(self):
        with pytest.raises(ExprError):
            ev(Compare("<", TermExpr(lit(1)), TermExpr(Literal("x"))))

    def test_in_expression(self):
        expr = InExpr(TermExpr(lit(2)), [TermExpr(lit(1)), TermExpr(lit(2))])
        assert ev(expr).lexical == "true"
        negated = InExpr(TermExpr(lit(9)), [TermExpr(lit(1))], negated=True)
        assert ev(negated).lexical == "true"


class TestArithmetic:
    def test_integer_result(self):
        expr = Arithmetic("+", TermExpr(lit(2)), TermExpr(lit(3)))
        out = ev(expr)
        assert out.to_python() == 5 and out.datatype.value == XSD.INTEGER

    def test_division_always_allowed_except_zero(self):
        expr = Arithmetic("/", TermExpr(lit(7)), TermExpr(lit(2)))
        assert ev(expr).to_python() == 3.5
        with pytest.raises(ExprError):
            ev(Arithmetic("/", TermExpr(lit(1)), TermExpr(lit(0))))

    def test_non_numeric_error(self):
        with pytest.raises(ExprError):
            ev(Arithmetic("+", TermExpr(Literal("x")), TermExpr(lit(1))))


class TestBuiltins:
    def test_str_of_iri_and_literal(self):
        assert ev(call("STR", IRI("http://a/"))).lexical == "http://a/"
        assert ev(call("STR", lit(42))).lexical == "42"

    def test_lang_and_datatype(self):
        tagged = Literal("bonjour", language="fr")
        assert ev(call("LANG", tagged)).lexical == "fr"
        assert ev(call("DATATYPE", lit(1))) == IRI(XSD.INTEGER)

    def test_langmatches(self):
        assert ev(call("LANGMATCHES", Literal("en-GB"), Literal("en"))).lexical == "true"
        assert ev(call("LANGMATCHES", Literal("fr"), Literal("*"))).lexical == "true"

    def test_is_checks(self):
        assert ev(call("ISIRI", IRI("http://a/"))).lexical == "true"
        assert ev(call("ISLITERAL", Literal("x"))).lexical == "true"
        assert ev(call("ISBLANK", BlankNode("b"))).lexical == "true"
        assert ev(call("ISNUMERIC", lit(1))).lexical == "true"
        assert ev(call("ISNUMERIC", Literal("1"))).lexical == "false"

    def test_regex(self):
        assert ev(call("REGEX", Literal("workflow"), Literal("^work"))).lexical == "true"
        assert ev(call("REGEX", Literal("Workflow"), Literal("^work"), Literal("i"))).lexical == "true"

    def test_regex_invalid_pattern(self):
        with pytest.raises(ExprError):
            ev(call("REGEX", Literal("x"), Literal("(")))

    def test_string_functions(self):
        assert ev(call("STRLEN", Literal("abc"))).to_python() == 3
        assert ev(call("UCASE", Literal("ab"))).lexical == "AB"
        assert ev(call("LCASE", Literal("AB"))).lexical == "ab"
        assert ev(call("STRSTARTS", Literal("abc"), Literal("ab"))).lexical == "true"
        assert ev(call("STRENDS", Literal("abc"), Literal("bc"))).lexical == "true"
        assert ev(call("CONTAINS", Literal("abc"), Literal("b"))).lexical == "true"
        assert ev(call("CONCAT", Literal("a"), Literal("b"))).lexical == "ab"
        assert ev(call("SUBSTR", Literal("abcde"), lit(2), lit(3))).lexical == "bcd"
        assert ev(call("STRBEFORE", Literal("a-b"), Literal("-"))).lexical == "a"
        assert ev(call("STRAFTER", Literal("a-b"), Literal("-"))).lexical == "b"
        assert ev(call("REPLACE", Literal("aaa"), Literal("a"), Literal("b"))).lexical == "bbb"

    def test_strafter_no_match_empty(self):
        assert ev(call("STRAFTER", Literal("abc"), Literal("-"))).lexical == ""

    def test_numeric_functions(self):
        assert ev(call("ABS", lit(-2.0))).to_python() == 2.0
        assert ev(call("CEIL", lit(1.2))).to_python() == 2.0
        assert ev(call("FLOOR", lit(1.8))).to_python() == 1.0
        assert ev(call("ROUND", lit(1.5))).to_python() == 2.0

    def test_datetime_accessors(self):
        stamp = lit(dt.datetime(2013, 3, 5, 14, 30, 20))
        assert ev(call("YEAR", stamp)).to_python() == 2013
        assert ev(call("MONTH", stamp)).to_python() == 3
        assert ev(call("DAY", stamp)).to_python() == 5
        assert ev(call("HOURS", stamp)).to_python() == 14
        assert ev(call("MINUTES", stamp)).to_python() == 30
        assert ev(call("SECONDS", stamp)).to_python() == 20

    def test_bound(self):
        expr = FunctionCall("BOUND", [VarExpr(Var("x"))])
        assert evaluate_expression(expr, {"x": lit(1)}).lexical == "true"
        assert evaluate_expression(expr, {}).lexical == "false"

    def test_coalesce(self):
        expr = FunctionCall("COALESCE", [VarExpr(Var("missing")), TermExpr(lit(7))])
        assert ev(expr).to_python() == 7

    def test_if(self):
        expr = FunctionCall("IF", [TermExpr(lit(True)), TermExpr(lit(1)), TermExpr(lit(2))])
        assert ev(expr).to_python() == 1

    def test_sameterm(self):
        assert ev(call("SAMETERM", lit(1), lit(1))).lexical == "true"
        double_one = Literal("1.0", datatype=XSD.DOUBLE)
        assert ev(call("SAMETERM", lit(1), double_one)).lexical == "false"

    def test_iri_constructor(self):
        assert ev(call("IRI", Literal("http://a/"))) == IRI("http://a/")

    def test_now_disabled_for_determinism(self):
        with pytest.raises(ExprError):
            ev(FunctionCall("NOW", []))

    def test_unbound_variable_error(self):
        with pytest.raises(ExprError):
            ev(VarExpr(Var("nope")))


class TestOrderKey:
    def test_unbound_sorts_first(self):
        keys = sorted([order_key(lit(1)), order_key(None), order_key(IRI("http://a/"))])
        assert keys[0] == order_key(None)

    def test_numbers_order_naturally(self):
        assert order_key(lit(2)) < order_key(lit(10))

    def test_datetimes_order_naturally(self):
        early = lit(dt.datetime(2012, 1, 1))
        late = lit(dt.datetime(2013, 1, 1))
        assert order_key(early) < order_key(late)

    def test_mixed_tz_handling(self):
        naive = lit(dt.datetime(2013, 1, 1, 12))
        aware = Literal("2013-01-01T11:00:00Z", datatype=XSD.DATETIME)
        assert order_key(aware) < order_key(naive)
