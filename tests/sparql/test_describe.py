"""Tests for DESCRIBE queries (concise bounded descriptions)."""

import pytest

from repro.rdf import Graph, Namespace, PROV, RDF
from repro.rdf.terms import BlankNode
from repro.sparql import QueryEngine, parse_query
from repro.sparql.algebra import DescribeQuery
from repro.sparql.tokenizer import SparqlSyntaxError

EX = Namespace("http://example.org/")


@pytest.fixture
def engine():
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add((EX.run, RDF.type, PROV.Activity))
    g.add((EX.run, PROV.used, EX.data))
    node = BlankNode("q1")
    g.add((EX.run, PROV.qualifiedAssociation, node))
    g.add((node, PROV.agent, EX.engine))
    g.add((EX.data, RDF.type, PROV.Entity))
    g.add((EX.other, RDF.type, PROV.Entity))
    return QueryEngine(g)


class TestParse:
    def test_constant_target(self):
        q = parse_query("PREFIX ex: <http://example.org/> DESCRIBE ex:run")
        assert isinstance(q, DescribeQuery)
        assert q.where is None

    def test_variable_with_where(self):
        q = parse_query("DESCRIBE ?x WHERE { ?x a prov:Activity }")
        assert q.where is not None

    def test_multiple_targets(self):
        q = parse_query("PREFIX ex: <http://example.org/> DESCRIBE ex:a ex:b ?c WHERE { ?c a prov:Entity }")
        assert len(q.targets) == 3

    def test_no_targets_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("DESCRIBE WHERE { ?x ?p ?o }")


class TestEvaluate:
    def test_subject_triples_returned(self, engine):
        graph = engine.query("PREFIX ex: <http://example.org/> DESCRIBE ex:run")
        assert (EX.run, PROV.used, EX.data) in graph
        assert (EX.run, RDF.type, PROV.Activity) in graph
        # other resources' own descriptions are not included
        assert not list(graph.triples(EX.data, None, None))

    def test_bnode_closure_followed(self, engine):
        graph = engine.query("PREFIX ex: <http://example.org/> DESCRIBE ex:run")
        assert (BlankNode("q1"), PROV.agent, EX.engine) in graph

    def test_variable_targets(self, engine):
        graph = engine.query("DESCRIBE ?e WHERE { ?e a prov:Entity }")
        subjects = {t.subject for t in graph}
        assert subjects == {EX.data, EX.other}

    def test_unknown_resource_empty(self, engine):
        graph = engine.query("DESCRIBE <http://nowhere.example/x>")
        assert len(graph) == 0

    def test_describe_run_from_corpus(self, corpus_dataset, corpus):
        from repro.taverna import TAVERNA_RUN_NS

        trace = next(t for t in corpus.by_system("taverna") if not t.failed)
        engine = QueryEngine(corpus_dataset)
        run_iri = TAVERNA_RUN_NS.term(f"{trace.run_id}/")
        graph = engine.query(f"DESCRIBE <{run_iri.value}>")
        assert len(graph) > 5
        assert all(t.subject == run_iri or not isinstance(t.subject, type(run_iri))
                   or t.subject.value.startswith("_:") is False for t in graph)


class TestEndpointGraphResults:
    def test_construct_served_as_turtle(self, engine):
        import urllib.parse
        import urllib.request

        from repro.endpoint import SparqlEndpoint

        g = Graph()
        g.namespaces.bind("ex", EX)
        g.add((EX.o, PROV.wasGeneratedBy, EX.a))
        g.add((EX.a, PROV.used, EX.i))
        with SparqlEndpoint(g) as server:
            query = ("CONSTRUCT { ?o prov:wasDerivedFrom ?i } "
                     "WHERE { ?o prov:wasGeneratedBy ?a . ?a prov:used ?i }")
            url = server.query_url + "?" + urllib.parse.urlencode({"query": query})
            with urllib.request.urlopen(url, timeout=5) as response:
                assert response.headers.get_content_type() == "text/turtle"
                body = response.read().decode()
        assert "prov:wasDerivedFrom" in body
