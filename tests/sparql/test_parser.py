"""Unit tests for the SPARQL parser: query text → algebra."""

import pytest

from repro.rdf.namespace import PROV, RDF
from repro.rdf.terms import IRI, Literal, XSD
from repro.sparql.algebra import (
    Aggregate,
    AskQuery,
    BGP,
    Bind,
    Filter,
    FunctionCall,
    GraphPattern,
    Join,
    LeftJoin,
    Minus,
    SelectQuery,
    Union,
    Var,
)
from repro.sparql.parser import parse_query
from repro.sparql.tokenizer import SparqlSyntaxError


class TestSelectClause:
    def test_simple_select(self):
        q = parse_query("SELECT ?x WHERE { ?x a prov:Entity }")
        assert isinstance(q, SelectQuery)
        assert [p.var.name for p in q.projections] == ["x"]
        assert not q.distinct

    def test_select_star(self):
        q = parse_query("SELECT * WHERE { ?x ?p ?o }")
        assert q.select_all

    def test_select_distinct(self):
        q = parse_query("SELECT DISTINCT ?x WHERE { ?x ?p ?o }")
        assert q.distinct

    def test_select_expression_as(self):
        q = parse_query("SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?o }")
        assert q.projections[0].var.name == "n"
        assert isinstance(q.projections[0].expression, Aggregate)

    def test_empty_select_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT WHERE { ?x ?p ?o }")

    def test_where_keyword_optional(self):
        q = parse_query("SELECT ?x { ?x ?p ?o }")
        assert isinstance(q.where, BGP)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x ?p ?o } extra")


class TestPrologue:
    def test_prefix_declaration(self):
        q = parse_query(
            "PREFIX ex: <http://example.org/>\nSELECT ?x WHERE { ?x a ex:Thing }"
        )
        tp = q.where.triples[0]
        assert tp.object == IRI("http://example.org/Thing")

    def test_unknown_prefix_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x a zz:Thing }")

    def test_core_prefixes_available(self):
        q = parse_query("SELECT ?x WHERE { ?x a prov:Activity }")
        assert q.where.triples[0].object == PROV.Activity

    def test_base_resolution(self):
        q = parse_query("BASE <http://example.org/>\nSELECT ?x WHERE { ?x a <Thing> }")
        assert q.where.triples[0].object == IRI("http://example.org/Thing")


class TestTriplesBlock:
    def test_a_is_rdf_type(self):
        q = parse_query("SELECT ?x WHERE { ?x a prov:Entity }")
        assert q.where.triples[0].predicate == RDF.type

    def test_semicolon_and_comma(self):
        q = parse_query("SELECT ?x WHERE { ?x a prov:Entity ; prov:used ?a, ?b . }")
        assert len(q.where.triples) == 3

    def test_literal_objects(self):
        q = parse_query('SELECT ?x WHERE { ?x prov:value "v", 5, 2.5, true }')
        objects = [tp.object for tp in q.where.triples]
        assert objects[0] == Literal("v")
        assert objects[1] == Literal("5", datatype=XSD.INTEGER)
        assert objects[2] == Literal("2.5", datatype=XSD.DECIMAL)
        assert objects[3] == Literal("true", datatype=XSD.BOOLEAN)

    def test_typed_and_tagged_literals(self):
        q = parse_query(
            'SELECT ?x WHERE { ?x prov:value "2013-01-01T00:00:00"^^xsd:dateTime, "hi"@en }'
        )
        objs = [tp.object for tp in q.where.triples]
        assert objs[0].datatype.value == XSD.DATETIME
        assert objs[1].language == "en"

    def test_multiple_statements(self):
        q = parse_query("SELECT ?x WHERE { ?x a prov:Entity . ?y a prov:Agent . }")
        assert len(q.where.triples) == 2


class TestGraphPatterns:
    def test_optional(self):
        q = parse_query("SELECT ?x WHERE { ?x a prov:Entity OPTIONAL { ?x prov:value ?v } }")
        assert isinstance(q.where, LeftJoin)

    def test_filter_wraps_group(self):
        q = parse_query("SELECT ?x WHERE { ?x prov:value ?v . FILTER(?v > 3) }")
        assert isinstance(q.where, Filter)

    def test_union(self):
        q = parse_query("SELECT ?x WHERE { { ?x a prov:Entity } UNION { ?x a prov:Agent } }")
        assert isinstance(q.where, Union)

    def test_minus(self):
        q = parse_query("SELECT ?x WHERE { ?x a prov:Entity MINUS { ?x prov:value ?v } }")
        assert isinstance(q.where, Minus)

    def test_bind(self):
        q = parse_query('SELECT ?x WHERE { ?x prov:value ?v BIND(STR(?v) AS ?s) }')
        assert isinstance(q.where, Bind)
        assert q.where.var == Var("s")

    def test_graph_with_iri(self):
        q = parse_query("SELECT ?x WHERE { GRAPH <http://g/> { ?x a prov:Entity } }")
        assert isinstance(q.where, GraphPattern)
        assert q.where.name == IRI("http://g/")

    def test_graph_with_variable(self):
        q = parse_query("SELECT ?x WHERE { GRAPH ?g { ?x a prov:Entity } }")
        assert q.where.name == Var("g")

    def test_nested_group_merges_or_joins(self):
        # A nested pure-BGP group may legally be merged into the outer BGP
        # (identical semantics) or kept as an explicit Join.
        q = parse_query("SELECT ?x WHERE { ?x a prov:Entity . { ?x prov:value ?v } }")
        if isinstance(q.where, BGP):
            assert len(q.where.triples) == 2
        else:
            assert isinstance(q.where, Join)

    def test_nested_group_with_filter_stays_scoped(self):
        q = parse_query(
            "SELECT ?x WHERE { ?x a prov:Entity . { ?x prov:value ?v FILTER(?v > 1) } }"
        )
        assert isinstance(q.where, Join)
        assert isinstance(q.where.right, Filter)

    def test_unterminated_group(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x a prov:Entity")


class TestExpressions:
    def test_precedence_or_over_and(self):
        q = parse_query("SELECT ?x WHERE { ?x prov:value ?v FILTER(?v > 1 && ?v < 5 || ?v = 9) }")
        from repro.sparql.algebra import Or

        assert isinstance(q.where.condition, Or)

    def test_arithmetic_precedence(self):
        q = parse_query("SELECT ?x WHERE { ?x prov:value ?v FILTER(?v = 1 + 2 * 3) }")
        from repro.sparql.algebra import Arithmetic, Compare

        cond = q.where.condition
        assert isinstance(cond, Compare)
        assert isinstance(cond.right, Arithmetic) and cond.right.op == "+"
        assert isinstance(cond.right.right, Arithmetic) and cond.right.right.op == "*"

    def test_not_exists(self):
        q = parse_query(
            "SELECT ?x WHERE { ?x a prov:Entity FILTER NOT EXISTS { ?x prov:value ?v } }"
        )
        from repro.sparql.algebra import ExistsExpr

        assert isinstance(q.where.condition, ExistsExpr)
        assert q.where.condition.negated

    def test_in_expression(self):
        q = parse_query('SELECT ?x WHERE { ?x prov:value ?v FILTER(?v IN ("a", "b")) }')
        from repro.sparql.algebra import InExpr

        assert isinstance(q.where.condition, InExpr)
        assert len(q.where.condition.choices) == 2

    def test_function_call(self):
        q = parse_query('SELECT ?x WHERE { ?x prov:value ?v FILTER(REGEX(?v, "^a")) }')
        assert isinstance(q.where.condition, FunctionCall)
        assert q.where.condition.name == "REGEX"

    def test_unknown_function_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x prov:value ?v FILTER(FROBNICATE(?v)) }")

    def test_unary_not_and_negation(self):
        q = parse_query("SELECT ?x WHERE { ?x prov:value ?v FILTER(!BOUND(?v) || ?v > -1) }")
        from repro.sparql.algebra import Or

        assert isinstance(q.where.condition, Or)


class TestSolutionModifiers:
    def test_order_limit_offset(self):
        q = parse_query("SELECT ?x WHERE { ?x ?p ?o } ORDER BY DESC(?x) LIMIT 5 OFFSET 2")
        assert q.order_by[0].descending
        assert q.limit == 5 and q.offset == 2

    def test_order_by_plain_variable(self):
        q = parse_query("SELECT ?x WHERE { ?x ?p ?o } ORDER BY ?x")
        assert not q.order_by[0].descending

    def test_group_by_having(self):
        q = parse_query(
            "SELECT ?p (COUNT(?x) AS ?n) WHERE { ?x ?p ?o } "
            "GROUP BY ?p HAVING(COUNT(?x) > 2)"
        )
        assert len(q.group_by) == 1
        assert q.having is not None
        assert q.has_aggregates()

    def test_negative_limit_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { ?x ?p ?o } LIMIT -1")

    def test_count_star(self):
        q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?x ?p ?o }")
        agg = q.projections[0].expression
        assert agg.expression is None

    def test_group_concat_separator(self):
        q = parse_query(
            'SELECT (GROUP_CONCAT(?x; SEPARATOR=", ") AS ?all) WHERE { ?x ?p ?o }'
        )
        assert q.projections[0].expression.separator == ", "


class TestAsk:
    def test_ask(self):
        q = parse_query("ASK { ?x a prov:Entity }")
        assert isinstance(q, AskQuery)

    def test_ask_with_where(self):
        q = parse_query("ASK WHERE { ?x a prov:Entity }")
        assert isinstance(q, AskQuery)

    def test_unknown_query_form(self):
        # SPARQL Update is out of scope: the corpus is read-only.
        with pytest.raises(SparqlSyntaxError):
            parse_query("INSERT DATA { <http://a/> <http://b/> <http://c/> }")
