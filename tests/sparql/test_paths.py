"""Tests for SPARQL property paths (parser + evaluator)."""

import pytest

from repro.rdf import Graph, Namespace, PROV, RDF
from repro.sparql import QueryEngine, parse_query
from repro.sparql.paths import (
    PathAlternative,
    PathClosure,
    PathInverse,
    PathSequence,
    eval_path,
)

EX = Namespace("http://example.org/")


@pytest.fixture
def chain():
    """d1 -used-by- a1 -generates- d2 -used-by- a2 -generates- d3."""
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add((EX.a1, PROV.used, EX.d1))
    g.add((EX.d2, PROV.wasGeneratedBy, EX.a1))
    g.add((EX.a2, PROV.used, EX.d2))
    g.add((EX.d3, PROV.wasGeneratedBy, EX.a2))
    return g


class TestParsing:
    def test_plain_iri_stays_iri(self):
        q = parse_query("SELECT ?x WHERE { ?x prov:used ?y }")
        assert q.where.triples[0].predicate == PROV.used

    def test_sequence(self):
        q = parse_query("SELECT ?x WHERE { ?x prov:wasGeneratedBy/prov:used ?y }")
        path = q.where.triples[0].predicate
        assert isinstance(path, PathSequence)
        assert path.steps == (PROV.wasGeneratedBy, PROV.used)

    def test_alternative(self):
        q = parse_query("SELECT ?x WHERE { ?x prov:used|prov:wasGeneratedBy ?y }")
        assert isinstance(q.where.triples[0].predicate, PathAlternative)

    def test_inverse(self):
        q = parse_query("SELECT ?x WHERE { ?x ^prov:used ?y }")
        path = q.where.triples[0].predicate
        assert isinstance(path, PathInverse) and path.inner == PROV.used

    def test_closures(self):
        star = parse_query("SELECT ?x WHERE { ?x prov:used* ?y }")
        plus = parse_query("SELECT ?x WHERE { ?x prov:used+ ?y }")
        assert star.where.triples[0].predicate.include_zero is True
        assert plus.where.triples[0].predicate.include_zero is False

    def test_grouping(self):
        q = parse_query("SELECT ?x WHERE { ?x (prov:wasGeneratedBy/prov:used)+ ?y }")
        path = q.where.triples[0].predicate
        assert isinstance(path, PathClosure)
        assert isinstance(path.inner, PathSequence)

    def test_a_in_path(self):
        q = parse_query("SELECT ?x WHERE { ?x a/prov:used ?y }")
        assert q.where.triples[0].predicate.steps[0] == RDF.type


class TestEvaluation:
    def test_sequence_forward(self, chain):
        engine = QueryEngine(chain)
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?src WHERE { ex:d3 prov:wasGeneratedBy/prov:used ?src }"
        )
        assert rows.column("src") == ["http://example.org/d2"]

    def test_plus_transitive(self, chain):
        engine = QueryEngine(chain)
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?src WHERE { ex:d3 (prov:wasGeneratedBy/prov:used)+ ?src } ORDER BY ?src"
        )
        assert rows.column("src") == ["http://example.org/d1", "http://example.org/d2"]

    def test_star_includes_self(self, chain):
        engine = QueryEngine(chain)
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?src WHERE { ex:d3 (prov:wasGeneratedBy/prov:used)* ?src }"
        )
        assert "http://example.org/d3" in rows.column("src")

    def test_inverse_direction(self, chain):
        engine = QueryEngine(chain)
        rows = engine.select(
            "PREFIX ex: <http://example.org/> SELECT ?a WHERE { ex:d1 ^prov:used ?a }"
        )
        assert rows.column("a") == ["http://example.org/a1"]

    def test_alternative_union_of_edges(self, chain):
        engine = QueryEngine(chain)
        rows = engine.select("SELECT ?x ?y WHERE { ?x (prov:used|prov:wasGeneratedBy) ?y }")
        assert len(rows) == 4

    def test_object_bound_closure(self, chain):
        engine = QueryEngine(chain)
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?prod WHERE { ?prod (prov:wasGeneratedBy/prov:used)+ ex:d1 } ORDER BY ?prod"
        )
        assert rows.column("prod") == ["http://example.org/d2", "http://example.org/d3"]

    def test_both_endpoints_bound(self, chain):
        engine = QueryEngine(chain)
        assert engine.ask(
            "PREFIX ex: <http://example.org/> "
            "ASK { ex:d3 (prov:wasGeneratedBy/prov:used)+ ex:d1 }"
        )
        assert not engine.ask(
            "PREFIX ex: <http://example.org/> "
            "ASK { ex:d1 (prov:wasGeneratedBy/prov:used)+ ex:d3 }"
        )

    def test_cycle_terminates(self):
        g = Graph()
        g.add((EX.a, EX.next, EX.b))
        g.add((EX.b, EX.next, EX.a))
        pairs = list(eval_path(g, PathClosure(EX.next, include_zero=False), EX.a, None))
        assert (EX.a, EX.b) in pairs and (EX.a, EX.a) in pairs
        assert len(pairs) == 2

    def test_star_both_unbound_pairs_every_node(self):
        g = Graph()
        g.add((EX.a, EX.next, EX.b))
        pairs = set(eval_path(g, PathClosure(EX.next, include_zero=True)))
        assert (EX.a, EX.a) in pairs and (EX.b, EX.b) in pairs and (EX.a, EX.b) in pairs

    def test_duplicate_suppression(self, chain):
        chain.add((EX.a1, EX.alt, EX.d1))
        path = PathAlternative((PROV.used, EX.alt))
        pairs = list(eval_path(chain, path, EX.a1, None))
        assert pairs.count((EX.a1, EX.d1)) == 1


class TestOnCorpus:
    def test_lineage_query_on_trace(self, corpus):
        trace = next(t for t in corpus.by_system("taverna") if not t.failed)
        engine = QueryEngine(trace.graph())
        # every workflow output reaches some used artifact transitively
        rows = engine.select("""
            SELECT DISTINCT ?out ?src WHERE {
              ?out (prov:wasGeneratedBy/prov:used)+ ?src .
            }
        """)
        assert len(rows) > 0

    def test_path_equivalent_to_dependency_analyzer(self, corpus):
        from repro.apps import DependencyAnalyzer
        from repro.rdf.terms import IRI

        trace = next(t for t in corpus.by_system("taverna") if not t.failed)
        graph = trace.graph()
        engine = QueryEngine(graph)
        analyzer = DependencyAnalyzer(graph)
        output = analyzer.generated_entities()[0]
        expected = {iri.value for iri in analyzer.transitive_dependencies(output)}
        rows = engine.select(
            f"SELECT ?src WHERE {{ <{output.value}> "
            f"((prov:wasGeneratedBy/prov:used)|prov:hadPrimarySource)+ ?src }}"
        )
        assert set(rows.column("src")) == expected
