"""Unit tests for SPARQL evaluation: BGPs, modifiers, aggregates, GRAPH."""

import datetime as dt

import pytest

from repro.rdf import Dataset, Graph, Namespace, PROV, RDF, from_python
from repro.sparql import QueryEngine, plan_bgp
from repro.sparql.algebra import TriplePattern, Var

EX = Namespace("http://example.org/")


@pytest.fixture
def engine(sample_graph):
    return QueryEngine(sample_graph)


class TestBasicSelect:
    def test_single_pattern(self, engine):
        rows = engine.select("SELECT ?x WHERE { ?x a prov:Activity }")
        assert len(rows) == 3

    def test_join_via_shared_variable(self, engine):
        rows = engine.select(
            "SELECT ?run ?d WHERE { ?run a prov:Activity ; prov:used ?d . ?d a prov:Entity }"
        )
        assert len(rows) == 3

    def test_no_match(self, engine):
        assert len(engine.select("SELECT ?x WHERE { ?x prov:wasDerivedFrom ?y }")) == 0

    def test_select_star_collects_all_vars(self, engine):
        rows = engine.select("SELECT * WHERE { ?x prov:used ?y }")
        assert set(rows.variables) == {"x", "y"}

    def test_repeated_variable_must_match(self, engine, sample_graph):
        sample_graph.add((EX.selfloop, EX.ptr, EX.selfloop))
        local = QueryEngine(sample_graph)
        rows = local.select(
            "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:ptr ?x }"
        )
        assert len(rows) == 1

    def test_bound_constant_subject(self, engine):
        rows = engine.select(
            "PREFIX ex: <http://example.org/> SELECT ?d WHERE { ex:run0 prov:used ?d }"
        )
        assert rows.column("d") == ["http://example.org/data0"]


class TestOptionalAndFilters:
    def test_optional_keeps_unmatched(self, engine):
        rows = engine.select(
            "SELECT ?run ?end WHERE { ?run a prov:Activity OPTIONAL { ?run prov:endedAtTime ?end } }"
        )
        assert len(rows) == 3
        assert sum(1 for r in rows if r.end is None) == 1

    def test_filter_numeric(self, engine):
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?d WHERE { ?d ex:size ?s FILTER(?s >= 10) }"
        )
        assert len(rows) == 2

    def test_filter_error_drops_solution(self, engine):
        # comparing string entity IRL to number errors -> dropped, not crash
        rows = engine.select(
            "SELECT ?run WHERE { ?run a prov:Activity FILTER(?missing > 1) }"
        )
        assert len(rows) == 0

    def test_filter_not_exists(self, engine):
        rows = engine.select(
            "SELECT ?run WHERE { ?run a prov:Activity FILTER NOT EXISTS { ?run prov:endedAtTime ?e } }"
        )
        assert rows.column("run") == ["http://example.org/run2"]

    def test_filter_exists(self, engine):
        rows = engine.select(
            "SELECT ?run WHERE { ?run a prov:Activity FILTER EXISTS { ?run prov:endedAtTime ?e } }"
        )
        assert len(rows) == 2

    def test_bind(self, engine):
        rows = engine.select(
            'SELECT ?name WHERE { ?run a prov:Activity BIND(STRAFTER(STR(?run), "org/") AS ?name) } ORDER BY ?name'
        )
        assert rows.column("name") == ["run0", "run1", "run2"]

    def test_minus(self, engine):
        rows = engine.select(
            "SELECT ?run WHERE { ?run a prov:Activity MINUS { ?run prov:endedAtTime ?e } }"
        )
        assert rows.column("run") == ["http://example.org/run2"]

    def test_union_dedup_with_distinct(self, engine):
        rows = engine.select(
            "SELECT DISTINCT ?x WHERE { { ?x a prov:Activity } UNION { ?x a prov:Activity } }"
        )
        assert len(rows) == 3


class TestModifiers:
    def test_order_by_datetime_desc(self, engine):
        rows = engine.select(
            "SELECT ?run WHERE { ?run prov:startedAtTime ?t } ORDER BY DESC(?t)"
        )
        assert rows.column("run")[0] == "http://example.org/run2"

    def test_limit_offset(self, engine):
        rows = engine.select(
            "SELECT ?run WHERE { ?run a prov:Activity } ORDER BY ?run LIMIT 1 OFFSET 1"
        )
        assert rows.column("run") == ["http://example.org/run1"]

    def test_distinct(self, engine):
        rows = engine.select("SELECT DISTINCT ?t WHERE { ?x a ?t }")
        assert len(rows) == 2

    def test_multi_key_order(self, engine):
        rows = engine.select(
            "SELECT ?x ?t WHERE { ?x a ?t } ORDER BY ?t DESC(?x)"
        )
        assert len(rows) == 6
        # first group: activities (prov:Activity < prov:Entity), descending IRIs
        assert rows.column("x")[0] == "http://example.org/run2"


class TestAggregates:
    def test_count_star(self, engine):
        rows = engine.select("SELECT (COUNT(*) AS ?n) WHERE { ?x a prov:Activity }")
        assert rows[0].n.to_python() == 3

    def test_group_by_count(self, engine):
        rows = engine.select(
            "SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x a ?t } GROUP BY ?t ORDER BY ?t"
        )
        assert [r.n.to_python() for r in rows] == [3, 3]

    def test_sum_avg_min_max(self, engine):
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT (SUM(?s) AS ?sum) (AVG(?s) AS ?avg) (MIN(?s) AS ?min) (MAX(?s) AS ?max) "
            "WHERE { ?d ex:size ?s }"
        )
        row = rows[0]
        assert row.sum.to_python() == 30
        assert row.avg.to_python() == 10
        assert row.min.to_python() == 0
        assert row.max.to_python() == 20

    def test_count_distinct(self, engine):
        rows = engine.select("SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?x a ?t }")
        assert rows[0].n.to_python() == 2

    def test_group_concat(self, engine):
        rows = engine.select(
            'PREFIX ex: <http://example.org/> '
            'SELECT (GROUP_CONCAT(?s; SEPARATOR="|") AS ?all) WHERE { ?d ex:size ?s }'
        )
        assert sorted(rows[0].all.lexical.split("|")) == ["0", "10", "20"]

    def test_sample(self, engine):
        rows = engine.select("SELECT (SAMPLE(?x) AS ?one) WHERE { ?x a prov:Activity }")
        assert rows[0].one is not None

    def test_having(self, engine):
        rows = engine.select(
            "SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x a ?t } GROUP BY ?t HAVING(COUNT(?x) > 5)"
        )
        assert len(rows) == 0

    def test_sum_if_conditional_count(self, engine):
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            'SELECT (SUM(IF(?s > 5, 1, 0)) AS ?big) WHERE { ?d ex:size ?s }'
        )
        assert rows[0].big.to_python() == 2

    def test_empty_group_count_zero(self, engine):
        rows = engine.select("SELECT (COUNT(?x) AS ?n) WHERE { ?x prov:wasDerivedFrom ?y }")
        assert rows[0].n.to_python() == 0

    def test_bare_var_requires_group_by(self, engine):
        from repro.sparql.functions import ExprError

        with pytest.raises(ExprError):
            engine.select("SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x a ?y }")


class TestAsk:
    def test_true_false(self, engine):
        assert engine.ask("ASK { ?x a prov:Activity }")
        assert not engine.ask("ASK { ?x prov:wasDerivedFrom ?y }")


class TestDatasetQueries:
    def make_dataset(self):
        ds = Dataset()
        ds.namespaces.bind("ex", EX)
        ds.default.add((EX.b1, RDF.type, PROV.Bundle))
        ds.graph(EX.b1).add((EX.p1, RDF.type, PROV.Activity))
        ds.graph(EX.b2).add((EX.p2, RDF.type, PROV.Activity))
        return ds

    def test_default_bgp_sees_union(self):
        engine = QueryEngine(self.make_dataset())
        rows = engine.select("SELECT ?x WHERE { ?x a prov:Activity }")
        assert len(rows) == 2

    def test_graph_with_name(self):
        engine = QueryEngine(self.make_dataset())
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?x WHERE { GRAPH ex:b1 { ?x a prov:Activity } }"
        )
        assert rows.column("x") == ["http://example.org/p1"]

    def test_graph_with_variable_binds_name(self):
        engine = QueryEngine(self.make_dataset())
        rows = engine.select(
            "SELECT ?g ?x WHERE { GRAPH ?g { ?x a prov:Activity } } ORDER BY ?g"
        )
        assert rows.column("g") == ["http://example.org/b1", "http://example.org/b2"]

    def test_graph_over_plain_graph_is_empty(self, engine):
        rows = engine.select("SELECT ?x WHERE { GRAPH ?g { ?x a prov:Activity } }")
        assert len(rows) == 0

    def test_missing_named_graph_is_empty(self):
        engine = QueryEngine(self.make_dataset())
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?x WHERE { GRAPH ex:nope { ?x ?p ?o } }"
        )
        assert len(rows) == 0


class TestJoinPlanning:
    def test_plan_puts_selective_first(self, sample_graph):
        patterns = [
            TriplePattern(Var("x"), Var("p"), Var("o")),
            TriplePattern(EX.run0, PROV.used, Var("d")),
        ]
        ordered = plan_bgp(patterns, graph=sample_graph)
        assert ordered[0].bound_count() == 2

    def test_plan_propagates_bindings(self):
        patterns = [
            TriplePattern(Var("a"), PROV.used, Var("b")),
            TriplePattern(Var("b"), RDF.type, PROV.Entity),
        ]
        ordered = plan_bgp(patterns)
        # second chosen pattern should benefit from ?b being bound
        assert len(ordered) == 2

    def test_unoptimized_engine_same_results(self, sample_graph):
        q = "SELECT ?run ?d WHERE { ?run prov:used ?d . ?d a prov:Entity . ?run a prov:Activity }"
        fast = QueryEngine(sample_graph, optimize_joins=True).select(q)
        slow = QueryEngine(sample_graph, optimize_joins=False).select(q)
        assert sorted(map(tuple, (r.python().items() for r in fast))) == sorted(
            map(tuple, (r.python().items() for r in slow))
        )


class TestResults:
    def test_to_csv(self, engine):
        csv_text = engine.select(
            "SELECT ?run WHERE { ?run a prov:Activity } ORDER BY ?run LIMIT 1"
        ).to_csv()
        assert csv_text.splitlines()[0] == "run"
        assert "run0" in csv_text

    def test_to_json_shape(self, engine):
        import json

        payload = json.loads(
            engine.select("SELECT ?run WHERE { ?run a prov:Activity }").to_json()
        )
        assert payload["head"]["vars"] == ["run"]
        assert len(payload["results"]["bindings"]) == 3
        assert payload["results"]["bindings"][0]["run"]["type"] == "uri"

    def test_pretty_renders_header(self, engine):
        text = engine.select("SELECT ?run WHERE { ?run a prov:Activity }").pretty()
        assert text.splitlines()[0].startswith("?run")

    def test_row_access_patterns(self, engine):
        rows = engine.select("SELECT ?run ?t WHERE { ?run prov:startedAtTime ?t } ORDER BY ?t")
        row = rows[0]
        assert row["run"] == row[0]
        assert row.run is row["run"]
        assert isinstance(row.python()["t"], dt.datetime)
