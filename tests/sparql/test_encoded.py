"""Encoded-ID execution: planner seeding, parity with the decoded path.

The planner-seeding test reproduces a latent bug: `_eval_bgp` seeded
`plan_bgp_steps` with `set(inputs[0])`, so after an OPTIONAL (or UNION)
a variable bound in only *some* input solutions was planned as bound for
all of them.  The correct seed is the intersection of bound-variable
sets across the inputs.
"""

import pytest

from repro.rdf import Dataset, Graph, Namespace, PROV, RDF
from repro.sparql import QueryEngine

EX = Namespace("http://example.org/")

PARITY_TTL = """\
@prefix ex: <http://example.org/> .
@prefix prov: <http://www.w3.org/ns/prov#> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:run0 a prov:Activity ;
    prov:used ex:data0, ex:data1 ;
    prov:endedAtTime "2013-01-01T11:00:00"^^xsd:dateTime .
ex:run1 a prov:Activity ;
    prov:used ex:data1 ;
    prov:endedAtTime "2013-01-01T12:00:00"^^xsd:dateTime .
ex:run2 a prov:Activity .
ex:data0 a prov:Entity ; ex:size 10 .
ex:data1 a prov:Entity ; ex:size 20 .
ex:loop ex:self ex:loop .
ex:a1 prov:used ex:d1 .
ex:d2 prov:wasGeneratedBy ex:a1 .
ex:a2 prov:used ex:d2 .
ex:d3 prov:wasGeneratedBy ex:a2 .
"""

PARITY_TRIG = """\
@prefix ex: <http://example.org/> .
@prefix prov: <http://www.w3.org/ns/prov#> .
ex:bundle1 {
    ex:run0 a prov:Activity .
    ex:run0 prov:wasAssociatedWith ex:alice .
    ex:alice a prov:Agent .
}
"""

PARITY_QUERIES = {
    "join": """
        SELECT ?run ?data WHERE {
          ?run a prov:Activity .
          ?run prov:used ?data .
          ?data a prov:Entity .
        } ORDER BY ?run ?data
    """,
    "optional": """
        PREFIX ex: <http://example.org/>
        SELECT ?run ?end ?data WHERE {
          ?run a prov:Activity .
          OPTIONAL { ?run prov:endedAtTime ?end }
          ?run prov:used ?data .
        } ORDER BY ?run ?data
    """,
    "heterogeneous-join-var": """
        SELECT ?run ?end ?other WHERE {
          ?run a prov:Activity .
          OPTIONAL { ?run prov:endedAtTime ?end }
          ?other prov:endedAtTime ?end .
        } ORDER BY ?run ?other
    """,
    "union": """
        SELECT ?x WHERE {
          { ?x a prov:Activity } UNION { ?x a prov:Entity }
        } ORDER BY ?x
    """,
    "named-graph": """
        PREFIX ex: <http://example.org/>
        SELECT ?s ?p ?o WHERE { GRAPH ex:bundle1 { ?s ?p ?o } } ORDER BY ?s ?p ?o
    """,
    "graph-var": """
        SELECT ?g ?s WHERE { GRAPH ?g { ?s a prov:Activity } } ORDER BY ?g ?s
    """,
    "repeated-var": """
        SELECT ?x ?p WHERE { ?x ?p ?x } ORDER BY ?x ?p
    """,
    "filter-not-exists": """
        SELECT ?run WHERE {
          ?run a prov:Activity .
          FILTER NOT EXISTS { ?run prov:endedAtTime ?end }
        } ORDER BY ?run
    """,
    "unknown-constant": """
        PREFIX ex: <http://example.org/>
        SELECT ?p ?o WHERE { ex:never-seen ?p ?o }
    """,
    "values-unknown-binding": """
        PREFIX ex: <http://example.org/>
        SELECT ?s ?o WHERE {
          VALUES ?s { ex:never-seen ex:run1 }
          ?s prov:used ?o .
        } ORDER BY ?s ?o
    """,
    "full-scan": """
        SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o
    """,
}


def _build_parity_corpus(root):
    corpus = root / "corpus"
    corpus.mkdir()
    (corpus / "data.prov.ttl").write_text(PARITY_TTL)
    (corpus / "named.prov.trig").write_text(PARITY_TRIG)
    return corpus


@pytest.fixture(scope="module")
def parity_pair(tmp_path_factory):
    """(StoreDataset, in-memory Dataset) over the same parity corpus."""
    from repro.rdf.trig import parse_trig
    from repro.rdf.turtle import parse_turtle
    from repro.store import QuadStore, StoreDataset, ingest_corpus

    root = tmp_path_factory.mktemp("encoded-parity")
    corpus = _build_parity_corpus(root)
    store = QuadStore(root / "store")
    ingest_corpus(store, corpus)
    memory = Dataset()
    parse_turtle(PARITY_TTL, graph=memory.default)
    trig = parse_trig(PARITY_TRIG)
    for name in trig.graph_names():
        memory.graph(name).add_all(trig.graph(name))
    yield StoreDataset(store), memory
    store.close()


def _rows(engine, query):
    return [row.asdict() for row in engine.select(query)]

HETEROGENEOUS_QUERY = """
PREFIX prov: <http://www.w3.org/ns/prov#>
SELECT ?run ?end ?data WHERE {
  ?run a prov:Activity .
  OPTIONAL { ?run prov:endedAtTime ?end }
  ?run prov:used ?data .
}
ORDER BY ?run
"""


class TestPlannerSeeding:
    def _captured_seeds(self, monkeypatch, graph):
        from repro.sparql import evaluator as evaluator_mod
        from repro.sparql.plan import plan_bgp_steps as real_plan

        captured = []

        def spy(patterns, bound_vars=(), graph=None):
            captured.append((list(patterns), set(bound_vars)))
            return real_plan(patterns, bound_vars, graph)

        monkeypatch.setattr(evaluator_mod, "plan_bgp_steps", spy)
        QueryEngine(graph).query(HETEROGENEOUS_QUERY)
        return captured

    def test_seed_is_intersection_after_optional(self, monkeypatch, sample_graph):
        captured = self._captured_seeds(monkeypatch, sample_graph)
        trailing = [
            bound for patterns, bound in captured
            if len(patterns) == 1 and patterns[0].predicate == PROV.used
        ]
        assert trailing, "trailing BGP never reached the planner"
        # ?end is bound for run0/run1 but not run2, so it must not be
        # part of the planner seed for the trailing pattern.
        assert trailing == [{"run"}]

    def test_results_unchanged_by_seeding(self, sample_graph):
        rows = QueryEngine(sample_graph).query(HETEROGENEOUS_QUERY)
        runs = [row["run"] for row in rows]
        assert runs == [EX.run0, EX.run1, EX.run2]
        assert rows[2].get("end") is None


class TestOrderingLockstep:
    def test_plan_orderings_match_segment_orderings(self):
        """plan.py restates the segment permutations so the sparql layer
        never imports repro.store; this pins the two copies together."""
        from repro.sparql.plan import SEGMENT_ORDERINGS
        from repro.store.segments import ORDERINGS

        assert SEGMENT_ORDERINGS == ORDERINGS


class TestChooseAccess:
    """choose_access must replicate StoreGraph._match_ids dispatch."""

    @pytest.mark.parametrize(
        "mask,expected",
        [
            ("???", ("bisect", "spog")),
            ("b??", ("bisect", "spog")),
            ("j??", ("merge", "spog")),
            ("?b?", ("bisect", "posg")),
            ("??b", ("bisect", "ospg")),
            ("??j", ("merge", "ospg")),
            ("bb?", ("bisect", "spog")),
            ("bj?", ("merge", "spog")),
            ("b?b", ("bisect", "ospg")),
            ("j?b", ("merge", "ospg")),
            ("?bb", ("bisect", "posg")),
            ("bbb", ("bisect", "spog")),
            ("bbj", ("merge", "spog")),
        ],
    )
    def test_union_scope(self, mask, expected):
        from repro.sparql.plan import choose_access

        assert choose_access(mask, None) == expected

    @pytest.mark.parametrize(
        "mask,expected",
        [
            # (s), (s, p), (s, p, o) chains ride gspo's (g, s, p, o) prefix.
            ("???", ("bisect", "gspo")),
            ("b??", ("bisect", "gspo")),
            ("j??", ("merge", "gspo")),
            ("bb?", ("bisect", "gspo")),
            ("bj?", ("merge", "gspo")),
            ("bbb", ("bisect", "gspo")),
            # Non-chain bound sets fall back to a union ordering with a
            # per-record graph filter.
            ("?b?", ("bisect", "posg")),
            ("??b", ("bisect", "ospg")),
            ("??j", ("merge", "ospg")),
            ("?bb", ("bisect", "posg")),
            ("b?b", ("bisect", "ospg")),
        ],
    )
    def test_single_graph_scope(self, mask, expected):
        from repro.sparql.plan import choose_access

        assert choose_access(mask, 7) == expected


class TestQueryParity:
    """Encoded pipeline vs decoded pipeline vs in-memory evaluator must
    agree byte for byte on every query shape the executor dispatches on."""

    @pytest.mark.parametrize("optimize", [True, False], ids=["opt", "literal"])
    @pytest.mark.parametrize("name", sorted(PARITY_QUERIES))
    def test_three_way_parity(self, parity_pair, name, optimize):
        store_ds, mem_ds = parity_pair
        query = PARITY_QUERIES[name]
        encoded = _rows(QueryEngine(store_ds, optimize_joins=optimize), query)
        decoded = _rows(
            QueryEngine(store_ds, optimize_joins=optimize, encoded=False), query
        )
        memory = _rows(QueryEngine(mem_ds, optimize_joins=optimize), query)
        assert encoded == decoded
        assert encoded == memory

    NO_ORDER_QUERY = """
        SELECT ?run ?end ?data WHERE {
          ?run a prov:Activity .
          OPTIONAL { ?run prov:endedAtTime ?end }
          ?run prov:used ?data .
        }
    """

    @pytest.mark.parametrize("optimize", [True, False], ids=["opt", "literal"])
    def test_row_order_byte_identity_without_order_by(self, parity_pair, optimize):
        """Without ORDER BY the encoded pipeline must reproduce the
        decoded pipeline's row *order*, not just its row set — the
        heterogeneous batch (?end bound for run0/run1 only) exercises
        per-group dispatch with outputs re-flattened in input order."""
        store_ds, _ = parity_pair
        encoded = _rows(QueryEngine(store_ds, optimize_joins=optimize), self.NO_ORDER_QUERY)
        decoded = _rows(
            QueryEngine(store_ds, optimize_joins=optimize, encoded=False),
            self.NO_ORDER_QUERY,
        )
        assert encoded == decoded

    def test_ask_parity(self, parity_pair):
        store_ds, mem_ds = parity_pair
        query = """
            PREFIX ex: <http://example.org/>
            ASK { ex:run1 prov:used ?d . ?d a prov:Entity }
        """
        assert QueryEngine(store_ds).ask(query) is True
        assert QueryEngine(mem_ds).ask(query) is True
        assert QueryEngine(store_ds).ask(
            "PREFIX ex: <http://example.org/> ASK { ex:never-seen ?p ?o }"
        ) is False


PATH_QUERIES = {
    "sequence": """
        SELECT ?a ?b WHERE { ?a prov:wasGeneratedBy/prov:used ?b } ORDER BY ?a ?b
    """,
    "alternative": """
        SELECT ?a ?b WHERE { ?a (prov:used|prov:wasGeneratedBy) ?b } ORDER BY ?a ?b
    """,
    "inverse": """
        SELECT ?a ?b WHERE { ?a ^prov:used ?b } ORDER BY ?a ?b
    """,
    "plus-both-free": """
        SELECT ?a ?b WHERE { ?a (prov:wasGeneratedBy/prov:used)+ ?b } ORDER BY ?a ?b
    """,
    "star-subject-bound": """
        PREFIX ex: <http://example.org/>
        SELECT ?b WHERE { ex:d3 (prov:wasGeneratedBy/prov:used)* ?b } ORDER BY ?b
    """,
    "plus-object-bound": """
        PREFIX ex: <http://example.org/>
        SELECT ?a WHERE { ?a (prov:wasGeneratedBy/prov:used)+ ex:d1 } ORDER BY ?a
    """,
    "star-ghost-subject": """
        PREFIX ex: <http://example.org/>
        SELECT ?x WHERE { ex:ghost prov:used* ?x }
    """,
}


class TestPathParity:
    """Property paths fall back to the decoded pipeline; store-backed and
    in-memory evaluation must still agree for every endpoint mask."""

    @pytest.mark.parametrize("name", sorted(PATH_QUERIES))
    def test_store_matches_memory(self, parity_pair, name):
        store_ds, mem_ds = parity_pair
        query = PATH_QUERIES[name]
        assert _rows(QueryEngine(store_ds), query) == _rows(QueryEngine(mem_ds), query)

    def test_ghost_zero_length_closure(self, parity_pair):
        """p* must yield the zero-length match (t, t) even for a subject
        the store dictionary has never seen — the reason path BGPs
        cannot run in id space."""
        store_ds, _ = parity_pair
        rows = _rows(QueryEngine(store_ds), PATH_QUERIES["star-ghost-subject"])
        assert rows == [{"x": EX.ghost}]

    def test_both_endpoints_bound_ask(self, parity_pair):
        store_ds, mem_ds = parity_pair
        query = """
            PREFIX ex: <http://example.org/>
            ASK { ex:d3 (prov:wasGeneratedBy/prov:used)+ ex:d1 }
        """
        assert QueryEngine(store_ds).ask(query) is True
        assert QueryEngine(mem_ds).ask(query) is True


class TestScanStrategyMetrics:
    def test_merge_counter_increments_on_join(self, parity_pair):
        from repro.sparql.encoded import _SCAN_STRATEGY

        store_ds, _ = parity_pair
        before = _SCAN_STRATEGY.labels("merge").value
        QueryEngine(store_ds).select(PARITY_QUERIES["join"])
        assert _SCAN_STRATEGY.labels("merge").value > before

    def test_bisect_counter_increments_on_constant_scan(self, parity_pair):
        from repro.sparql.encoded import _SCAN_STRATEGY

        store_ds, _ = parity_pair
        before = _SCAN_STRATEGY.labels("bisect").value
        # The first step's mask has no join-bound position, so its
        # (single-key) scan is a bisect batch.
        QueryEngine(store_ds).select(
            "SELECT ?run ?data WHERE { ?run a prov:Activity . ?run prov:used ?data }"
            " ORDER BY ?run ?data"
        )
        assert _SCAN_STRATEGY.labels("bisect").value > before

    def test_single_pattern_singleton_input_skips_encoded(self, parity_pair):
        """A one-pattern BGP over one input solution has exactly one
        scan range — the executor must not engage (no batch to win on)."""
        from repro.sparql.encoded import _SCAN_STRATEGY

        store_ds, _ = parity_pair
        merge = _SCAN_STRATEGY.labels("merge").value
        bisect = _SCAN_STRATEGY.labels("bisect").value
        rows = _rows(
            QueryEngine(store_ds),
            "SELECT ?run WHERE { ?run a prov:Activity } ORDER BY ?run",
        )
        assert rows == [{"run": EX.run0}, {"run": EX.run1}, {"run": EX.run2}]
        assert _SCAN_STRATEGY.labels("merge").value == merge
        assert _SCAN_STRATEGY.labels("bisect").value == bisect


class TestPlanRendering:
    def test_store_plan_annotates_join_and_ordering(self, parity_pair):
        store_ds, _ = parity_pair
        text = QueryEngine(store_ds).explain(PARITY_QUERIES["join"]).to_text()
        assert "join=merge" in text
        assert "ordering=" in text

    def test_memory_plan_is_unannotated(self, sample_graph):
        text = QueryEngine(sample_graph).explain(PARITY_QUERIES["join"]).to_text()
        assert "join=" not in text
        assert "ordering=" not in text

    def test_path_bgp_scans_never_claim_batch_operators(self, parity_pair):
        """Path-containing BGPs decline the encoded executor, so their
        scans must not advertise merge/bisect; an index-served path step
        advertises ``pathindex`` instead."""
        store_ds, _ = parity_pair
        text = QueryEngine(store_ds).explain(PATH_QUERIES["sequence"]).to_text()
        assert "join=merge" not in text
        assert "join=bisect" not in text
        assert "join=pathindex" in text

    def test_digest_stable_across_encoded_toggle(self, parity_pair):
        """The digest keys the plan, not the runtime pipeline — flipping
        ``encoded`` must not change it."""
        store_ds, _ = parity_pair
        query = PARITY_QUERIES["join"]
        on = QueryEngine(store_ds).explain(query).digest
        off = QueryEngine(store_ds, encoded=False).explain(query).digest
        assert on == off

    def test_profile_reports_operator(self, parity_pair):
        store_ds, _ = parity_pair
        profile = QueryEngine(store_ds).profile(PARITY_QUERIES["join"])
        assert "merge" in profile.to_text()


@pytest.fixture(scope="module")
def big_pair(tmp_path_factory):
    """A ~200-run synthetic store (and the store itself, for counters):
    large enough that merge-join galloping measurably beats per-binding
    bisect."""
    from repro.store import QuadStore, StoreDataset

    store = QuadStore(tmp_path_factory.mktemp("encoded-big") / "store")
    store.begin_file("big.prov.ttl", "0" * 64)
    rdf_type = store.add_term(RDF.type)
    activity = store.add_term(PROV.Activity)
    entity = store.add_term(PROV.Entity)
    used = store.add_term(PROV.used)
    for i in range(200):
        run = store.add_term(EX[f"run{i}"])
        data = store.add_term(EX[f"data{i}"])
        store.add_quad(run, rdf_type, activity)
        store.add_quad(run, used, data)
        store.add_quad(data, rdf_type, entity)
    store.commit_file()
    store.compact()
    yield StoreDataset(store), store
    store.close()


class TestProbeReduction:
    JOIN_QUERY = """
        SELECT ?run ?data WHERE {
          ?run a prov:Activity .
          ?run prov:used ?data .
          ?data a prov:Entity .
        }
    """

    def test_encoded_probes_fewer_than_decoded(self, big_pair):
        store_ds, store = big_pair
        decoded_engine = QueryEngine(store_ds, encoded=False)
        encoded_engine = QueryEngine(store_ds)

        before = store.runtime_counters()[0]
        decoded_rows = _rows(decoded_engine, self.JOIN_QUERY)
        decoded_probes = store.runtime_counters()[0] - before

        before = store.runtime_counters()[0]
        encoded_rows = _rows(encoded_engine, self.JOIN_QUERY)
        encoded_probes = store.runtime_counters()[0] - before

        assert encoded_rows == decoded_rows
        assert len(encoded_rows) == 200
        assert encoded_probes < decoded_probes
