"""Tests for VALUES inline data and CONSTRUCT queries."""

import pytest

from repro.rdf import Graph, Namespace, PROV, RDF
from repro.rdf.terms import IRI, Literal
from repro.sparql import QueryEngine, parse_query
from repro.sparql.algebra import ConstructQuery, Values
from repro.sparql.tokenizer import SparqlSyntaxError

EX = Namespace("http://example.org/")


@pytest.fixture
def engine():
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add((EX.a1, PROV.used, EX.d1))
    g.add((EX.a2, PROV.used, EX.d2))
    g.add((EX.d2, PROV.wasGeneratedBy, EX.a1))
    g.add((EX.d3, PROV.wasGeneratedBy, EX.a2))
    return QueryEngine(g)


class TestValuesParsing:
    def test_single_variable_form(self):
        q = parse_query("SELECT ?x WHERE { VALUES ?x { ex:a ex:b } ?x ?p ?o }",
                        namespaces=None) if False else parse_query(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?x WHERE { ?x ?p ?o . VALUES ?x { ex:a ex:b } }"
        )
        assert isinstance(q.where, Values)
        assert len(q.where.rows) == 2

    def test_multi_variable_form(self):
        q = parse_query(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?x ?y WHERE { ?x ?p ?y . VALUES (?x ?y) { (ex:a ex:b) (ex:c UNDEF) } }"
        )
        values = q.where
        assert [v.name for v in values.variables] == ["x", "y"]
        assert values.rows[1][1] is None  # UNDEF

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query(
                "PREFIX ex: <http://example.org/> "
                "SELECT ?x WHERE { VALUES (?x ?y) { (ex:a) } }"
            )

    def test_variable_in_data_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x WHERE { VALUES ?x { ?y } }")


class TestValuesEvaluation:
    def test_restricts_bindings(self, engine):
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?a ?d WHERE { ?a prov:used ?d . VALUES ?a { ex:a1 } }"
        )
        assert rows.column("a") == ["http://example.org/a1"]

    def test_undef_leaves_variable_free(self, engine):
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?a ?d WHERE { ?a prov:used ?d . "
            "VALUES (?a ?d) { (ex:a1 ex:d1) (ex:a2 UNDEF) } } ORDER BY ?a"
        )
        assert rows.column("a") == ["http://example.org/a1", "http://example.org/a2"]

    def test_incompatible_rows_dropped(self, engine):
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?a WHERE { ?a prov:used ?d . VALUES (?a ?d) { (ex:a1 ex:d2) } }"
        )
        assert len(rows) == 0

    def test_values_introduces_bindings(self, engine):
        rows = engine.select(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?label WHERE { VALUES ?label { \"x\" \"y\" } }"
        )
        assert sorted(r.label.lexical for r in rows) == ["x", "y"]


class TestConstruct:
    def test_parse(self):
        q = parse_query(
            "CONSTRUCT { ?o prov:wasDerivedFrom ?i } "
            "WHERE { ?o prov:wasGeneratedBy ?a . ?a prov:used ?i }"
        )
        assert isinstance(q, ConstructQuery)
        assert len(q.template) == 1

    def test_dataflow_derivation_materialization(self, engine):
        graph = engine.construct(
            "CONSTRUCT { ?out prov:wasDerivedFrom ?in } "
            "WHERE { ?out prov:wasGeneratedBy ?a . ?a prov:used ?in }"
        )
        assert (EX.d2, PROV.wasDerivedFrom, EX.d1) in graph
        assert (EX.d3, PROV.wasDerivedFrom, EX.d2) in graph
        assert len(graph) == 2

    def test_constant_template_triples(self, engine):
        graph = engine.construct(
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ex:report ex:about ?a } WHERE { ?a prov:used ?d }"
        )
        assert len(graph) == 2
        assert all(t.subject == EX.report for t in graph)

    def test_unbound_positions_skipped(self, engine):
        graph = engine.construct(
            "CONSTRUCT { ?a prov:wasInfluencedBy ?ghost } WHERE { ?a prov:used ?d }"
        )
        assert len(graph) == 0

    def test_literal_subject_skipped(self, engine):
        graph = engine.construct(
            'CONSTRUCT { ?v prov:value "x" } WHERE { ?a prov:used ?d . BIND(STR(?a) AS ?v) }'
        )
        assert len(graph) == 0

    def test_limit(self, engine):
        graph = engine.construct(
            "CONSTRUCT { ?a prov:influenced ?d } WHERE { ?a prov:used ?d } LIMIT 1"
        )
        assert len(graph) == 1

    def test_deduplication(self, engine):
        graph = engine.construct(
            "PREFIX ex: <http://example.org/> "
            "CONSTRUCT { ex:one ex:thing ex:x } WHERE { ?a prov:used ?d }"
        )
        assert len(graph) == 1  # same triple instantiated twice, graph dedups

    def test_construct_method_type_guard(self, engine):
        with pytest.raises(TypeError):
            engine.construct("SELECT ?a WHERE { ?a ?p ?o }")

    def test_extract_prov_core_from_trace(self, corpus):
        """CONSTRUCT as trace transformation: the pure PROV-O projection."""
        trace = next(t for t in corpus.by_system("taverna") if not t.failed)
        engine = QueryEngine(trace.graph())
        core = engine.construct("""
            CONSTRUCT { ?a prov:used ?e . ?o prov:wasGeneratedBy ?a }
            WHERE {
              { ?a prov:used ?e } UNION { ?o prov:wasGeneratedBy ?a }
            }
        """)
        assert len(core) > 0
        predicates = set(core.predicates())
        assert predicates <= {PROV.used, PROV.wasGeneratedBy}
