"""Property-based tests (hypothesis) for the SPARQL engine.

Invariants:

* optimized and naive join orders produce identical solution multisets;
* DISTINCT never increases the row count and removes all duplicates;
* LIMIT/OFFSET slice consistently with the unsliced result;
* UNION row count is the sum of branch counts;
* ASK agrees with SELECT non-emptiness;
* path closure `+` equals the fixpoint of repeated sequence expansion.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Namespace, PROV
from repro.sparql import QueryEngine
from repro.sparql.paths import PathClosure, eval_path

EX = Namespace("http://example.org/")

_nodes = st.integers(min_value=0, max_value=8).map(lambda i: EX[f"n{i}"])
_predicates = st.sampled_from([PROV.used, PROV.wasGeneratedBy, EX.link])
_triples = st.tuples(_nodes, _predicates, _nodes)
_graphs = st.lists(_triples, min_size=0, max_size=30).map(Graph)


def _row_multiset(table):
    return sorted(tuple(sorted(r.asdict().items(), key=str)) for r in table)


@settings(max_examples=40, deadline=None)
@given(_graphs)
def test_join_order_invariance(graph):
    query = (
        "SELECT ?a ?b ?c WHERE { ?a prov:used ?b . ?c prov:wasGeneratedBy ?a . }"
    )
    fast = QueryEngine(graph, optimize_joins=True).select(query)
    slow = QueryEngine(graph, optimize_joins=False).select(query)
    assert _row_multiset(fast) == _row_multiset(slow)


@settings(max_examples=40, deadline=None)
@given(_graphs)
def test_distinct_is_idempotent_dedup(graph):
    engine = QueryEngine(graph)
    plain = engine.select("SELECT ?a WHERE { ?a ?p ?b }")
    distinct = engine.select("SELECT DISTINCT ?a WHERE { ?a ?p ?b }")
    assert len(distinct) <= len(plain)
    values = [r.a for r in distinct]
    assert len(values) == len(set(values))
    assert set(values) == {r.a for r in plain}


@settings(max_examples=40, deadline=None)
@given(_graphs, st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5))
def test_limit_offset_slice(graph, limit, offset):
    engine = QueryEngine(graph)
    full = engine.select("SELECT ?a ?b WHERE { ?a prov:used ?b } ORDER BY ?a ?b")
    sliced = engine.select(
        f"SELECT ?a ?b WHERE {{ ?a prov:used ?b }} ORDER BY ?a ?b LIMIT {limit} OFFSET {offset}"
    )
    expected = list(full)[offset : offset + limit]
    assert [r.asdict() for r in sliced] == [r.asdict() for r in expected]


@settings(max_examples=40, deadline=None)
@given(_graphs)
def test_union_counts_add(graph):
    engine = QueryEngine(graph)
    used = engine.select("SELECT ?a ?b WHERE { ?a prov:used ?b }")
    generated = engine.select("SELECT ?a ?b WHERE { ?a prov:wasGeneratedBy ?b }")
    union = engine.select(
        "SELECT ?a ?b WHERE { { ?a prov:used ?b } UNION { ?a prov:wasGeneratedBy ?b } }"
    )
    assert len(union) == len(used) + len(generated)


@settings(max_examples=40, deadline=None)
@given(_graphs)
def test_ask_agrees_with_select(graph):
    engine = QueryEngine(graph)
    rows = engine.select("SELECT ?a WHERE { ?a prov:used ?b }")
    assert engine.ask("ASK { ?a prov:used ?b }") == bool(rows)


@settings(max_examples=40, deadline=None)
@given(_graphs)
def test_plus_closure_is_transitive_closure(graph):
    """`p+` pairs must equal the transitive closure of p's edge set."""
    edges = {(t.subject, t.object) for t in graph.triples(None, EX.link, None)}
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c, d in edges:
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    path_pairs = set(eval_path(graph, PathClosure(EX.link, include_zero=False)))
    assert path_pairs == closure


@settings(max_examples=40, deadline=None)
@given(_graphs)
def test_star_superset_of_plus(graph):
    plus = set(eval_path(graph, PathClosure(EX.link, include_zero=False)))
    star = set(eval_path(graph, PathClosure(EX.link, include_zero=True)))
    assert plus <= star


@settings(max_examples=30, deadline=None)
@given(_graphs)
def test_filter_partition(graph):
    """FILTER(c) and FILTER(!c) rows partition the error-free rows."""
    engine = QueryEngine(graph)
    base = "?a prov:used ?b . BIND(STRLEN(STR(?a)) AS ?n)"
    yes = engine.select(f"SELECT ?a ?b WHERE {{ {base} FILTER(?n > 22) }}")
    no = engine.select(f"SELECT ?a ?b WHERE {{ {base} FILTER(!(?n > 22)) }}")
    everything = engine.select("SELECT ?a ?b WHERE { ?a prov:used ?b }")
    assert len(yes) + len(no) == len(everything)
