"""Tests for the query acceleration layer: graph statistics + result cache."""

import threading

import pytest

from repro.rdf import Dataset, Graph, Namespace, PROV, RDF
from repro.sparql import QueryEngine

EX = Namespace("http://example.org/")

Q_ACTIVITIES = "SELECT ?x WHERE { ?x a prov:Activity } ORDER BY ?x"


def small_graph():
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add((EX.a, RDF.type, PROV.Activity))
    g.add((EX.a, PROV.used, EX.e1))
    g.add((EX.e1, RDF.type, PROV.Entity))
    return g


class TestGraphStatistics:
    def test_cardinality_matches_count(self):
        g = small_graph()
        stats = g.statistics()
        assert stats.predicate_cardinality(RDF.type) == g.count(predicate=RDF.type)
        assert stats.predicate_cardinality(PROV.used) == 1

    def test_statistics_instance_is_shared(self):
        g = small_graph()
        assert g.statistics() is g.statistics()

    def test_second_lookup_hits(self):
        g = small_graph()
        stats = g.statistics()
        stats.predicate_cardinality(RDF.type)
        before = stats.snapshot()
        stats.predicate_cardinality(RDF.type)
        after = stats.snapshot()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_version_bump_invalidates(self):
        g = small_graph()
        stats = g.statistics()
        assert stats.predicate_cardinality(RDF.type) == 2
        g.add((EX.e2, RDF.type, PROV.Entity))
        assert stats.predicate_cardinality(RDF.type) == 3
        assert stats.snapshot()["invalidations"] >= 1

    def test_noop_mutation_keeps_cache(self):
        g = small_graph()
        stats = g.statistics()
        stats.predicate_cardinality(RDF.type)
        g.add((EX.a, RDF.type, PROV.Activity))  # duplicate: version unchanged
        stats.predicate_cardinality(RDF.type)
        assert stats.snapshot()["invalidations"] == 0


class TestResultCache:
    def test_repeat_query_hits_cache(self):
        engine = QueryEngine(small_graph())
        first = engine.select(Q_ACTIVITIES)
        second = engine.select(Q_ACTIVITIES)
        assert second is first  # same object: served from cache
        info = engine.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_mutation_invalidates(self):
        g = small_graph()
        engine = QueryEngine(g)
        assert len(engine.select(Q_ACTIVITIES)) == 1
        g.add((EX.b, RDF.type, PROV.Activity))
        table = engine.select(Q_ACTIVITIES)
        assert len(table) == 2
        assert engine.cache_info()["misses"] == 2

    def test_dataset_mutation_refreshes_union_snapshot(self):
        ds = Dataset()
        ds.default.add((EX.a, RDF.type, PROV.Activity))
        engine = QueryEngine(ds)
        assert len(engine.select(Q_ACTIVITIES)) == 1
        # Mutating a *named* graph after engine construction must be
        # visible: the stale-union-snapshot bug served 1 row forever.
        ds.graph(EX.g1).add((EX.b, RDF.type, PROV.Activity))
        assert len(engine.select(Q_ACTIVITIES)) == 2

    def test_ask_and_construct_cached(self):
        engine = QueryEngine(small_graph())
        assert engine.ask("ASK { ?x a prov:Activity }") is True
        assert engine.ask("ASK { ?x a prov:Activity }") is True
        g1 = engine.construct("CONSTRUCT { ?x a prov:Agent } WHERE { ?x a prov:Activity }")
        g2 = engine.construct("CONSTRUCT { ?x a prov:Agent } WHERE { ?x a prov:Activity }")
        assert g2 is g1
        assert engine.cache_info()["hits"] == 2

    def test_lru_eviction(self):
        engine = QueryEngine(small_graph(), cache_size=2)
        engine.ask("ASK { ?x a prov:Activity }")
        engine.select(Q_ACTIVITIES)
        engine.ask("ASK { ?x a prov:Entity }")  # evicts the oldest entry
        info = engine.cache_info()
        assert info["size"] == 2
        assert info["evictions"] == 1
        # the first query was evicted: running it again is a miss
        engine.ask("ASK { ?x a prov:Activity }")
        assert engine.cache_info()["misses"] == 4

    def test_cache_disabled(self):
        engine = QueryEngine(small_graph(), cache_size=0)
        a = engine.select(Q_ACTIVITIES)
        b = engine.select(Q_ACTIVITIES)
        assert a is not b
        info = engine.cache_info()
        assert info["size"] == 0 and info["hits"] == 0 and info["misses"] == 0

    def test_clear_cache(self):
        engine = QueryEngine(small_graph())
        engine.select(Q_ACTIVITIES)
        engine.clear_cache()
        assert engine.cache_info()["size"] == 0

    def test_source_version_reported(self):
        g = small_graph()
        engine = QueryEngine(g)
        v = engine.cache_info()["version"]
        g.add((EX.n, RDF.type, PROV.Entity))
        assert engine.cache_info()["version"] > v


class TestConcurrency:
    @pytest.mark.slow
    def test_concurrent_readers_and_writer_never_see_stale_counts(self):
        """Readers must never observe fewer activities than already committed.

        Uses a Dataset source: readers evaluate on immutable union-graph
        snapshots (refreshed with a consistency retry loop), which is the
        engine's supported concurrent read/write configuration.
        """
        ds = Dataset()
        ds.namespaces.bind("ex", EX)
        g = ds.default
        g.add((EX.act0, RDF.type, PROV.Activity))
        engine = QueryEngine(ds)
        committed = [1]  # activities inserted so far (writer appends)
        stop = threading.Event()
        errors = []

        def reader():
            query = "SELECT (COUNT(?x) AS ?n) WHERE { ?x a prov:Activity }"
            while not stop.is_set():
                floor = committed[-1]
                table = engine.select(query)
                n = int(table[0].n.to_python())
                if n < floor:
                    errors.append(f"stale read: {n} < committed floor {floor}")
                    return

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for t in threads:
            t.start()
        for i in range(1, 60):
            g.add((EX[f"act{i}"], RDF.type, PROV.Activity))
            committed.append(i + 1)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors, errors
