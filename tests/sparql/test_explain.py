"""EXPLAIN/PROFILE: plan stability, digests, operator statistics."""

import json

import pytest

from repro.queries import CorpusQueries, Q1_WORKFLOW_RUNS, exemplar_queries
from repro.rdf import Graph, Namespace, PROV, RDF, from_python
from repro.sparql import QueryEngine
from repro.sparql.plan import _MISESTIMATES

EX = Namespace("http://example.org/")

RUNS_QUERY = """
PREFIX prov: <http://www.w3.org/ns/prov#>
SELECT ?run ?data WHERE {
  ?run a prov:Activity .
  ?run prov:used ?data .
  ?data a prov:Entity .
}
ORDER BY ?run
"""


class TestPlanStability:
    def test_same_query_same_digest(self, sample_graph):
        engine = QueryEngine(sample_graph)
        first = engine.explain(RUNS_QUERY)
        second = engine.explain(RUNS_QUERY)
        assert first.digest == second.digest
        assert first.to_text() == second.to_text()
        assert first.to_json() == second.to_json()

    def test_digest_survives_engine_rebuild(self, sample_graph):
        digests = {QueryEngine(sample_graph).explain(RUNS_QUERY).digest
                   for _ in range(3)}
        assert len(digests) == 1

    def test_different_queries_different_digests(self, sample_graph):
        engine = QueryEngine(sample_graph)
        other = "SELECT ?s WHERE { ?s a <http://www.w3.org/ns/prov#Entity> }"
        assert engine.explain(RUNS_QUERY).digest != engine.explain(other).digest

    def test_text_render_structure(self, sample_graph):
        text = QueryEngine(sample_graph).explain(RUNS_QUERY).to_text()
        assert text.startswith("plan digest=")
        assert "select" in text
        assert "bgp" in text
        assert text.count("scan") == 3
        # every scan carries a bound mask and a tiebreak reason
        for line in text.splitlines():
            if "scan" in line:
                assert "mask=" in line and "reason=" in line

    def test_json_round_trip_carries_estimates(self, sample_graph):
        payload = json.loads(QueryEngine(sample_graph).explain(RUNS_QUERY).to_json())
        assert set(payload) == {"digest", "plan"}
        bgp = payload["plan"]["children"][0]
        assert bgp["op"] == "bgp"
        scans = bgp["children"]
        assert [s["detail"]["index"] for s in scans] != []
        assert all("estimate" in s["detail"] for s in scans)
        assert all(len(s["detail"]["mask"]) == 3 for s in scans)

    def test_trace_args_compact(self, sample_graph):
        plan = QueryEngine(sample_graph).explain(RUNS_QUERY)
        args = plan.trace_args()
        assert args["plan_digest"] == plan.digest
        assert args["plan_operators"] >= 5

    def test_written_order_when_optimizer_off(self, sample_graph):
        optimized = QueryEngine(sample_graph).explain(RUNS_QUERY)
        literal = QueryEngine(sample_graph, optimize_joins=False).explain(RUNS_QUERY)
        # same query, different planner → different plan facts, so the
        # digest must not collide (reasons/estimates are digested too)
        assert optimized.digest != literal.digest
        scans = [n for n in literal.root.walk() if n.op == "scan"]
        assert [s.detail["reason"] for s in scans] == ["written order"] * 3


class TestExemplarQueryPlans:
    def test_q1_to_q6_digests_stable(self, corpus, corpus_dataset):
        queries = exemplar_queries(corpus)
        assert sorted(queries) == ["Q1", "Q2", "Q3", "Q4", "Q5", "Q6"]
        first = {name: CorpusQueries(corpus_dataset).engine.explain(q).digest
                 for name, q in queries.items()}
        second = {name: CorpusQueries(corpus_dataset).engine.explain(q).digest
                  for name, q in queries.items()}
        assert first == second
        # the six plans are genuinely distinct
        assert len(set(first.values())) == 6

    def test_q1_plan_shape(self, corpus_dataset):
        engine = CorpusQueries(corpus_dataset).engine
        plan = engine.explain(Q1_WORKFLOW_RUNS)
        ops = [node.op for node in plan.root.walk()]
        assert ops[0] == "select"
        assert "union" in ops and "optional" in ops and "filter" in ops


class TestProfile:
    def test_row_counts_match_result(self, sample_graph):
        engine = QueryEngine(sample_graph)
        profile = engine.profile(RUNS_QUERY)
        result = engine.query(RUNS_QUERY)
        assert len(profile.result) == len(result)
        report = profile.report
        assert report["digest"] == profile.plan.digest
        scans = [op for op in report["operators"] if op["op"] == "scan"]
        assert len(scans) == 3
        # the final scan's output rows == result rows (no later filtering)
        assert scans[-1]["rows_out"] == len(result)
        assert all(op["calls"] >= 1 for op in scans)

    def test_profile_does_not_touch_result_cache(self, sample_graph):
        engine = QueryEngine(sample_graph)
        engine.profile(RUNS_QUERY)
        assert engine.cache_info()["size"] == 0
        engine.query(RUNS_QUERY)
        assert engine.cache_info()["size"] == 1
        # and a profile after caching still executes for real
        profile = engine.profile(RUNS_QUERY)
        assert any(op.get("calls", 0) for op in profile.report["operators"])

    def test_estimate_vs_actual_error_reported(self, sample_graph):
        profile = QueryEngine(sample_graph).profile(RUNS_QUERY)
        scans = [op for op in profile.report["operators"] if op["op"] == "scan"]
        assert all("estimate" in op for op in scans)
        assert any(op.get("error_ratio") is not None for op in scans)

    def test_misestimate_increments_counter(self):
        g = Graph()
        for i in range(11):
            g.add((EX.subj, EX.fanout, EX[f"obj{i}"]))
        # ?s fanout ?x . ?s fanout ?y  → second scan emits 121 rows
        # against an estimate of 11: an 11x error, over the 10x gate.
        query = ("SELECT ?x ?y WHERE { ?s <http://example.org/fanout> ?x . "
                 "?s <http://example.org/fanout> ?y . }")
        before = _MISESTIMATES.value
        profile = QueryEngine(g).profile(query)
        assert profile.report["misestimates"] >= 1, "expected a flagged misestimate"
        assert _MISESTIMATES.value == before + profile.report["misestimates"]
        flagged = [op for op in profile.report["operators"] if op.get("misestimate")]
        assert flagged and all(op["error_ratio"] > 10 for op in flagged)

    def test_profile_text_table(self, sample_graph):
        text = QueryEngine(sample_graph).profile(RUNS_QUERY).to_text()
        assert "profile digest=" in text
        assert "rows_out" in text


@pytest.fixture
def prov_corpus_dir(tmp_path):
    (tmp_path / "Taverna" / "dom" / "t-1").mkdir(parents=True)
    (tmp_path / "Taverna" / "dom" / "t-1" / "run1.prov.ttl").write_text(
        "@prefix ex: <http://example.org/> .\n"
        "@prefix prov: <http://www.w3.org/ns/prov#> .\n"
        "ex:run1 a prov:Activity ; prov:used ex:data1 .\n"
        "ex:data1 a prov:Entity .\n"
    )
    (tmp_path / "Taverna" / "dom" / "t-2").mkdir(parents=True)
    (tmp_path / "Taverna" / "dom" / "t-2" / "run2.prov.ttl").write_text(
        "@prefix ex: <http://example.org/> .\n"
        "@prefix prov: <http://www.w3.org/ns/prov#> .\n"
        "ex:run2 a prov:Activity ; prov:used ex:data1 .\n"
        "ex:out1 a prov:Entity ; prov:wasGeneratedBy ex:run2 .\n"
    )
    return tmp_path


class TestStoreBackedPlans:
    def test_digest_identical_across_parallel_ingest(self, prov_corpus_dir, tmp_path):
        from repro.store import QuadStore, StoreDataset, ingest_corpus

        texts = []
        for jobs in (1, 2):
            with QuadStore(tmp_path / f"store-j{jobs}") as store:
                ingest_corpus(store, prov_corpus_dir, jobs=jobs)
                engine = QueryEngine(StoreDataset(store))
                texts.append(engine.explain(RUNS_QUERY).to_text())
        assert texts[0] == texts[1]

    def test_profile_attributes_store_probes(self, prov_corpus_dir, tmp_path):
        from repro.store import QuadStore, StoreDataset, ingest_corpus

        with QuadStore(tmp_path / "store") as store:
            ingest_corpus(store, prov_corpus_dir)
            profile = QueryEngine(StoreDataset(store)).profile(RUNS_QUERY)
            scans = [op for op in profile.report["operators"] if op["op"] == "scan"]
            assert sum(op.get("probes", 0) for op in scans) > 0
