"""Unit tests for the SPARQL tokenizer."""

import pytest

from repro.sparql.tokenizer import SparqlSyntaxError, Tokenizer


def kinds(text):
    return [t.kind for t in Tokenizer(text).tokens]


def texts(text):
    return [t.text for t in Tokenizer(text).tokens]


class TestTokenKinds:
    def test_variables(self):
        toks = Tokenizer("?x $y").tokens
        assert [t.kind for t in toks] == ["var", "var"]
        assert [t.text for t in toks] == ["x", "y"]

    def test_keywords_case_insensitive(self):
        assert kinds("select Select SELECT") == ["keyword"] * 3
        assert texts("select") == ["SELECT"]

    def test_pname_vs_keyword(self):
        toks = Tokenizer("prov:used select:ish regex").tokens
        assert toks[0].kind == "pname"
        assert toks[1].kind == "pname"  # colon makes it a pname
        assert toks[2].kind == "pname"  # function names are not keywords

    def test_iriref(self):
        assert kinds("<http://example.org/x>") == ["iriref"]

    def test_strings_single_and_double(self):
        assert kinds("\"a\" 'b'") == ["string", "string"]

    def test_string_with_escapes(self):
        assert texts(r'"a\"b"') == [r'"a\"b"']

    def test_numbers(self):
        assert kinds("5 2.5 1e3 -7") == ["integer", "decimal", "double", "integer"]

    def test_operators(self):
        assert texts("= != <= >= && || !") == ["=", "!=", "<=", ">=", "&&", "||", "!"]

    def test_punct(self):
        assert kinds("{ } ( ) . ; ,") == ["punct"] * 7

    def test_comments_stripped(self):
        assert kinds("?x # a comment\n?y") == ["var", "var"]

    def test_langtag_and_dtmark(self):
        assert kinds('"x"@en "5"^^xsd:integer') == ["string", "langtag", "string", "dtmark", "pname"]

    def test_bnode(self):
        assert kinds("_:node1") == ["bnode"]

    def test_line_numbers(self):
        toks = Tokenizer("?a\n?b\n?c").tokens
        assert [t.lineno for t in toks] == [1, 2, 3]

    def test_unexpected_character(self):
        with pytest.raises(SparqlSyntaxError):
            Tokenizer("?x ~ ?y")


class TestNavigation:
    def test_peek_does_not_advance(self):
        tk = Tokenizer("?x ?y")
        assert tk.peek().text == "x"
        assert tk.peek().text == "x"

    def test_peek_ahead(self):
        tk = Tokenizer("?x ?y")
        assert tk.peek(1).text == "y"
        assert tk.peek(5) is None

    def test_next_past_end_raises(self):
        tk = Tokenizer("?x")
        tk.next()
        with pytest.raises(SparqlSyntaxError):
            tk.next()

    def test_accept_keyword(self):
        tk = Tokenizer("SELECT ?x")
        assert tk.accept_keyword("SELECT") is True
        assert tk.accept_keyword("WHERE") is False

    def test_expect_punct_mismatch(self):
        tk = Tokenizer("}")
        with pytest.raises(SparqlSyntaxError):
            tk.expect_punct("{")
