"""Unit tests for the dataflow executor: scheduling, failure, nesting."""

import datetime as dt

import pytest

from repro.workflow import (
    DataflowExecutor,
    FaultPlan,
    Port,
    Processor,
    Service,
    ServiceRegistry,
    SimulatedClock,
    WorkflowError,
    WorkflowTemplate,
)
from tests.conftest import make_linear_template


@pytest.fixture
def executor(registry, clock):
    return DataflowExecutor(registry, clock)


class TestClock:
    def test_advance(self):
        clock = SimulatedClock(dt.datetime(2012, 1, 1))
        clock.advance(90)
        assert clock.now == dt.datetime(2012, 1, 1, 0, 1, 30)

    def test_no_backwards(self):
        clock = SimulatedClock(dt.datetime(2012, 1, 1))
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestExecution:
    def test_successful_run(self, executor, linear_template):
        run = executor.execute(linear_template, {"accession": "P1"}, run_id="r1")
        assert run.succeeded
        assert run.executed_steps() == ["fetch", "shape", "publish"]
        assert "report" in run.outputs

    def test_timestamps_strictly_ordered(self, executor, linear_template):
        run = executor.execute(linear_template, {"accession": "P1"}, run_id="r1")
        assert run.started <= run.step_runs[0].started
        for earlier, later in zip(run.step_runs, run.step_runs[1:]):
            assert earlier.ended <= later.started
        assert run.step_runs[-1].ended <= run.ended

    def test_deterministic_outputs(self, registry, linear_template):
        def one_run():
            clock = SimulatedClock(dt.datetime(2012, 6, 1, 9))
            return DataflowExecutor(registry, clock).execute(
                linear_template, {"accession": "P1"}, run_id="r1"
            )

        assert one_run().outputs["report"].checksum == one_run().outputs["report"].checksum

    def test_missing_input_rejected(self, executor, linear_template):
        with pytest.raises(WorkflowError):
            executor.execute(linear_template, {}, run_id="r1")

    def test_unknown_input_rejected(self, executor, linear_template):
        with pytest.raises(WorkflowError):
            executor.execute(linear_template, {"accession": "x", "extra": 1}, run_id="r1")

    def test_step_inputs_recorded(self, executor, linear_template):
        run = executor.execute(linear_template, {"accession": "P1"}, run_id="r1")
        fetch = run.step("fetch")
        assert fetch.inputs["accession"].value == "P1"
        shape = run.step("shape")
        assert shape.inputs["in"].checksum == fetch.outputs["sequences"].checksum

    def test_step_lookup_missing(self, executor, linear_template):
        run = executor.execute(linear_template, {"accession": "P1"}, run_id="r1")
        with pytest.raises(KeyError):
            run.step("ghost")


class TestFailures:
    def test_fault_truncates_run(self, executor, linear_template):
        run = executor.execute(
            linear_template, {"accession": "P1"}, run_id="r1",
            fault_plan=FaultPlan.single("shape", "illegal-input-value"),
        )
        assert run.failed
        assert run.failed_step == "shape"
        assert run.failure_cause == "illegal-input-value"
        assert run.executed_steps() == ["fetch", "shape"]
        assert run.unexecuted_steps() == ["publish"]
        assert run.outputs == {}

    def test_failed_step_has_end_time(self, executor, linear_template):
        run = executor.execute(
            linear_template, {"accession": "P1"}, run_id="r1",
            fault_plan=FaultPlan.single("fetch", "resource-unavailable"),
        )
        failed = run.step("fetch")
        assert failed.failed and failed.ended is not None
        assert failed.outputs == {}

    def test_run_end_set_even_on_failure(self, executor, linear_template):
        run = executor.execute(
            linear_template, {"accession": "P1"}, run_id="r1",
            fault_plan=FaultPlan.single("fetch", "service-timeout"),
        )
        assert run.ended is not None and run.ended > run.started


class TestParameters:
    def test_parameter_feeds_step(self, executor):
        t = WorkflowTemplate("p1", "param", "wings")
        t.add_input("x")
        t.add_output("y")
        t.add_parameter("threshold", 0.7)
        t.add_processor(Processor(
            "tune", operation="transform",
            inputs=[Port("in"), Port("threshold")], outputs=[Port("out")],
        ))
        t.connect(":x", "tune:in")
        t.connect("tune:out", ":y")
        t.freeze()
        run = executor.execute(t, {"x": "data"}, run_id="r1")
        assert run.succeeded
        assert run.step("tune").inputs["threshold"].value == 0.7


class TestNestedWorkflows:
    def make_nested(self):
        inner = WorkflowTemplate("inner", "inner", "taverna")
        inner.add_input("v")
        inner.add_output("w")
        inner.add_processor(Processor("stage", operation="transform",
                                      inputs=[Port("in")], outputs=[Port("out")]))
        inner.connect(":v", "stage:in")
        inner.connect("stage:out", ":w")
        inner.freeze()
        outer = WorkflowTemplate("outer", "outer", "taverna")
        outer.add_input("x")
        outer.add_output("y")
        outer.add_processor(Processor("sub", inputs=[Port("v")], outputs=[Port("w")],
                                      subworkflow=inner))
        outer.connect(":x", "sub:v")
        outer.connect("sub:w", ":y")
        return outer.freeze()

    def test_nested_run_recorded(self, executor):
        run = executor.execute(self.make_nested(), {"x": "d"}, run_id="r1")
        assert run.succeeded
        sub = run.step("sub")
        assert sub.child_run is not None
        assert sub.child_run.run_id == "r1/sub"
        assert sub.child_run.executed_steps() == ["stage"]
        assert run.outputs["y"].checksum == sub.child_run.outputs["w"].checksum

    def test_fault_inside_nested_propagates(self, executor):
        run = executor.execute(
            self.make_nested(), {"x": "d"}, run_id="r1",
            fault_plan=FaultPlan.single("stage", "illegal-input-value"),
        )
        assert run.failed
        assert run.failed_step == "sub"
        assert run.step("sub").child_run.failed

    def test_fault_on_subworkflow_step_itself(self, executor):
        run = executor.execute(
            self.make_nested(), {"x": "d"}, run_id="r1",
            fault_plan=FaultPlan.single("sub", "resource-unavailable"),
        )
        assert run.failed and run.failed_step == "sub"
        assert run.step("sub").child_run is None
