"""Tests for Taverna-style implicit iteration over list inputs."""

import datetime as dt

import pytest

from repro.workflow import (
    DataflowExecutor,
    FaultPlan,
    Port,
    Processor,
    ServiceRegistry,
    SimulatedClock,
    WorkflowTemplate,
)


def iterating_template():
    """fetch yields a depth-1 list; 'per_item' declares a depth-0 input, so
    the engine must iterate it implicitly; 'collate' takes the whole list."""
    t = WorkflowTemplate("it-wf", "iterating", "taverna")
    t.add_input("accession")
    t.add_output("summary")
    t.add_processor(Processor(
        "fetch", operation="fetch_dataset",
        inputs=[Port("accession")], outputs=[Port("sequences", depth=1)],
        config={"records": 4},
    ))
    t.add_processor(Processor(
        "per_item", operation="transform",
        inputs=[Port("in", depth=0)], outputs=[Port("out")],
        config={"label": "per_item"},
    ))
    t.add_processor(Processor(
        "collate", operation="aggregate",
        inputs=[Port("in", depth=1)], outputs=[Port("out")],
    ))
    t.connect(":accession", "fetch:accession")
    t.connect("fetch:sequences", "per_item:in")
    t.connect("per_item:out", "collate:in")
    t.connect("collate:out", ":summary")
    return t.freeze()


def run_it(fault_plan=None):
    clock = SimulatedClock(dt.datetime(2012, 6, 1, 9))
    executor = DataflowExecutor(ServiceRegistry(), clock)
    return executor.execute(iterating_template(), {"accession": "P1"},
                            run_id="it-run", fault_plan=fault_plan)


class TestImplicitIteration:
    def test_iterates_once_per_element(self):
        run = run_it()
        assert run.succeeded
        per_item = run.step("per_item")
        assert per_item.iterated
        assert len(per_item.iterations) == 4

    def test_collected_output_is_list(self):
        run = run_it()
        per_item = run.step("per_item")
        assert per_item.outputs["out"].is_list
        assert len(per_item.outputs["out"].value) == 4

    def test_iteration_outputs_feed_collection(self):
        run = run_it()
        per_item = run.step("per_item")
        element_outputs = [it.outputs["out"].value for it in per_item.iterations]
        assert per_item.outputs["out"].value == element_outputs

    def test_downstream_receives_collected_list(self):
        run = run_it()
        collate = run.step("collate")
        assert collate.inputs["in"].checksum == run.step("per_item").outputs["out"].checksum
        assert run.outputs["summary"].value["count"] == 4

    def test_iteration_names_and_times(self):
        run = run_it()
        per_item = run.step("per_item")
        names = [it.name for it in per_item.iterations]
        assert names == [f"per_item_it{i}" for i in range(4)]
        for earlier, later in zip(per_item.iterations, per_item.iterations[1:]):
            assert earlier.ended <= later.started

    def test_matching_depth_does_not_iterate(self):
        run = run_it()
        assert not run.step("collate").iterated
        assert not run.step("fetch").iterated

    def test_deterministic(self):
        a, b = run_it(), run_it()
        assert a.outputs["summary"].checksum == b.outputs["summary"].checksum

    def test_fault_fails_first_iteration(self):
        run = run_it(FaultPlan.single("per_item", "illegal-input-value"))
        assert run.failed and run.failed_step == "per_item"
        per_item = run.step("per_item")
        assert len(per_item.iterations) == 1
        assert per_item.iterations[0].failed
        assert run.unexecuted_steps() == ["collate"]


class TestIterationProvenance:
    def test_iterations_exported_as_process_runs(self, registry, clock):
        from repro.prov.rdf_io import to_graph
        from repro.rdf import RDF
        from repro.taverna import TavernaEngine, export_run
        from repro.taverna.provexport import TAVERNAPROV
        from repro.vocab import wfprov

        engine = TavernaEngine(registry, clock)
        run = engine.run(iterating_template(), {"accession": "P1"}, run_id="it-prov")
        graph = to_graph(export_run(run))
        iteration_marks = list(graph.triples(None, TAVERNAPROV.iteration, None))
        assert len(iteration_marks) == 4
        # each iteration is a timestamped wfprov:ProcessRun of the run
        for t in iteration_marks:
            assert (t.subject, RDF.type, wfprov.ProcessRun) in graph
            assert graph.value(subject=t.subject,
                               predicate=graph.namespaces.expand("prov:startedAtTime")) is not None

    def test_trace_remains_constraint_valid(self, registry, clock):
        from repro.prov.constraints import validate_document
        from repro.taverna import TavernaEngine, export_run

        engine = TavernaEngine(registry, clock)
        run = engine.run(iterating_template(), {"accession": "P1"}, run_id="it-valid")
        document = export_run(run)
        errors = [v for v in validate_document(document) if v.severity == "error"]
        assert not errors, [str(e) for e in errors]
