"""Unit tests for the operation library and the simulated service layer."""

import pytest

from repro.workflow.data import DataItem, content_checksum, make_item
from repro.workflow.errors import (
    IllegalInputError,
    ServiceTimeoutError,
    ServiceUnavailableError,
)
from repro.workflow.operations import OPERATIONS, apply_operation, digest, register_operation
from repro.workflow.services import FaultPlan, InjectedFault, Service, ServiceRegistry


class TestDataItem:
    def test_checksum_stable(self):
        assert DataItem([1, 2]).checksum == DataItem([1, 2]).checksum
        assert DataItem([1, 2]).checksum != DataItem([2, 1]).checksum

    def test_size_bytes(self):
        assert DataItem("abc").size_bytes == len('"abc"')

    def test_depth(self):
        assert DataItem("x").depth == 0
        assert DataItem(["x"]).depth == 1
        assert DataItem([["x"]]).depth == 2
        assert DataItem([]).depth == 1

    def test_preview_truncates(self):
        item = DataItem("y" * 200)
        assert len(item.preview()) <= 48
        assert item.preview().endswith("...")

    def test_make_item_passthrough(self):
        item = DataItem("x")
        assert make_item(item) is item
        assert make_item("y").value == "y"

    def test_content_checksum_order_insensitive_keys(self):
        assert content_checksum({"a": 1, "b": 2}) == content_checksum({"b": 2, "a": 1})


class TestOperations:
    def test_determinism(self):
        out1 = apply_operation("transform", {"in": "x"}, {"label": "t"})
        out2 = apply_operation("transform", {"in": "x"}, {"label": "t"})
        assert out1["out"].checksum == out2["out"].checksum

    def test_distinct_inputs_distinct_outputs(self):
        a = apply_operation("transform", {"in": "x"}, {})
        b = apply_operation("transform", {"in": "y"}, {})
        assert a["out"].checksum != b["out"].checksum

    def test_identity(self):
        out = apply_operation("identity", {"in": "val"}, {})
        assert out["out"].value == "val"

    def test_identity_requires_single_input(self):
        with pytest.raises(IllegalInputError):
            apply_operation("identity", {"a": 1, "b": 2}, {})

    def test_fetch_dataset_record_count(self):
        out = apply_operation("fetch_dataset", {"accession": "P1"}, {"records": 4})
        assert len(out["sequences"].value) == 4

    def test_fetch_dataset_rejects_malformed_accession(self):
        with pytest.raises(IllegalInputError):
            apply_operation("fetch_dataset", {"accession": "!bad"}, {})

    def test_split_parts(self):
        out = apply_operation("split", {"in": "x"}, {"parts": 3})
        assert set(out) == {"part1", "part2", "part3"}

    def test_split_requires_two_parts(self):
        with pytest.raises(IllegalInputError):
            apply_operation("split", {"in": "x"}, {"parts": 1})

    def test_merge_combines_all(self):
        out = apply_operation("merge", {"left": "a", "right": "b"}, {})
        merged = out["merged"].value
        assert merged["left"] == "a" and merged["right"] == "b"

    def test_filter_requires_list(self):
        with pytest.raises(IllegalInputError):
            apply_operation("filter", {"in": "scalar"}, {})

    def test_filter_keeps_subset(self):
        items = [f"i{n}" for n in range(10)]
        out = apply_operation("filter", {"in": items}, {"keep_mod": 2})
        assert 0 < len(out["out"].value) < 10

    def test_expand_and_aggregate(self):
        expanded = apply_operation("expand", {"in": "seed"}, {"count": 5})
        assert len(expanded["items"].value) == 5
        summary = apply_operation("aggregate", {"in": expanded["items"].value}, {})
        assert summary["out"].value["count"] == 5

    def test_align_needs_two_records(self):
        with pytest.raises(IllegalInputError):
            apply_operation("align", {"sequences": ["one"]}, {})

    def test_missing_required_input(self):
        with pytest.raises(IllegalInputError):
            apply_operation("align", {}, {})

    def test_unknown_operation(self):
        with pytest.raises(IllegalInputError):
            apply_operation("teleport", {"in": 1}, {})

    def test_register_operation(self):
        def double(inputs, config):
            return {"out": inputs["in"].value * 2}

        register_operation("double_test", double)
        try:
            out = apply_operation("double_test", {"in": 3}, {})
            assert out["out"].value == 6
            with pytest.raises(ValueError):
                register_operation("double_test", double)
        finally:
            del OPERATIONS["double_test"]

    def test_digest_distinguishes_dataitems(self):
        assert digest(DataItem("a")) != digest(DataItem("b"))


class TestServices:
    def test_registry_has_local_component(self):
        reg = ServiceRegistry()
        assert ServiceRegistry.LOCAL in reg

    def test_register_and_get(self):
        reg = ServiceRegistry()
        svc = reg.register(Service("api", kind="rest"))
        assert reg.get("api") is svc
        with pytest.raises(ValueError):
            reg.register(Service("api", kind="rest"))
        with pytest.raises(KeyError):
            reg.get("ghost")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Service("x", kind="carrier-pigeon")

    def test_latency_deterministic_and_remote_slower(self):
        local = Service("l", kind="local")
        remote = Service("r", kind="rest")
        assert local.latency_seconds("ctx") == local.latency_seconds("ctx")
        assert remote.latency_seconds("ctx") > 0.5

    def test_invoke_local(self):
        reg = ServiceRegistry()
        outputs, latency = reg.invoke(None, "transform", {"in": "x"}, {})
        assert "out" in outputs and latency > 0

    def test_invoke_with_injected_unavailability(self):
        reg = ServiceRegistry()
        reg.register(Service("api", kind="rest"))
        fault = InjectedFault("step", "resource-unavailable")
        with pytest.raises(ServiceUnavailableError):
            reg.invoke("api", "transform", {"in": "x"}, {}, fault=fault)

    def test_invoke_with_injected_timeout(self):
        reg = ServiceRegistry()
        with pytest.raises(ServiceTimeoutError):
            reg.invoke(None, "transform", {"in": "x"}, {},
                       fault=InjectedFault("s", "service-timeout"))

    def test_invoke_with_injected_illegal_input(self):
        reg = ServiceRegistry()
        with pytest.raises(IllegalInputError):
            reg.invoke(None, "transform", {"in": "x"}, {},
                       fault=InjectedFault("s", "illegal-input-value"))

    def test_unknown_fault_cause(self):
        with pytest.raises(ValueError):
            InjectedFault("s", "gremlins").raise_fault("svc")

    def test_deadline_exceeded_raises_timeout(self):
        reg = ServiceRegistry()
        reg.register(Service("slow", kind="rest", timeout_s=0.001))
        with pytest.raises(ServiceTimeoutError):
            reg.invoke("slow", "transform", {"in": "x"}, {}, context="c")


class TestFaultPlan:
    def test_single(self):
        plan = FaultPlan.single("step1", "resource-unavailable")
        assert plan.fault_for("step1") is not None
        assert plan.fault_for("other") is None
        assert bool(plan)

    def test_none(self):
        assert not FaultPlan.none()
