"""Unit tests for the workflow template model."""

import pytest

from repro.workflow.errors import WorkflowDefinitionError
from repro.workflow.model import (
    DataLink,
    Parameter,
    Port,
    PortRef,
    Processor,
    WorkflowTemplate,
)


def diamond():
    t = WorkflowTemplate("d1", "diamond", "taverna")
    t.add_input("x")
    t.add_output("y")
    t.add_processor(Processor("src", operation="split",
                              inputs=[Port("in")], outputs=[Port("part1"), Port("part2")]))
    t.add_processor(Processor("l", inputs=[Port("in")], outputs=[Port("out")]))
    t.add_processor(Processor("r", inputs=[Port("in")], outputs=[Port("out")]))
    t.add_processor(Processor("join", operation="merge",
                              inputs=[Port("left"), Port("right")], outputs=[Port("merged")]))
    t.connect(":x", "src:in")
    t.connect("src:part1", "l:in")
    t.connect("src:part2", "r:in")
    t.connect("l:out", "join:left")
    t.connect("r:out", "join:right")
    t.connect("join:merged", ":y")
    return t


class TestPorts:
    def test_port_validation(self):
        assert Port("ok_name").depth == 0
        with pytest.raises(WorkflowDefinitionError):
            Port("bad name")
        with pytest.raises(WorkflowDefinitionError):
            Port("x", depth=-1)

    def test_portref_workflow(self):
        assert PortRef("", "x").is_workflow()
        assert not PortRef("p", "x").is_workflow()


class TestConstruction:
    def test_duplicate_processor_rejected(self):
        t = WorkflowTemplate("t", "t", "taverna")
        t.add_processor(Processor("p"))
        with pytest.raises(WorkflowDefinitionError):
            t.add_processor(Processor("p"))

    def test_duplicate_workflow_port_rejected(self):
        t = WorkflowTemplate("t", "t", "taverna")
        t.add_input("x")
        with pytest.raises(WorkflowDefinitionError):
            t.add_output("x")

    def test_duplicate_parameter_rejected(self):
        t = WorkflowTemplate("t", "t", "wings")
        t.add_parameter("k", 1)
        with pytest.raises(WorkflowDefinitionError):
            t.add_parameter("k", 2)

    def test_unknown_system_rejected(self):
        with pytest.raises(WorkflowDefinitionError):
            WorkflowTemplate("t", "t", "galaxy")

    def test_bad_port_reference_syntax(self):
        t = WorkflowTemplate("t", "t", "taverna")
        with pytest.raises(WorkflowDefinitionError):
            t.connect("noport", "other:port")

    def test_processor_port_lookup(self):
        p = Processor("p", inputs=[Port("a")], outputs=[Port("b")])
        assert p.input_port("a").name == "a"
        assert p.output_port("b").name == "b"
        with pytest.raises(WorkflowDefinitionError):
            p.input_port("zz")


class TestValidation:
    def test_valid_diamond_freezes(self):
        diamond().freeze()

    def test_link_to_unknown_processor(self):
        t = WorkflowTemplate("t", "t", "taverna")
        t.add_input("x")
        t.connect(":x", "ghost:in")
        with pytest.raises(WorkflowDefinitionError):
            t.validate()

    def test_link_to_unknown_port(self):
        t = WorkflowTemplate("t", "t", "taverna")
        t.add_input("x")
        t.add_processor(Processor("p", inputs=[Port("in")], outputs=[Port("out")]))
        t.connect(":x", "p:wrongport")
        with pytest.raises(WorkflowDefinitionError):
            t.validate()

    def test_unfed_input_port_rejected(self):
        t = WorkflowTemplate("t", "t", "taverna")
        t.add_processor(Processor("p", inputs=[Port("in")], outputs=[Port("out")]))
        with pytest.raises(WorkflowDefinitionError):
            t.validate()

    def test_parameter_feeds_port(self):
        t = WorkflowTemplate("t", "t", "wings")
        t.add_parameter("threshold", 0.5)
        t.add_output("y")
        t.add_processor(Processor("p", inputs=[Port("threshold")], outputs=[Port("out")]))
        t.connect("p:out", ":y")
        t.validate()  # threshold port fed by parameter

    def test_unfed_workflow_output_rejected(self):
        t = WorkflowTemplate("t", "t", "taverna")
        t.add_output("y")
        with pytest.raises(WorkflowDefinitionError):
            t.validate()

    def test_cycle_rejected(self):
        t = WorkflowTemplate("t", "t", "taverna")
        t.add_processor(Processor("a", inputs=[Port("in")], outputs=[Port("out")]))
        t.add_processor(Processor("b", inputs=[Port("in")], outputs=[Port("out")]))
        t.connect("a:out", "b:in")
        t.connect("b:out", "a:in")
        with pytest.raises(WorkflowDefinitionError):
            t.validate()


class TestAnalysis:
    def test_topological_order_respects_dependencies(self):
        order = [p.name for p in diamond().topological_order()]
        assert order.index("src") < order.index("l")
        assert order.index("l") < order.index("join")
        assert order.index("r") < order.index("join")

    def test_topological_order_deterministic(self):
        assert [p.name for p in diamond().topological_order()] == [
            p.name for p in diamond().topological_order()
        ]

    def test_upstream_downstream(self):
        t = diamond()
        assert set(t.upstream_of("join")) == {"l", "r"}
        assert set(t.downstream_of("src")) == {"l", "r"}
        assert t.upstream_of("src") == []

    def test_remote_steps(self):
        t = WorkflowTemplate("t", "t", "taverna")
        t.add_processor(Processor("local", outputs=[Port("out")]))
        t.add_processor(Processor("remote", outputs=[Port("out")], service="svc"))
        assert t.remote_steps() == ["remote"]

    def test_size(self):
        assert diamond().size() == (4, 6)

    def test_links_into_out_of(self):
        t = diamond()
        assert len(list(t.links_into("join"))) == 2
        assert len(list(t.links_out_of("src"))) == 2
