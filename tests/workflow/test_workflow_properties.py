"""Property-based tests for the workflow substrate.

Invariants:

* topological order of randomly generated DAGs respects every edge;
* execution is deterministic: same template + inputs → same output checksums;
* a fault at any step truncates the run exactly at that step's level:
  no step downstream of the failed one executes;
* step timestamps are consistent with the template's dependency order.
"""

import datetime as dt

from hypothesis import given, settings, strategies as st

from repro.workflow import (
    DataflowExecutor,
    FaultPlan,
    Port,
    Processor,
    ServiceRegistry,
    SimulatedClock,
    WorkflowTemplate,
)


@st.composite
def layered_templates(draw):
    """A random layered DAG template (always valid and executable).

    Layer 0 is a fetch step fed by the workflow input; each later step
    consumes the output of one random earlier step (transform), keeping
    every port fed and the graph acyclic by construction.
    """
    n_steps = draw(st.integers(min_value=2, max_value=7))
    t = WorkflowTemplate("prop-wf", "prop_wf", "taverna")
    t.add_input("seed")
    t.add_output("result")
    t.add_processor(Processor(
        "step0", operation="fetch_dataset",
        inputs=[Port("accession")], outputs=[Port("sequences", depth=1)],
    ))
    t.connect(":seed", "step0:accession")
    outputs = {"step0": "sequences"}
    for index in range(1, n_steps):
        feeder_index = draw(st.integers(min_value=0, max_value=index - 1))
        feeder = f"step{feeder_index}"
        name = f"step{index}"
        t.add_processor(Processor(
            name, operation="transform",
            inputs=[Port("in")], outputs=[Port("out")],
            config={"label": name},
        ))
        t.connect(f"{feeder}:{outputs[feeder]}", f"{name}:in")
        outputs[name] = "out"
    last = f"step{n_steps - 1}"
    t.connect(f"{last}:{outputs[last]}", ":result")
    return t.freeze()


def run_template(template, fault_plan=None):
    clock = SimulatedClock(dt.datetime(2012, 6, 1, 9))
    executor = DataflowExecutor(ServiceRegistry(), clock)
    return executor.execute(template, {"seed": "S1"}, run_id="prop-run",
                            fault_plan=fault_plan)


@settings(max_examples=40, deadline=None)
@given(layered_templates())
def test_topological_order_respects_edges(template):
    order = [p.name for p in template.topological_order()]
    position = {name: i for i, name in enumerate(order)}
    for link in template.links:
        if not link.source.is_workflow() and not link.sink.is_workflow():
            assert position[link.source.processor] < position[link.sink.processor]


@settings(max_examples=25, deadline=None)
@given(layered_templates())
def test_execution_deterministic(template):
    first = run_template(template)
    second = run_template(template)
    assert first.succeeded and second.succeeded
    assert first.outputs["result"].checksum == second.outputs["result"].checksum


@settings(max_examples=25, deadline=None)
@given(layered_templates(), st.data())
def test_fault_truncates_downstream(template, data):
    step_names = [p.name for p in template.topological_order()]
    victim = data.draw(st.sampled_from(step_names))
    run = run_template(template, FaultPlan.single(victim, "illegal-input-value"))
    assert run.failed and run.failed_step == victim
    executed = set(run.executed_steps())
    # nothing transitively downstream of the victim executed
    frontier = [victim]
    downstream = set()
    while frontier:
        current = frontier.pop()
        for name in template.downstream_of(current):
            if name not in downstream:
                downstream.add(name)
                frontier.append(name)
    assert not downstream & executed


@settings(max_examples=25, deadline=None)
@given(layered_templates())
def test_step_times_follow_dependencies(template):
    run = run_template(template)
    end_of = {s.name: s.ended for s in run.step_runs}
    start_of = {s.name: s.started for s in run.step_runs}
    for link in template.links:
        if link.source.is_workflow() or link.sink.is_workflow():
            continue
        assert end_of[link.source.processor] <= start_of[link.sink.processor]


@settings(max_examples=25, deadline=None)
@given(layered_templates())
def test_every_step_input_has_producer_output(template):
    run = run_template(template)
    produced = {item.checksum for step in run.step_runs for item in step.outputs.values()}
    produced |= {item.checksum for item in run.inputs.values()}
    for step in run.step_runs:
        for item in step.inputs.values():
            assert item.checksum in produced
