"""Tests for the Markdown reproduction report and the new CLI commands."""

import json

import pytest

from repro.cli import main
from repro.report import build_report


@pytest.fixture(scope="module")
def report_text(corpus):
    return build_report(corpus)


class TestReport:
    def test_all_sections_present(self, report_text):
        for heading in (
            "# Reproduction report",
            "## Table 1",
            "## Figure 1",
            "## Section 2",
            "## Table 2",
            "## Table 3",
            "## Section 3",
            "## Corpus profile",
        ):
            assert heading in report_text, heading

    def test_no_deviations(self, report_text):
        assert "DEVIATES" not in report_text
        assert "**identical to the paper**" in report_text

    def test_paper_numbers_present(self, report_text):
        assert "| Workflows | 120 | 120 |" in report_text
        assert "| Workflow runs | 198 | 198 |" in report_text
        assert "| Failed runs | 30 | 30 |" in report_text
        assert "| **Total** | **70** | **50** | **120** |" in report_text

    def test_starred_cells_rendered(self, report_text):
        assert "inferred (*)" in report_text

    def test_maintenance_verdict(self, report_text):
        assert "corpus aligned" in report_text

    def test_is_valid_markdown_tables(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.rstrip().endswith("|"), line


class TestNewCliCommands:
    def test_report_command(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out

    def test_maintenance_command(self, capsys):
        assert main(["maintenance"]) == 0
        assert "corpus aligned" in capsys.readouterr().out

    def test_profile_command(self, capsys):
        assert main(["profile"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traces"] == 198

    def test_ro_command(self, capsys):
        assert main(["ro", "t-bioinformatics-01"]) == 0
        out = capsys.readouterr().out
        assert "ro:ResearchObject" in out

    def test_ro_unknown_template(self, capsys):
        assert main(["ro", "ghost"]) == 1
