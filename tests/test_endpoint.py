"""Tests for the SPARQL endpoint (server + client)."""

import json
import socket
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.endpoint import SparqlClient, SparqlEndpoint
from repro.rdf import Dataset, Graph, Namespace, PROV, RDF

EX = Namespace("http://example.org/")


@pytest.fixture(scope="module")
def endpoint():
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add((EX.r1, RDF.type, PROV.Activity))
    g.add((EX.r2, RDF.type, PROV.Activity))
    g.add((EX.e1, RDF.type, PROV.Entity))
    server = SparqlEndpoint(g).start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def client(endpoint):
    return SparqlClient(endpoint.query_url)


class TestProtocol:
    def test_get_select(self, client):
        rows = client.query("SELECT ?x WHERE { ?x a prov:Activity } ORDER BY ?x")
        assert [r["x"] for r in rows] == ["http://example.org/r1", "http://example.org/r2"]

    def test_post_sparql_query_body(self, client):
        rows = client.query("SELECT (COUNT(?x) AS ?n) WHERE { ?x a prov:Activity }",
                            method="POST")
        assert rows[0]["n"] == 2

    def test_post_form_encoded(self, endpoint):
        import urllib.parse

        body = urllib.parse.urlencode({"query": "ASK { ?x a prov:Entity }"}).encode()
        request = urllib.request.Request(
            endpoint.query_url, data=body,
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            assert json.loads(response.read())["boolean"] is True

    def test_ask(self, client):
        assert client.query("ASK { ?x a prov:Activity }") is True
        assert client.query("ASK { ?x prov:used ?y }") is False

    def test_csv_accept_header(self, endpoint):
        import urllib.parse

        url = endpoint.query_url + "?" + urllib.parse.urlencode(
            {"query": "SELECT ?x WHERE { ?x a prov:Entity }"}
        )
        request = urllib.request.Request(url, headers={"Accept": "text/csv"})
        with urllib.request.urlopen(request, timeout=5) as response:
            text = response.read().decode()
        assert text.splitlines()[0] == "x"

    def test_service_description(self, endpoint):
        with urllib.request.urlopen(endpoint.url + "/", timeout=5) as response:
            payload = json.loads(response.read())
        assert payload["sparql"] == "/sparql"
        assert payload["triples"] == 3

    def test_malformed_query_400(self, endpoint):
        import urllib.parse

        url = endpoint.query_url + "?" + urllib.parse.urlencode({"query": "SELEC bogus"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(url, timeout=5)
        assert err.value.code == 400

    def test_missing_query_param_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(endpoint.query_url, timeout=5)
        assert err.value.code == 400

    def test_unknown_path_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(endpoint.url + "/other", timeout=5)
        assert err.value.code == 404

    def test_client_decodes_numbers(self, client):
        rows = client.query("SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?o }")
        assert isinstance(rows[0]["n"], int)

    def test_post_honors_declared_charset(self, endpoint):
        query = "SELECT ?x WHERE { ?x a prov:Activity } ORDER BY ?x"
        request = urllib.request.Request(
            endpoint.query_url,
            data=query.encode("utf-16"),
            headers={"Content-Type": "application/sparql-query; charset=utf-16"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            payload = json.loads(response.read())
        assert len(payload["results"]["bindings"]) == 2

    def test_post_undecodable_body_400(self, endpoint):
        request = urllib.request.Request(
            endpoint.query_url,
            data=b"\xff\xfe\xff invalid",
            headers={"Content-Type": "application/sparql-query; charset=utf-8"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 400

    def test_post_content_length_mismatch_400(self, endpoint):
        """A body shorter than its declared Content-Length is a client error."""
        host, port = endpoint._server.server_address[:2]
        body = b"query=ASK%20%7B%20%3Fx%20a%20prov%3AEntity%20%7D"
        request = (
            b"POST /sparql HTTP/1.1\r\n"
            b"Host: test\r\n"
            b"Content-Type: application/x-www-form-urlencoded\r\n"
            + f"Content-Length: {len(body) + 50}\r\n".encode()
            + b"Connection: close\r\n\r\n"
            + body
        )
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(request)
            sock.shutdown(socket.SHUT_WR)  # short body: server sees EOF early
            response = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line, status_line

    def test_stats_route(self, endpoint, client):
        client.query("ASK { ?x a prov:Activity }")
        client.query("ASK { ?x a prov:Activity }")
        stats = client.stats()
        assert stats["result_cache"]["hits"] >= 1
        assert stats["result_cache"]["maxsize"] > 0
        assert stats["requests"]["count"] >= 2
        assert stats["requests"]["avg_ms"] >= 0
        assert stats["version"] >= 0

    def test_query_duration_header(self, endpoint):
        url = endpoint.query_url + "?" + urllib.parse.urlencode(
            {"query": "ASK { ?x a prov:Entity }"}
        )
        with urllib.request.urlopen(url, timeout=5) as response:
            assert float(response.headers["X-Query-Duration-ms"]) >= 0

    def test_slowlog_route_disabled_by_default(self, endpoint):
        with urllib.request.urlopen(endpoint.url + "/slowlog", timeout=5) as response:
            payload = json.loads(response.read())
        assert payload["enabled"] is False
        assert payload["entries"] == []

    def test_inflight_gauge_zero_at_rest(self, endpoint):
        # The handler already dec'd by the time the body is written, so a
        # scrape observing itself still reports 0 once responses finish.
        with urllib.request.urlopen(endpoint.url + "/metrics", timeout=5) as response:
            body = response.read().decode()
        lines = [l for l in body.splitlines()
                 if l.startswith("repro_endpoint_inflight_requests")
                 and not l.startswith("repro_endpoint_inflight_requests{")]
        values = [float(l.split()[-1]) for l in lines if not l.startswith("#")]
        assert values == [0.0]


class TestCorpusEndpoint:
    def test_exemplar_query_over_http(self, corpus_dataset):
        from repro.queries import Q1_WORKFLOW_RUNS

        with SparqlEndpoint(corpus_dataset) as server:
            client = SparqlClient(server.query_url)
            rows = client.query(Q1_WORKFLOW_RUNS)
        assert len(rows) == 198


def _run_dataset(n_runs: int) -> Dataset:
    """A miniature wfprov dataset: n top-level runs with start times."""
    from repro.rdf import WFPROV, from_python
    import datetime as dt

    ds = Dataset()
    ds.namespaces.bind("ex", EX)
    for i in range(n_runs):
        _add_run(ds, i)
    return ds


def _add_run(ds: Dataset, i: int) -> None:
    from repro.rdf import WFPROV, from_python
    import datetime as dt

    run = EX[f"run{i}"]
    ds.default.add((run, RDF.type, WFPROV.WorkflowRun))
    ds.default.add((run, PROV.startedAtTime, from_python(dt.datetime(2013, 1, 1) + dt.timedelta(minutes=i))))
    ds.default.add((run, PROV.wasAssociatedWith, EX.engine))
    ds.default.add((EX[f"out{i}"], PROV.wasGeneratedBy, run))


class TestCacheInvalidationOverHttp:
    def test_mutation_between_requests_observed_via_stats(self):
        """A write between two identical requests must bump the version
        seen at /stats and force a recompute (miss), never a stale hit."""
        from repro.queries import Q1_WORKFLOW_RUNS

        ds = _run_dataset(3)
        with SparqlEndpoint(ds) as server:
            client = SparqlClient(server.query_url)
            assert len(client.query(Q1_WORKFLOW_RUNS)) == 3
            assert len(client.query(Q1_WORKFLOW_RUNS)) == 3  # warm hit
            stats_before = client.stats()
            assert stats_before["result_cache"]["hits"] == 1
            _add_run(ds, 3)  # writer mutates the live dataset
            assert len(client.query(Q1_WORKFLOW_RUNS)) == 4  # not stale
            stats_after = client.stats()
            assert stats_after["version"] > stats_before["version"]
            assert stats_after["result_cache"]["hits"] == 1  # miss, not hit
            assert stats_after["result_cache"]["misses"] > stats_before["result_cache"]["misses"]


@pytest.mark.slow
class TestConcurrentEndpoint:
    def test_sixteen_readers_with_live_writer(self):
        """16 threads hammer /sparql with mixed exemplar-style queries
        while a writer keeps adding runs; nobody may see a result older
        than the committed state at the time their request started."""
        ds = _run_dataset(4)
        queries = [
            # Q1-style: runs with start times
            "SELECT ?run ?start WHERE { ?run a wfprov:WorkflowRun ; prov:startedAtTime ?start } ORDER BY ?start",
            # Q2-style: aggregate count of runs
            "SELECT (COUNT(?run) AS ?n) WHERE { ?run a wfprov:WorkflowRun }",
            # Q3-style: runs with outputs
            "SELECT ?run ?out WHERE { ?run a wfprov:WorkflowRun . OPTIONAL { ?out prov:wasGeneratedBy ?run } }",
            # Q5-style: who executed
            "SELECT DISTINCT ?agent WHERE { ?run prov:wasAssociatedWith ?agent }",
            # ASK flavor
            "ASK { ?run a wfprov:WorkflowRun }",
            # CONSTRUCT flavor
            "CONSTRUCT { ?run a prov:Activity } WHERE { ?run a wfprov:WorkflowRun }",
        ]
        committed = [4]
        errors = []
        stop = threading.Event()

        with SparqlEndpoint(ds) as server:
            count_url = server.query_url + "?" + urllib.parse.urlencode(
                {"query": "SELECT (COUNT(?run) AS ?n) WHERE { ?run a wfprov:WorkflowRun }"}
            )

            def reader(worker: int):
                client = SparqlClient(server.query_url)
                k = 0
                while not stop.is_set():
                    floor = committed[-1]
                    query = queries[(worker + k) % len(queries)]
                    k += 1
                    try:
                        if query.startswith("CONSTRUCT"):
                            url = server.query_url + "?" + urllib.parse.urlencode({"query": query})
                            with urllib.request.urlopen(url, timeout=10) as response:
                                response.read()  # Turtle body, not JSON-decodable
                        else:
                            client.query(query, method="GET" if k % 2 else "POST")
                        with urllib.request.urlopen(count_url, timeout=10) as response:
                            payload = json.loads(response.read())
                        n = int(payload["results"]["bindings"][0]["n"]["value"])
                    except Exception as exc:  # noqa: BLE001 - fail the test
                        errors.append(f"worker {worker}: {exc!r}")
                        return
                    if n < floor:
                        errors.append(f"worker {worker}: stale count {n} < {floor}")
                        return

            threads = [threading.Thread(target=reader, args=(w,)) for w in range(16)]
            for t in threads:
                t.start()
            for i in range(4, 40):
                _add_run(ds, i)
                committed.append(i + 1)
            stop.set()
            for t in threads:
                t.join(timeout=30)
            assert not errors, errors[:5]
            stats = server.stats()
            assert stats["requests"]["count"] > 0
            assert stats["result_cache"]["hits"] + stats["result_cache"]["misses"] > 0


class TestStoreBackedEndpoint:
    """The endpoint served from a persistent quad store (read path only)."""

    @pytest.fixture()
    def store_endpoint(self, tmp_path):
        from repro.store import QuadStore, StoreDataset

        store = QuadStore(tmp_path / "store")
        store.begin_file("t.ttl", "00" * 32)
        ids = [store.add_term(t) for t in (EX.r1, RDF.type, PROV.Activity, EX.e1, PROV.Entity)]
        store.add_quad(ids[0], ids[1], ids[2])
        store.add_quad(ids[3], ids[1], ids[4])
        store.commit_file()
        store.compact()
        with SparqlEndpoint(StoreDataset(store)) as server:
            yield server
        store.close()

    def test_queries_answer_from_store(self, store_endpoint):
        client = SparqlClient(store_endpoint.query_url)
        rows = client.query("SELECT ?x WHERE { ?x a prov:Activity }")
        assert [r["x"] for r in rows] == ["http://example.org/r1"]
        assert client.query("ASK { ?x a prov:Entity }") is True

    def test_stats_reports_store_section(self, store_endpoint):
        client = SparqlClient(store_endpoint.query_url)
        client.query("ASK { ?x a prov:Activity }")
        stats = client.stats()
        assert stats["store"]["quads"] == 2
        assert stats["store"]["segments"]["spog"]["records"] == 2
        assert stats["store"]["decoded_term_cache"]["maxsize"] > 0
        assert stats["version"] == stats["store"]["generation"]

    def test_in_memory_endpoint_has_no_store_section(self, endpoint, client):
        assert "store" not in client.stats()


class TestObservedEndpoint:
    """The endpoint with an obs dir: folded scrapes and CKMS quantiles."""

    @pytest.fixture()
    def obs_endpoint(self, tmp_path):
        from repro.obs import shm

        g = Graph()
        g.namespaces.bind("ex", EX)
        g.add((EX.r1, RDF.type, PROV.Activity))
        with SparqlEndpoint(g, obs_dir=str(tmp_path / "obs")) as server:
            yield server, tmp_path / "obs"
        shm.unconfigure()

    def _scrape(self, server):
        with urllib.request.urlopen(server.url + "/metrics", timeout=5) as response:
            return response.read().decode()

    def test_metrics_folds_foreign_shards(self, obs_endpoint):
        from repro.obs import shm

        server, obs_dir = obs_endpoint
        # Plant a shard as if a pool worker (different pid) left it behind.
        writer = shm.ShardWriter(obs_dir)
        writer.set("repro_worker_planted_total", (), "", shm.KIND_COUNTER, 11.0)
        writer.close()
        data = bytearray(writer.path.read_bytes())
        import struct

        struct.pack_into("<I", data, 8, 2 ** 22 + 3)
        writer.path.write_bytes(bytes(data))
        body = self._scrape(server)
        assert "repro_worker_planted_total 11" in body

    def test_request_quantiles_exposed_after_traffic(self, obs_endpoint):
        server, _ = obs_endpoint
        client = SparqlClient(server.query_url)
        for _ in range(5):
            client.query("ASK { ?x a prov:Activity }")
        body = self._scrape(server)
        assert "# TYPE repro_endpoint_request_seconds summary" in body
        assert 'repro_endpoint_request_seconds{route="/sparql",quantile="0.99"}' in body
        assert 'repro_endpoint_request_seconds_count{route="/sparql"} 5' in body
        # Query latency by plan digest rides the same exposition.
        assert "# TYPE repro_query_plan_seconds summary" in body
        assert 'quantile="0.99"' in body

    def test_stats_reports_shards_and_quantiles(self, obs_endpoint):
        server, obs_dir = obs_endpoint
        client = SparqlClient(server.query_url)
        client.query("ASK { ?x a prov:Activity }")
        stats = client.stats()
        assert stats["obs"]["dir"] == str(obs_dir)
        own = [s for s in stats["obs"]["shards"] if s["alive"]]
        assert own and all(s["age_s"] >= 0 for s in own)
        quantiles = stats["latency_quantiles"]
        assert quantiles["requests"]["/sparql"]["count"] >= 1
        assert "0.99" in quantiles["requests"]["/sparql"]["quantiles"]
        assert quantiles["plans"], "plan-digest sketch must capture the query"

    def test_unobserved_endpoint_has_no_obs_section(self, endpoint, client):
        stats = client.stats()
        assert "obs" not in stats
        assert "latency_quantiles" in stats  # quantiles are always on
