"""Tests for the SPARQL endpoint (server + client)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.endpoint import SparqlClient, SparqlEndpoint
from repro.rdf import Graph, Namespace, PROV, RDF

EX = Namespace("http://example.org/")


@pytest.fixture(scope="module")
def endpoint():
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add((EX.r1, RDF.type, PROV.Activity))
    g.add((EX.r2, RDF.type, PROV.Activity))
    g.add((EX.e1, RDF.type, PROV.Entity))
    server = SparqlEndpoint(g).start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def client(endpoint):
    return SparqlClient(endpoint.query_url)


class TestProtocol:
    def test_get_select(self, client):
        rows = client.query("SELECT ?x WHERE { ?x a prov:Activity } ORDER BY ?x")
        assert [r["x"] for r in rows] == ["http://example.org/r1", "http://example.org/r2"]

    def test_post_sparql_query_body(self, client):
        rows = client.query("SELECT (COUNT(?x) AS ?n) WHERE { ?x a prov:Activity }",
                            method="POST")
        assert rows[0]["n"] == 2

    def test_post_form_encoded(self, endpoint):
        import urllib.parse

        body = urllib.parse.urlencode({"query": "ASK { ?x a prov:Entity }"}).encode()
        request = urllib.request.Request(
            endpoint.query_url, data=body,
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            assert json.loads(response.read())["boolean"] is True

    def test_ask(self, client):
        assert client.query("ASK { ?x a prov:Activity }") is True
        assert client.query("ASK { ?x prov:used ?y }") is False

    def test_csv_accept_header(self, endpoint):
        import urllib.parse

        url = endpoint.query_url + "?" + urllib.parse.urlencode(
            {"query": "SELECT ?x WHERE { ?x a prov:Entity }"}
        )
        request = urllib.request.Request(url, headers={"Accept": "text/csv"})
        with urllib.request.urlopen(request, timeout=5) as response:
            text = response.read().decode()
        assert text.splitlines()[0] == "x"

    def test_service_description(self, endpoint):
        with urllib.request.urlopen(endpoint.url + "/", timeout=5) as response:
            payload = json.loads(response.read())
        assert payload["sparql"] == "/sparql"
        assert payload["triples"] == 3

    def test_malformed_query_400(self, endpoint):
        import urllib.parse

        url = endpoint.query_url + "?" + urllib.parse.urlencode({"query": "SELEC bogus"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(url, timeout=5)
        assert err.value.code == 400

    def test_missing_query_param_400(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(endpoint.query_url, timeout=5)
        assert err.value.code == 400

    def test_unknown_path_404(self, endpoint):
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(endpoint.url + "/other", timeout=5)
        assert err.value.code == 404

    def test_client_decodes_numbers(self, client):
        rows = client.query("SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?o }")
        assert isinstance(rows[0]["n"], int)


class TestCorpusEndpoint:
    def test_exemplar_query_over_http(self, corpus_dataset):
        from repro.queries import Q1_WORKFLOW_RUNS

        with SparqlEndpoint(corpus_dataset) as server:
            client = SparqlClient(server.query_url)
            rows = client.query(Q1_WORKFLOW_RUNS)
        assert len(rows) == 198
