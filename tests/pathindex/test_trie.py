"""The generalized trie over per-run activity sequences.

Every query the trie answers is brute-forced against the raw sequences
it was built from — `run_sequences` is the shared ground truth.
"""

from __future__ import annotations

import pytest

from repro.pathindex import build_trie_bytes, run_sequences
from repro.pathindex.trie import TrieReader


@pytest.fixture(scope="module")
def sequences(indexed_store):
    return run_sequences(indexed_store)


@pytest.fixture(scope="module")
def trie(indexed_store):
    return indexed_store.path_index().trie


def _contains(sequence, pattern):
    n, m = len(sequence), len(pattern)
    return any(sequence[i:i + m] == pattern for i in range(n - m + 1))


def test_sequences_cover_the_corpus(sequences):
    assert len(sequences) > 100  # one per run/account with linked steps
    assert all(seq for seq in sequences.values())


def test_single_step_patterns(trie, sequences):
    labels = {label for seq in sequences.values() for label in seq}
    sample = sorted(labels)[::17]
    for label in sample:
        expected = sorted(r for r, seq in sequences.items() if label in seq)
        assert trie.runs_matching([label]) == expected


def test_contiguous_subpatterns_from_real_runs(trie, sequences):
    checked = 0
    for run_id, seq in sorted(sequences.items())[::13]:
        for length in (2, 3, len(seq)):
            if length > len(seq):
                continue
            pattern = list(seq[:length])
            matches = trie.runs_matching(pattern)
            expected = sorted(
                r for r, s in sequences.items() if _contains(list(s), pattern)
            )
            assert matches == expected
            assert run_id in matches
            checked += 1
    assert checked > 10


def test_non_prefix_subpattern_matches(trie, sequences):
    """Generalized (all-suffixes) insertion: any mid-sequence window is a
    prefix walk, not just sequence heads."""
    run_id, seq = next(
        (r, s) for r, s in sorted(sequences.items()) if len(s) >= 3
    )
    middle = list(seq[1:3])
    assert run_id in trie.runs_matching(middle)


def test_empty_and_absent_patterns(trie, sequences):
    assert trie.runs_matching([]) == sorted(sequences)
    assert trie.runs_matching([2**31]) == []


def test_support_counts(trie, sequences):
    labels = sorted({label for seq in sequences.values() for label in seq})
    label = labels[len(labels) // 2]
    expected = sum(1 for seq in sequences.values() if label in seq)
    assert trie.support([label]) == expected


def test_frequent_patterns_against_bruteforce(trie, sequences):
    patterns = trie.frequent_patterns(min_support=3, min_length=2, max_patterns=25)
    assert patterns, "the corpus reruns templates, so shared patterns must exist"
    supports = [support for _, support in patterns]
    assert supports == sorted(supports, reverse=True)
    for pattern, support in patterns:
        expected = sum(
            1 for seq in sequences.values() if _contains(list(seq), list(pattern))
        )
        assert support == expected >= 3
        assert len(pattern) >= 2


def test_trie_round_trip(tmp_path, sequences):
    target = tmp_path / "trie.bin"
    target.write_bytes(build_trie_bytes(sequences))
    reader = TrieReader(target)
    assert reader.ok
    assert reader.runs_matching([]) == sorted(sequences)
    reader.close()


def test_build_is_deterministic(sequences):
    assert build_trie_bytes(sequences) == build_trie_bytes(sequences)
