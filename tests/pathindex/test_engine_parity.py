"""Engine-level parity and introspection for index-served path queries."""

from __future__ import annotations

import pytest

from repro.sparql import QueryEngine

LINEAGE = """
PREFIX prov: <http://www.w3.org/ns/prov#>
SELECT ?out ?src WHERE { ?out (prov:used|^prov:wasGeneratedBy)+ ?src }
"""
SEQUENCE = """
PREFIX prov: <http://www.w3.org/ns/prov#>
SELECT ?a ?b WHERE { ?a (prov:used/prov:wasGeneratedBy)+ ?b }
"""
STAR = """
PREFIX prov: <http://www.w3.org/ns/prov#>
SELECT ?a ?b WHERE { ?a prov:used* ?b }
"""
QUERIES = {"lineage": LINEAGE, "sequence": SEQUENCE, "star": STAR}


def _rows(engine, text):
    return [str(row) for row in engine.query(text)]


@pytest.fixture(scope="module")
def store_dataset(indexed_store):
    from repro.store import StoreDataset

    return StoreDataset(indexed_store)


@pytest.mark.parametrize("name", sorted(QUERIES))
@pytest.mark.parametrize("optimize", [True, False], ids=["opt", "noopt"])
def test_rows_identical_index_on_off(store_dataset, name, optimize):
    on = QueryEngine(store_dataset, optimize_joins=optimize, path_index=True,
                     cache_size=0)
    off = QueryEngine(store_dataset, optimize_joins=optimize, path_index=False,
                      cache_size=0)
    assert _rows(on, QUERIES[name]) == _rows(off, QUERIES[name])


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_rows_match_memory(store_dataset, corpus_dataset, name):
    stored = QueryEngine(store_dataset, cache_size=0)
    memory = QueryEngine(corpus_dataset, cache_size=0)
    assert sorted(_rows(stored, QUERIES[name])) == sorted(_rows(memory, QUERIES[name]))


def test_explain_annotates_index_step(store_dataset, corpus_dataset):
    plan = QueryEngine(store_dataset).explain(SEQUENCE).to_text()
    assert "join=pathindex" in plan
    assert "ordering=fwd" in plan
    # In-memory plans are unchanged: no index, no annotation.
    assert "pathindex" not in QueryEngine(corpus_dataset).explain(SEQUENCE).to_text()


def test_profile_annotates_index_step(store_dataset):
    profile = QueryEngine(store_dataset).profile(SEQUENCE)
    assert "pathindex" in profile.to_text()


def test_metrics_counter_counts_dispatch(store_dataset, corpus_dataset):
    from repro.obs import metrics

    def counts():
        out = {}
        for line in metrics.render().splitlines():
            if line.startswith("repro_pathindex_total{"):
                label, value = line.split(" ")
                out[label.split('"')[1]] = float(value)
        return out

    before = counts()
    list(QueryEngine(store_dataset, cache_size=0).query(SEQUENCE))
    after_hit = counts()
    assert after_hit["hit"] == before.get("hit", 0) + 1

    list(QueryEngine(store_dataset, cache_size=0).query(STAR))
    after_star = counts()  # p* both unbound: index cannot serve it
    assert after_star["fallback"] == after_hit.get("fallback", 0) + 1

    list(QueryEngine(corpus_dataset, cache_size=0).query(SEQUENCE))
    after_memory = counts()
    assert after_memory["no-index"] == after_star.get("no-index", 0) + 1
