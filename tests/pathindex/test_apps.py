"""Apps-layer fast paths ride the index and agree with decoded traversal."""

from __future__ import annotations

import pytest

from repro.apps.dependencies import DependencyAnalyzer
from repro.prov.constants import PROV


@pytest.fixture(scope="module")
def fast(store_union):
    analyzer = DependencyAnalyzer(store_union)
    assert analyzer.uses_index
    return analyzer


@pytest.fixture(scope="module")
def slow(store_union):
    analyzer = DependencyAnalyzer(store_union)
    analyzer._index = None  # force the decoded route over the same graph
    return analyzer


@pytest.fixture(scope="module")
def entities(store_union):
    generated = sorted(
        {t.subject for t in store_union.triples(None, PROV.wasGeneratedBy, None)},
        key=lambda term: term.value,
    )
    return generated[::29][:24]


def test_transitive_dependencies_agree(fast, slow, entities):
    nonempty = 0
    for entity in entities:
        expected = slow.transitive_dependencies(entity)
        assert fast.transitive_dependencies(entity) == expected
        nonempty += bool(expected)
    assert nonempty > 0


def test_dependents_agree(fast, slow, entities):
    nonempty = 0
    for entity in entities:
        expected = slow.dependents_of(entity)
        assert fast.dependents_of(entity) == expected
        nonempty += bool(expected)
    assert nonempty > 0


def test_derivation_paths_agree(fast, slow, entities):
    checked = 0
    for entity in entities:
        sources = sorted(
            slow.transitive_dependencies(entity), key=lambda term: term.value
        )
        for source in sources[:2]:
            indexed = fast.derivation_path(entity, source)
            decoded = slow.derivation_path(entity, source)
            assert indexed is not None and decoded is not None
            # Both are valid chains of equal (shortest) length with the
            # same endpoints; intermediate hops may differ on ties.
            assert len(indexed) == len(decoded)
            assert indexed[0] == decoded[0] == entity
            assert indexed[-1] == decoded[-1] == source
            adjacent = {
                (d.product, d.source)
                for node in indexed
                for d in slow.direct_dependencies(node)
            }
            for product, src in zip(indexed, indexed[1:]):
                assert (product, src) in adjacent
            checked += 1
    assert checked > 5


def test_trivial_and_absent_paths(fast, slow, entities):
    from repro.rdf.terms import IRI

    entity = next(e for e in entities if slow.transitive_dependencies(e))
    assert fast.derivation_path(entity, entity) == [entity]
    nowhere = IRI("http://example.org/not-in-the-corpus")
    assert fast.derivation_path(entity, nowhere) is None
    assert slow.derivation_path(entity, nowhere) is None
    assert fast.transitive_dependencies(nowhere) == set()
    assert fast.dependents_of(nowhere) == set()


def test_memory_graph_agrees(memory_union, store_union, entities):
    memory = DependencyAnalyzer(memory_union)
    assert not memory.uses_index
    stored = DependencyAnalyzer(store_union)
    for entity in entities[:8]:
        assert memory.transitive_dependencies(entity) == \
            stored.transitive_dependencies(entity)


def test_decay_upstream_drivers(store_union, corpus):
    from repro.apps.decay import DecayDetector

    detector = DecayDetector(corpus)
    analyzer = DependencyAnalyzer(store_union)
    entity = next(
        t.subject for t in store_union.triples(None, PROV.wasGeneratedBy, None)
        if analyzer.transitive_dependencies(t.subject)
    )
    drivers = detector.upstream_drivers(store_union, entity)
    assert drivers == sorted(
        analyzer.transitive_dependencies(entity),
        key=lambda term: getattr(term, "value", str(term)),
    )
    assert drivers


def test_failure_impact_lists_tainted_products(store_union, corpus):
    from repro.apps.debugging import RunDebugger
    from repro.rdf.namespace import WFPROV
    from repro.rdf.terms import IRI

    debugger = RunDebugger(store_union)
    impacted = None
    for t in store_union.triples(None, WFPROV.wasPartOfWorkflowRun, None):
        run = t.object
        if not isinstance(run, IRI):
            continue
        try:
            report = debugger.debug(run)
        except KeyError:
            continue
        if report.failed and report.responsible_processes:
            impacted = debugger.failure_impact(run)
            break
    assert impacted is not None, "the corpus designates failed runs"
    assert impacted == sorted(impacted, key=lambda term: term.value)
    assert all(isinstance(term, IRI) for term in impacted)
