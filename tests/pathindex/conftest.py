"""Fixtures for the path/pattern index tests.

The session corpus is written to disk once and ingested twice — serially
and with two workers — so byte-level determinism of the index can be
asserted directly.  `indexed_store` / `store_union` serve the read-side
tests from the serial store.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def pathindex_corpus_dir(tmp_path_factory, corpus):
    from repro.corpus import write_corpus

    root = tmp_path_factory.mktemp("pathindex-corpus")
    write_corpus(corpus, root)
    return root


def _ingest(tmp_path_factory, corpus_dir, jobs: int):
    from repro.store import QuadStore, ingest_corpus

    directory = tmp_path_factory.mktemp(f"pathindex-store-j{jobs}") / "store"
    with QuadStore(directory) as store:
        report = ingest_corpus(store, corpus_dir, jobs=jobs)
        assert report.path_index == "built"
    return directory


@pytest.fixture(scope="session")
def store_dir_j1(tmp_path_factory, pathindex_corpus_dir):
    return _ingest(tmp_path_factory, pathindex_corpus_dir, jobs=1)


@pytest.fixture(scope="session")
def store_dir_j2(tmp_path_factory, pathindex_corpus_dir):
    return _ingest(tmp_path_factory, pathindex_corpus_dir, jobs=2)


@pytest.fixture(scope="session")
def indexed_store(store_dir_j1):
    from repro.store import QuadStore

    with QuadStore(store_dir_j1) as store:
        yield store


@pytest.fixture(scope="session")
def store_union(indexed_store):
    from repro.store import StoreDataset

    return StoreDataset(indexed_store).union_graph()


@pytest.fixture(scope="session")
def memory_union(corpus_dataset):
    return corpus_dataset.union_graph()
