"""Index build determinism, manifest integration, and lifecycle."""

from __future__ import annotations

import json

import pytest

from repro.pathindex import (
    FWD_FILE,
    INV_FILE,
    MANIFEST_FILE,
    TRIE_FILE,
    build_path_index,
    load_path_index,
    store_files_sha,
)

INDEX_FILES = (FWD_FILE, INV_FILE, TRIE_FILE)


def test_index_bytes_identical_across_jobs(store_dir_j1, store_dir_j2):
    for name in INDEX_FILES:
        assert (store_dir_j1 / name).read_bytes() == (store_dir_j2 / name).read_bytes()
    manifest_j1 = json.loads((store_dir_j1 / MANIFEST_FILE).read_text())
    manifest_j2 = json.loads((store_dir_j2 / MANIFEST_FILE).read_text())
    assert manifest_j1 == manifest_j2


def test_rebuild_is_deterministic(indexed_store, store_dir_j1):
    before = {name: (store_dir_j1 / name).read_bytes() for name in INDEX_FILES}
    manifest = build_path_index(indexed_store)
    assert manifest["generation"] == indexed_store.generation
    for name in INDEX_FILES:
        assert (store_dir_j1 / name).read_bytes() == before[name]


def test_manifest_records_rebuild_key(indexed_store, store_dir_j1):
    manifest = json.loads((store_dir_j1 / MANIFEST_FILE).read_text())
    assert manifest["files_sha"] == store_files_sha(indexed_store)
    assert manifest["edge_count"] > 0
    assert manifest["trie"]["sequences"] > 0
    # Every relation the SPARQL layer may ask for is self-described.
    assert "http://www.w3.org/ns/prov#used" in manifest["relations"]
    assert "http://www.w3.org/ns/prov#wasGeneratedBy" in manifest["relations"]


def test_store_info_embeds_index_summary(indexed_store):
    info = indexed_store.store_info()
    assert info["path_index"] is not None
    assert info["path_index"]["generation"] == indexed_store.generation
    assert info["path_index"]["edges"] > 0


def test_noop_reingest_keeps_index_fresh(indexed_store, pathindex_corpus_dir):
    from repro.store import ingest_corpus

    report = ingest_corpus(indexed_store, pathindex_corpus_dir)
    assert report.no_op
    assert report.path_index == "fresh"


def test_stale_generation_is_rejected(tmp_path, pathindex_corpus_dir):
    from repro.store import QuadStore, ingest_corpus

    with QuadStore(tmp_path / "store") as store:
        ingest_corpus(store, pathindex_corpus_dir)
        assert store.path_index() is not None
        manifest_path = store.path / MANIFEST_FILE
        manifest = json.loads(manifest_path.read_text())
        manifest["generation"] += 1
        manifest_path.write_text(json.dumps(manifest))
    with QuadStore(tmp_path / "store") as reopened:
        assert reopened.path_index() is None  # stale → invisible, BFS fallback


def test_missing_edge_file_is_rejected(tmp_path, pathindex_corpus_dir):
    from repro.store import QuadStore, ingest_corpus

    with QuadStore(tmp_path / "store") as store:
        ingest_corpus(store, pathindex_corpus_dir)
        (store.path / FWD_FILE).unlink()
        assert load_path_index(store.path) is None


def test_reset_clears_index(tmp_path, pathindex_corpus_dir):
    from repro.store import QuadStore, ingest_corpus

    with QuadStore(tmp_path / "store") as store:
        ingest_corpus(store, pathindex_corpus_dir)
        assert store.path_index() is not None
        store.reset()
        assert store.path_index() is None
        for name in INDEX_FILES + (MANIFEST_FILE,):
            assert not (store.path / name).exists()


def test_build_requires_compacted_store(tmp_path, pathindex_corpus_dir):
    from repro.store import QuadStore, ingest_corpus

    with QuadStore(tmp_path / "store") as store:
        ingest_corpus(store, pathindex_corpus_dir, compact=False,
                      path_index=False)
        if store.has_pending():
            with pytest.raises(RuntimeError):
                build_path_index(store)
        else:  # pragma: no cover - compaction policy changed
            pytest.skip("store compacted despite compact=False")
