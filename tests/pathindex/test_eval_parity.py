"""Index-backed property-path evaluation is byte-identical to BFS.

The contract the whole tentpole stands on: over a store-backed union
graph, `eval_path` with the index enabled yields the *same pairs in the
same order* as the graph-API BFS fallback, and set-identical results to
an in-memory evaluation of the same corpus.
"""

from __future__ import annotations

import pytest

from repro.prov.constants import PROV
from repro.sparql.paths import (
    PathAlternative,
    PathClosure,
    PathInverse,
    PathSequence,
    eval_path,
    index_supported,
)

USED = PROV.used
GENERATED_BY = PROV.wasGeneratedBy

PATHS = [
    ("used", USED),
    ("used-plus", PathClosure(USED, False)),
    ("used-star", PathClosure(USED, True)),
    ("derived-plus", PathClosure(PROV.wasDerivedFrom, False)),
    ("inverse-generated", PathInverse(GENERATED_BY)),
    ("used-then-generated", PathSequence((USED, GENERATED_BY))),
    ("lineage-plus", PathClosure(PathAlternative((USED, PathInverse(GENERATED_BY))), False)),
    ("sequence-plus", PathClosure(PathSequence((USED, GENERATED_BY)), False)),
]


def _some_activity(graph):
    return next(iter(graph.triples(None, USED, None))).subject


def _some_entity(graph):
    return next(iter(graph.triples(None, GENERATED_BY, None))).subject


@pytest.mark.parametrize("name,path", PATHS, ids=[name for name, _ in PATHS])
def test_index_matches_bfs_ordered(store_union, name, path):
    bindings = [
        (None, None),
        (_some_activity(store_union), None),
        (None, _some_activity(store_union)),
        (_some_entity(store_union), None),
        (None, _some_entity(store_union)),
    ]
    for subject, obj in bindings:
        indexed = list(eval_path(store_union, path, subject, obj, use_index=True))
        bfs = list(eval_path(store_union, path, subject, obj, use_index=False))
        assert indexed == bfs  # same pairs, same order


@pytest.mark.parametrize("name,path", PATHS, ids=[name for name, _ in PATHS])
def test_store_matches_memory(store_union, memory_union, name, path):
    stored = set(eval_path(store_union, path, None, None, use_index=True))
    memory = set(eval_path(memory_union, path, None, None))
    assert stored == memory


def test_bound_pair_endpoint(store_union):
    # entity --wasGeneratedBy--> activity --used--> input: the ancestor walk
    path = PathClosure(PathAlternative((GENERATED_BY, USED)), False)
    entity = _some_entity(store_union)
    reached = [o for _, o in eval_path(store_union, path, entity, None, use_index=True)]
    assert reached
    for target in reached[:3]:
        both = list(eval_path(store_union, path, entity, target, use_index=True))
        assert both == list(eval_path(store_union, path, entity, target, use_index=False))
        assert both == [(entity, target)]


def test_memory_graph_has_no_index(memory_union):
    assert getattr(memory_union, "path_index", None) is None


def test_index_supported_reports_compilable_paths(store_union):
    index = store_union.path_index()
    assert index is not None
    assert index_supported(PathClosure(USED, False), index)
    assert index_supported(PathSequence((USED, GENERATED_BY)), index)
    # An unindexed predicate cannot be served.
    from repro.rdf.terms import IRI

    assert not index_supported(PathClosure(IRI("http://example.org/nope"), False), index)
    assert not index_supported(USED, None)


def test_star_both_unbound_includes_isolated_nodes(store_union):
    """`p*` with both endpoints unbound must pair every node with itself
    (the fallback), while `p+` only walks from nodes with an outgoing
    step — the seeded-BFS fix."""
    star = set(eval_path(store_union, PathClosure(USED, True), None, None))
    plus = set(eval_path(store_union, PathClosure(USED, False), None, None))
    nodes = set()
    for t in store_union:
        nodes.add(t.subject)
        nodes.add(t.object)
    assert {(n, n) for n in nodes} <= star
    assert plus <= star
    assert all(s != o for s, o in plus)  # prov:used is bipartite here
