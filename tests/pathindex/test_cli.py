"""`repro-corpus lineage` smoke tests (memory and store-backed)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.prov.constants import PROV


@pytest.fixture(scope="module")
def traced_entity(store_union):
    from repro.apps.dependencies import DependencyAnalyzer

    analyzer = DependencyAnalyzer(store_union)
    return next(
        t.subject for t in store_union.triples(None, PROV.wasGeneratedBy, None)
        if analyzer.transitive_dependencies(t.subject)
    )


def test_lineage_with_store_uses_index(capsys, pathindex_corpus_dir,
                                       store_dir_j1, traced_entity):
    code = main([
        "lineage", str(pathindex_corpus_dir), traced_entity.value,
        "--store", str(store_dir_j1),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "via path index" in out


def test_lineage_memory_matches_store(capsys, pathindex_corpus_dir,
                                      store_dir_j1, traced_entity):
    main(["lineage", str(pathindex_corpus_dir), traced_entity.value,
          "--store", str(store_dir_j1), "--json"])
    stored = json.loads(capsys.readouterr().out)
    main(["lineage", str(pathindex_corpus_dir), traced_entity.value, "--json"])
    memory = json.loads(capsys.readouterr().out)
    assert stored["indexed"] and not memory["indexed"]
    assert stored["results"] == memory["results"]
    assert stored["mode"] == "ancestors"


def test_lineage_descendants_and_chain(capsys, pathindex_corpus_dir,
                                       store_dir_j1, traced_entity, store_union):
    from repro.apps.dependencies import DependencyAnalyzer

    code = main([
        "lineage", str(pathindex_corpus_dir), traced_entity.value,
        "--descendants", "--store", str(store_dir_j1), "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["mode"] == "descendants"

    source = sorted(
        DependencyAnalyzer(store_union).transitive_dependencies(traced_entity),
        key=lambda term: term.value,
    )[0]
    code = main([
        "lineage", str(pathindex_corpus_dir), traced_entity.value,
        "--to", source.value, "--store", str(store_dir_j1),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert traced_entity.value in out and source.value in out


def test_lineage_chain_not_found(capsys, pathindex_corpus_dir, store_dir_j1,
                                 traced_entity):
    code = main([
        "lineage", str(pathindex_corpus_dir), traced_entity.value,
        "--to", "http://example.org/unrelated", "--store", str(store_dir_j1),
    ])
    assert code == 1
    assert "no derivation chain" in capsys.readouterr().out
