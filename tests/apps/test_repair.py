"""Tests for applying repairs (decay application, closing the loop)."""

import pytest

from repro.apps import DecayDetector
from repro.prov.constraints import validate_document
from repro.prov.model import Derivation, Usage
from repro.rdf import PROV, RDF
from repro.prov.rdf_io import to_graph


@pytest.fixture(scope="module")
def detector(corpus):
    return DecayDetector(corpus)


@pytest.fixture(scope="module")
def repairable_run(corpus, detector):
    return next(t.run_id for t in corpus.failed_traces()
                if detector.repair_candidates(t.run_id) is not None)


class TestApplyRepair:
    def test_outputs_substituted(self, detector, repairable_run, corpus):
        record = detector.apply_repair(repairable_run)
        assert record is not None
        donor = corpus.trace(record.donor_run_id)
        template = corpus.templates[donor.template_id]
        assert set(record.outputs) == {p.name for p in template.outputs}

    def test_repair_has_its_own_provenance(self, detector, repairable_run):
        record = detector.apply_repair(repairable_run)
        doc = record.document
        stats = doc.statistics()
        assert stats["activities"] == 1
        assert stats["agents"] == 1
        # one usage + one generation + one derivation per substituted output
        usages = list(doc.relations_of(Usage))
        derivations = list(doc.relations_of(Derivation))
        assert len(usages) == len(record.outputs)
        assert len(derivations) == len(record.outputs)
        assert all(d.subtype == "revision" for d in derivations)

    def test_repair_document_is_valid_prov(self, detector, repairable_run):
        record = detector.apply_repair(repairable_run)
        errors = [v for v in validate_document(record.document)
                  if v.severity == "error"]
        assert not errors

    def test_repair_graph_queryable(self, detector, repairable_run):
        from repro.sparql import QueryEngine

        record = detector.apply_repair(repairable_run)
        graph = to_graph(record.document)
        engine = QueryEngine(graph)
        rows = engine.select(
            "SELECT ?sub ?donor WHERE { ?sub prov:wasRevisionOf ?donor }"
        )
        assert len(rows) == len(record.outputs)

    def test_unrepairable_returns_none(self, detector, corpus):
        no_history = next(
            t.run_id for t in corpus.failed_traces()
            if len(corpus.by_template(t.template_id)) == 1
        )
        assert detector.apply_repair(no_history) is None

    def test_all_six_repairable_runs_apply(self, detector, corpus):
        applied = [detector.apply_repair(t.run_id) for t in corpus.failed_traces()]
        records = [r for r in applied if r is not None]
        assert len(records) == 6
        assert all(r.outputs for r in records)
