"""Tests for the three Section 3 applications."""

import networkx as nx
import pytest

from repro.apps import DecayDetector, DependencyAnalyzer, RunDebugger
from repro.rdf import PROV
from repro.rdf.terms import IRI
from repro.taverna import TAVERNA_RUN_NS
from repro.wings import OPMW_EXPORT_NS


@pytest.fixture(scope="module")
def ok_taverna(corpus):
    return next(t for t in corpus.by_system("taverna") if not t.failed)


@pytest.fixture(scope="module")
def failed_taverna(corpus):
    return next(t for t in corpus.by_system("taverna") if t.failed)


@pytest.fixture(scope="module")
def failed_wings(corpus):
    return next(t for t in corpus.by_system("wings") if t.failed)


class TestDependencies:
    @pytest.fixture(scope="class")
    def analyzer(self, ok_taverna):
        return DependencyAnalyzer(ok_taverna.graph())

    def test_generating_process_of_output(self, analyzer, ok_taverna):
        output = analyzer.generated_entities()[0]
        process = analyzer.generating_process(output)
        assert process is not None

    def test_workflow_inputs_have_no_generator(self, analyzer, ok_taverna):
        inputs = {
            TAVERNA_RUN_NS.term(f"{ok_taverna.run_id}/data/{item.checksum}")
            for item in ok_taverna.result.inputs.values()
        }
        for input_iri in inputs:
            assert analyzer.generating_process(input_iri) is None

    def test_transitive_dependencies_reach_inputs(self, analyzer, ok_taverna):
        outputs = {
            TAVERNA_RUN_NS.term(f"{ok_taverna.run_id}/data/{item.checksum}")
            for item in ok_taverna.result.outputs.values()
        }
        inputs = {
            TAVERNA_RUN_NS.term(f"{ok_taverna.run_id}/data/{item.checksum}")
            for item in ok_taverna.result.inputs.values()
        }
        for output in outputs:
            deps = analyzer.transitive_dependencies(output)
            assert deps & inputs, "every output must trace back to an input"

    def test_dependents_inverse_of_dependencies(self, analyzer):
        pairs = analyzer.all_dependency_pairs()
        product, source = pairs[0]
        assert product in analyzer.dependents_of(source)

    def test_derivation_path_exists(self, analyzer, ok_taverna):
        output = next(
            TAVERNA_RUN_NS.term(f"{ok_taverna.run_id}/data/{item.checksum}")
            for item in ok_taverna.result.outputs.values()
        )
        some_input = next(
            TAVERNA_RUN_NS.term(f"{ok_taverna.run_id}/data/{item.checksum}")
            for item in ok_taverna.result.inputs.values()
        )
        path = analyzer.derivation_path(output, some_input)
        assert path is not None and path[0] == output and path[-1] == some_input

    def test_derivation_path_missing(self, analyzer):
        assert analyzer.derivation_path(IRI("http://x/a"), IRI("http://x/b")) is None

    def test_dependency_graph_is_dag(self, analyzer):
        assert nx.is_directed_acyclic_graph(analyzer.dependency_graph())

    def test_wings_trace_also_analyzable(self, corpus):
        trace = next(t for t in corpus.by_system("wings") if not t.failed)
        analyzer = DependencyAnalyzer(trace.graph())
        assert analyzer.all_dependency_pairs()


class TestDebugging:
    def test_taverna_failed_run(self, failed_taverna, corpus):
        run_iri = TAVERNA_RUN_NS.term(f"{failed_taverna.run_id}/")
        report = RunDebugger(failed_taverna.graph()).debug(run_iri)
        assert report.failed
        assert report.system == "taverna"
        assert len(report.responsible_processes) == 1
        assert failed_taverna.failed_step in report.responsible_processes[0].value
        template = corpus.templates[failed_taverna.template_id]
        executed = set(failed_taverna.result.executed_steps())
        expected_affected = set(template.processors) - executed
        assert set(report.affected_steps) == expected_affected

    def test_wings_failed_run(self, failed_wings, corpus):
        account = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{failed_wings.run_id}")
        report = RunDebugger(failed_wings.graph()).debug(account)
        assert report.failed and report.system == "wings"
        assert report.responsible_processes
        assert report.failure_causes
        template = corpus.templates[failed_wings.template_id]
        executed = set(failed_wings.result.executed_steps())
        assert set(report.affected_steps) == set(template.processors) - executed

    def test_successful_run_reports_clean(self, corpus):
        trace = next(t for t in corpus.by_system("taverna") if not t.failed)
        run_iri = TAVERNA_RUN_NS.term(f"{trace.run_id}/")
        report = RunDebugger(trace.graph()).debug(run_iri)
        assert not report.failed
        assert not report.responsible_processes
        assert "completed normally" in report.summary()

    def test_unknown_run_raises(self, failed_taverna):
        with pytest.raises(KeyError):
            RunDebugger(failed_taverna.graph()).debug(IRI("http://nowhere.example/run"))

    def test_summary_mentions_cause(self, failed_taverna):
        run_iri = TAVERNA_RUN_NS.term(f"{failed_taverna.run_id}/")
        report = RunDebugger(failed_taverna.graph()).debug(run_iri)
        assert failed_taverna.failure_cause in report.summary()

    def test_every_failed_trace_debuggable(self, corpus):
        for trace in corpus.failed_traces():
            if trace.system == "taverna":
                iri = TAVERNA_RUN_NS.term(f"{trace.run_id}/")
            else:
                iri = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{trace.run_id}")
            report = RunDebugger(trace.graph()).debug(iri)
            assert report.failed
            assert report.responsible_processes, trace.run_id


class TestDecay:
    @pytest.fixture(scope="class")
    def detector(self, corpus):
        return DecayDetector(corpus)

    def test_all_multi_run_templates_analyzed(self, detector, corpus):
        reports = detector.detect_all()
        assert len(reports) == 39

    def test_decayed_and_stable_partition(self, detector):
        decayed = set(detector.decayed_templates())
        stable = set(detector.stable_templates())
        assert decayed and stable
        assert not decayed & stable

    def test_decay_signal_matches_input_variants(self, detector, corpus):
        # Templates whose planned runs used drifting input variants must be
        # exactly the decayed ones (with >= 2 successful runs).
        variant_templates = set()
        for entry in corpus.plan:
            if entry.variant > 0:
                variant_templates.add(entry.template_id)
        decayed = set(detector.decayed_templates())
        for template_id in decayed:
            assert template_id in variant_templates

    def test_stable_template_snapshots_identical(self, detector, corpus):
        stable_id = detector.stable_templates()[0]
        report = detector.analyze_template(stable_id)
        checks = [s.outputs for s in report.snapshots if s.status == "ok"]
        assert all(c == checks[0] for c in checks)

    def test_summary_text(self, detector):
        decayed_report = detector.analyze_template(detector.decayed_templates()[0])
        assert "DECAY detected" in decayed_report.summary()
        stable_report = detector.analyze_template(detector.stable_templates()[0])
        assert "stable across" in stable_report.summary()

    def test_single_run_template_insufficient(self, detector, corpus):
        single = next(tid for tid in corpus.templates
                      if tid not in corpus.multi_run_templates())
        report = detector.analyze_template(single)
        assert "insufficient runs" in report.summary()

    def test_repair_candidates_for_multi_run_failures(self, detector, corpus):
        repairable = [t for t in corpus.failed_traces()
                      if detector.repair_candidates(t.run_id) is not None]
        assert len(repairable) == 6
        suggestion = detector.repair_candidates(repairable[0].run_id)
        assert suggestion.donor_run_id != suggestion.failed_run_id
        assert suggestion.artifacts

    def test_repair_rejects_successful_run(self, detector, corpus):
        ok = next(t for t in corpus.traces if not t.failed)
        with pytest.raises(ValueError):
            detector.repair_candidates(ok.run_id)

    def test_repair_none_without_history(self, detector, corpus):
        no_history = next(
            t for t in corpus.failed_traces()
            if len(corpus.by_template(t.template_id)) == 1
        )
        assert detector.repair_candidates(no_history.run_id) is None
