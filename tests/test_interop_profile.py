"""Tests for the interoperability view and the corpus profiler."""

import datetime as dt

import pytest

from repro.corpus.profile import profile_corpus
from repro.interop import InteropView, UNIFIED_RUNS_QUERY
from repro.queries import taverna_workflow_iri, wings_template_iri


@pytest.fixture(scope="module")
def view(corpus_dataset):
    return InteropView(corpus_dataset)


class TestInteropView:
    def test_all_runs_unified(self, view):
        assert len(view.runs()) == 198

    def test_system_split(self, view):
        grouped = view.by_system()
        assert len(grouped["taverna"]) == 112
        assert len(grouped["wings"]) == 86

    def test_failed_runs_cross_system(self, view, corpus):
        failed = view.failed_runs()
        assert len(failed) == 30
        systems = {r.system for r in failed}
        assert systems == {"taverna", "wings"}

    def test_every_run_has_times_and_agent(self, view):
        for run in view.runs():
            assert run.start is not None
            assert run.end is not None
            assert run.agent is not None
            assert run.duration is not None and run.duration > dt.timedelta(0)

    def test_status_matches_corpus(self, view, corpus):
        failed_ids = {t.run_id for t in corpus.failed_traces()}
        for run in view.runs():
            run_tail = run.run.value.rstrip("/").rsplit("/", 1)[-1]
            is_failed = any(fid in run.run.value for fid in failed_ids)
            assert run.failed == is_failed, run_tail

    def test_template_links_resolve(self, view, corpus):
        multi = corpus.multi_run_templates()[0]
        template = corpus.templates[multi]
        if template.system == "taverna":
            iri = taverna_workflow_iri(template.template_id, template.name)
        else:
            iri = wings_template_iri(template.template_id)
        assert len(view.runs_of_template(iri)) == 3

    def test_failure_rate(self, view):
        assert abs(view.failure_rate() - 30 / 198) < 1e-9

    def test_mean_durations_positive(self, view):
        assert view.mean_duration("taverna") > dt.timedelta(0)
        assert view.mean_duration("wings") > dt.timedelta(0)
        assert view.mean_duration() > dt.timedelta(0)

    def test_timeline_sorted(self, view):
        timeline = view.timeline()
        assert len(timeline) == 198
        starts = [r.start for r in timeline]
        assert starts == sorted(starts)

    def test_query_text_is_single_interoperable_query(self):
        assert "UNION" in UNIFIED_RUNS_QUERY
        assert "wfprov:WorkflowRun" in UNIFIED_RUNS_QUERY
        assert "opmw:WorkflowExecutionAccount" in UNIFIED_RUNS_QUERY


class TestCorpusProfile:
    @pytest.fixture(scope="class")
    def profile(self, corpus):
        return profile_corpus(corpus)

    def test_trace_count(self, profile):
        assert len(profile.traces) == 198

    def test_summary_shape(self, profile):
        summary = profile.summary()
        assert summary["traces"] == 198
        assert summary["total_triples"] > 30_000
        assert summary["triples_per_trace"]["min"] > 0
        assert summary["triples_per_trace"]["min"] <= summary["triples_per_trace"]["max"]

    def test_failed_traces_are_smaller_on_average(self, profile):
        summary = profile.summary()
        assert summary["failed_trace_mean_triples"] < summary["successful_trace_mean_triples"]

    def test_top_properties_are_prov(self, profile):
        top = profile.summary()["top_prov_properties"]
        assert top and all(entry["property"].startswith("prov:") for entry in top)
        names = [entry["property"] for entry in top]
        assert "prov:used" in names
        assert "prov:wasGeneratedBy" in names

    def test_by_domain_rollup(self, profile, corpus):
        rollup = profile.by_domain()
        assert len(rollup) == 12
        assert sum(d["traces"] for d in rollup.values()) == 198
        assert sum(d["failed"] for d in rollup.values()) == 30

    def test_per_trace_counts_consistent(self, profile, corpus):
        by_id = {t.run_id: t for t in profile.traces}
        sample = corpus.traces[0]
        assert by_id[sample.run_id].triples == len(sample.graph())
        assert by_id[sample.run_id].size_bytes == sample.size_bytes


class TestTavernaCollections:
    def test_list_artifacts_are_collections(self, corpus):
        from repro.rdf import PROV, RDF

        trace = next(t for t in corpus.by_system("taverna") if not t.failed)
        graph = trace.graph()
        collections = list(graph.subjects(RDF.type, PROV.Collection))
        assert collections
        for collection in collections:
            members = list(graph.objects(collection, PROV.hadMember))
            assert members, "a collection must have members"

    def test_wings_traces_have_no_collections(self, corpus):
        from repro.rdf import PROV, RDF

        trace = next(t for t in corpus.by_system("wings") if not t.failed)
        assert not list(trace.graph().subjects(RDF.type, PROV.Collection))
