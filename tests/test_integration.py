"""End-to-end integration tests: the full corpus pipeline.

These walk the complete path a corpus consumer takes — build → store →
load → query → analyze — and assert the paper's headline numbers at each
stage, plus cross-cutting invariants no unit test covers (every trace
valid, every trace parseable, both systems queryable together).
"""

import pytest

from repro.apps import DecayDetector, DependencyAnalyzer, RunDebugger
from repro.coverage import coverage_report
from repro.prov.constraints import validate_document
from repro.prov.rdf_io import from_graph
from repro.queries import CorpusQueries
from repro.rdf import parse_trig, parse_turtle
from repro.sparql import QueryEngine


class TestFullPipeline:
    def test_build_store_load_query(self, corpus, tmp_path):
        from repro.corpus import load_corpus, write_corpus

        write_corpus(corpus, tmp_path)
        stored = load_corpus(tmp_path)
        queries = CorpusQueries(stored.dataset())
        assert len(queries.workflow_runs()) == 198

    def test_every_trace_parses_and_matches(self, corpus):
        for trace in corpus.traces:
            if trace.rdf_format == "turtle":
                parsed = parse_turtle(trace.text)
                assert len(parsed) == len(trace.graph())
            else:
                parsed = parse_trig(trace.text)
                assert len(parsed.union_graph()) > 0

    def test_every_trace_is_constraint_valid(self, corpus):
        for trace in corpus.traces:
            errors = [v for v in validate_document(trace.document)
                      if v.severity == "error"]
            assert not errors, (trace.run_id, [str(e) for e in errors])

    def test_every_trace_roundtrips_through_prov_model(self, corpus):
        for trace in corpus.traces[::20]:
            graph = trace.graph()
            rebuilt = from_graph(graph)
            assert rebuilt.statistics()["activities"] >= 1 or trace.failed

    def test_coverage_tables_reproduce_paper(self, corpus):
        report = coverage_report(
            corpus.system_graph("taverna"), corpus.system_graph("wings")
        )
        assert report.matches_paper(), report.differences()

    def test_failed_traces_shorter_than_successful(self, corpus):
        # Failed runs export truncated provenance: fewer triples on average
        # than successful runs of the same template.
        for trace in corpus.failed_traces():
            siblings = [t for t in corpus.by_template(trace.template_id)
                        if not t.failed]
            if siblings:
                assert len(trace.graph()) < max(len(s.graph()) for s in siblings)

    def test_all_applications_on_all_failed_runs(self, corpus):
        from repro.taverna import TAVERNA_RUN_NS
        from repro.wings import OPMW_EXPORT_NS

        detector = DecayDetector(corpus)
        for trace in corpus.failed_traces():
            graph = trace.graph()
            # dependency analysis still works on the partial trace
            analyzer = DependencyAnalyzer(graph)
            assert analyzer.all_dependency_pairs() or trace.result.failed_step == \
                trace.result.executed_steps()[0]
            # debugging finds the culprit
            if trace.system == "taverna":
                iri = TAVERNA_RUN_NS.term(f"{trace.run_id}/")
            else:
                iri = OPMW_EXPORT_NS.term(f"WorkflowExecutionAccount/{trace.run_id}")
            assert RunDebugger(graph).debug(iri).failed

    def test_interoperable_counting(self, corpus_dataset):
        """One SPARQL query counts runs across both systems' idioms."""
        engine = QueryEngine(corpus_dataset)
        rows = engine.select("""
            SELECT (COUNT(?r) AS ?n) WHERE {
              { ?r a wfprov:WorkflowRun .
                FILTER NOT EXISTS { ?r wfprov:wasPartOfWorkflowRun ?p } }
              UNION
              { ?r a opmw:WorkflowExecutionAccount }
            }
        """)
        assert rows[0].n.to_python() == 198

    def test_failed_run_count_via_sparql(self, corpus_dataset):
        engine = QueryEngine(corpus_dataset)
        engine.namespaces.bind(
            "tavernaprov", "http://ns.taverna.org.uk/2012/tavernaprov/", replace=False
        )
        rows = engine.select("""
            SELECT (COUNT(?r) AS ?n) WHERE {
              { ?r tavernaprov:runStatus "failed" }
              UNION
              { ?r a opmw:WorkflowExecutionAccount ; opmw:hasStatus "FAILURE" }
            }
        """)
        assert rows[0].n.to_python() == 30

    def test_decay_detector_consistent_with_plan(self, corpus):
        detector = DecayDetector(corpus)
        assert len(detector.detect_all()) == 39
        assert len(detector.decayed_templates()) + len(detector.stable_templates()) == 39
