"""Span tracer unit tests: nesting, no-op paths, file format, clocks."""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import NULL_SPAN, Tracer, read_trace, span, summarize


class TestSpans:
    def test_nesting_contains_child(self):
        tracer = Tracer()
        with tracer.span("outer", cat="test"):
            with tracer.span("inner", cat="test"):
                pass
        by_name = {e["name"]: e for e in tracer.events()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer["ph"] == "X" and outer["cat"] == "test"
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        assert "cpu_ms" in outer["args"]

    def test_attributes_and_set(self):
        tracer = Tracer()
        with tracer.span("work", cat="test", file="a.ttl") as sp:
            sp.set(quads=7)
        (event,) = tracer.events()
        assert event["args"]["file"] == "a.ttl"
        assert event["args"]["quads"] == 7

    def test_exception_stamps_error_attribute(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (event,) = tracer.events()
        assert event["args"]["error"] == "ValueError"

    def test_module_helper_returns_null_span_without_tracer(self):
        with span(None, "anything", key="v") as sp:
            sp.set(more=1)
        assert sp is NULL_SPAN

    def test_wrap_decorator(self):
        tracer = Tracer()

        @tracer.wrap("fn", cat="test")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        assert tracer.events()[0]["name"] == "fn"


class TestDeterministicClock:
    def test_two_identical_runs_write_identical_bytes(self, tmp_path):
        def run(path):
            tracer = Tracer(deterministic=True)
            for _ in range(3):
                tracer.reset_clock()
                with tracer.span("a", cat="t"):
                    with tracer.span("b", cat="t"):
                        pass
            tracer.write(path)

        run(tmp_path / "one.trace")
        run(tmp_path / "two.trace")
        assert (tmp_path / "one.trace").read_bytes() == (tmp_path / "two.trace").read_bytes()

    def test_deterministic_events_pin_pid_tid(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("a"):
            pass
        (event,) = tracer.events()
        assert event["pid"] == 0 and event["tid"] == 0
        assert "cpu_ms" not in event["args"]

    def test_drain_empties_and_add_events_advances_clock(self):
        worker = Tracer(deterministic=True)
        with worker.span("w"):
            pass
        shipped = worker.drain()
        assert worker.events() == []
        parent = Tracer(deterministic=True)
        parent.reset_clock()
        parent.add_events(shipped)
        with parent.span("p"):
            pass
        absorbed, local = parent.events()
        assert absorbed["name"] == "w"
        # The parent's next tick lands past the absorbed horizon, exactly
        # where a serial tracer that had recorded "w" itself would be.
        assert local["ts"] > absorbed["ts"] + absorbed["dur"]


class TestFileFormat:
    def test_write_is_array_lines_and_roundtrips(self, tmp_path):
        tracer = Tracer(deterministic=True)
        with tracer.span("x", cat="t", file="f"):
            pass
        path = tmp_path / "trace.jsonl"
        count = tracer.write(path)
        lines = path.read_text().splitlines()
        assert lines[0] == "["
        # Chrome's array-lines form: every event line is standalone JSON
        # once the trailing comma is stripped.
        for line in lines[1:]:
            json.loads(line.rstrip(","))
        events = read_trace(path)
        assert count == len(events) == 1
        assert events[0]["args"]["file"] == "f"

    def test_read_trace_accepts_plain_array_and_jsonl(self, tmp_path):
        events = [{"name": "a", "cat": "t", "ph": "X", "ts": 0, "dur": 1,
                   "pid": 0, "tid": 0, "args": {}}]
        as_array = tmp_path / "array.json"
        as_array.write_text(json.dumps(events))
        assert read_trace(as_array) == events
        as_jsonl = tmp_path / "events.jsonl"
        as_jsonl.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        assert read_trace(as_jsonl) == events


class TestTolerantRead:
    def test_truncated_tail_skipped_with_warning(self, tmp_path):
        # A crashed writer leaves a half-flushed last line; readers must
        # keep every intact record instead of raising.
        good = {"name": "a", "cat": "t", "ph": "X", "ts": 0, "dur": 1,
                "pid": 0, "tid": 0, "args": {}}
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps(good) + "\n" + '{"name": "b", "ts')
        warnings = []
        events = read_trace(path, warn=warnings.append)
        assert len(events) == 1 and events[0]["name"] == "a"
        assert len(warnings) == 1
        assert "malformed" in warnings[0] and ":2" in warnings[0]

    def test_garbage_line_between_records_skipped(self, tmp_path):
        good = {"name": "a", "cat": "t", "ph": "X", "ts": 0, "dur": 1,
                "pid": 0, "tid": 0, "args": {}}
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps(good) + "\nnot json at all\n" + json.dumps(good) + "\n")
        warnings = []
        assert len(read_trace(path, warn=warnings.append)) == 2
        assert len(warnings) == 1

    def test_array_form_with_crash_tail_recovers_lines(self, tmp_path):
        # Chrome array-lines form cut off mid-write: the document no
        # longer parses as one array, so recovery is line-by-line.
        tracer = Tracer(deterministic=True)
        with tracer.span("kept", cat="t"):
            pass
        path = tmp_path / "trace.jsonl"
        tracer.write(path)
        path.write_bytes(path.read_bytes().rstrip() + b'\n{"name": "lost", ')
        warnings = []
        events = read_trace(path, warn=warnings.append)
        assert [e["name"] for e in events] == ["kept"]
        assert warnings, "truncated tail must be reported"

    def test_non_object_lines_ignored(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('42\n"just a string"\n')
        assert read_trace(path, warn=lambda _msg: None) == []


def test_summarize_aggregates_by_cat_and_name():
    events = [
        {"name": "parse", "cat": "ingest", "ts": 0, "dur": 2000, "args": {}},
        {"name": "parse", "cat": "ingest", "ts": 5000, "dur": 4000, "args": {}},
        {"name": "run", "cat": "build", "ts": 0, "dur": 1000, "args": {}},
    ]
    rows = summarize(events)
    assert [r["name"] for r in rows] == ["parse", "run"]
    parse = rows[0]
    assert parse["count"] == 2
    assert parse["total_ms"] == pytest.approx(6.0)
    assert parse["mean_ms"] == pytest.approx(3.0)
    assert parse["max_ms"] == pytest.approx(4.0)
