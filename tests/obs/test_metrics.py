"""Metrics registry unit tests.

Every test here builds its own :class:`MetricsRegistry` so counts are
exact; the process-global registry (shared with the rest of the suite)
is only exercised in ``test_exposition.py`` with delta assertions.
"""

from __future__ import annotations

import re
import threading

import pytest

from repro.obs.metrics import DURATION_BUCKETS, MetricsError, MetricsRegistry

_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* \S.*$")
_TYPE_RE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|summary)$"
)
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})?'
    r' (-?[0-9].*|[+-]Inf|NaN)$'
)


def assert_prometheus_valid(text: str) -> None:
    """Every line of a rendered exposition matches the 0.0.4 text format."""
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP"):
            assert _HELP_RE.match(line), line
        elif line.startswith("# TYPE"):
            assert _TYPE_RE.match(line), line
        else:
            assert _SAMPLE_RE.match(line), line


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "Jobs processed")
        c.inc()
        c.inc(2)
        assert c.value == 3

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "Jobs processed")
        with pytest.raises(MetricsError):
            c.inc(-1)

    def test_labeled_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("req_total", "Requests", labels=("route", "status"))
        c.labels("/sparql", "200").inc()
        c.labels("/sparql", "200").inc()
        c.labels("/sparql", "400").inc()
        assert c.labels("/sparql", "200").value == 2
        assert reg.value("req_total", {"route": "/sparql", "status": "400"}) == 1

    def test_set_total_supports_collector_mirroring(self):
        reg = MetricsRegistry()
        c = reg.counter("probes_total", "Probes")
        c.set_total(41)
        c.set_total(57)
        assert c.value == 57

    def test_thread_safety_16_writers(self):
        reg = MetricsRegistry()
        shared = reg.counter("shared_total", "Shared")
        labeled = reg.counter("per_lane_total", "Per lane", labels=("lane",))
        per_thread = 2000

        def work(i: int) -> None:
            child = labeled.labels(str(i % 4))
            for _ in range(per_thread):
                shared.inc()
                child.inc()

        threads = [threading.Thread(target=work, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert shared.value == 16 * per_thread
        assert sum(labeled.labels(str(lane)).value for lane in range(4)) == 16 * per_thread


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "Queue depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13


class TestHistogram:
    def test_bucket_edges_are_inclusive_and_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.01, 0.1, 1.0))
        for observation in (0.01, 0.05, 0.5, 5.0):
            h.observe(observation)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.56)
        # le is inclusive: the 0.01 observation lands in the 0.01 bucket.
        assert snap["buckets"]["0.01"] == 1
        assert snap["buckets"]["0.1"] == 2
        assert snap["buckets"]["1"] == 3
        # 5.0 overflows every finite edge and only counts under +Inf.
        assert snap["buckets"]["+Inf"] == 4

    def test_unsorted_buckets_are_sorted(self):
        reg = MetricsRegistry()
        h = reg.histogram("x_seconds", "X", buckets=(1.0, 0.1))
        h.observe(0.05)
        assert list(h.snapshot()["buckets"]) == ["0.1", "1", "+Inf"]

    def test_default_duration_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("y_seconds", "Y")
        assert list(h.snapshot()["buckets"])[:-1] == [
            "0.001", "0.0025", "0.005", "0.01", "0.025", "0.05", "0.1",
            "0.25", "0.5", "1", "2.5", "5", "10",
        ]
        assert len(DURATION_BUCKETS) == 13


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total", "A") is reg.counter("a_total", "A")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "A")
        with pytest.raises(MetricsError):
            reg.gauge("a_total", "A")

    def test_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "A", labels=("x",))
        with pytest.raises(MetricsError):
            reg.counter("a_total", "A", labels=("y",))

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.counter("0bad", "bad name")
        with pytest.raises(MetricsError):
            reg.counter("ok_total", "bad label", labels=("0bad",))

    def test_disabled_registry_ignores_mutations(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("a_total", "A")
        g = reg.gauge("b", "B")
        h = reg.histogram("c_seconds", "C")
        c.inc()
        g.set(7)
        h.observe(0.1)
        assert c.value == 0
        assert g.value == 0
        assert h.snapshot()["count"] == 0
        reg.set_enabled(True)
        c.inc()
        assert c.value == 1

    def test_collector_runs_on_render_and_unregisters(self):
        reg = MetricsRegistry()
        mirrored = reg.counter("mirror_total", "Mirrored plain int")
        calls = []

        def collector(registry):
            calls.append(1)
            mirrored.set_total(42)

        reg.register_collector(collector)
        assert "mirror_total 42" in reg.render_prometheus()
        assert reg.value("mirror_total") == 42
        assert len(calls) == 2
        reg.unregister_collector(collector)
        reg.render_prometheus()
        assert len(calls) == 2

    def test_render_prometheus_is_valid_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests", labels=("route",)).labels("/x").inc()
        reg.gauge("depth", "Depth").set(2)
        reg.histogram("lat_seconds", "Latency", buckets=(0.1,)).observe(0.05)
        text = reg.render_prometheus()
        assert_prometheus_valid(text)
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="/x"} 1' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text

    def test_declared_series_render_at_zero(self):
        reg = MetricsRegistry()
        reg.counter("quiet_total", "Never incremented")
        assert "quiet_total 0" in reg.render_prometheus()

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("esc_total", "Escapes", labels=("q",))
        c.labels('he said "hi"\\\n').inc()
        text = reg.render_prometheus()
        assert 'esc_total{q="he said \\"hi\\"\\\\\\n"} 1' in text
        assert_prometheus_valid(text)

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "A", labels=("k",)).labels("v").inc()
        snap = reg.snapshot()
        assert snap["a_total"]["type"] == "counter"
        (sample,) = snap["a_total"]["samples"]
        assert sample["labels"] == {"k": "v"}
        assert sample["value"] == 1

    def test_value_accessor_misses(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", "H")
        assert reg.value("h_seconds") is None
        assert reg.value("no_such_metric") is None
