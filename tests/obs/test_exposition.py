"""HTTP exposition tests: ``/metrics``, ``/healthz``, and stats parity.

These go through the process-global registry (shared with every other
test in the session), so counter assertions are deltas or floors —
never exact totals.  Format validity reuses the line grammar from
``test_metrics.assert_prometheus_valid``.
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.endpoint import SparqlClient, SparqlEndpoint
from repro.rdf import Graph, Namespace, PROV, RDF

from .test_metrics import assert_prometheus_valid

EX = Namespace("http://example.org/")


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


def _metric_value(body: str, name: str, labels: str = "") -> float:
    series = f"{name}{{{labels}}}" if labels else name
    for line in body.splitlines():
        if line.startswith(series + " "):
            return float(line.split()[-1])
    raise AssertionError(f"series {series!r} not found in exposition")


def _bad_query(query_url: str) -> int:
    try:
        urllib.request.urlopen(query_url + "?query=" + urllib.parse.quote("NOT SPARQL"))
    except urllib.error.HTTPError as err:
        return err.code
    raise AssertionError("malformed query unexpectedly succeeded")


@pytest.fixture(scope="module")
def endpoint():
    g = Graph()
    g.namespaces.bind("ex", EX)
    g.add((EX.r1, RDF.type, PROV.Activity))
    g.add((EX.e1, RDF.type, PROV.Entity))
    server = SparqlEndpoint(g).start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def client(endpoint):
    return SparqlClient(endpoint.query_url)


class TestMetricsRoute:
    def test_serves_valid_prometheus_text(self, endpoint, client):
        client.query("ASK { ?x a prov:Activity }")
        status, content_type, body = _get(endpoint.metrics_url)
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        text = body.decode("utf-8")
        assert_prometheus_valid(text)
        for family in (
            "repro_http_requests_total",
            "repro_http_request_seconds",
            "repro_query_cache_total",
            "repro_query_seconds",
            "repro_store_wal_fsync_total",
        ):
            assert f"# TYPE {family}" in text

    def test_request_counter_has_per_status_children(self, endpoint, client):
        client.query("SELECT ?x WHERE { ?x a prov:Activity }")
        assert _bad_query(endpoint.query_url) == 400
        text = _get(endpoint.metrics_url)[2].decode("utf-8")
        ok = _metric_value(text, "repro_http_requests_total",
                           'route="/sparql",status="200"')
        bad = _metric_value(text, "repro_http_requests_total",
                            'route="/sparql",status="400"')
        assert ok >= 1 and bad >= 1

    def test_scrape_includes_itself(self, endpoint):
        first = _metric_value(_get(endpoint.metrics_url)[2].decode("utf-8"),
                              "repro_http_requests_total",
                              'route="/metrics",status="200"')
        second = _metric_value(_get(endpoint.metrics_url)[2].decode("utf-8"),
                               "repro_http_requests_total",
                               'route="/metrics",status="200"')
        assert second == first + 1

    def test_query_cache_metrics_move_on_hit(self, endpoint, client):
        text = _get(endpoint.metrics_url)[2].decode("utf-8")
        before_hits = _metric_value(text, "repro_query_cache_total", 'event="hit"')
        query = "SELECT ?x WHERE { ?x a prov:Entity }"
        client.query(query)
        client.query(query)
        text = _get(endpoint.metrics_url)[2].decode("utf-8")
        assert _metric_value(text, "repro_query_cache_total", 'event="hit"') > before_hits


class TestHealthz:
    def test_healthz_reports_ok_and_generation(self, endpoint):
        status, content_type, body = _get(endpoint.healthz_url)
        assert status == 200
        assert content_type.startswith("application/json")
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert "generation" in payload


class TestStatsTiming:
    def test_failed_requests_count_toward_timing(self, endpoint, client):
        before = client.stats()["requests"]
        assert _bad_query(endpoint.query_url) == 400
        after = client.stats()["requests"]
        # The 400 must land in count, errors, and the latency aggregates
        # (before this fix only 2xx responses were timed).
        assert after["count"] == before["count"] + 1
        assert after["errors"] == before["errors"] + 1
        assert after["total_ms"] > before["total_ms"]
        assert after["max_ms"] >= before["max_ms"]

    def test_stats_carries_registry_snapshot(self, endpoint, client):
        stats = client.stats()
        assert "repro_http_requests_total" in stats["metrics"]
        assert stats["metrics"]["repro_http_requests_total"]["type"] == "counter"


class TestStoreBackedParity:
    @pytest.fixture()
    def store_endpoint(self, tmp_path):
        from repro.store import QuadStore, StoreDataset

        store = QuadStore(tmp_path / "store")
        store.begin_file("t.ttl", "00" * 32)
        ids = [store.add_term(t)
               for t in (EX.r1, RDF.type, PROV.Activity, EX.e1, PROV.Entity)]
        store.add_quad(ids[0], ids[1], ids[2])
        store.add_quad(ids[3], ids[1], ids[4])
        store.commit_file()
        store.compact()
        with SparqlEndpoint(StoreDataset(store)) as server:
            yield server
        store.close()

    def test_stats_and_metrics_agree_on_store_counters(self, store_endpoint):
        client = SparqlClient(store_endpoint.query_url)
        client.query("SELECT ?x WHERE { ?x a prov:Activity }")
        client.query("ASK { ?x a prov:Entity }")
        text = _get(store_endpoint.metrics_url)[2].decode("utf-8")
        stats = client.stats()

        cache = stats["store"]["decoded_term_cache"]
        assert _metric_value(text, "repro_store_decode_cache_total",
                             'result="hit"') == cache["hits"]
        assert _metric_value(text, "repro_store_decode_cache_total",
                             'result="miss"') == cache["misses"]

        dictionary = stats["store"]["term_dictionary"]
        for family, prefix in (
            ("repro_store_dictionary_intern_total", "intern"),
            ("repro_store_dictionary_lookup_total", "lookup"),
        ):
            for result, key in (("hit", "hits"), ("miss", "misses")):
                assert _metric_value(text, family, f'result="{result}"') == (
                    dictionary[f"{prefix}_{key}"]
                ), (family, result)

        probes = sum(stats["store"]["segment_probes"].values())
        total = sum(
            float(line.split()[-1]) for line in text.splitlines()
            if line.startswith("repro_store_segment_probes_total{")
        )
        assert total == probes

        assert _metric_value(text, "repro_store_quads") == stats["store"]["quads"]
        assert _metric_value(text, "repro_store_generation") == stats["store"]["generation"]

    def test_healthz_reports_store_generation(self, store_endpoint):
        payload = json.loads(_get(store_endpoint.healthz_url)[2])
        assert payload == {"status": "ok", "generation": 1}
