"""The structured JSONL event log: schema, rotation, tolerant reads."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.obs import events


@pytest.fixture(autouse=True)
def _clean_module_state():
    yield
    events.unconfigure()


class TestEventLog:
    def test_records_carry_schema_fields(self, tmp_path):
        with events.EventLog(str(tmp_path)) as log:
            log.emit("ingest.file", file="a.ttl", quads=12)
        records = list(events.read_events(str(tmp_path)))
        assert len(records) == 1
        record = records[0]
        assert record["v"] == events.SCHEMA_VERSION
        assert record["pid"] == os.getpid()
        assert record["kind"] == "ingest.file"
        assert record["quads"] == 12
        assert isinstance(record["ts"], float)

    def test_none_fields_dropped(self, tmp_path):
        with events.EventLog(str(tmp_path)) as log:
            log.emit("x", present=1, absent=None)
        (record,) = events.read_events(str(tmp_path))
        assert "absent" not in record and record["present"] == 1

    def test_size_bounded_rotation(self, tmp_path):
        log = events.EventLog(str(tmp_path), max_bytes=2_000, keep=2)
        for i in range(200):
            log.emit("tick", n=i, pad="x" * 40)
        log.close()
        assert (tmp_path / "events.jsonl.1").exists()
        assert not (tmp_path / "events.jsonl.3").exists()
        assert os.path.getsize(tmp_path / events.EVENTS_FILE) <= 2_000
        # Readable generations come back oldest-first and in order.
        kept = [r["n"] for r in events.read_events(str(tmp_path))]
        assert kept == sorted(kept)
        assert kept[-1] == 199

    def test_read_skips_malformed_lines_with_warning(self, tmp_path):
        path = tmp_path / events.EVENTS_FILE
        good = json.dumps({"v": 1, "kind": "ok", "n": 1})
        path.write_text(good + "\n[not json\n" + good + "\n{\"trunc")
        warnings = []
        records = list(events.read_events(str(path), warn=warnings.append))
        assert [r["n"] for r in records] == [1, 1]
        assert len(warnings) == 2
        assert "malformed" in warnings[0]

    def test_kind_filter(self, tmp_path):
        with events.EventLog(str(tmp_path)) as log:
            log.emit("a", n=1)
            log.emit("b", n=2)
            log.emit("a", n=3)
        assert [r["n"] for r in events.read_events(str(tmp_path), kind="a")] == [1, 3]


def _fork_emitter(obs_dir):
    events.emit("child.tick", n=1)


class TestModuleLevel:
    def test_emit_noop_until_configured(self, tmp_path):
        events.emit("ignored", n=1)  # must not raise or create files
        assert list(tmp_path.iterdir()) == []
        events.configure(str(tmp_path))
        events.emit("seen", n=2)
        (record,) = events.read_events(str(tmp_path))
        assert record["kind"] == "seen"

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="needs fork start method",
    )
    def test_forked_child_reopens_cleanly(self, tmp_path):
        events.configure(str(tmp_path))
        events.emit("parent.tick", n=0)
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_fork_emitter, args=(str(tmp_path),))
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        records = list(events.read_events(str(tmp_path)))
        kinds = {record["kind"]: record["pid"] for record in records}
        assert set(kinds) == {"parent.tick", "child.tick"}
        assert kinds["child.tick"] != os.getpid()
