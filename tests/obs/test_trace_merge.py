"""Worker-span forwarding: ``--jobs N`` traces merge deterministically.

The contract mirrors the corpus/store byte-identity guarantee: with the
logical clock, the trace file from a parallel build or ingest is
*byte-identical* to the serial one — workers drain their spans per
task, the parent absorbs them in plan/file order, and the merged
timeline is indistinguishable from a single-process run.
"""

from __future__ import annotations

from collections import Counter

from repro.obs.trace import Tracer, read_trace


def _build_trace(jobs, path):
    from repro.corpus import CorpusBuilder

    tracer = Tracer(deterministic=True)
    CorpusBuilder(seed=2013).build(jobs=jobs, tracer=tracer)
    tracer.write(path)


def _ingest_trace(corpus_root, store_dir, jobs, path):
    from repro.store import QuadStore, ingest_corpus

    tracer = Tracer(deterministic=True)
    with QuadStore(store_dir) as store:
        ingest_corpus(store, corpus_root, jobs=jobs, tracer=tracer)
    tracer.write(path)


def test_build_trace_byte_identical_across_jobs(tmp_path):
    serial, parallel = tmp_path / "build-j1.trace", tmp_path / "build-j2.trace"
    _build_trace(1, serial)
    _build_trace(2, parallel)
    assert serial.read_bytes() == parallel.read_bytes()

    events = read_trace(serial)
    counts = Counter(event["name"] for event in events)
    assert counts == {"run": 198, "execute": 198, "export": 198, "serialize": 198}
    runs = {e["args"]["run"] for e in events if e["name"] == "run"}
    assert len(runs) == 198
    statuses = {e["args"]["status"] for e in events if e["name"] == "run"}
    assert "ok" in statuses and "failed" in statuses


def test_ingest_trace_byte_identical_across_jobs(tiny_corpus_dir, tmp_path):
    serial, parallel = tmp_path / "ingest-j1.trace", tmp_path / "ingest-j2.trace"
    _ingest_trace(tiny_corpus_dir, tmp_path / "store-j1", 1, serial)
    _ingest_trace(tiny_corpus_dir, tmp_path / "store-j2", 2, parallel)
    assert serial.read_bytes() == parallel.read_bytes()

    events = read_trace(serial)
    counts = Counter(event["name"] for event in events)
    assert counts == {"parse": 3, "intern": 3, "wal-commit": 3, "compact": 1,
                      "path-index": 1}
    parsed = [e["args"]["file"] for e in events if e["name"] == "parse"]
    assert parsed == sorted(parsed), "spans must merge in file order"
    for event in events:
        if event["name"] == "parse":
            assert event["args"]["quads"] > 0
