"""Worker-span forwarding: ``--jobs N`` traces merge deterministically.

The contract mirrors the corpus/store byte-identity guarantee: with the
logical clock, the trace file from a parallel build or ingest is
*byte-identical* to the serial one — workers drain their spans per
task, the parent absorbs them in plan/file order, and the merged
timeline is indistinguishable from a single-process run.
"""

from __future__ import annotations

from collections import Counter

from repro.obs.trace import Tracer, read_trace


def _build_trace(jobs, path):
    from repro.corpus import CorpusBuilder

    tracer = Tracer(deterministic=True)
    CorpusBuilder(seed=2013).build(jobs=jobs, tracer=tracer)
    tracer.write(path)


def _ingest_trace(corpus_root, store_dir, jobs, path):
    from repro.store import QuadStore, ingest_corpus

    tracer = Tracer(deterministic=True)
    with QuadStore(store_dir) as store:
        ingest_corpus(store, corpus_root, jobs=jobs, tracer=tracer)
    tracer.write(path)


def test_build_trace_byte_identical_across_jobs(tmp_path):
    serial, parallel = tmp_path / "build-j1.trace", tmp_path / "build-j2.trace"
    _build_trace(1, serial)
    _build_trace(2, parallel)
    assert serial.read_bytes() == parallel.read_bytes()

    events = read_trace(serial)
    counts = Counter(event["name"] for event in events)
    assert counts == {"run": 198, "execute": 198, "export": 198, "serialize": 198}
    runs = {e["args"]["run"] for e in events if e["name"] == "run"}
    assert len(runs) == 198
    statuses = {e["args"]["status"] for e in events if e["name"] == "run"}
    assert "ok" in statuses and "failed" in statuses


def test_ingest_trace_byte_identical_across_jobs(tiny_corpus_dir, tmp_path):
    serial, parallel = tmp_path / "ingest-j1.trace", tmp_path / "ingest-j2.trace"
    _ingest_trace(tiny_corpus_dir, tmp_path / "store-j1", 1, serial)
    _ingest_trace(tiny_corpus_dir, tmp_path / "store-j2", 2, parallel)
    assert serial.read_bytes() == parallel.read_bytes()

    events = read_trace(serial)
    counts = Counter(event["name"] for event in events)
    assert counts == {"parse": 3, "intern": 3, "wal-commit": 3, "compact": 1,
                      "path-index": 1}
    parsed = [e["args"]["file"] for e in events if e["name"] == "parse"]
    assert parsed == sorted(parsed), "spans must merge in file order"
    for event in events:
        if event["name"] == "parse":
            assert event["args"]["quads"] > 0


class TestTraceContextParity:
    """With an active deterministic trace context, worker-minted span
    ids must equal the serial loop's — the task envelope re-derives the
    same per-task child context from the same key."""

    @staticmethod
    def _ctx():
        from repro.obs import tracectx

        return tracectx.activate(
            tracectx.start_trace(deterministic=True, seed="parity")
        )

    def test_build_ids_identical_across_jobs(self, tmp_path):
        from repro.corpus import CorpusBuilder
        from repro.obs import tracectx
        from repro.obs.trace import read_trace

        outputs = []
        for jobs in (1, 2):
            token = self._ctx()
            try:
                tracer = Tracer(deterministic=True)
                builder = CorpusBuilder(seed=2013)
                by_id, plan = builder.plan()
                plan = plan[:8]
                list(builder.iter_traces(jobs=jobs, tracer=tracer, plan=plan,
                                         by_id=by_id))
                path = tmp_path / f"ctx-build-j{jobs}.trace"
                tracer.write(path)
                outputs.append(path.read_bytes())
            finally:
                tracectx.deactivate(token)
        assert outputs[0] == outputs[1]
        events = read_trace(tmp_path / "ctx-build-j1.trace")
        trace_ids = {e["args"].get("trace_id") for e in events}
        assert len(trace_ids) == 1 and None not in trace_ids
        span_ids = [e["args"]["span_id"] for e in events]
        assert len(span_ids) == len(set(span_ids)), "span ids must be unique"

    def test_ingest_ids_identical_across_jobs(self, tiny_corpus_dir, tmp_path):
        from repro.obs import tracectx
        from repro.obs.trace import read_trace
        from repro.store import QuadStore, ingest_corpus

        outputs = []
        for jobs in (1, 2):
            token = self._ctx()
            try:
                tracer = Tracer(deterministic=True)
                with QuadStore(tmp_path / f"ctx-store-j{jobs}") as store:
                    ingest_corpus(store, tiny_corpus_dir, jobs=jobs, tracer=tracer)
                path = tmp_path / f"ctx-ingest-j{jobs}.trace"
                tracer.write(path)
                outputs.append(path.read_bytes())
            finally:
                tracectx.deactivate(token)
        assert outputs[0] == outputs[1]
        events = read_trace(tmp_path / "ctx-ingest-j1.trace")
        assert all("trace_id" in e["args"] for e in events)
        parents = {e["args"]["parent_id"] for e in events if e["name"] == "intern"}
        probes = {e["args"]["parent_id"] for e in events if e["name"] == "parse"}
        assert parents.isdisjoint(probes) or not parents, (
            "parse and apply phases derive distinct per-task scopes"
        )
