"""Slow-query log: ring buffer, engine integration, /slowlog route."""

import json
import threading
import urllib.parse
import urllib.request

import pytest

from repro.endpoint import SparqlEndpoint
from repro.obs import SlowQueryLog, Tracer, read_jsonl
from repro.rdf import Graph, Namespace, PROV, RDF
from repro.sparql import QueryEngine

EX = Namespace("http://example.org/")


def _tiny_graph():
    g = Graph()
    g.namespaces.bind("ex", EX)
    for i in range(4):
        g.add((EX[f"run{i}"], RDF.type, PROV.Activity))
        g.add((EX[f"run{i}"], PROV.used, EX[f"data{i}"]))
        g.add((EX[f"data{i}"], RDF.type, PROV.Entity))
    return g


ACTIVITY_QUERY = "SELECT ?r WHERE { ?r a prov:Activity } ORDER BY ?r"


class TestRingBuffer:
    def test_eviction_keeps_newest_in_order(self):
        log = SlowQueryLog(threshold_ms=0, capacity=3)
        for i in range(5):
            log.add({"n": i})
        assert [e["n"] for e in log.entries()] == [2, 3, 4]
        info = log.info()
        assert info["recorded"] == 5
        assert info["evicted"] == 2
        assert info["current"] == len(log) == 3

    def test_threshold_gate(self):
        log = SlowQueryLog(threshold_ms=50)
        assert log.should_record(50.0)
        assert log.should_record(51.0)
        assert not log.should_record(49.9)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        log = SlowQueryLog(threshold_ms=0, capacity=8)
        log.add({"query_sha256": "ab", "duration_ms": 1.5, "operators": [{"op": "bgp"}]})
        log.add({"query_sha256": "cd", "duration_ms": 2.5, "operators": []})
        path = tmp_path / "slow.jsonl"
        assert log.write_jsonl(path) == 2
        assert read_jsonl(path) == log.entries()

    def test_empty_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert SlowQueryLog().write_jsonl(path) == 0
        assert read_jsonl(path) == []


class TestEngineIntegration:
    def test_threshold_zero_records_every_query(self):
        log = SlowQueryLog(threshold_ms=0)
        engine = QueryEngine(_tiny_graph(), slow_log=log)
        engine.query(ACTIVITY_QUERY)
        entries = log.entries()
        assert len(entries) == 1
        record = entries[0]
        assert record["cache"] == "miss"
        assert record["plan_digest"]
        assert record["query_sha256"]
        assert record["duration_ms"] >= 0
        # miss records carry full operator statistics with row counts
        scans = [op for op in record["operators"] if op["op"] == "scan"]
        assert scans and scans[-1]["rows_out"] == 4

    def test_high_threshold_records_nothing(self):
        log = SlowQueryLog(threshold_ms=60_000)
        engine = QueryEngine(_tiny_graph(), slow_log=log)
        engine.query(ACTIVITY_QUERY)
        assert log.entries() == []

    def test_cache_hit_recorded_as_hit(self):
        log = SlowQueryLog(threshold_ms=0)
        engine = QueryEngine(_tiny_graph(), slow_log=log)
        engine.query(ACTIVITY_QUERY)
        engine.query(ACTIVITY_QUERY)
        caches = [e["cache"] for e in log.entries()]
        assert caches == ["miss", "hit"]
        hit = log.entries()[-1]
        # a hit skipped evaluation: no plan, no operator rows
        assert hit["plan_digest"] is None
        assert hit["operators"] == []

    def test_record_digest_matches_explain(self):
        log = SlowQueryLog(threshold_ms=0)
        engine = QueryEngine(_tiny_graph(), slow_log=log)
        engine.query(ACTIVITY_QUERY)
        assert log.entries()[0]["plan_digest"] == engine.explain(ACTIVITY_QUERY).digest

    def test_span_id_cross_references_trace(self, tmp_path):
        tracer = Tracer()
        log = SlowQueryLog(threshold_ms=0)
        engine = QueryEngine(_tiny_graph(), tracer=tracer, slow_log=log)
        engine.query(ACTIVITY_QUERY)
        span_id = log.entries()[0]["span_id"]
        assert span_id is not None
        trace_path = tmp_path / "trace.json"
        tracer.write(trace_path)
        from repro.obs import read_trace

        matching = [e for e in read_trace(trace_path)
                    if e["args"].get("span_id") == span_id]
        assert len(matching) == 1
        assert matching[0]["name"] == "sparql.query"

    def test_no_span_id_without_tracer(self):
        log = SlowQueryLog(threshold_ms=0)
        engine = QueryEngine(_tiny_graph(), slow_log=log)
        engine.query(ACTIVITY_QUERY)
        assert log.entries()[0]["span_id"] is None


class TestSlowlogRoute:
    def test_disabled_endpoint_reports_disabled(self):
        with SparqlEndpoint(_tiny_graph()) as server:
            with urllib.request.urlopen(server.slowlog_url, timeout=5) as response:
                payload = json.loads(response.read())
        assert payload == {"enabled": False, "entries": []}

    def test_route_parity_with_buffer_under_concurrency(self):
        with SparqlEndpoint(_tiny_graph(), slow_query_ms=0) as server:
            queries = [
                f"SELECT ?r WHERE {{ ?r a prov:Activity }} LIMIT {n}"
                for n in range(1, 9)
            ]

            def run(q):
                url = server.query_url + "?" + urllib.parse.urlencode({"query": q})
                with urllib.request.urlopen(url, timeout=10) as response:
                    response.read()

            threads = [threading.Thread(target=run, args=(q,)) for q in queries]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with urllib.request.urlopen(server.slowlog_url, timeout=5) as response:
                payload = json.loads(response.read())
            assert payload["enabled"] is True
            assert payload["recorded"] == len(queries)
            assert payload["entries"] == server.slow_log.entries()
            hashes = {e["query_sha256"] for e in payload["entries"]}
            assert len(hashes) == len(queries)
            # every record carries the introspection fields
            for entry in payload["entries"]:
                assert entry["plan_digest"]
                assert entry["operators"]

    def test_stats_reports_slowlog_section(self):
        with SparqlEndpoint(_tiny_graph(), slow_query_ms=0, slowlog_capacity=7) as server:
            url = server.query_url + "?" + urllib.parse.urlencode(
                {"query": ACTIVITY_QUERY})
            with urllib.request.urlopen(url, timeout=5) as response:
                response.read()
            with urllib.request.urlopen(server.stats_url, timeout=5) as response:
                stats = json.loads(response.read())
        assert stats["slow_queries"]["capacity"] == 7
        assert stats["slow_queries"]["recorded"] == 1
