"""The TTY-gated one-line progress reporter."""

from __future__ import annotations

import io

from repro.obs import metrics
from repro.obs.progress import Progress


class _Tty(io.StringIO):
    def isatty(self):
        return True


class TestTtyGating:
    def test_non_tty_updates_silent_finish_summarizes(self):
        # Live refreshes are TTY-gated, but the final totals line lands
        # exactly once even when piped, so CI logs record completion.
        stream = io.StringIO()
        progress = Progress("build", total=10, stream=stream)
        for i in range(1, 11):
            progress.update(i, work=i * 100)
        assert stream.getvalue() == ""
        assert progress.emitted == 0
        progress.finish(10, work=1000)
        output = stream.getvalue()
        assert progress.emitted == 1
        assert output.count("\n") == 1
        assert "\r" not in output
        assert "build: 10/10 runs" in output
        assert "1,000 quads" in output
        assert "in " in output

    def test_emits_on_tty(self):
        stream = _Tty()
        progress = Progress("build", total=2, unit="runs", work_unit="triples",
                            stream=stream, min_interval=0.0)
        progress.update(1, work=100)
        progress.finish(2, work=250)
        output = stream.getvalue()
        assert "build: 1/2 runs" in output
        assert "100 triples" in output
        assert output.endswith("\n")
        assert "build: 2/2 runs" in output

    def test_forced_enable_overrides_non_tty(self):
        stream = io.StringIO()
        progress = Progress("x", total=1, stream=stream, enabled=True,
                            min_interval=0.0)
        progress.update(1)
        assert stream.getvalue() != ""


class TestRateLimiting:
    def test_updates_are_rate_limited(self):
        stream = _Tty()
        progress = Progress("ingest", total=1000, stream=stream,
                            min_interval=3600.0)
        for i in range(1, 1001):
            progress.update(i, work=i)
        # Only the first update slips through the interval window.
        assert progress.emitted == 1
        progress.finish(1000, work=1000)
        assert progress.emitted == 2

    def test_eta_only_while_in_flight(self):
        stream = _Tty()
        progress = Progress("build", total=4, stream=stream, min_interval=0.0)
        progress.update(2, work=10)
        assert "ETA" in stream.getvalue()
        progress.finish(4, work=20)
        final_line = stream.getvalue().splitlines()[-1]
        assert "ETA" not in final_line
        assert "in " in final_line


class TestCounterDriven:
    def test_work_falls_back_to_counter_delta(self):
        counter = metrics.counter("test_progress_quads_total", "test counter")
        counter.inc(500)  # pre-existing process-lifetime total
        stream = _Tty()
        progress = Progress("ingest", total=2, work_unit="quads",
                            work_counter=counter, stream=stream,
                            min_interval=0.0)
        counter.inc(40)
        progress.update(1)
        assert "40 quads" in stream.getvalue()
        counter.inc(60)
        progress.finish(2)
        assert "100 quads" in stream.getvalue()
