"""Regression: pool-worker metrics must survive into the parent's scrape.

Before the shared-memory shards, a ``--jobs N`` ingest silently lost
every counter incremented inside the worker processes — the parent's
``/metrics`` reported parse totals as if almost nothing had been
parsed.  This pins the contract end to end: with an obs dir attached,
the aggregated post-ingest snapshot carries the workers' parse
counters, and their totals equal a serial run's registry deltas
*exactly* (the parse path is identical code either way).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.obs import metrics as _metrics
from repro.obs import shm
from repro.store import QuadStore, ingest_corpus

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel ingest relies on fork start method",
)

_COUNTERS = (
    ("repro_ingest_parse_quads_total", None),
    ("repro_ingest_parse_terms_total", {"result": "miss"}),
    ("repro_ingest_parse_terms_total", {"result": "hit"}),
)


@pytest.fixture(autouse=True)
def _clean_module_state():
    yield
    shm.unconfigure()


def _registry_values():
    return tuple(_metrics.value(name, labels) or 0.0 for name, labels in _COUNTERS)


def _aggregated_values(series):
    out = []
    for name, labels in _COUNTERS:
        key = (name, tuple(sorted((labels or {}).items())), "")
        entry = series.get(key)
        out.append(entry[1] if entry is not None else 0.0)
    return tuple(out)


def test_jobs2_worker_counters_sum_to_serial(tiny_corpus_dir, tmp_path):
    # Serial leg: parsing happens in-process, so plain registry deltas
    # are the ground truth.
    before = _registry_values()
    with QuadStore(tmp_path / "store-serial") as store:
        ingest_corpus(store, tiny_corpus_dir, jobs=1)
    serial = tuple(a - b for a, b in zip(_registry_values(), before))
    assert serial[0] > 0, "fixture must produce quads"

    # Parallel leg: baseline is captured at configure(), so the serial
    # leg's increments never leak into the aggregated deltas.
    obs_dir = tmp_path / "obs"
    shm.configure(obs_dir)
    with QuadStore(tmp_path / "store-j2") as store:
        ingest_corpus(store, tiny_corpus_dir, jobs=2)

    # The pool workers left shards behind (parent shard + >=1 worker).
    shard_pids = {view.pid for view in map(shm.read_shard,
                                           obs_dir.glob("shard-*.shm"))}
    assert len(shard_pids) >= 2
    assert any(pid != os.getpid() for pid in shard_pids)

    series, _ = shm.aggregate(obs_dir)
    assert _aggregated_values(series) == serial


def test_serial_ingest_with_obs_dir_matches_registry(tiny_corpus_dir, tmp_path):
    # jobs=1 never forks; the parent's own shard must still carry the
    # same deltas the registry does, so scrapes are mode-independent.
    obs_dir = tmp_path / "obs"
    shm.configure(obs_dir)
    before = _registry_values()
    with QuadStore(tmp_path / "store") as store:
        ingest_corpus(store, tiny_corpus_dir, jobs=1)
    deltas = tuple(a - b for a, b in zip(_registry_values(), before))
    series, _ = shm.aggregate(obs_dir)
    assert _aggregated_values(series) == deltas
