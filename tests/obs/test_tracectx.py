"""W3C trace context: parsing, deterministic ids, the tail ring.

The traceparent edge cases follow the W3C trace-context spec: invalid
inbound context (malformed, short, uppercase, version ff, all-zero ids)
must *restart* the trace, never crash or half-adopt it.  Deterministic
derivation is the property the --jobs 1/2 byte-identity contract rests
on: ids are pure functions of (trace, parent, key/ordinal), never of
process layout.
"""

import pytest

from repro.obs import tracectx
from repro.obs.trace import Tracer
from repro.obs.tracectx import TraceContext, TraceRing


VALID = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"


class TestParseTraceparent:
    def test_valid_header(self):
        assert tracectx.parse_traceparent(VALID) == (
            "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", "01"
        )

    def test_surrounding_whitespace_tolerated(self):
        assert tracectx.parse_traceparent(f"  {VALID}  ") is not None

    @pytest.mark.parametrize("header", [
        None,
        "",
        "00-abc-def-01",                                              # short ids
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",       # missing flags
        "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",    # uppercase
        "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",    # non-hex
        "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",    # version ff
        "00-" + "0" * 32 + "-00f067aa0ba902b7-01",                    # zero trace
        "00-4bf92f3577b34da6a3ce929d0e0e4736-" + "0" * 16 + "-01",    # zero span
        "not a header at all",
    ])
    def test_invalid_headers_rejected(self, header):
        assert tracectx.parse_traceparent(header) is None

    def test_start_trace_continues_valid_header(self):
        ctx = tracectx.start_trace(VALID)
        assert ctx.trace_id == "4bf92f3577b34da6a3ce929d0e0e4736"
        assert ctx.span_id == "00f067aa0ba902b7"

    def test_start_trace_mints_fresh_root_on_malformed(self):
        ctx = tracectx.start_trace("00-000-bad")
        assert len(ctx.trace_id) == 32
        assert ctx.trace_id != "0" * 32
        assert len(ctx.span_id) == 16

    def test_format_round_trip(self):
        ctx = tracectx.start_trace(VALID)
        assert tracectx.format_traceparent(ctx) == VALID


class TestDeterministicIds:
    def test_deterministic_trace_id_is_seed_function(self):
        a = tracectx.new_trace_id(deterministic=True, seed="s1")
        b = tracectx.new_trace_id(deterministic=True, seed="s1")
        c = tracectx.new_trace_id(deterministic=True, seed="s2")
        assert a == b != c

    def test_child_ids_are_position_functions(self):
        one = tracectx.start_trace(deterministic=True, seed="x")
        two = tracectx.start_trace(deterministic=True, seed="x")
        assert [one.child_id() for _ in range(3)] == [two.child_id() for _ in range(3)]

    def test_derived_task_context_matches_across_instances(self):
        one = tracectx.start_trace(deterministic=True, seed="x").derived("run-42")
        two = tracectx.start_trace(deterministic=True, seed="x").derived("run-42")
        other = tracectx.start_trace(deterministic=True, seed="x").derived("run-43")
        assert one.span_id == two.span_id != other.span_id
        assert one.child_id() == two.child_id()

    def test_random_mode_mints_distinct_ids(self):
        ctx = tracectx.start_trace()
        assert ctx.child_id() != ctx.child_id()


class TestContextVar:
    def test_activate_deactivate(self):
        assert tracectx.current() is None
        ctx = tracectx.start_trace()
        token = tracectx.activate(ctx)
        try:
            assert tracectx.current() is ctx
            assert tracectx.current_trace_id() == ctx.trace_id
        finally:
            tracectx.deactivate(token)
        assert tracectx.current() is None

    def test_task_scope_noop_without_context(self):
        with tracectx.task_scope("k") as derived:
            assert derived is None
        assert tracectx.current() is None

    def test_task_scope_derives_and_restores(self):
        root = tracectx.start_trace(deterministic=True, seed="x")
        token = tracectx.activate(root)
        try:
            with tracectx.task_scope("k") as derived:
                assert tracectx.current() is derived
                assert derived.trace_id == root.trace_id
                assert derived.span_id != root.span_id
            assert tracectx.current() is root
        finally:
            tracectx.deactivate(token)


class TestSpanIntegration:
    def test_spans_stamp_ids_and_nest_under_active_context(self):
        tracer = Tracer(deterministic=True)
        ctx = tracectx.start_trace(deterministic=True, seed="t")
        token = tracectx.activate(ctx)
        try:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        finally:
            tracectx.deactivate(token)
        outer, inner = sorted(tracer.events(), key=lambda e: e["ts"])
        assert outer["args"]["trace_id"] == inner["args"]["trace_id"] == ctx.trace_id
        assert outer["args"]["parent_id"] == ctx.span_id
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]

    def test_spans_unstamped_without_context(self):
        tracer = Tracer(deterministic=True)
        with tracer.span("plain"):
            pass
        (event,) = tracer.events()
        assert "trace_id" not in event["args"]
        assert "parent_id" not in event["args"]

    def test_sink_collects_spans_even_without_tracer(self):
        from repro.obs.trace import span

        sink = []
        ctx = tracectx.start_trace(sink=sink)
        token = tracectx.activate(ctx)
        try:
            with span(None, "work", cat="test", detail=7):
                pass
        finally:
            tracectx.deactivate(token)
        (record,) = sink
        assert record["name"] == "work"
        assert record["trace_id"] == ctx.trace_id
        assert record["parent_id"] == ctx.span_id
        assert record["args"]["detail"] == 7
        assert "trace_id" not in record["args"]  # ids live top-level only

    def test_span_helper_still_noop_without_any_context(self):
        from repro.obs.trace import NULL_SPAN, span

        assert span(None, "nothing") is NULL_SPAN


class TestTraceRing:
    def test_admit_and_get(self):
        ring = TraceRing(capacity=4)
        ring.admit("t1", [{"name": "a"}], route="/sparql", status=200)
        record = ring.get("t1")
        assert record["route"] == "/sparql"
        assert record["spans"] == [{"name": "a"}]

    def test_get_unknown_is_none(self):
        assert TraceRing().get("missing") is None

    def test_eviction_drops_oldest(self):
        ring = TraceRing(capacity=2)
        for i in range(3):
            ring.admit(f"t{i}", [])
        assert ring.get("t0") is None  # evicted
        assert ring.get("t1") is not None
        assert ring.get("t2") is not None
        info = ring.info()
        assert info == {"capacity": 2, "current": 2, "admitted": 3, "evicted": 1}

    def test_readmission_replaces(self):
        ring = TraceRing(capacity=2)
        ring.admit("t1", [{"name": "old"}])
        ring.admit("t1", [{"name": "new"}])
        assert ring.get("t1")["spans"] == [{"name": "new"}]
        assert len(ring) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)


class TestSpanTree:
    def test_nests_children_under_parents(self):
        spans = [
            {"name": "root", "span_id": "a", "parent_id": "external"},
            {"name": "child", "span_id": "b", "parent_id": "a"},
            {"name": "grandchild", "span_id": "c", "parent_id": "b"},
            {"name": "sibling", "span_id": "d", "parent_id": "a"},
        ]
        (root,) = tracectx.span_tree(spans)
        assert root["name"] == "root"
        assert [c["name"] for c in root["children"]] == ["child", "sibling"]
        assert root["children"][0]["children"][0]["name"] == "grandchild"

    def test_orphans_become_roots(self):
        roots = tracectx.span_tree([{"name": "lost", "span_id": "x",
                                     "parent_id": "gone"}])
        assert [r["name"] for r in roots] == ["lost"]
