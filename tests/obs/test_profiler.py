"""Statistical profiler: folded round-trip, attribution, accounting.

``sample_once`` is the deterministic seam: tests drive sampling passes
directly instead of racing the background thread, so attribution and
accounting assertions never flake on scheduler timing.
"""

import threading
import time

import pytest

from repro.obs import metrics as _metrics
from repro.obs import profiler
from repro.obs.profiler import (
    StackProfiler,
    parse_folded,
    render_folded,
    render_speedscope,
)


class TestFoldedFormat:
    COUNTS = {
        ("/sparql", ("main (a.py:1)", "run (b.py:2)")): 5,
        ("-", ("idle (c.py:3)",)): 2,
        ("/sparql", ("main (a.py:1)",)): 1,
    }

    def test_render_is_sorted_lines_with_counts(self):
        text = render_folded(self.COUNTS)
        assert text.splitlines() == [
            "-;idle (c.py:3) 2",
            "/sparql;main (a.py:1) 1",
            "/sparql;main (a.py:1);run (b.py:2) 5",
        ]
        assert text.endswith("\n")

    def test_round_trip(self):
        assert parse_folded(render_folded(self.COUNTS)) == self.COUNTS

    def test_parse_skips_malformed_lines(self):
        text = "ok;stack 3\n\nnot-a-count-line\nalso bad x\n"
        assert parse_folded(text) == {("ok", ("stack",)): 3}

    def test_parse_merges_duplicate_stacks(self):
        assert parse_folded("a;b 1\na;b 2\n") == {("a", ("b",)): 3}

    def test_empty_counts_render_empty(self):
        assert render_folded({}) == ""
        assert parse_folded("") == {}

    def test_speedscope_structure(self):
        doc = render_speedscope(self.COUNTS, name="test-profile")
        assert doc["name"] == "test-profile"
        assert doc["$schema"].startswith("https://www.speedscope.app/")
        names = [p["name"] for p in doc["profiles"]]
        assert names == ["-", "/sparql"]
        frames = doc["shared"]["frames"]
        sparql = doc["profiles"][1]
        assert sparql["type"] == "sampled"
        assert sum(sparql["weights"]) == 6
        # every sample indexes into the shared frame table
        for sample in sparql["samples"]:
            for idx in sample:
                assert 0 <= idx < len(frames)


class TestSampling:
    def test_sample_once_captures_this_thread(self):
        prof = StackProfiler(hz=50)
        kept = prof.sample_once()
        assert kept >= 1
        stacks = [stack for (_, stack) in prof.counts()]
        flat = ";".join(label for stack in stacks for label in stack)
        assert "test_sample_once_captures_this_thread" in flat

    def test_thread_attribution(self):
        prof = StackProfiler(hz=50)
        ready = threading.Event()
        done = threading.Event()

        def busy_request():
            profiler.register_thread("/sparql", trace_id="t" * 32)
            try:
                ready.set()
                done.wait(5)
            finally:
                profiler.unregister_thread()

        worker = threading.Thread(target=busy_request, daemon=True)
        worker.start()
        assert ready.wait(5)
        try:
            prof.sample_once()
        finally:
            done.set()
            worker.join(5)
        routes = {route for (route, _) in prof.counts()}
        assert "/sparql" in routes
        assert prof.trace_samples("t" * 32) >= 1
        assert prof.trace_samples("unseen") == 0

    def test_unregistered_threads_are_unattributed(self):
        prof = StackProfiler(hz=50)
        prof.sample_once()
        assert all(route == "-" for (route, _) in prof.counts())

    def test_background_loop_collects(self):
        with StackProfiler(hz=100) as prof:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if prof.snapshot()["samples_kept"] >= 3:
                    break
                time.sleep(0.01)
        snap = prof.snapshot()
        assert snap["samples_kept"] >= 3
        assert not snap["running"]
        assert prof.counts()

    def test_max_depth_truncates(self):
        prof = StackProfiler(hz=50, max_depth=2)
        prof.sample_once()
        assert all(len(stack) <= 2 for (_, stack) in prof.counts())

    def test_hz_must_be_positive(self):
        with pytest.raises(ValueError):
            StackProfiler(hz=0)


class TestAccounting:
    def test_overhead_and_kept_counters(self):
        prof = StackProfiler(hz=50)
        for _ in range(3):
            prof.sample_once()
        snap = prof.snapshot()
        assert snap["samples_kept"] == 3
        assert snap["samples_dropped"] == 0
        assert snap["overhead_s"] >= 0.0
        assert snap["distinct_stacks"] >= 1

    def test_metrics_mirrored_while_running(self):
        with StackProfiler(hz=100) as prof:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if prof.snapshot()["samples_kept"] >= 2:
                    break
                time.sleep(0.01)
            snapshot = _metrics.snapshot()
            interval = snapshot["repro_profiler_interval_seconds"]["samples"][0]
            assert interval["value"] == pytest.approx(0.01)
        # final values mirrored on stop, gauge reset to 0
        snapshot = _metrics.snapshot()
        interval = snapshot["repro_profiler_interval_seconds"]["samples"][0]
        assert interval["value"] == 0.0
        families = snapshot["repro_profiler_samples_total"]["samples"]
        kept = {tuple(sorted(s["labels"].items())): s["value"] for s in families}
        assert kept[(("state", "kept"),)] >= 2

    def test_window_diffs_counts(self):
        prof = StackProfiler(hz=50)
        prof.sample_once()
        before = dict(prof.counts())
        window_counts = prof.window(0.0)  # no sleep, no new samples
        assert window_counts == {}
        prof.sample_once()
        # everything sampled after `before` shows up as a positive delta
        after = prof.counts()
        assert sum(after.values()) > sum(before.values())


class TestModuleSingleton:
    def test_start_stop_idempotent(self):
        prof = profiler.start(hz=100)
        try:
            assert profiler.get_profiler() is prof
            assert profiler.start(hz=100) is prof  # already running
        finally:
            profiler.stop()
        assert profiler.get_profiler() is None
        profiler.stop()  # second stop is a no-op

    def test_profile_window_without_running_profiler(self):
        assert profiler.get_profiler() is None
        counts, snap = profiler.profile_window(0.06, hz=100)
        assert snap["samples_kept"] >= 1
        assert counts  # this thread's sleep is visible in the window
        assert profiler.get_profiler() is None  # temporary, torn down

    def test_profile_window_scopes_always_on_counters(self):
        prof = profiler.start(hz=100)
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if prof.snapshot()["samples_kept"] >= 20:
                    break
                time.sleep(0.01)
            cumulative = prof.snapshot()["samples_kept"]
            assert cumulative >= 20
            _, snap = profiler.profile_window(0.05)
            # the window must not report the profiler's lifetime totals
            assert snap["samples_kept"] < cumulative
            assert snap["samples_dropped"] <= prof.snapshot()["samples_dropped"]
            assert snap["elapsed_s"] == 0.05
        finally:
            profiler.stop()
