"""Shared-memory metric shards: cross-process aggregation correctness.

The contracts pinned here are the ones the ``--obs-dir`` pipeline rides
on: N concurrent writer processes hammering counters and histograms sum
exactly at scrape time; a SIGKILL'd writer's orphan shard is swept into
the residual and counted exactly once no matter how many scrapes
follow; fork-inherited registry values never double-count; and a
torn or corrupt shard can degrade a scrape but never crash it.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import struct

import pytest

from repro.obs import metrics as _metrics
from repro.obs import shm
from repro.obs.metrics import MetricsRegistry

FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not FORK, reason="needs fork start method")


def _ctx():
    return multiprocessing.get_context("fork")


def _series_value(series, name, labels=(), part=""):
    entry = series.get((name, labels, part))
    return entry[1] if entry is not None else None


@pytest.fixture(autouse=True)
def _clean_module_state():
    yield
    shm.unconfigure()


class TestShardRoundTrip:
    def test_writer_values_read_back(self, tmp_path):
        writer = shm.ShardWriter(tmp_path)
        writer.set("c_total", (("worker", "1"),), "", shm.KIND_COUNTER, 7.0)
        writer.set("g_now", (), "", shm.KIND_GAUGE, 3.5)
        writer.set("h_seconds", (), "le:0.1", shm.KIND_HISTOGRAM, 2.0)
        writer.set("h_seconds", (), "sum", shm.KIND_HISTOGRAM, 0.15)
        writer.set("h_seconds", (), "count", shm.KIND_HISTOGRAM, 2.0)
        view = shm.read_shard(writer.path)
        writer.close(unlink=True)
        assert view.pid == os.getpid()
        assert view.series[("c_total", (("worker", "1"),), "")] == ("c", 7.0)
        assert view.series[("g_now", (), "")] == ("g", 3.5)
        assert view.series[("h_seconds", (), "sum")] == ("h", 0.15)

    def test_rewrites_reuse_slot(self, tmp_path):
        writer = shm.ShardWriter(tmp_path)
        for value in range(100):
            writer.set("c_total", (), "", shm.KIND_COUNTER, float(value))
        view = shm.read_shard(writer.path)
        writer.close(unlink=True)
        assert len(view.series) == 1
        assert view.series[("c_total", (), "")] == ("c", 99.0)

    def test_non_shard_file_is_skipped(self, tmp_path):
        (tmp_path / "shard-1-bogus.shm").write_bytes(b"not a shard at all")
        shm.ensure_dir(tmp_path)
        series, shards = shm.aggregate(tmp_path)
        assert series == {} and shards == []

    def test_torn_slot_is_skipped_not_fatal(self, tmp_path):
        writer = shm.ShardWriter(tmp_path)
        writer.set("good_total", (), "", shm.KIND_COUNTER, 1.0)
        writer.set("doomed_total", (), "", shm.KIND_COUNTER, 2.0)
        writer.close()
        data = bytearray(writer.path.read_bytes())
        # Corrupt the second slot's key bytes (mid-write torn state).
        base = shm.HEADER_SIZE + shm.SLOT_SIZE
        data[base + 16:base + 24] = b"\xff" * 8
        writer.path.write_bytes(bytes(data))
        view = shm.read_shard(writer.path)
        assert ("good_total", (), "") in view.series
        assert all(name != "doomed_total" for name, _, _ in view.series)

    def test_capacity_overflow_raises(self, tmp_path):
        writer = shm.ShardWriter(tmp_path, capacity=2)
        writer.set("a_total", (), "", shm.KIND_COUNTER, 1.0)
        writer.set("b_total", (), "", shm.KIND_COUNTER, 1.0)
        with pytest.raises(shm.ShardError):
            writer.set("c_total", (), "", shm.KIND_COUNTER, 1.0)
        writer.close(unlink=True)


def _hammer(obs_dir, worker_id, rounds):
    writer = shm.ShardWriter(obs_dir)
    for i in range(1, rounds + 1):
        writer.set("hammer_total", (), "", shm.KIND_COUNTER, float(i))
        writer.set("hammer_by_worker_total", (("worker", str(worker_id)),),
                   "", shm.KIND_COUNTER, float(i))
        writer.set("hammer_seconds", (), "count", shm.KIND_HISTOGRAM, float(i))
        writer.set("hammer_seconds", (), "sum", shm.KIND_HISTOGRAM, i * 0.5)
        writer.set("hammer_seconds", (), "le:1", shm.KIND_HISTOGRAM, float(i))
        writer.set("hammer_gauge", (), "", shm.KIND_GAUGE, float(worker_id))
    writer.close()  # file stays behind; the sweep folds it


@fork_only
class TestCrossProcessAggregation:
    def test_n_writers_sum_exactly(self, tmp_path):
        n, rounds = 4, 500
        shm.ensure_dir(tmp_path)
        procs = [
            _ctx().Process(target=_hammer, args=(tmp_path, i, rounds))
            for i in range(n)
        ]
        for proc in procs:
            proc.start()
        # Concurrent scrapes while writers hammer must never raise and
        # never exceed the final total.
        while any(proc.is_alive() for proc in procs):
            series, _ = shm.aggregate(tmp_path, sweep=False)
            live = _series_value(series, "hammer_total")
            assert live is None or live <= n * rounds
        for proc in procs:
            proc.join()
            assert proc.exitcode == 0
        series, _ = shm.aggregate(tmp_path)
        assert _series_value(series, "hammer_total") == n * rounds
        assert _series_value(series, "hammer_seconds", part="count") == n * rounds
        assert _series_value(series, "hammer_seconds", part="sum") == pytest.approx(
            n * rounds * 0.5
        )
        assert _series_value(series, "hammer_seconds", part="le:1") == n * rounds
        for i in range(n):
            assert _series_value(
                series, "hammer_by_worker_total", (("worker", str(i)),)
            ) == rounds
        # Gauges aggregate by max, not sum.
        assert _series_value(series, "hammer_gauge") == n - 1

    def test_killed_writer_counted_exactly_once(self, tmp_path):
        def doomed(obs_dir):
            writer = shm.ShardWriter(obs_dir)
            writer.set("doomed_total", (), "", shm.KIND_COUNTER, 42.0)
            os.kill(os.getpid(), signal.SIGKILL)

        shm.ensure_dir(tmp_path)
        proc = _ctx().Process(target=doomed, args=(tmp_path,))
        proc.start()
        proc.join()
        assert proc.exitcode == -signal.SIGKILL
        assert list(tmp_path.glob("shard-*.shm")), "orphan shard must remain"
        for _ in range(3):  # repeated scrapes must not re-count the orphan
            series, _ = shm.aggregate(tmp_path)
            assert _series_value(series, "doomed_total") == 42.0
        assert not list(tmp_path.glob("shard-*.shm"))
        residual = json.loads((tmp_path / shm.RESIDUAL_FILE).read_text())
        assert len(residual["swept"]) == 1

    def test_live_writer_is_never_swept(self, tmp_path):
        writer = shm.ShardWriter(tmp_path)
        writer.set("live_total", (), "", shm.KIND_COUNTER, 5.0)
        assert shm.sweep_orphans(tmp_path) == 0
        series, shards = shm.aggregate(tmp_path)
        assert _series_value(series, "live_total") == 5.0
        assert shards[0]["alive"] is True
        writer.close(unlink=True)

    def test_reset_discards_previous_epoch(self, tmp_path):
        proc = _ctx().Process(target=_hammer, args=(tmp_path, 0, 10))
        proc.start()
        proc.join()
        shm.reset(tmp_path)
        series, _ = shm.aggregate(tmp_path)
        assert series == {}  # stale-generation shard discarded, not folded
        assert not list(tmp_path.glob("shard-*.shm"))


def _forked_registry_child(obs_dir, queue):
    # Inherits the parent's registry values; attach() must discard the
    # inherited writer and baseline-subtract so only child deltas publish.
    shm.attach(obs_dir)
    _metrics.counter("fork_base_total", "t").inc(3)
    shm.flush()
    queue.put(os.getpid())


@fork_only
class TestForkSafety:
    def test_inherited_values_not_double_counted(self, tmp_path):
        counter = _metrics.counter("fork_base_total", "t")
        before = counter.value
        shm.configure(tmp_path)  # baseline captured here
        counter.inc(100)
        shm.flush()
        queue = _ctx().Queue()
        proc = _ctx().Process(target=_forked_registry_child,
                              args=(tmp_path, queue))
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        child_pid = queue.get(timeout=5)
        assert child_pid != os.getpid()
        paths = list(tmp_path.glob("shard-*.shm"))
        assert len(paths) == 2  # parent shard + child shard, never shared
        series, _ = shm.aggregate(tmp_path)
        # Parent delta (100) + child delta (3); the pre-attach value and
        # the fork-inherited snapshot are both baseline-subtracted.
        assert _series_value(series, "fork_base_total") == 103.0
        assert counter.value == before + 100.0


class TestRegistryMirror:
    def test_baseline_subtraction_and_histograms(self, tmp_path):
        registry = MetricsRegistry()
        counter = registry.counter("m_total", "t")
        histogram = registry.histogram("m_seconds", "t", buckets=[0.1, 1.0])
        counter.inc(50)
        histogram.observe(0.05)
        writer = shm.ShardWriter(tmp_path)
        mirror = shm.RegistryMirror(registry, writer)
        counter.inc(8)
        histogram.observe(0.5)
        mirror.flush()
        writer.close()
        series, _ = shm.aggregate(tmp_path, sweep=False)
        assert _series_value(series, "m_total") == 8.0
        assert _series_value(series, "m_seconds", part="count") == 1.0
        assert _series_value(series, "m_seconds", part="le:1") == 1.0
        assert _series_value(series, "m_seconds", part="le:0.1") == 0.0
        assert _series_value(series, "m_seconds", part="sum") == pytest.approx(0.5)

    def test_untouched_series_allocate_no_new_slots(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("idle_total", "t")
        writer = shm.ShardWriter(tmp_path)
        mirror = shm.RegistryMirror(registry, writer)
        mirror.flush()
        view = shm.read_shard(writer.path)
        writer.close(unlink=True)
        assert ("idle_total", (), "") not in view.series


class TestMergedExposition:
    def test_registry_plus_shard_render(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("merge_total", "Things merged").inc(10)
        foreign = shm.ShardWriter(tmp_path)
        foreign.set("merge_total", (), "", shm.KIND_COUNTER, 5.0)
        foreign.close()
        # Fake a foreign pid so the shard is not excluded as "our own".
        data = bytearray(foreign.path.read_bytes())
        struct.pack_into("<I", data, 8, 2 ** 22 + 1)
        foreign.path.write_bytes(bytes(data))
        body = shm.render_aggregated(tmp_path, registry=registry)
        assert "# TYPE merge_total counter" in body
        assert "\nmerge_total 15\n" in body or body.startswith("merge_total 15")

    def test_own_shard_excluded_when_registry_given(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("own_total", "t").inc(4)
        shm.configure(tmp_path)
        shm.flush()  # our shard now also carries own_total-ish deltas
        writer = shm.ShardWriter(tmp_path)
        writer.set("own_total", (), "", shm.KIND_COUNTER, 999.0)
        writer.close(unlink=True)
        body = shm.render_aggregated(tmp_path, registry=registry)
        assert "own_total 4" in body

    def test_snapshot_shape(self, tmp_path):
        writer = shm.ShardWriter(tmp_path)
        writer.set("snap_total", (("k", "v"),), "", shm.KIND_COUNTER, 2.0)
        snapshot = shm.snapshot_aggregated(tmp_path)
        writer.close(unlink=True)
        family = snapshot["metrics"]["snap_total"]
        assert family["type"] == "counter"
        assert family["samples"] == [{"labels": {"k": "v"}, "value": 2.0}]
        assert snapshot["shards"][0]["pid"] == os.getpid()
