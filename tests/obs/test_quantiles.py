"""CKMS targeted-quantile sketches: the documented rank-error bound.

The contract (also stated in DESIGN.md): for every target ``(φ, ε)``
and stream of *n* observations, ``query(φ)`` returns a stream value
whose rank is within ``ε·n`` of ``φ·n``.  The fixture is deterministic
(seeded shuffle), so a regression in the invariant or compression
shows up as a hard failure, not flaky noise.
"""

from __future__ import annotations

import bisect
import random

import pytest

from repro.obs.quantiles import DEFAULT_TARGETS, QuantileFamily, QuantileSketch


def _rank_bounds(ordered, value):
    """The [lo, hi] rank range *value* occupies in the sorted stream."""
    return bisect.bisect_left(ordered, value), bisect.bisect_right(ordered, value)


def _assert_within_bound(sketch, data):
    ordered = sorted(data)
    n = len(data)
    for quantile, epsilon in sketch.targets:
        estimate = sketch.query(quantile)
        lo, hi = _rank_bounds(ordered, estimate)
        target = quantile * n
        assert lo - epsilon * n <= target <= hi + epsilon * n, (
            f"q={quantile}: estimate {estimate} has rank [{lo},{hi}], "
            f"target {target:.0f} ± {epsilon * n:.0f}"
        )


class TestRankErrorBound:
    @pytest.mark.parametrize("seed", [7, 2013, 99])
    def test_uniform_stream_within_bound(self, seed):
        rng = random.Random(seed)
        data = [rng.random() for _ in range(10_000)]
        sketch = QuantileSketch()
        for value in data:
            sketch.observe(value)
        _assert_within_bound(sketch, data)

    def test_adversarial_sorted_and_reversed(self):
        data = [float(i) for i in range(5_000)]
        for stream in (data, list(reversed(data))):
            sketch = QuantileSketch()
            for value in stream:
                sketch.observe(value)
            _assert_within_bound(sketch, data)

    def test_heavy_tail_p99(self):
        # 1% of observations are 100× slower — exactly what the p99
        # target (ε=0.001) must resolve and fixed buckets cannot.
        rng = random.Random(42)
        data = [0.001 + rng.random() * 0.001 for _ in range(9_900)]
        data += [0.1 + rng.random() * 0.1 for _ in range(100)]
        rng.shuffle(data)
        sketch = QuantileSketch()
        for value in data:
            sketch.observe(value)
        _assert_within_bound(sketch, data)
        assert sketch.query(0.5) < 0.01  # body, not tail

    def test_space_stays_sublinear(self):
        rng = random.Random(1)
        sketch = QuantileSketch()
        for _ in range(50_000):
            sketch.observe(rng.random())
        assert sketch.count == 50_000
        assert sketch.sample_count < 500  # vs 50k raw samples

    def test_small_streams_exact_edges(self):
        sketch = QuantileSketch()
        assert sketch.query(0.99) is None
        sketch.observe(3.0)
        assert sketch.query(0.5) == 3.0
        for value in (1.0, 2.0):
            sketch.observe(value)
        assert sketch.query(0.99) == 3.0
        assert sketch.count == 3
        assert sketch.sum == pytest.approx(6.0)

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(targets=[(1.5, 0.01)])
        with pytest.raises(ValueError):
            QuantileSketch(targets=[(0.5, 0.0)])


class TestQuantileFamily:
    def test_per_label_sketches_and_render(self):
        family = QuantileFamily("repro_endpoint_request_seconds",
                                "Request latency.", label="route")
        for i in range(1000):
            family.observe("/sparql", i / 1000.0)
        family.observe("/stats", 0.002)
        body = family.render()
        assert "# TYPE repro_endpoint_request_seconds summary" in body
        assert 'route="/sparql",quantile="0.99"' in body
        assert 'repro_endpoint_request_seconds_count{route="/sparql"} 1000' in body
        assert 'repro_endpoint_request_seconds_count{route="/stats"} 1' in body
        p99 = family.quantile("/sparql", 0.99)
        assert 0.985 <= p99 <= 0.995  # ε=0.001 → rank within ±1 of 990

    def test_series_bound_overflows_to_other(self):
        family = QuantileFamily("t_seconds", label="plan_digest", max_series=2)
        family.observe("a", 1.0)
        family.observe("b", 2.0)
        family.observe("c", 3.0)  # past the bound → folded into "other"
        family.observe("d", 4.0)
        assert sorted(family.labels()) == ["a", "b", "other"]
        assert family.quantile("other", 0.5) in (3.0, 4.0)

    def test_empty_family_renders_nothing(self):
        assert QuantileFamily("t_seconds").render() == ""
        assert QuantileFamily("t_seconds").snapshot() == {}

    def test_snapshot_shape(self):
        family = QuantileFamily("t_seconds", targets=DEFAULT_TARGETS)
        for i in range(10):
            family.observe("x", float(i))
        snapshot = family.snapshot()
        assert snapshot["x"]["count"] == 10
        assert set(snapshot["x"]["quantiles"]) == {"0.5", "0.95", "0.99"}
