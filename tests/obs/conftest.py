"""Fixtures for the observability tests.

`tiny_corpus_dir` is a hand-written three-file corpus (two Turtle
traces and one TriG trace) — big enough to exercise more than one pool
worker, cheap enough to rebuild per test.
"""

from __future__ import annotations

import pytest

_TTL_ONE = """\
@prefix ex: <http://example.org/> .
@prefix prov: <http://www.w3.org/ns/prov#> .

ex:run1 a prov:Activity ;
    prov:used ex:data1, ex:data2 .
ex:data1 a prov:Entity ; ex:label "input one" .
ex:data2 a prov:Entity ; ex:label "entrada"@es .
"""

_TTL_TWO = """\
@prefix ex: <http://example.org/> .
@prefix prov: <http://www.w3.org/ns/prov#> .

ex:run2 a prov:Activity ; prov:used ex:data1 .
ex:out1 a prov:Entity ; prov:wasGeneratedBy ex:run2 .
"""

_TRIG = """\
@prefix ex: <http://example.org/> .
@prefix prov: <http://www.w3.org/ns/prov#> .

ex:bundle1 a prov:Bundle .
GRAPH ex:bundle1 {
    ex:run3 a prov:Activity ; prov:used ex:out1 .
    ex:out2 a prov:Entity ; prov:wasGeneratedBy ex:run3 .
}
"""


@pytest.fixture
def tiny_corpus_dir(tmp_path):
    root = tmp_path / "corpus"
    (root / "Taverna" / "dom" / "t-1").mkdir(parents=True)
    (root / "Taverna" / "dom" / "t-1" / "run1.prov.ttl").write_text(_TTL_ONE)
    (root / "Taverna" / "dom" / "t-2").mkdir(parents=True)
    (root / "Taverna" / "dom" / "t-2" / "run2.prov.ttl").write_text(_TTL_TWO)
    (root / "Wings" / "dom" / "w-1").mkdir(parents=True)
    (root / "Wings" / "dom" / "w-1" / "run3.prov.trig").write_text(_TRIG)
    return root
