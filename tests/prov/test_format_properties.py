"""Property-based tests: random PROV documents round-trip every format.

One generator of random (but valid) PROV documents drives four
serializations — PROV-N, PROV-XML, PROV-JSON, and the PROV-O RDF mapping
— asserting that each reconstructs an equivalent document, and that the
RDF mapping is isomorphic across independent serializations.
"""

import datetime as dt
import string

from hypothesis import given, settings, strategies as st

from repro.prov.json_io import parse_provjson, serialize_provjson
from repro.prov.model import ProvDocument
from repro.prov.provn import serialize_provn
from repro.prov.provn_parser import parse_provn
from repro.prov.rdf_io import from_graph, to_graph
from repro.prov.xml_io import parse_provxml, serialize_provxml
from repro.rdf.isomorphism import isomorphic

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_times = st.datetimes(min_value=dt.datetime(2012, 1, 1), max_value=dt.datetime(2013, 12, 31))


@st.composite
def documents(draw):
    doc = ProvDocument()
    doc.namespaces.bind("ex", "http://example.org/")
    n_entities = draw(st.integers(min_value=1, max_value=4))
    n_activities = draw(st.integers(min_value=1, max_value=3))
    entities = []
    for i in range(n_entities):
        name = f"ex:e{i}"
        value = draw(st.one_of(st.integers(-100, 100),
                               st.text(alphabet=string.ascii_letters, max_size=8)))
        doc.entity(name, {"prov:value": value})
        entities.append(name)
    activities = []
    for i in range(n_activities):
        name = f"ex:a{i}"
        start = draw(_times)
        duration = draw(st.integers(min_value=0, max_value=3600))
        doc.activity(name, start_time=start,
                     end_time=start + dt.timedelta(seconds=duration))
        activities.append(name)
    doc.agent("ex:agent", agent_type=draw(st.sampled_from(["person", "software"])))
    # Random relations over the declared elements. Exact duplicates are
    # avoided: a triple set cannot represent two identical unqualified
    # statements, so duplicates legitimately collapse in the RDF mapping.
    from repro.prov.model import Generation

    emitted = set()
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        kind = draw(st.sampled_from(["used", "gen", "assoc", "attr", "derive"]))
        entity = draw(st.sampled_from(entities))
        activity = draw(st.sampled_from(activities))
        # The dedup key must mirror the *emitted statement's* identity —
        # e.g. an association only involves (activity, agent), so keying
        # it on the sampled entity would let two draws emit the same
        # statement twice, which collapses in the RDF mapping.
        if kind == "used":
            key = (kind, activity, entity)
            if key in emitted:
                continue
            doc.used(activity, entity)
        elif kind == "gen":
            key = (kind, entity)
            if key in emitted:
                continue
            if any(g.entity == doc.resolve(entity) for g in doc.relations_of(Generation)):
                continue  # generation-uniqueness
            doc.was_generated_by(entity, activity)
        elif kind == "assoc":
            key = (kind, activity)
            if key in emitted:
                continue
            doc.was_associated_with(activity, "ex:agent")
        elif kind == "attr":
            key = (kind, entity)
            if key in emitted:
                continue
            doc.was_attributed_to(entity, "ex:agent")
        elif kind == "derive":
            other = draw(st.sampled_from(entities))
            key = (kind, entity, other)
            if other == entity or key in emitted:
                continue
            doc.had_primary_source(entity, other)
        emitted.add(key)
    return doc


@settings(max_examples=25, deadline=None)
@given(documents())
def test_provn_roundtrip(doc):
    assert parse_provn(serialize_provn(doc)).statistics() == doc.statistics()


@settings(max_examples=25, deadline=None)
@given(documents())
def test_provxml_roundtrip(doc):
    assert parse_provxml(serialize_provxml(doc)).statistics() == doc.statistics()


@settings(max_examples=25, deadline=None)
@given(documents())
def test_provjson_roundtrip(doc):
    assert parse_provjson(serialize_provjson(doc)).statistics() == doc.statistics()


@settings(max_examples=25, deadline=None)
@given(documents())
def test_rdf_mapping_roundtrip(doc):
    assert from_graph(to_graph(doc)).statistics() == doc.statistics()


@settings(max_examples=20, deadline=None)
@given(documents())
def test_rdf_serializations_isomorphic(doc):
    """Independent RDF exports differ only in blank-node labels."""
    assert isomorphic(to_graph(doc), to_graph(doc))


@settings(max_examples=20, deadline=None)
@given(documents())
def test_cross_format_chain(doc):
    """N → XML → JSON → N preserves the document statistics."""
    via_n = parse_provn(serialize_provn(doc))
    via_xml = parse_provxml(serialize_provxml(via_n))
    via_json = parse_provjson(serialize_provjson(via_xml))
    assert via_json.statistics() == doc.statistics()