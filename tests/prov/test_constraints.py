"""Unit tests for PROV-CONSTRAINTS validation."""

import datetime as dt

import pytest

from repro.prov.constraints import is_valid, validate_document
from repro.prov.model import ProvDocument


@pytest.fixture
def doc():
    document = ProvDocument()
    document.namespaces.bind("ex", "http://example.org/")
    return document


def rules(violations):
    return {v.rule for v in violations}


class TestActivityIntervals:
    def test_valid_interval(self, doc):
        doc.activity("ex:a", start_time=dt.datetime(2013, 1, 1),
                     end_time=dt.datetime(2013, 1, 2))
        assert is_valid(doc)

    def test_inverted_interval_flagged(self, doc):
        # The factory guards this, so construct the state directly.
        activity = doc.activity("ex:a", start_time=dt.datetime(2013, 1, 2))
        activity.end_time = dt.datetime(2013, 1, 1)
        assert "start-precedes-end" in rules(validate_document(doc))


class TestGenerationUniqueness:
    def test_single_generation_ok(self, doc):
        doc.was_generated_by("ex:e", "ex:a1")
        assert "generation-uniqueness" not in rules(validate_document(doc))

    def test_double_generation_flagged(self, doc):
        doc.was_generated_by("ex:e", "ex:a1")
        doc.was_generated_by("ex:e", "ex:a2")
        assert "generation-uniqueness" in rules(validate_document(doc))

    def test_same_activity_twice_ok(self, doc):
        doc.was_generated_by("ex:e", "ex:a1")
        doc.was_generated_by("ex:e", "ex:a1")
        assert "generation-uniqueness" not in rules(validate_document(doc))

    def test_bundles_are_separate_scopes(self, doc):
        doc.bundle("ex:b1").was_generated_by("ex:e", "ex:a1")
        doc.bundle("ex:b2").was_generated_by("ex:e", "ex:a2")
        assert "generation-uniqueness" not in rules(validate_document(doc))


class TestTemporalOrdering:
    def test_usage_before_generation_flagged(self, doc):
        doc.was_generated_by("ex:e", "ex:a1", time=dt.datetime(2013, 1, 2))
        doc.used("ex:a2", "ex:e", time=dt.datetime(2013, 1, 1))
        assert "usage-after-generation" in rules(validate_document(doc))

    def test_usage_after_generation_ok(self, doc):
        doc.was_generated_by("ex:e", "ex:a1", time=dt.datetime(2013, 1, 1))
        doc.used("ex:a2", "ex:e", time=dt.datetime(2013, 1, 2))
        assert "usage-after-generation" not in rules(validate_document(doc))

    def test_missing_times_not_flagged(self, doc):
        doc.was_generated_by("ex:e", "ex:a1")
        doc.used("ex:a2", "ex:e")
        assert "usage-after-generation" not in rules(validate_document(doc))

    def test_generation_outside_activity_flagged(self, doc):
        doc.activity("ex:a", start_time=dt.datetime(2013, 1, 2),
                     end_time=dt.datetime(2013, 1, 3))
        doc.was_generated_by("ex:e", "ex:a", time=dt.datetime(2013, 1, 1))
        assert "generation-within-activity" in rules(validate_document(doc))

    def test_generation_after_activity_end_flagged(self, doc):
        doc.activity("ex:a", start_time=dt.datetime(2013, 1, 1),
                     end_time=dt.datetime(2013, 1, 2))
        doc.was_generated_by("ex:e", "ex:a", time=dt.datetime(2013, 1, 5))
        assert "generation-within-activity" in rules(validate_document(doc))

    def test_generation_inside_activity_ok(self, doc):
        doc.activity("ex:a", start_time=dt.datetime(2013, 1, 1),
                     end_time=dt.datetime(2013, 1, 3))
        doc.was_generated_by("ex:e", "ex:a", time=dt.datetime(2013, 1, 2))
        assert "generation-within-activity" not in rules(validate_document(doc))


class TestReferences:
    def test_dangling_reference_is_warning(self, doc):
        doc.used("ex:a", "ex:ghost")
        violations = validate_document(doc)
        dangling = [v for v in violations if v.rule == "dangling-reference"]
        assert dangling and all(v.severity == "warning" for v in dangling)

    def test_warnings_do_not_invalidate(self, doc):
        doc.used("ex:a", "ex:ghost")
        assert is_valid(doc)

    def test_references_check_can_be_skipped(self, doc):
        doc.used("ex:a", "ex:ghost")
        assert validate_document(doc, check_references=False) == []

    def test_bundle_sees_document_elements(self, doc):
        doc.entity("ex:shared")
        bundle = doc.bundle("ex:b")
        bundle.activity("ex:a")
        bundle.used("ex:a", "ex:shared")
        assert "dangling-reference" not in rules(validate_document(doc))


class TestDisjointness:
    def test_entity_and_activity_conflict_across_bundles(self, doc):
        doc.entity("ex:x")
        doc.bundle("ex:b").activity("ex:x")
        assert "entity-activity-disjoint" in rules(validate_document(doc))

    def test_agent_overlap_allowed(self, doc):
        doc.agent("ex:x")
        doc.bundle("ex:b").entity("ex:x")
        assert "entity-activity-disjoint" not in rules(validate_document(doc))


class TestCorpusValidity:
    def test_every_corpus_trace_is_valid(self, corpus):
        for trace in corpus.traces[:40]:  # sample: full check is the integration test
            errors = [v for v in validate_document(trace.document) if v.severity == "error"]
            assert not errors, (trace.run_id, [str(e) for e in errors])
