"""Unit tests for PROV-N serialization and the networkx graph views."""

import datetime as dt

import networkx as nx
import pytest

from repro.prov.graph_api import activity_graph, dependency_graph, to_networkx
from repro.prov.model import ProvDocument
from repro.prov.provn import serialize_provn


@pytest.fixture
def doc():
    document = ProvDocument()
    document.namespaces.bind("ex", "http://example.org/")
    run = document.activity("ex:run", start_time=dt.datetime(2013, 1, 1, 10),
                            end_time=dt.datetime(2013, 1, 1, 11))
    document.agent("ex:engine", agent_type="software")
    document.entity("ex:in", {"prov:value": "x"})
    document.entity("ex:out")
    document.used(run, "ex:in", time=dt.datetime(2013, 1, 1, 10, 5))
    document.was_generated_by("ex:out", run)
    document.was_associated_with(run, "ex:engine", plan="ex:plan")
    document.was_attributed_to("ex:out", "ex:engine")
    return document


class TestProvN:
    def test_document_brackets(self, doc):
        text = serialize_provn(doc)
        assert text.startswith("document")
        assert text.rstrip().endswith("endDocument")

    def test_prefixes_listed(self, doc):
        assert "prefix ex <http://example.org/>" in serialize_provn(doc)

    def test_activity_with_times(self, doc):
        text = serialize_provn(doc)
        assert "activity(ex:run, 2013-01-01T10:00:00, 2013-01-01T11:00:00)" in text

    def test_relations_rendered(self, doc):
        text = serialize_provn(doc)
        assert "used(ex:run, ex:in, 2013-01-01T10:05:00)" in text
        assert "wasGeneratedBy(ex:out, ex:run)" in text
        assert "wasAssociatedWith(ex:run, ex:engine, ex:plan)" in text
        assert "wasAttributedTo(ex:out, ex:engine)" in text

    def test_attributes_rendered(self, doc):
        assert 'prov:value="x"' in serialize_provn(doc)

    def test_agent_type_attribute(self, doc):
        assert "agent(ex:engine, [prov:type='prov:SoftwareAgent'])" in serialize_provn(doc)

    def test_bundle_block(self, doc):
        bundle = doc.bundle("ex:b1")
        bundle.entity("ex:inner")
        text = serialize_provn(doc)
        assert "bundle ex:b1" in text
        assert "endBundle" in text

    def test_deterministic(self, doc):
        assert serialize_provn(doc) == serialize_provn(doc)


class TestNetworkxViews:
    def test_full_multigraph(self, doc):
        g = to_networkx(doc)
        assert g.nodes["http://example.org/run"]["kind"] == "activity"
        assert g.nodes["http://example.org/in"]["kind"] == "entity"
        relations = {d["relation"] for _, _, d in g.edges(data=True)}
        assert {"used", "wasGeneratedBy", "wasAssociatedWith", "hadPlan",
                "wasAttributedTo"} <= relations

    def test_dependency_graph_edges(self, doc):
        g = dependency_graph(doc)
        assert g.has_edge("http://example.org/out", "http://example.org/in")
        assert g["http://example.org/out"]["http://example.org/in"]["via"] == (
            "http://example.org/run"
        )

    def test_dependency_graph_includes_asserted_derivations(self, doc):
        doc.had_primary_source("ex:out", "ex:extra")
        g = dependency_graph(doc)
        assert g.has_edge("http://example.org/out", "http://example.org/extra")

    def test_activity_graph_dataflow_communication(self):
        doc = ProvDocument()
        doc.namespaces.bind("ex", "http://example.org/")
        doc.activity("ex:a1")
        doc.activity("ex:a2")
        doc.entity("ex:e")
        doc.was_generated_by("ex:e", "ex:a1")
        doc.used("ex:a2", "ex:e")
        g = activity_graph(doc)
        assert g.has_edge("http://example.org/a2", "http://example.org/a1")

    def test_activity_graph_explicit_communication(self):
        doc = ProvDocument()
        doc.namespaces.bind("ex", "http://example.org/")
        doc.was_informed_by("ex:a2", "ex:a1")
        g = activity_graph(doc)
        assert g.has_edge("http://example.org/a2", "http://example.org/a1")

    def test_dependency_graph_is_dag_on_corpus_trace(self, corpus):
        trace = next(t for t in corpus.traces if not t.failed)
        from repro.prov.rdf_io import from_graph

        doc = from_graph(trace.graph())
        g = dependency_graph(doc)
        assert nx.is_directed_acyclic_graph(g)
