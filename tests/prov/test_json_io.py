"""Tests for PROV-JSON serialization (W3C member-submission format)."""

import datetime as dt
import json

import pytest

from repro.prov.json_io import parse_provjson, serialize_provjson
from repro.prov.model import Association, Derivation, ProvDocument, Usage
from repro.rdf.terms import IRI


@pytest.fixture
def doc():
    document = ProvDocument()
    document.namespaces.bind("ex", "http://example.org/")
    run = document.activity("ex:run", start_time=dt.datetime(2013, 1, 1, 10),
                            end_time=dt.datetime(2013, 1, 1, 11))
    document.agent("ex:engine", agent_type="software")
    document.entity("ex:in", {"prov:value": "payload", "ex:count": 3})
    document.entity("ex:out")
    document.used(run, "ex:in", time=dt.datetime(2013, 1, 1, 10, 5))
    document.was_generated_by("ex:out", run)
    document.was_associated_with(run, "ex:engine", plan="ex:plan")
    document.had_primary_source("ex:out", "ex:in")
    bundle = document.bundle("ex:b1")
    bundle.entity("ex:inner")
    return document


class TestStructure:
    def test_sections(self, doc):
        payload = json.loads(serialize_provjson(doc))
        for section in ("prefix", "entity", "activity", "agent", "used",
                        "wasGeneratedBy", "wasAssociatedWith", "hadPrimarySource",
                        "bundle"):
            assert section in payload, section

    def test_qualified_names_compact(self, doc):
        payload = json.loads(serialize_provjson(doc))
        assert "ex:run" in payload["activity"]
        assert payload["prefix"]["ex"] == "http://example.org/"

    def test_activity_times_inline(self, doc):
        payload = json.loads(serialize_provjson(doc))
        attrs = payload["activity"]["ex:run"]
        assert attrs["prov:startTime"] == "2013-01-01T10:00:00"
        assert attrs["prov:endTime"] == "2013-01-01T11:00:00"

    def test_typed_values(self, doc):
        payload = json.loads(serialize_provjson(doc))
        count = payload["entity"]["ex:in"]["ex:count"]
        assert count == {"$": "3", "type": "xsd:integer"}

    def test_agent_type_as_qualified_name(self, doc):
        payload = json.loads(serialize_provjson(doc))
        assert payload["agent"]["ex:engine"]["prov:type"] == {
            "$": "prov:SoftwareAgent", "type": "prov:QUALIFIED_NAME"
        }

    def test_relation_bodies(self, doc):
        payload = json.loads(serialize_provjson(doc))
        used = next(iter(payload["used"].values()))
        assert used == {"prov:activity": "ex:run", "prov:entity": "ex:in",
                        "prov:time": "2013-01-01T10:05:00"}


class TestRoundTrip:
    def test_statistics(self, doc):
        doc2 = parse_provjson(serialize_provjson(doc))
        assert doc2.statistics() == doc.statistics()

    def test_times(self, doc):
        doc2 = parse_provjson(serialize_provjson(doc))
        run = doc2.get_element("ex:run")
        assert run.start_time == dt.datetime(2013, 1, 1, 10)
        usage = next(iter(doc2.relations_of(Usage)))
        assert usage.time == dt.datetime(2013, 1, 1, 10, 5)

    def test_plan_and_subtype(self, doc):
        doc2 = parse_provjson(serialize_provjson(doc))
        assert next(iter(doc2.relations_of(Association))).plan == IRI("http://example.org/plan")
        assert next(iter(doc2.relations_of(Derivation))).subtype == "primary_source"

    def test_attributes(self, doc):
        doc2 = parse_provjson(serialize_provjson(doc))
        entity = doc2.get_element("ex:in")
        assert entity.first_attribute("prov:value").lexical == "payload"
        assert entity.first_attribute("ex:count").to_python() == 3

    def test_bundle(self, doc):
        doc2 = parse_provjson(serialize_provjson(doc))
        assert len(doc2.bundles) == 1

    def test_stable_after_one_cycle(self, doc):
        """Relation ids are arbitrary, but the format is a fixed point
        after one parse/serialize cycle."""
        once = serialize_provjson(parse_provjson(serialize_provjson(doc)))
        twice = serialize_provjson(parse_provjson(once))
        assert once == twice

    def test_corpus_traces(self, corpus):
        for trace in corpus.traces[::40]:
            doc2 = parse_provjson(serialize_provjson(trace.document))
            assert doc2.statistics() == trace.document.statistics(), trace.run_id

    def test_language_tagged(self):
        from repro.rdf.terms import Literal

        document = ProvDocument()
        document.namespaces.bind("ex", "http://example.org/")
        element = document.entity("ex:e")
        element.add_attribute("ex:label", Literal("bonjour", language="fr"))
        doc2 = parse_provjson(serialize_provjson(document))
        value = doc2.get_element("ex:e").first_attribute("ex:label")
        assert value.language == "fr"
