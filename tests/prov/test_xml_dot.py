"""Tests for PROV-XML serialization and the Graphviz DOT exporter."""

import datetime as dt
import xml.etree.ElementTree as ET

import pytest

from repro.prov.dot import to_dot
from repro.prov.model import Association, ProvDocument, Usage
from repro.prov.xml_io import parse_provxml, serialize_provxml

_PROV = "{http://www.w3.org/ns/prov#}"


@pytest.fixture
def doc():
    document = ProvDocument()
    document.namespaces.bind("ex", "http://example.org/")
    run = document.activity("ex:run", start_time=dt.datetime(2013, 1, 1, 10),
                            end_time=dt.datetime(2013, 1, 1, 11))
    document.agent("ex:engine", agent_type="software")
    document.entity("ex:in", {"prov:value": "payload"})
    document.entity("ex:out")
    document.used(run, "ex:in", time=dt.datetime(2013, 1, 1, 10, 5))
    document.was_generated_by("ex:out", run)
    document.was_associated_with(run, "ex:engine", plan="ex:plan")
    document.was_attributed_to("ex:out", "ex:engine")
    document.had_primary_source("ex:out", "ex:in")
    bundle = document.bundle("ex:b1")
    bundle.entity("ex:inner")
    return document


class TestProvXml:
    def test_document_root(self, doc):
        root = ET.fromstring(serialize_provxml(doc))
        assert root.tag == f"{_PROV}document"

    def test_element_ids(self, doc):
        root = ET.fromstring(serialize_provxml(doc))
        activities = root.findall(f"{_PROV}activity")
        assert activities[0].get(f"{_PROV}id") == "http://example.org/run"

    def test_activity_times_as_children(self, doc):
        root = ET.fromstring(serialize_provxml(doc))
        activity = root.find(f"{_PROV}activity")
        assert activity.find(f"{_PROV}startTime").text == "2013-01-01T10:00:00"
        assert activity.find(f"{_PROV}endTime").text == "2013-01-01T11:00:00"

    def test_relation_refs(self, doc):
        root = ET.fromstring(serialize_provxml(doc))
        used = root.find(f"{_PROV}used")
        assert used.find(f"{_PROV}activity").get(f"{_PROV}ref") == "http://example.org/run"
        assert used.find(f"{_PROV}entity").get(f"{_PROV}ref") == "http://example.org/in"

    def test_roundtrip_statistics(self, doc):
        assert parse_provxml(serialize_provxml(doc)).statistics() == doc.statistics()

    def test_roundtrip_times(self, doc):
        doc2 = parse_provxml(serialize_provxml(doc))
        usage = next(iter(doc2.relations_of(Usage)))
        assert usage.time == dt.datetime(2013, 1, 1, 10, 5)
        run = doc2.get_element("http://example.org/run")
        assert run.start_time == dt.datetime(2013, 1, 1, 10)

    def test_roundtrip_plan(self, doc):
        doc2 = parse_provxml(serialize_provxml(doc))
        assoc = next(iter(doc2.relations_of(Association)))
        assert assoc.plan is not None

    def test_roundtrip_attributes(self, doc):
        doc2 = parse_provxml(serialize_provxml(doc))
        entity = doc2.get_element("http://example.org/in")
        assert entity.first_attribute("prov:value").lexical == "payload"

    def test_roundtrip_bundle(self, doc):
        doc2 = parse_provxml(serialize_provxml(doc))
        assert len(doc2.bundles) == 1

    def test_fixed_point(self, doc):
        once = serialize_provxml(doc)
        assert serialize_provxml(parse_provxml(once)) == once

    def test_wrong_root_rejected(self):
        with pytest.raises(ValueError):
            parse_provxml("<wrong/>")

    def test_corpus_traces_roundtrip(self, corpus):
        for trace in corpus.traces[::40]:
            doc2 = parse_provxml(serialize_provxml(trace.document))
            assert doc2.statistics() == trace.document.statistics(), trace.run_id


class TestDot:
    def test_structure(self, doc):
        dot = to_dot(doc, name="demo")
        assert dot.startswith('digraph "demo" {')
        assert dot.rstrip().endswith("}")

    def test_node_styles_by_kind(self, doc):
        dot = to_dot(doc)
        assert "shape=ellipse" in dot  # entities
        assert "shape=box" in dot      # activities
        assert "shape=house" in dot    # agents

    def test_edge_labels(self, doc):
        dot = to_dot(doc)
        for label in ("used", "wasGeneratedBy", "wasAssociatedWith",
                      "wasAttributedTo", "hadPrimarySource"):
            assert f'label="{label}"' in dot

    def test_plan_edge_dashed(self, doc):
        dot = to_dot(doc)
        assert 'label="hadPlan", style=dashed' in dot

    def test_bundle_as_cluster(self, doc):
        dot = to_dot(doc)
        assert "subgraph cluster_0" in dot

    def test_labels_use_curies(self, doc):
        assert 'label="ex:run"' in to_dot(doc)

    def test_quote_escaping(self):
        document = ProvDocument()
        document.namespaces.bind("ex", "http://example.org/")
        document.entity("ex:e")
        dot = to_dot(document, name='has "quotes"')
        assert 'digraph "has \\"quotes\\""' in dot
