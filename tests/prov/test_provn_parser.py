"""Tests for PROV-N parsing (the inverse of the serializer)."""

import datetime as dt

import pytest

from repro.prov.model import Association, Derivation, ProvDocument, Usage
from repro.prov.provn import serialize_provn
from repro.prov.provn_parser import ProvNSyntaxError, parse_provn
from repro.rdf.terms import IRI


def full_document():
    doc = ProvDocument()
    doc.namespaces.bind("ex", "http://example.org/")
    run = doc.activity("ex:run", start_time=dt.datetime(2013, 1, 1, 10),
                       end_time=dt.datetime(2013, 1, 1, 11))
    doc.plan("ex:plan")
    doc.agent("ex:alice", agent_type="person")
    doc.entity("ex:in", {"prov:value": 'quoted "text"'})
    doc.entity("ex:out", {"prov:value": 42})
    doc.used(run, "ex:in", time=dt.datetime(2013, 1, 1, 10, 5))
    doc.was_generated_by("ex:out", run)
    doc.was_associated_with(run, "ex:alice", plan="ex:plan")
    doc.was_attributed_to("ex:out", "ex:alice")
    doc.acted_on_behalf_of("ex:alice", "ex:alice")
    doc.had_primary_source("ex:out", "ex:in")
    doc.was_influenced_by("ex:out", "ex:run")
    doc.had_member("ex:coll", "ex:out")
    bundle = doc.bundle("ex:b1")
    bundle.entity("ex:inner")
    bundle.used("ex:ba", "ex:inner")
    return doc


class TestRoundTrip:
    def test_statistics_preserved(self):
        doc = full_document()
        assert parse_provn(serialize_provn(doc)).statistics() == doc.statistics()

    def test_fixed_point(self):
        text = serialize_provn(full_document())
        assert serialize_provn(parse_provn(text)) == text

    def test_activity_times(self):
        doc2 = parse_provn(serialize_provn(full_document()))
        run = doc2.get_element("http://example.org/run")
        assert run.start_time == dt.datetime(2013, 1, 1, 10)
        assert run.end_time == dt.datetime(2013, 1, 1, 11)

    def test_usage_time(self):
        doc2 = parse_provn(serialize_provn(full_document()))
        usage = next(iter(doc2.relations_of(Usage)))
        assert usage.time == dt.datetime(2013, 1, 1, 10, 5)

    def test_plan_preserved(self):
        doc2 = parse_provn(serialize_provn(full_document()))
        assoc = next(iter(doc2.relations_of(Association)))
        assert assoc.plan == IRI("http://example.org/plan")

    def test_derivation_subtype(self):
        doc2 = parse_provn(serialize_provn(full_document()))
        derivation = next(iter(doc2.relations_of(Derivation)))
        assert derivation.subtype == "primary_source"

    def test_quoted_attribute_values(self):
        doc2 = parse_provn(serialize_provn(full_document()))
        entity = doc2.get_element("http://example.org/in")
        assert entity.first_attribute("prov:value").lexical == 'quoted "text"'

    def test_typed_attribute_values(self):
        doc2 = parse_provn(serialize_provn(full_document()))
        entity = doc2.get_element("http://example.org/out")
        assert entity.first_attribute("prov:value").to_python() == 42

    def test_bundles_restored(self):
        doc2 = parse_provn(serialize_provn(full_document()))
        assert len(doc2.bundles) == 1
        bundle = next(iter(doc2.bundles.values()))
        assert bundle.get_element("http://example.org/inner") is not None

    def test_corpus_trace_roundtrip(self, corpus):
        trace = next(t for t in corpus.by_system("taverna") if not t.failed)
        text = serialize_provn(trace.document)
        doc2 = parse_provn(text)
        assert doc2.statistics() == trace.document.statistics()


class TestDirectParsing:
    def test_minimal_document(self):
        doc = parse_provn("document\nendDocument\n")
        assert len(doc) == 0

    def test_language_tagged_attribute(self):
        text = (
            "document\n"
            "  prefix ex <http://example.org/>\n"
            '  entity(ex:e, [ex:label="bonjour"@fr])\n'
            "endDocument\n"
        )
        doc = parse_provn(text)
        value = doc.get_element("http://example.org/e").first_attribute(
            "http://example.org/label"
        )
        assert value.language == "fr"

    def test_full_iri_identifiers(self):
        text = "document\n  entity(<http://x.example/e>)\nendDocument\n"
        doc = parse_provn(text)
        assert doc.get_element("http://x.example/e") is not None

    def test_activity_marker_times(self):
        text = (
            "document\n  prefix ex <http://example.org/>\n"
            "  activity(ex:a, 2013-01-01T10:00:00, -)\nendDocument\n"
        )
        doc = parse_provn(text)
        activity = doc.get_element("http://example.org/a")
        assert activity.start_time is not None and activity.end_time is None

    def test_comments_ignored(self):
        text = "document // header\n  // nothing here\nendDocument\n"
        assert len(parse_provn(text)) == 0


class TestErrors:
    def test_missing_end_document(self):
        with pytest.raises(ProvNSyntaxError):
            parse_provn("document\n")

    def test_unknown_statement(self):
        with pytest.raises(ProvNSyntaxError):
            parse_provn("document\n  teleported(ex:a, ex:b)\nendDocument\n")

    def test_unresolvable_prefix(self):
        with pytest.raises(ProvNSyntaxError):
            parse_provn("document\n  entity(zz:e)\nendDocument\n")

    def test_content_after_end(self):
        with pytest.raises(ProvNSyntaxError):
            parse_provn("document\nendDocument\nentity(ex:e)\n")

    def test_bad_character(self):
        with pytest.raises(ProvNSyntaxError):
            parse_provn("document\n  entity(§)\nendDocument\n")
