"""Unit tests for the PROV-O RDF mapping (serialize + parse)."""

import datetime as dt

import pytest

from repro.prov.model import Association, Generation, ProvDocument, Usage
from repro.prov.rdf_io import from_dataset, from_graph, to_dataset, to_graph
from repro.rdf.namespace import PROV, RDF
from repro.rdf.terms import IRI, Literal


@pytest.fixture
def doc():
    document = ProvDocument()
    document.namespaces.bind("ex", "http://example.org/")
    return document


def full_document():
    doc = ProvDocument()
    doc.namespaces.bind("ex", "http://example.org/")
    run = doc.activity("ex:run", start_time=dt.datetime(2013, 1, 1, 10),
                       end_time=dt.datetime(2013, 1, 1, 11))
    doc.plan("ex:plan")
    doc.agent("ex:engine", agent_type="software")
    doc.agent("ex:alice", agent_type="person")
    doc.entity("ex:in", {"prov:value": "input"})
    doc.entity("ex:out")
    doc.used(run, "ex:in", time=dt.datetime(2013, 1, 1, 10, 5))
    doc.was_generated_by("ex:out", run, time=dt.datetime(2013, 1, 1, 10, 55))
    doc.was_associated_with(run, "ex:engine", plan="ex:plan")
    doc.was_attributed_to("ex:out", "ex:alice")
    doc.had_primary_source("ex:out", "ex:in")
    doc.was_informed_by("ex:run", "ex:run")  # self-loop exercised separately
    return doc


class TestToGraph:
    def test_element_typing(self, doc):
        doc.entity("ex:e")
        doc.activity("ex:a")
        doc.agent("ex:g", agent_type="software")
        g = to_graph(doc)
        assert (doc.resolve("ex:e"), RDF.type, PROV.Entity) in g
        assert (doc.resolve("ex:a"), RDF.type, PROV.Activity) in g
        assert (doc.resolve("ex:g"), RDF.type, PROV.SoftwareAgent) in g

    def test_activity_timestamps(self, doc):
        doc.activity("ex:a", start_time=dt.datetime(2013, 1, 1))
        g = to_graph(doc)
        assert list(g.triples(None, PROV.startedAtTime, None))

    def test_plain_usage_no_qualified_node(self, doc):
        doc.used("ex:a", "ex:e")
        g = to_graph(doc)
        assert not list(g.triples(None, PROV.qualifiedUsage, None))

    def test_timed_usage_emits_qualified_pattern(self, doc):
        doc.used("ex:a", "ex:e", time=dt.datetime(2013, 1, 1))
        g = to_graph(doc)
        assert list(g.triples(None, PROV.qualifiedUsage, None))
        assert list(g.triples(None, PROV.atTime, None))

    def test_association_with_plan_emits_hadplan(self, doc):
        doc.was_associated_with("ex:a", "ex:agent", plan="ex:plan")
        g = to_graph(doc)
        assert list(g.triples(None, PROV.hadPlan, None))
        assert list(g.triples(None, PROV.qualifiedAssociation, None))

    def test_association_without_plan_is_direct_only(self, doc):
        doc.was_associated_with("ex:a", "ex:agent")
        g = to_graph(doc)
        assert list(g.triples(None, PROV.wasAssociatedWith, None))
        assert not list(g.triples(None, PROV.qualifiedAssociation, None))

    def test_derivation_subtype_emits_subproperty_only(self, doc):
        doc.had_primary_source("ex:b", "ex:a")
        g = to_graph(doc)
        assert list(g.triples(None, PROV.hadPrimarySource, None))
        assert not list(g.triples(None, PROV.wasDerivedFrom, None))

    def test_bundle_merged_and_typed(self, doc):
        bundle = doc.bundle("ex:b1")
        bundle.entity("ex:inner")
        g = to_graph(doc)
        assert (doc.resolve("ex:b1"), RDF.type, PROV.Bundle) in g
        assert (doc.resolve("ex:inner"), RDF.type, PROV.Entity) in g


class TestToDataset:
    def test_bundle_becomes_named_graph(self, doc):
        bundle = doc.bundle("ex:b1")
        bundle.entity("ex:inner")
        doc.entity("ex:top")
        ds = to_dataset(doc)
        assert ds.has_graph(doc.resolve("ex:b1"))
        assert (doc.resolve("ex:inner"), RDF.type, PROV.Entity) in ds.graph(doc.resolve("ex:b1"))
        assert (doc.resolve("ex:top"), RDF.type, PROV.Entity) in ds.default

    def test_bundle_typing_in_default_graph(self, doc):
        doc.bundle("ex:b1").entity("ex:x")
        ds = to_dataset(doc)
        assert (doc.resolve("ex:b1"), RDF.type, PROV.Bundle) in ds.default


class TestRoundTrip:
    def test_statistics_preserved(self):
        doc = full_document()
        doc2 = from_graph(to_graph(doc))
        assert doc2.statistics() == doc.statistics()

    def test_activity_times_roundtrip(self):
        doc2 = from_graph(to_graph(full_document()))
        run = doc2.get_element("http://example.org/run")
        assert run.start_time == dt.datetime(2013, 1, 1, 10)
        assert run.end_time == dt.datetime(2013, 1, 1, 11)

    def test_qualified_usage_time_roundtrip(self):
        doc2 = from_graph(to_graph(full_document()))
        usage = next(iter(doc2.relations_of(Usage)))
        assert usage.time == dt.datetime(2013, 1, 1, 10, 5)

    def test_plan_roundtrip(self):
        doc2 = from_graph(to_graph(full_document()))
        assoc = next(iter(doc2.relations_of(Association)))
        assert assoc.plan == IRI("http://example.org/plan")

    def test_derivation_subtype_roundtrip(self):
        from repro.prov.model import Derivation

        doc2 = from_graph(to_graph(full_document()))
        derivation = next(iter(doc2.relations_of(Derivation)))
        assert derivation.subtype == "primary_source"

    def test_attributes_roundtrip(self):
        doc2 = from_graph(to_graph(full_document()))
        entity = doc2.get_element("http://example.org/in")
        assert entity.first_attribute("prov:value") == Literal("input")

    def test_reserialization_stable(self):
        doc = full_document()
        g1 = to_graph(doc)
        g2 = to_graph(from_graph(g1))
        assert g1 == g2

    def test_dataset_roundtrip_with_bundles(self, doc):
        bundle = doc.bundle("ex:b1")
        run = bundle.activity("ex:run")
        bundle.entity("ex:e")
        bundle.used(run, "ex:e")
        ds = to_dataset(doc)
        doc2 = from_dataset(ds)
        assert doc.resolve("ex:b1") in doc2.bundles
        inner = doc2.bundles[doc.resolve("ex:b1")]
        assert inner.get_element("ex:run") is not None
        assert len(list(inner.relations_of(Usage))) == 1

    def test_untyped_endpoints_get_kinds_from_relations(self):
        from repro.rdf.graph import Graph

        g = Graph()
        a, e = IRI("http://x/a"), IRI("http://x/e")
        g.add((a, PROV.used, e))
        doc = from_graph(g)
        from repro.prov.model import ProvActivity, ProvEntity

        assert isinstance(doc.get_element(a), ProvActivity)
        assert isinstance(doc.get_element(e), ProvEntity)
