"""Unit tests for PROV inference rules (the Table 3 stars)."""

import pytest

from repro.prov.inference import ProvInferencer, infer, inferred_graph
from repro.rdf import Graph, Namespace, PROV, RDF
from repro.rdf.triple import Triple

EX = Namespace("http://example.org/")


class TestInfluenceSubproperties:
    def test_used_entails_influence(self):
        g = Graph([(EX.a, PROV.used, EX.e)])
        infer(g)
        assert (EX.a, PROV.wasInfluencedBy, EX.e) in g

    def test_all_starting_point_relations_entail_influence(self):
        g = Graph([
            (EX.e, PROV.wasGeneratedBy, EX.a),
            (EX.a, PROV.wasAssociatedWith, EX.ag),
            (EX.e, PROV.wasAttributedTo, EX.ag),
            (EX.a2, PROV.wasInformedBy, EX.a),
        ])
        infer(g)
        assert g.count(None, PROV.wasInfluencedBy, None) == 4

    def test_existing_influence_not_duplicated(self):
        g = Graph([
            (EX.a, PROV.used, EX.e),
            (EX.a, PROV.wasInfluencedBy, EX.e),
        ])
        added = infer(g)
        assert Triple(EX.a, PROV.wasInfluencedBy, EX.e) not in added


class TestDerivationSubproperties:
    def test_primary_source_entails_derivation(self):
        g = Graph([(EX.b, PROV.hadPrimarySource, EX.a)])
        infer(g)
        assert (EX.b, PROV.wasDerivedFrom, EX.a) in g

    def test_quotation_and_revision(self):
        g = Graph([
            (EX.b, PROV.wasQuotedFrom, EX.a),
            (EX.c, PROV.wasRevisionOf, EX.a),
        ])
        infer(g)
        assert g.count(None, PROV.wasDerivedFrom, None) == 2


class TestPlanRule:
    def test_hadplan_entails_plan_type(self):
        g = Graph([(EX.assoc, PROV.hadPlan, EX.wf)])
        infer(g)
        assert (EX.wf, RDF.type, PROV.Plan) in g
        assert (EX.wf, RDF.type, PROV.Entity) in g


class TestCommunicationRule:
    def test_use_of_generated_entails_informed(self):
        g = Graph([
            (EX.a2, PROV.used, EX.e),
            (EX.e, PROV.wasGeneratedBy, EX.a1),
        ])
        infer(g)
        assert (EX.a2, PROV.wasInformedBy, EX.a1) in g

    def test_self_communication_not_inferred(self):
        g = Graph([
            (EX.a, PROV.used, EX.e),
            (EX.e, PROV.wasGeneratedBy, EX.a),
        ])
        infer(g)
        assert (EX.a, PROV.wasInformedBy, EX.a) not in g


class TestDataflowDerivation:
    def test_disabled_by_default(self):
        g = Graph([
            (EX.out, PROV.wasGeneratedBy, EX.a),
            (EX.a, PROV.used, EX.inp),
        ])
        infer(g)
        assert (EX.out, PROV.wasDerivedFrom, EX.inp) not in g

    def test_enabled_heuristic(self):
        g = Graph([
            (EX.out, PROV.wasGeneratedBy, EX.a),
            (EX.a, PROV.used, EX.inp),
        ])
        infer(g, enable_dataflow_derivation=True)
        assert (EX.out, PROV.wasDerivedFrom, EX.inp) in g

    def test_no_self_derivation(self):
        g = Graph([
            (EX.x, PROV.wasGeneratedBy, EX.a),
            (EX.a, PROV.used, EX.x),
        ])
        infer(g, enable_dataflow_derivation=True)
        assert (EX.x, PROV.wasDerivedFrom, EX.x) not in g


class TestTyping:
    def test_domain_range_typing(self):
        g = Graph([(EX.a, PROV.used, EX.e)])
        infer(g)
        assert (EX.a, RDF.type, PROV.Activity) in g
        assert (EX.e, RDF.type, PROV.Entity) in g

    def test_agent_typing(self):
        g = Graph([(EX.a, PROV.wasAssociatedWith, EX.ag)])
        infer(g)
        assert (EX.ag, RDF.type, PROV.Agent) in g


class TestDriver:
    def test_fixed_point_chains_rules(self):
        # hadPrimarySource → wasDerivedFrom (round 1) → wasInfluencedBy needs
        # the *derived* statement, so a second round is required.
        g = Graph([(EX.b, PROV.hadPrimarySource, EX.a)])
        infer(g)
        assert (EX.b, PROV.wasInfluencedBy, EX.a) in g

    def test_run_returns_added_triples_only(self):
        g = Graph([(EX.a, PROV.used, EX.e)])
        before = len(g)
        added = infer(g)
        assert len(g) == before + len(added)

    def test_idempotent(self):
        g = Graph([(EX.a, PROV.used, EX.e)])
        infer(g)
        assert infer(g) == set()

    def test_inferred_graph_leaves_original_untouched(self):
        g = Graph([(EX.a, PROV.used, EX.e)])
        bigger = inferred_graph(g)
        assert len(g) == 1
        assert len(bigger) > 1

    def test_rules_list_respects_flag(self):
        g = Graph()
        plain = ProvInferencer(g)
        heuristic = ProvInferencer(g, enable_dataflow_derivation=True)
        assert len(heuristic.rules()) == len(plain.rules()) + 1
