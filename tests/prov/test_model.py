"""Unit tests for the PROV-DM model layer."""

import datetime as dt

import pytest

from repro.prov.model import (
    Association,
    Attribution,
    Derivation,
    Generation,
    ProvActivity,
    ProvAgent,
    ProvDocument,
    ProvEntity,
    ProvModelError,
    Usage,
)
from repro.rdf.namespace import PROV
from repro.rdf.terms import IRI, Literal


@pytest.fixture
def doc():
    document = ProvDocument()
    document.namespaces.bind("ex", "http://example.org/")
    return document


class TestIdentifiers:
    def test_resolve_curie(self, doc):
        assert doc.resolve("ex:thing") == IRI("http://example.org/thing")

    def test_resolve_full_iri_string(self, doc):
        assert doc.resolve("http://other.org/x") == IRI("http://other.org/x")

    def test_resolve_iri_passthrough(self, doc):
        iri = IRI("http://a/")
        assert doc.resolve(iri) is iri

    def test_resolve_urn(self, doc):
        assert doc.resolve("urn:uuid:123").value == "urn:uuid:123"

    def test_unresolvable_rejected(self, doc):
        with pytest.raises(ProvModelError):
            doc.resolve("noprefix")
        with pytest.raises(ProvModelError):
            doc.resolve("zz:unbound")


class TestElements:
    def test_entity_creation(self, doc):
        e = doc.entity("ex:e1", {"prov:value": 42})
        assert isinstance(e, ProvEntity)
        assert e.first_attribute("prov:value") == Literal("42", datatype="http://www.w3.org/2001/XMLSchema#integer")

    def test_entity_idempotent_merge(self, doc):
        a = doc.entity("ex:e1")
        b = doc.entity("ex:e1", {"prov:value": "x"})
        assert a is b
        assert b.get_attribute("prov:value")

    def test_activity_times(self, doc):
        a = doc.activity("ex:a1", start_time=dt.datetime(2013, 1, 1),
                         end_time=dt.datetime(2013, 1, 2))
        assert a.start_time < a.end_time

    def test_activity_end_before_start_rejected(self, doc):
        with pytest.raises(ProvModelError):
            doc.activity("ex:a1", start_time=dt.datetime(2013, 1, 2),
                         end_time=dt.datetime(2013, 1, 1))

    def test_activity_merge_updates_times(self, doc):
        doc.activity("ex:a1")
        again = doc.activity("ex:a1", start_time=dt.datetime(2013, 1, 1))
        assert again.start_time is not None

    def test_agent_types(self, doc):
        person = doc.agent("ex:alice", agent_type="person")
        software = doc.agent("ex:tool", agent_type="software")
        assert PROV.Person in person.all_types()
        assert PROV.SoftwareAgent in software.all_types()

    def test_unknown_agent_type(self, doc):
        with pytest.raises(ProvModelError):
            doc.agent("ex:x", agent_type="robot")

    def test_plan_and_collection(self, doc):
        assert PROV.Plan in doc.plan("ex:p").all_types()
        assert PROV.Collection in doc.collection("ex:c").all_types()

    def test_kind_conflict_rejected(self, doc):
        doc.entity("ex:x")
        with pytest.raises(ProvModelError):
            doc.activity("ex:x")

    def test_add_type_no_duplicates(self, doc):
        e = doc.entity("ex:e")
        e.add_type(PROV.Plan)
        e.add_type(PROV.Plan)
        assert e.all_types().count(PROV.Plan) == 1


class TestRelations:
    def test_used_accepts_elements_and_ids(self, doc):
        a = doc.activity("ex:a")
        e = doc.entity("ex:e")
        r1 = doc.used(a, e)
        r2 = doc.used("ex:a", "ex:e", time=dt.datetime(2013, 1, 1))
        assert r1.activity == r2.activity == a.identifier
        assert r2.time is not None

    def test_generation(self, doc):
        r = doc.was_generated_by("ex:e", "ex:a", role="ex:outputRole")
        assert isinstance(r, Generation)
        assert r.role == IRI("http://example.org/outputRole")

    def test_association_with_plan(self, doc):
        r = doc.was_associated_with("ex:a", "ex:agent", plan="ex:plan")
        assert isinstance(r, Association) and r.plan is not None

    def test_attribution_delegation_communication(self, doc):
        assert isinstance(doc.was_attributed_to("ex:e", "ex:ag"), Attribution)
        d = doc.acted_on_behalf_of("ex:worker", "ex:boss")
        assert d.delegate == IRI("http://example.org/worker")
        c = doc.was_informed_by("ex:a2", "ex:a1")
        assert c.informed == IRI("http://example.org/a2")

    def test_derivation_subtypes(self, doc):
        plain = doc.was_derived_from("ex:b", "ex:a")
        primary = doc.had_primary_source("ex:b", "ex:a")
        assert plain.property_iri == PROV.wasDerivedFrom
        assert primary.property_iri == PROV.hadPrimarySource

    def test_unknown_derivation_subtype(self, doc):
        with pytest.raises(ProvModelError):
            doc.was_derived_from("ex:b", "ex:a", subtype="telepathy")

    def test_relations_of_filter(self, doc):
        doc.used("ex:a", "ex:e")
        doc.was_generated_by("ex:e2", "ex:a")
        assert len(list(doc.relations_of(Usage))) == 1
        assert len(list(doc.relations_of(Generation))) == 1

    def test_membership_and_influence(self, doc):
        doc.had_member("ex:coll", "ex:item")
        doc.was_influenced_by("ex:b", "ex:a")
        assert len(doc.relations) == 2


class TestBundles:
    def test_bundle_creation_and_reuse(self, doc):
        b1 = doc.bundle("ex:bundle1")
        b2 = doc.bundle("ex:bundle1")
        assert b1 is b2
        assert b1.identifier == IRI("http://example.org/bundle1")

    def test_bundle_shares_namespaces(self, doc):
        b = doc.bundle("ex:bundle1")
        assert b.resolve("ex:x") == IRI("http://example.org/x")

    def test_bundle_records_isolated(self, doc):
        b = doc.bundle("ex:bundle1")
        b.entity("ex:inner")
        assert doc.get_element("ex:inner") is None
        assert b.get_element("ex:inner") is not None

    def test_all_records_spans_bundles(self, doc):
        doc.entity("ex:top")
        doc.bundle("ex:b").entity("ex:inner")
        records = list(doc.all_records())
        bundle_ids = {bid for bid, _ in records}
        assert None in bundle_ids and IRI("http://example.org/b") in bundle_ids

    def test_statistics(self, doc):
        doc.entity("ex:e")
        doc.activity("ex:a")
        doc.agent("ex:ag")
        doc.used("ex:a", "ex:e")
        b = doc.bundle("ex:b")
        b.entity("ex:e2")
        stats = doc.statistics()
        assert stats == {
            "entities": 2, "activities": 1, "agents": 1,
            "relations": 1, "bundles": 1,
        }
