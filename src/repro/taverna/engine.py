"""The Taverna-like workflow engine.

Wraps the shared dataflow executor with Taverna's identity and resource
scheme: runs live under ``http://ns.taverna.org.uk/2011/run/<id>/``, the
enacting agent is the Taverna engine (a ``wfprov:WorkflowEngine``), and
every execution yields a :class:`TavernaRun` that pairs the neutral
:class:`RunResult` with the IRIs the provenance export will publish.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..rdf.namespace import Namespace
from ..rdf.terms import IRI
from ..workflow.dataflow import DataflowExecutor, RunResult, SimulatedClock
from ..workflow.model import WorkflowTemplate
from ..workflow.services import FaultPlan, ServiceRegistry

__all__ = ["TavernaEngine", "TavernaRun", "TAVERNA_RUN_NS", "TAVERNA_WF_NS"]

#: Resource namespaces mirroring Taverna's published IRI scheme.
TAVERNA_RUN_NS = Namespace("http://ns.taverna.org.uk/2011/run/")
TAVERNA_WF_NS = Namespace("http://ns.taverna.org.uk/2010/workflowBundle/")

ENGINE_VERSION = "2.4.0"
ENGINE_IRI = IRI(f"http://ns.taverna.org.uk/2011/software/taverna-{ENGINE_VERSION}")


@dataclass
class TavernaRun:
    """One Taverna enactment: the neutral run record plus its IRIs."""

    result: RunResult
    run_iri: IRI
    workflow_iri: IRI
    engine_iri: IRI = ENGINE_IRI
    user: str = "researcher"

    @property
    def run_id(self) -> str:
        return self.result.run_id

    @property
    def failed(self) -> bool:
        return self.result.failed

    def process_iri(self, step_name: str) -> IRI:
        return IRI(f"{self.run_iri.value}process/{step_name}/")

    def artifact_iri(self, checksum: str) -> IRI:
        return IRI(f"{self.run_iri.value}data/{checksum}")


class TavernaEngine:
    """Executes Taverna templates and mints Taverna-style resource IRIs."""

    system_name = "taverna"

    def __init__(self, registry: ServiceRegistry, clock: SimulatedClock):
        self.registry = registry
        self.clock = clock
        self._executor = DataflowExecutor(registry, clock)

    def run(
        self,
        template: WorkflowTemplate,
        inputs: Dict[str, Any],
        run_id: str,
        fault_plan: Optional[FaultPlan] = None,
        user: str = "researcher",
    ) -> TavernaRun:
        """Enact *template*; failures are captured in the run, not raised."""
        if template.system != self.system_name:
            raise ValueError(
                f"template {template.template_id} targets {template.system!r}, not taverna"
            )
        result = self._executor.execute(
            template, inputs, run_id=run_id, fault_plan=fault_plan, user=user
        )
        return TavernaRun(
            result=result,
            run_iri=TAVERNA_RUN_NS.term(f"{run_id}/"),
            workflow_iri=self.workflow_iri(template),
            user=user,
        )

    @staticmethod
    def workflow_iri(template: WorkflowTemplate) -> IRI:
        return TAVERNA_WF_NS.term(f"{template.template_id}/workflow/{template.name}/")
