"""The Taverna-like workflow system: engine, PROV export, t2flow I/O.

Reproduces Taverna 2 as used by the corpus: a dataflow engine over the
shared template model, the taverna-prov-style exporter (PROV-O + wfprov
with Taverna's term-usage conventions), and a simplified t2flow XML
serialization of templates.
"""

from .engine import TAVERNA_RUN_NS, TAVERNA_WF_NS, TavernaEngine, TavernaRun
from .provexport import TAVERNAPROV, export_run, export_template_description
from .t2flow import from_t2flow, to_t2flow

__all__ = [
    "TavernaEngine",
    "TavernaRun",
    "TAVERNA_RUN_NS",
    "TAVERNA_WF_NS",
    "TAVERNAPROV",
    "export_run",
    "export_template_description",
    "to_t2flow",
    "from_t2flow",
]
