"""Simplified t2flow XML serialization of workflow templates.

Taverna 2 stores workflows as ``.t2flow`` XML bundles.  This module
implements a compact dialect of that format, sufficient to round-trip our
template model (ports with depths, processors with operations/services,
data links, parameters, and nested dataflows for sub-workflows).  The
corpus storage layer ships each Taverna workflow definition as a
``.t2flow`` file alongside its traces, like the original ProvBench layout.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from ..workflow.errors import WorkflowDefinitionError
from ..workflow.model import Port, Processor, WorkflowTemplate

__all__ = ["to_t2flow", "from_t2flow"]

T2FLOW_NS = "http://taverna.sf.net/2008/xml/t2flow"


def to_t2flow(template: WorkflowTemplate) -> str:
    """Serialize *template* to t2flow XML text."""
    root = ET.Element("workflow", {
        "xmlns": T2FLOW_NS,
        "id": template.template_id,
        "name": template.name,
        "domain": template.domain,
    })
    if template.description:
        ET.SubElement(root, "annotation").text = template.description
    root.append(_dataflow_element(template, role="top"))
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def _dataflow_element(template: WorkflowTemplate, role: str) -> ET.Element:
    dataflow = ET.Element("dataflow", {"role": role})
    _ports_element(dataflow, "inputPorts", template.inputs)
    _ports_element(dataflow, "outputPorts", template.outputs)
    if template.parameters:
        params = ET.SubElement(dataflow, "parameters")
        for parameter in template.parameters:
            ET.SubElement(params, "parameter", {
                "name": parameter.name,
                "value": str(parameter.value),
                "type": parameter.data_type,
            })
    processors = ET.SubElement(dataflow, "processors")
    for processor in template.processors.values():
        element = ET.SubElement(processors, "processor", {"name": processor.name})
        if processor.is_subworkflow:
            element.append(_dataflow_element(processor.subworkflow, role="nested"))
        else:
            activity_attrs = {"operation": processor.operation}
            if processor.service is not None:
                activity_attrs["service"] = processor.service
            activity = ET.SubElement(element, "activity", activity_attrs)
            for key, value in sorted(processor.config.items()):
                ET.SubElement(activity, "config", {"key": key, "value": str(value)})
        _ports_element(element, "inputPorts", processor.inputs)
        _ports_element(element, "outputPorts", processor.outputs)
    links = ET.SubElement(dataflow, "datalinks")
    for link in template.links:
        datalink = ET.SubElement(links, "datalink")
        ET.SubElement(datalink, "source", _ref_attrs(link.source))
        ET.SubElement(datalink, "sink", _ref_attrs(link.sink))
    return dataflow


def _ports_element(parent: ET.Element, tag: str, ports) -> None:
    element = ET.SubElement(parent, tag)
    for port in ports:
        ET.SubElement(element, "port", {
            "name": port.name,
            "depth": str(port.depth),
            "type": port.data_type,
        })


def _ref_attrs(ref) -> dict:
    if ref.is_workflow():
        return {"type": "dataflow", "port": ref.port}
    return {"type": "processor", "processor": ref.processor, "port": ref.port}


def from_t2flow(text: str) -> WorkflowTemplate:
    """Parse t2flow XML text back into a validated template."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise WorkflowDefinitionError(f"malformed t2flow XML: {exc}") from None
    if _local(root.tag) != "workflow":
        raise WorkflowDefinitionError(f"expected <workflow> root, got <{_local(root.tag)}>")
    template_id = root.get("id")
    name = root.get("name")
    if not template_id or not name:
        raise WorkflowDefinitionError("workflow element requires id and name attributes")
    dataflow = _child(root, "dataflow")
    if dataflow is None:
        raise WorkflowDefinitionError("workflow has no <dataflow>")
    annotation = _child(root, "annotation")
    template = _parse_dataflow(
        dataflow,
        template_id=template_id,
        name=name,
        domain=root.get("domain", "generic"),
        description=annotation.text if annotation is not None and annotation.text else "",
    )
    return template.freeze()


def _parse_dataflow(
    dataflow: ET.Element,
    template_id: str,
    name: str,
    domain: str,
    description: str = "",
) -> WorkflowTemplate:
    template = WorkflowTemplate(template_id, name, "taverna", domain=domain,
                                description=description)
    for port in _ports(dataflow, "inputPorts"):
        template.add_input(port.name, port.data_type, port.depth)
    for port in _ports(dataflow, "outputPorts"):
        template.add_output(port.name, port.data_type, port.depth)
    parameters = _child(dataflow, "parameters")
    if parameters is not None:
        for parameter in parameters:
            template.add_parameter(
                parameter.get("name"), parameter.get("value"), parameter.get("type", "string")
            )
    processors = _child(dataflow, "processors")
    if processors is not None:
        for element in processors:
            template.add_processor(_parse_processor(element, template_id))
    links = _child(dataflow, "datalinks")
    if links is not None:
        for datalink in links:
            source = _parse_ref(_child(datalink, "source"))
            sink = _parse_ref(_child(datalink, "sink"))
            template.connect(source, sink)
    return template


def _parse_processor(element: ET.Element, template_id: str) -> Processor:
    name = element.get("name")
    if not name:
        raise WorkflowDefinitionError("processor element requires a name")
    inputs = _ports(element, "inputPorts")
    outputs = _ports(element, "outputPorts")
    nested = _child(element, "dataflow")
    if nested is not None:
        subworkflow = _parse_dataflow(
            nested, template_id=f"{template_id}.{name}", name=name, domain="nested"
        )
        subworkflow.freeze()
        return Processor(name, inputs=inputs, outputs=outputs, subworkflow=subworkflow)
    activity = _child(element, "activity")
    if activity is None:
        raise WorkflowDefinitionError(f"processor {name!r} has neither activity nor dataflow")
    config = {}
    for entry in activity:
        if _local(entry.tag) == "config":
            value = entry.get("value", "")
            config[entry.get("key")] = int(value) if value.lstrip("-").isdigit() else value
    return Processor(
        name,
        operation=activity.get("operation", "identity"),
        inputs=inputs,
        outputs=outputs,
        service=activity.get("service"),
        config=config,
    )


def _parse_ref(element: Optional[ET.Element]) -> str:
    if element is None:
        raise WorkflowDefinitionError("datalink missing source or sink")
    port = element.get("port")
    if element.get("type") == "dataflow":
        return f":{port}"
    return f"{element.get('processor')}:{port}"


def _ports(parent: ET.Element, tag: str) -> list:
    element = _child(parent, tag)
    if element is None:
        return []
    return [
        Port(p.get("name"), p.get("type", "any"), int(p.get("depth", "0")))
        for p in element
    ]


def _child(parent: ET.Element, tag: str) -> Optional[ET.Element]:
    for element in parent:
        if _local(element.tag) == tag:
            return element
    return None


def _local(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]
