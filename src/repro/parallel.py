"""Shared multiprocessing utilities for the parallel pipelines.

Both process-parallel hot paths — the corpus build
(:mod:`repro.corpus.parallel`) and store ingest
(:mod:`repro.store.ingest`) — fan pure-CPU work out over a
``multiprocessing`` pool and merge results back in a deterministic
order.  This module owns the pieces they share:

* :func:`pool_context` — the start-method policy (``fork`` where the
  platform offers it: workers inherit imported modules, which keeps
  per-worker startup cheap and lets tests monkeypatch engine behavior
  into children; elsewhere the platform default);
* :func:`resolve_jobs` — ``jobs`` argument normalization (``None``/``0``
  → one worker per CPU);
* :class:`RemoteError` — a picklable record of an exception raised in a
  worker.  Pool workers catch their own failures and return one of
  these instead of letting ``multiprocessing`` pickle the live
  exception, so the parent can re-raise the *original* exception class
  with task context (which run, which file) prepended to the message
  rather than surfacing a bare pool traceback;
* :class:`ObsConfig` — the observability settings a parent passes to
  pool initializers so each worker can build its own
  :class:`~repro.obs.trace.Tracer` (tracers hold locks and event
  buffers, so they never cross the process boundary themselves —
  workers drain their events back with each result instead).
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import pickle
import traceback
from dataclasses import dataclass
from typing import Optional, Type

__all__ = ["pool_context", "resolve_jobs", "ObsConfig", "RemoteError"]


@dataclass(frozen=True)
class ObsConfig:
    """Picklable observability settings for pool workers.

    ``from_tracer`` snapshots the parent's tracer (or ``None``) and the
    process-wide observability directory at pool spawn time;
    ``make_tracer`` rebuilds an equivalent worker-side tracer inside
    the pool initializer and ``attach_worker`` plugs the worker into
    the shared metric-shard directory and event log.
    """

    trace: bool = False
    deterministic: bool = False
    obs_dir: Optional[str] = None
    # Ambient W3C trace coordinates at pool-spawn time:
    # (trace_id, span_id, flags, deterministic ids).  Workers re-activate
    # them so a per-task ``task_scope(key)`` derives exactly the child
    # context the serial loop would — the --jobs 1/2 id-identity contract.
    trace_ctx: Optional[tuple] = None

    @classmethod
    def from_tracer(cls, tracer) -> "ObsConfig":
        from .obs import shm, tracectx

        ctx = tracectx.current()
        return cls(
            trace=tracer is not None,
            deterministic=bool(getattr(tracer, "deterministic", False)),
            obs_dir=shm.configured_dir(),
            trace_ctx=(
                (ctx.trace_id, ctx.span_id, ctx.flags, ctx.deterministic)
                if ctx is not None
                else None
            ),
        )

    def make_tracer(self):
        if not self.trace:
            return None
        from .obs.trace import Tracer

        return Tracer(deterministic=self.deterministic)

    def attach_worker(self) -> None:
        """Attach this worker process to the shared observability state:
        the metric shard + event log directory (when ``--obs-dir`` was
        configured) and the parent's ambient trace context (when one was
        active at pool spawn).  Called from pool initializers."""
        if self.obs_dir:
            from .obs import events, shm

            shm.configure(self.obs_dir)
            events.configure(self.obs_dir)
        if self.trace_ctx is not None:
            from .obs import tracectx

            trace_id, span_id, flags, deterministic = self.trace_ctx
            tracectx.activate(
                tracectx.TraceContext(
                    trace_id, span_id, flags=flags, deterministic=deterministic
                )
            )


def pool_context():
    """The multiprocessing context used by all parallel pipelines."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` argument: ``None`` or ``<= 0`` means one
    worker per available CPU."""
    if jobs is None or jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


@dataclass
class RemoteError:
    """An exception captured in a worker process, ready to re-raise.

    The worker records the exception's type (by module/qualname), its
    message, the formatted worker-side traceback, and — when the
    exception instance pickles cleanly — the instance itself.  The
    parent re-raises the original class with *context* prepended, so a
    failure inside a pool surfaces as e.g.::

        WorkflowError: run t-gen-01-run2 (template t-gen-01): missing
        workflow inputs: ['accession']

    instead of a ``multiprocessing.pool.RemoteTraceback`` wall.
    """

    exc_module: str
    exc_type: str
    message: str
    traceback_text: str
    context: str = ""
    pickled: Optional[bytes] = None

    @classmethod
    def capture(cls, exc: BaseException, context: str = "") -> "RemoteError":
        payload: Optional[bytes] = None
        try:
            payload = pickle.dumps(exc)
            pickle.loads(payload)
        except Exception:
            payload = None
        return cls(
            exc_module=type(exc).__module__,
            exc_type=type(exc).__qualname__,
            message=str(exc),
            traceback_text=traceback.format_exc(),
            context=context,
            pickled=payload,
        )

    def _resolve_type(self) -> Optional[Type[BaseException]]:
        try:
            module = importlib.import_module(self.exc_module)
            resolved = getattr(module, self.exc_type)
        except Exception:
            return None
        if isinstance(resolved, type) and issubclass(resolved, BaseException):
            return resolved
        return None

    def reraise(self, fallback: Type[BaseException] = RuntimeError) -> None:
        """Re-raise in the parent: original class, context-prefixed message.

        Falls back to the pickled instance when the class cannot be
        rebuilt from a single message (multi-argument ``__init__``), and
        to *fallback* when neither works.  The worker-side traceback is
        attached as ``remote_traceback`` either way.
        """
        message = f"{self.context}: {self.message}" if self.context else self.message
        exc: Optional[BaseException] = None
        resolved = self._resolve_type()
        if resolved is not None:
            try:
                exc = resolved(message)
            except Exception:
                exc = None
        if exc is None and self.pickled is not None:
            try:
                exc = pickle.loads(self.pickled)
                exc.remote_context = self.context
            except Exception:
                exc = None
        if exc is None:
            exc = fallback(message)
        exc.remote_traceback = self.traceback_text
        raise exc from None
