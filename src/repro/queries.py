"""The paper's six exemplar provenance queries (Section 4).

Each query is provided both as SPARQL text (runnable against the corpus
dataset with :class:`repro.sparql.QueryEngine` or the HTTP endpoint) and
as a typed Python method on :class:`CorpusQueries`.

The queries are *interoperable* where the paper allows and
system-specific where it doesn't:

1. **Workflow runs with start/end times** — UNION over the Taverna idiom
   (``wfprov:WorkflowRun`` + ``prov:startedAtTime``) and the Wings idiom
   (``opmw:WorkflowExecutionAccount`` + ``opmw:overallStartTime``).
2. **Runs of a template, and how many failed** — counts via aggregates.
3. **Runs of a template with their inputs and outputs.**
4. **Process runs of a run with start/end and I/O** — start/end bound
   only on Taverna traces ("only available in Taverna provenance logs").
5. **Who executed a run** — association (Taverna: the engine) ∪
   attribution (Wings: the user).
6. **Services executed by a run** — ``opmw:hasExecutableComponent``,
   "only available in Wings provenance logs".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .rdf.graph import Dataset, Graph
from .rdf.terms import IRI
from .sparql.evaluator import QueryEngine
from .sparql.results import ResultTable
from .taverna.engine import TAVERNA_WF_NS
from .wings.engine import OPMW_EXPORT_NS

__all__ = [
    "CorpusQueries",
    "exemplar_queries",
    "taverna_workflow_iri",
    "wings_template_iri",
    "Q1_WORKFLOW_RUNS",
    "q2_runs_of_template",
    "q3_template_io",
    "q4_process_runs",
    "q5_who_executed",
    "q6_services_executed",
]


def taverna_workflow_iri(template_id: str, name: str) -> IRI:
    """The wfdesc workflow IRI Taverna traces point at via prov:hadPlan."""
    return TAVERNA_WF_NS.term(f"{template_id}/workflow/{name}/")


def wings_template_iri(template_id: str) -> IRI:
    """The OPMW template IRI Wings accounts point at."""
    return OPMW_EXPORT_NS.term(f"WorkflowTemplate/{template_id}")


#: Query 1 — What are the workflow runs available, and what is their
#: start and end time?
Q1_WORKFLOW_RUNS = """
SELECT ?run ?start ?end WHERE {
  {
    ?run a wfprov:WorkflowRun ; prov:startedAtTime ?start .
    OPTIONAL { ?run prov:endedAtTime ?end }
    FILTER NOT EXISTS { ?run wfprov:wasPartOfWorkflowRun ?parent }
  }
  UNION
  {
    ?run a opmw:WorkflowExecutionAccount ; opmw:overallStartTime ?start .
    OPTIONAL { ?run opmw:overallEndTime ?end }
  }
}
ORDER BY ?start
"""


def q2_runs_of_template(template: Union[IRI, str]) -> str:
    """Query 2 — runs associated with a template, and how many failed."""
    iri = template.n3() if isinstance(template, IRI) else f"<{template}>"
    return f"""
SELECT (COUNT(?run) AS ?total) (SUM(IF(?failed = "yes", 1, 0)) AS ?failures) WHERE {{
  {{
    ?run wfprov:describedByWorkflow {iri} .
    ?run a wfprov:WorkflowRun .
    FILTER NOT EXISTS {{ ?run wfprov:wasPartOfWorkflowRun ?parent }}
    OPTIONAL {{ ?run tavernaprov:runStatus ?status }}
    BIND(IF(BOUND(?status) && ?status = "failed", "yes", "no") AS ?failed)
  }}
  UNION
  {{
    ?run opmw:correspondsToTemplate {iri} .
    ?run opmw:hasStatus ?status .
    BIND(IF(?status = "FAILURE", "yes", "no") AS ?failed)
  }}
}}
"""


def q3_template_io(template: Union[IRI, str]) -> str:
    """Query 3 — runs of a template with the inputs they used and the
    outputs they generated (workflow-level artifacts)."""
    iri = template.n3() if isinstance(template, IRI) else f"<{template}>"
    return f"""
SELECT ?run ?input ?output WHERE {{
  {{
    ?run wfprov:describedByWorkflow {iri} .
    ?run a wfprov:WorkflowRun .
    FILTER NOT EXISTS {{ ?run wfprov:wasPartOfWorkflowRun ?parent }}
    OPTIONAL {{ ?run prov:used ?input }}
    OPTIONAL {{ ?output prov:wasGeneratedBy ?run }}
  }}
  UNION
  {{
    ?run opmw:correspondsToTemplate {iri} .
    GRAPH ?run {{
      {{ ?input opmw:correspondsToTemplateArtifact ?invar .
         FILTER NOT EXISTS {{ ?input prov:wasGeneratedBy ?anyp }} }}
      UNION
      {{ ?output opmw:correspondsToTemplateArtifact ?outvar .
         ?output prov:wasGeneratedBy ?p }}
    }}
  }}
}}
ORDER BY ?run
"""


def q4_process_runs(run: Union[IRI, str]) -> str:
    """Query 4 — process runs of a run, their start/end (Taverna only),
    and their inputs and outputs."""
    iri = run.n3() if isinstance(run, IRI) else f"<{run}>"
    return f"""
SELECT ?process ?start ?end ?input ?output WHERE {{
  {{
    ?process wfprov:wasPartOfWorkflowRun {iri} .
    ?process a wfprov:ProcessRun .
    OPTIONAL {{ ?process prov:startedAtTime ?start }}
    OPTIONAL {{ ?process prov:endedAtTime ?end }}
  }}
  UNION
  {{
    GRAPH {iri} {{ ?process a opmw:WorkflowExecutionProcess }}
  }}
  OPTIONAL {{ ?process prov:used ?input }}
  OPTIONAL {{ ?output prov:wasGeneratedBy ?process }}
}}
ORDER BY ?process
"""


def q5_who_executed(run: Union[IRI, str]) -> str:
    """Query 5 — who executed a given workflow run?"""
    iri = run.n3() if isinstance(run, IRI) else f"<{run}>"
    return f"""
SELECT DISTINCT ?agent WHERE {{
  {{ {iri} prov:wasAssociatedWith ?agent }}
  UNION
  {{ {iri} prov:wasAttributedTo ?agent }}
}}
ORDER BY ?agent
"""


def q6_services_executed(run: Union[IRI, str]) -> str:
    """Query 6 — services executed as a result of a workflow run
    (only available in Wings provenance logs)."""
    iri = run.n3() if isinstance(run, IRI) else f"<{run}>"
    return f"""
SELECT DISTINCT ?component WHERE {{
  GRAPH {iri} {{ ?process opmw:hasExecutableComponent ?component }}
}}
ORDER BY ?component
"""


def exemplar_queries(corpus) -> Dict[str, str]:
    """All six exemplar queries instantiated against one corpus.

    Q2–Q6 are query *templates*; this picks the same canonical fixtures
    the benchmark suite uses (the first multi-run ``t-`` template, the
    first non-failed Taverna and Wings traces), so the returned query
    texts — and therefore their EXPLAIN plan digests — are deterministic
    for a given corpus build.
    """
    template_id = next(t for t in corpus.multi_run_templates() if t.startswith("t-"))
    template = corpus.templates[template_id]
    taverna_trace = next(t for t in corpus.by_system("taverna") if not t.failed)
    wings_trace = next(t for t in corpus.by_system("wings") if not t.failed)
    from .taverna.engine import TAVERNA_RUN_NS

    taverna_template_iri = taverna_workflow_iri(template_id, template.name)
    taverna_run_iri = TAVERNA_RUN_NS.term(f"{taverna_trace.run_id}/")
    wings_run_iri = OPMW_EXPORT_NS.term(
        f"WorkflowExecutionAccount/{wings_trace.run_id}"
    )
    return {
        "Q1": Q1_WORKFLOW_RUNS,
        "Q2": q2_runs_of_template(taverna_template_iri),
        "Q3": q3_template_io(taverna_template_iri),
        "Q4": q4_process_runs(taverna_run_iri),
        "Q5": q5_who_executed(taverna_run_iri),
        "Q6": q6_services_executed(wings_run_iri),
    }


class CorpusQueries:
    """Typed access to the six exemplar queries over a corpus dataset."""

    def __init__(self, source: Union[Graph, Dataset], tracer=None):
        self.engine = QueryEngine(source, tracer=tracer)
        # The queries rely on the exporters' extension prefixes even when
        # the source graph was built without them.
        self.engine.namespaces.bind(
            "tavernaprov", "http://ns.taverna.org.uk/2012/tavernaprov/", replace=False
        )
        self.engine.namespaces.bind("opmw-export", OPMW_EXPORT_NS.base, replace=False)

    # Q1 ---------------------------------------------------------------------

    def workflow_runs(self) -> ResultTable:
        """All top-level runs with start and (when recorded) end times."""
        return self.engine.select(Q1_WORKFLOW_RUNS)

    # Q2 ---------------------------------------------------------------------

    def runs_of_template(self, template: Union[IRI, str]) -> Dict[str, int]:
        """``{"total": n, "failed": m}`` for one template."""
        table = self.engine.select(q2_runs_of_template(template))
        if not table:
            return {"total": 0, "failed": 0}
        row = table[0]
        total = row.total.to_python() if row.total is not None else 0
        failed = row.failures.to_python() if row.failures is not None else 0
        return {"total": int(total), "failed": int(failed)}

    # Q3 ---------------------------------------------------------------------

    def template_io(self, template: Union[IRI, str]) -> Dict[str, Dict[str, List[str]]]:
        """Per run: the input and output artifact IRIs."""
        table = self.engine.select(q3_template_io(template))
        out: Dict[str, Dict[str, List[str]]] = {}
        for row in table:
            run = row.run.value
            entry = out.setdefault(run, {"inputs": [], "outputs": []})
            if row.input is not None and row.input.value not in entry["inputs"]:
                entry["inputs"].append(row.input.value)
            if row.output is not None and row.output.value not in entry["outputs"]:
                entry["outputs"].append(row.output.value)
        return out

    # Q4 ---------------------------------------------------------------------

    def process_runs(self, run: Union[IRI, str]) -> ResultTable:
        """Process runs of one workflow run with times and I/O."""
        return self.engine.select(q4_process_runs(run))

    # Q5 ---------------------------------------------------------------------

    def who_executed(self, run: Union[IRI, str]) -> List[str]:
        """Agent IRIs responsible for a run."""
        table = self.engine.select(q5_who_executed(run))
        return [row.agent.value for row in table if row.agent is not None]

    # Q6 ---------------------------------------------------------------------

    def services_executed(self, run: Union[IRI, str]) -> List[str]:
        """Component/service IRIs a Wings run executed (empty for Taverna)."""
        table = self.engine.select(q6_services_executed(run))
        return [row.component.value for row in table if row.component is not None]
