"""PROV-XML serialization (W3C PROV-XML profile).

The third serialization of the PROV family (after PROV-N and PROV-O):
an XML schema where each record is an element carrying ``prov:id`` /
``prov:ref`` attributes.  The corpus tooling offers it for consumers in
XML-based toolchains; round-trip with :func:`parse_provxml` is lossless
for the model subset the corpus uses (element times, attributes, plans,
derivation subtypes, bundles).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional

from ..rdf.namespace import PROV
from ..rdf.terms import IRI, Literal, XSD, format_datetime, parse_datetime
from .model import (
    Association,
    Attribution,
    Communication,
    Delegation,
    Derivation,
    Generation,
    Influence,
    Membership,
    ProvActivity,
    ProvAgent,
    ProvBundle,
    ProvDocument,
    Usage,
)

__all__ = ["serialize_provxml", "parse_provxml"]

_PROV_NS = "http://www.w3.org/ns/prov#"
_XSD_NS = "http://www.w3.org/2001/XMLSchema#"

ET.register_namespace("prov", _PROV_NS)

_DERIVATION_TAGS = {
    None: "wasDerivedFrom",
    "primary_source": "hadPrimarySource",
    "quotation": "wasQuotedFrom",
    "revision": "wasRevisionOf",
}


def _q(local: str) -> str:
    return f"{{{_PROV_NS}}}{local}"


def serialize_provxml(document: ProvDocument) -> str:
    """Render *document* as PROV-XML text."""
    root = ET.Element(_q("document"))
    _emit_bundle_body(document, root)
    for bundle_id, bundle in document.bundles.items():
        element = ET.SubElement(root, _q("bundleContent"), {_q("id"): bundle_id.value})
        _emit_bundle_body(bundle, element)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True) + "\n"


def _emit_bundle_body(bundle: ProvBundle, parent: ET.Element) -> None:
    for element in bundle.elements.values():
        if isinstance(element, ProvActivity):
            node = ET.SubElement(parent, _q("activity"), {_q("id"): element.identifier.value})
            if element.start_time is not None:
                ET.SubElement(node, _q("startTime")).text = format_datetime(element.start_time)
            if element.end_time is not None:
                ET.SubElement(node, _q("endTime")).text = format_datetime(element.end_time)
        elif isinstance(element, ProvAgent):
            node = ET.SubElement(parent, _q("agent"), {_q("id"): element.identifier.value})
        else:
            node = ET.SubElement(parent, _q("entity"), {_q("id"): element.identifier.value})
        for extra in element.extra_types:
            type_el = ET.SubElement(node, _q("type"))
            type_el.set(_q("valueType"), "xsd:anyURI")
            type_el.text = extra.value
        _emit_attributes(element, node)
    for relation in bundle.relations:
        _emit_relation(relation, parent)


def _emit_attributes(record, node: ET.Element) -> None:
    for predicate, values in record.attributes.items():
        for value in values:
            attr = ET.SubElement(node, _q("other"))
            attr.set(_q("predicate"), predicate.value)
            if isinstance(value, IRI):
                attr.set(_q("valueType"), "xsd:anyURI")
                attr.text = value.value
            else:
                if value.datatype.value != XSD.STRING:
                    attr.set(_q("valueType"), value.datatype.value)
                if value.language:
                    attr.set("{http://www.w3.org/XML/1998/namespace}lang", value.language)
                attr.text = value.lexical


def _ref(parent: ET.Element, tag: str, iri: IRI) -> None:
    ET.SubElement(parent, _q(tag), {_q("ref"): iri.value})


def _emit_relation(relation, parent: ET.Element) -> None:
    if isinstance(relation, Usage):
        node = ET.SubElement(parent, _q("used"))
        _ref(node, "activity", relation.activity)
        _ref(node, "entity", relation.entity)
        if relation.time is not None:
            ET.SubElement(node, _q("time")).text = format_datetime(relation.time)
    elif isinstance(relation, Generation):
        node = ET.SubElement(parent, _q("wasGeneratedBy"))
        _ref(node, "entity", relation.entity)
        _ref(node, "activity", relation.activity)
        if relation.time is not None:
            ET.SubElement(node, _q("time")).text = format_datetime(relation.time)
    elif isinstance(relation, Communication):
        node = ET.SubElement(parent, _q("wasInformedBy"))
        _ref(node, "informed", relation.informed)
        _ref(node, "informant", relation.informant)
    elif isinstance(relation, Association):
        node = ET.SubElement(parent, _q("wasAssociatedWith"))
        _ref(node, "activity", relation.activity)
        _ref(node, "agent", relation.agent)
        if relation.plan is not None:
            _ref(node, "plan", relation.plan)
    elif isinstance(relation, Attribution):
        node = ET.SubElement(parent, _q("wasAttributedTo"))
        _ref(node, "entity", relation.entity)
        _ref(node, "agent", relation.agent)
    elif isinstance(relation, Delegation):
        node = ET.SubElement(parent, _q("actedOnBehalfOf"))
        _ref(node, "delegate", relation.delegate)
        _ref(node, "responsible", relation.responsible)
    elif isinstance(relation, Derivation):
        node = ET.SubElement(parent, _q(_DERIVATION_TAGS[relation.subtype]))
        _ref(node, "generatedEntity", relation.generated)
        _ref(node, "usedEntity", relation.used_entity)
    elif isinstance(relation, Influence):
        node = ET.SubElement(parent, _q("wasInfluencedBy"))
        _ref(node, "influencee", relation.influencee)
        _ref(node, "influencer", relation.influencer)
    elif isinstance(relation, Membership):
        node = ET.SubElement(parent, _q("hadMember"))
        _ref(node, "collection", relation.collection)
        _ref(node, "entity", relation.entity)
    else:
        raise TypeError(f"cannot serialize relation {type(relation).__name__}")


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def parse_provxml(text: str) -> ProvDocument:
    """Parse PROV-XML text back into a document."""
    root = ET.fromstring(text)
    if root.tag != _q("document"):
        raise ValueError(f"expected prov:document root, got {root.tag}")
    document = ProvDocument()
    _parse_bundle_body(root, document, document)
    for bundle_el in root.findall(_q("bundleContent")):
        bundle = document.bundle(IRI(bundle_el.get(_q("id"))))
        _parse_bundle_body(bundle_el, document, bundle)
    return document


def _parse_bundle_body(parent: ET.Element, document: ProvDocument, target: ProvBundle):
    handlers = {
        _q("entity"): _parse_entity,
        _q("activity"): _parse_activity,
        _q("agent"): _parse_agent,
        _q("used"): _parse_used,
        _q("wasGeneratedBy"): _parse_generation,
        _q("wasInformedBy"): _parse_communication,
        _q("wasAssociatedWith"): _parse_association,
        _q("wasAttributedTo"): _parse_attribution,
        _q("actedOnBehalfOf"): _parse_delegation,
        _q("wasDerivedFrom"): lambda e, t: _parse_derivation(e, t, None),
        _q("hadPrimarySource"): lambda e, t: _parse_derivation(e, t, "primary_source"),
        _q("wasQuotedFrom"): lambda e, t: _parse_derivation(e, t, "quotation"),
        _q("wasRevisionOf"): lambda e, t: _parse_derivation(e, t, "revision"),
        _q("wasInfluencedBy"): _parse_influence,
        _q("hadMember"): _parse_membership,
    }
    for child in parent:
        if child.tag == _q("bundleContent"):
            continue
        handler = handlers.get(child.tag)
        if handler is None:
            raise ValueError(f"unknown PROV-XML element {child.tag}")
        handler(child, target)


def _element_common(node: ET.Element, element) -> None:
    for type_el in node.findall(_q("type")):
        element.add_type(IRI(type_el.text))
    for other in node.findall(_q("other")):
        predicate = IRI(other.get(_q("predicate")))
        value_type = other.get(_q("valueType"))
        lang = other.get("{http://www.w3.org/XML/1998/namespace}lang")
        text = other.text or ""
        if value_type == "xsd:anyURI":
            element.add_attribute(predicate, IRI(text))
        elif lang:
            element.add_attribute(predicate, Literal(text, language=lang))
        elif value_type:
            element.add_attribute(predicate, Literal(text, datatype=value_type))
        else:
            element.add_attribute(predicate, Literal(text))


def _parse_entity(node: ET.Element, target: ProvBundle):
    element = target.entity(IRI(node.get(_q("id"))))
    _element_common(node, element)


def _parse_agent(node: ET.Element, target: ProvBundle):
    element = target.agent(IRI(node.get(_q("id"))))
    _element_common(node, element)


def _parse_activity(node: ET.Element, target: ProvBundle):
    start_el = node.find(_q("startTime"))
    end_el = node.find(_q("endTime"))
    element = target.activity(
        IRI(node.get(_q("id"))),
        start_time=parse_datetime(start_el.text) if start_el is not None else None,
        end_time=parse_datetime(end_el.text) if end_el is not None else None,
    )
    _element_common(node, element)


def _ref_of(node: ET.Element, tag: str) -> IRI:
    child = node.find(_q(tag))
    if child is None:
        raise ValueError(f"missing prov:{tag} reference")
    return IRI(child.get(_q("ref")))


def _time_of(node: ET.Element):
    child = node.find(_q("time"))
    return parse_datetime(child.text) if child is not None else None


def _parse_used(node, target):
    target.used(_ref_of(node, "activity"), _ref_of(node, "entity"), time=_time_of(node))


def _parse_generation(node, target):
    target.was_generated_by(_ref_of(node, "entity"), _ref_of(node, "activity"),
                            time=_time_of(node))


def _parse_communication(node, target):
    target.was_informed_by(_ref_of(node, "informed"), _ref_of(node, "informant"))


def _parse_association(node, target):
    plan_el = node.find(_q("plan"))
    plan = IRI(plan_el.get(_q("ref"))) if plan_el is not None else None
    target.was_associated_with(_ref_of(node, "activity"), _ref_of(node, "agent"), plan=plan)


def _parse_attribution(node, target):
    target.was_attributed_to(_ref_of(node, "entity"), _ref_of(node, "agent"))


def _parse_delegation(node, target):
    target.acted_on_behalf_of(_ref_of(node, "delegate"), _ref_of(node, "responsible"))


def _parse_derivation(node, target, subtype: Optional[str]):
    target.was_derived_from(_ref_of(node, "generatedEntity"), _ref_of(node, "usedEntity"),
                            subtype=subtype)


def _parse_influence(node, target):
    target.was_influenced_by(_ref_of(node, "influencee"), _ref_of(node, "influencer"))


def _parse_membership(node, target):
    target.had_member(_ref_of(node, "collection"), _ref_of(node, "entity"))
