"""Graphviz DOT export of PROV documents.

Renders a document with the conventional PROV layout-styling (as used by
the W3C specs and the `prov` toolbox): yellow ellipses for entities, blue
rectangles for activities, orange houses for agents, labeled edges per
relation.  The output is a plain ``.dot`` string — no Graphviz binary is
required to produce it.
"""

from __future__ import annotations

from typing import Dict, List

from ..rdf.terms import IRI
from .model import (
    Association,
    Attribution,
    Communication,
    Delegation,
    Derivation,
    Generation,
    Influence,
    Membership,
    ProvActivity,
    ProvAgent,
    ProvDocument,
    Usage,
)

__all__ = ["to_dot"]

_ENTITY_STYLE = 'shape=ellipse, style=filled, fillcolor="#FFFC87", color="#808080"'
_ACTIVITY_STYLE = 'shape=box, style=filled, fillcolor="#9FB1FC", color="#0000FF"'
_AGENT_STYLE = 'shape=house, style=filled, fillcolor="#FED37F", color="#808080"'

_EDGE_LABELS = {
    Usage: "used",
    Generation: "wasGeneratedBy",
    Communication: "wasInformedBy",
    Association: "wasAssociatedWith",
    Attribution: "wasAttributedTo",
    Delegation: "actedOnBehalfOf",
    Influence: "wasInfluencedBy",
    Membership: "hadMember",
}


def _node_id(iri: IRI, registry: Dict[IRI, str]) -> str:
    if iri not in registry:
        registry[iri] = f"n{len(registry)}"
    return registry[iri]


def _label(iri: IRI, nsm) -> str:
    curie = nsm.compact(iri)
    if curie is not None:
        return curie
    value = iri.value.rstrip("/")
    return value.rsplit("/", 1)[-1] if "/" in value else value


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(document: ProvDocument, name: str = "provenance", max_label: int = 32) -> str:
    """Render *document* (bundles as clusters) as Graphviz DOT text."""
    nsm = document.namespaces
    registry: Dict[IRI, str] = {}
    lines: List[str] = [f"digraph \"{_escape(name)}\" {{", "  rankdir=BT;",
                        "  node [fontsize=10]; edge [fontsize=9];"]

    def emit_elements(container, indent: str):
        for identifier, element in container.elements.items():
            node = _node_id(identifier, registry)
            label = _escape(_label(identifier, nsm)[:max_label])
            if isinstance(element, ProvActivity):
                style = _ACTIVITY_STYLE
            elif isinstance(element, ProvAgent):
                style = _AGENT_STYLE
            else:
                style = _ENTITY_STYLE
            lines.append(f'{indent}{node} [label="{label}", {style}];')

    def emit_relations(container, indent: str):
        for relation in container.relations:
            label = _EDGE_LABELS.get(type(relation))
            if isinstance(relation, Usage):
                pair = (relation.activity, relation.entity)
            elif isinstance(relation, Generation):
                pair = (relation.entity, relation.activity)
            elif isinstance(relation, Communication):
                pair = (relation.informed, relation.informant)
            elif isinstance(relation, Association):
                pair = (relation.activity, relation.agent)
            elif isinstance(relation, Attribution):
                pair = (relation.entity, relation.agent)
            elif isinstance(relation, Delegation):
                pair = (relation.delegate, relation.responsible)
            elif isinstance(relation, Derivation):
                pair = (relation.generated, relation.used_entity)
                label = relation.property_iri.local_name
            elif isinstance(relation, Influence):
                pair = (relation.influencee, relation.influencer)
            elif isinstance(relation, Membership):
                pair = (relation.collection, relation.entity)
            else:
                continue
            source = _node_id(pair[0], registry)
            sink = _node_id(pair[1], registry)
            lines.append(f'{indent}{source} -> {sink} [label="{label}"];')
            if isinstance(relation, Association) and relation.plan is not None:
                plan = _node_id(relation.plan, registry)
                lines.append(f'{indent}{source} -> {plan} [label="hadPlan", style=dashed];')

    emit_elements(document, "  ")
    emit_relations(document, "  ")
    for index, (bundle_id, bundle) in enumerate(document.bundles.items()):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{_escape(_label(bundle_id, nsm))}"; color="#404040";')
        emit_elements(bundle, "    ")
        emit_relations(bundle, "    ")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"
