"""PROV-N parsing: the inverse of :mod:`repro.prov.provn`.

Parses the PROV-N subset our serializer emits — which covers all of
PROV-DM as used by the corpus: ``document``/``endDocument``, ``prefix``
declarations, ``bundle``/``endBundle`` blocks, element statements
(``entity``/``activity``/``agent``) with optional times and attribute
blocks, and every relation statement the model supports.

Round-trip guarantee (tested property-style): for any document built with
the model API, ``parse_provn(serialize_provn(doc))`` reconstructs an
equivalent document.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..rdf.namespace import PROV
from ..rdf.terms import IRI, Literal, XSD, parse_datetime, unescape_string
from .model import ProvBundle, ProvDocument

__all__ = ["parse_provn", "ProvNSyntaxError"]


class ProvNSyntaxError(ValueError):
    """Raised on malformed PROV-N input."""

    def __init__(self, message: str, lineno: int = 0):
        prefix = f"line {lineno}: " if lineno else ""
        super().__init__(prefix + message)
        self.lineno = lineno


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>//[^\n]*)
    | (?P<string>"(?:[^"\\\n]|\\.)*")
    | (?P<qiri>'<[^<>\s]*>')
    | (?P<iriref><[^<>\s]*>)
    | (?P<marker>-)
    | (?P<dtsep>%%)
    | (?P<langtag>@[A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*)
    | (?P<datetime>\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(?:\.\d+)?(?:Z|[+-]\d{2}:\d{2})?)
    | (?P<qname>'?[A-Za-z_][A-Za-z0-9_.\-]*(?::[A-Za-z0-9_.\-]+)?'?)
    | (?P<punct>[()\[\],=])
    """,
    re.VERBOSE,
)

#: Keywords that open/close structure.
_ELEMENT_KEYWORDS = {"entity", "activity", "agent"}
_RELATION_KEYWORDS = {
    "used", "wasGeneratedBy", "wasInformedBy", "wasAssociatedWith",
    "wasAttributedTo", "actedOnBehalfOf", "wasDerivedFrom",
    "hadPrimarySource", "wasQuotedFrom", "wasRevisionOf",
    "wasInfluencedBy", "hadMember",
}


class _Token:
    __slots__ = ("kind", "text", "lineno")

    def __init__(self, kind: str, text: str, lineno: int):
        self.kind = kind
        self.text = text
        self.lineno = lineno

    def __repr__(self):
        return f"_Token({self.kind}, {self.text!r})"


def _scan(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    lineno = 1
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            raise ProvNSyntaxError(f"unexpected character {text[pos]!r}", lineno)
        lineno += text.count("\n", pos, match.end())
        kind = match.lastgroup
        pos = match.end()
        if kind in ("ws", "comment"):
            continue
        tokens.append(_Token(kind, match.group(), lineno))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _scan(text)
        self.pos = 0
        self.document = ProvDocument()

    # -- token helpers --------------------------------------------------------

    def peek(self) -> Optional[_Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise ProvNSyntaxError("unexpected end of input")
        self.pos += 1
        return tok

    def expect_word(self, word: str) -> _Token:
        tok = self.next()
        if tok.kind != "qname" or tok.text != word:
            raise ProvNSyntaxError(f"expected {word!r}, got {tok.text!r}", tok.lineno)
        return tok

    def expect_punct(self, text: str) -> _Token:
        tok = self.next()
        if tok.kind != "punct" or tok.text != text:
            raise ProvNSyntaxError(f"expected {text!r}, got {tok.text!r}", tok.lineno)
        return tok

    def accept_punct(self, text: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.kind == "punct" and tok.text == text:
            self.pos += 1
            return True
        return False

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> ProvDocument:
        self.expect_word("document")
        while True:
            tok = self.peek()
            if tok is None:
                raise ProvNSyntaxError("missing endDocument")
            if tok.kind == "qname" and tok.text == "endDocument":
                self.next()
                break
            if tok.kind == "qname" and tok.text == "prefix":
                self._parse_prefix()
            elif tok.kind == "qname" and tok.text == "bundle":
                self._parse_bundle()
            else:
                self._parse_statement(self.document)
        if self.peek() is not None:
            stray = self.peek()
            raise ProvNSyntaxError(f"content after endDocument: {stray.text!r}", stray.lineno)
        return self.document

    def _parse_prefix(self):
        self.expect_word("prefix")
        name_tok = self.next()
        if name_tok.kind != "qname":
            raise ProvNSyntaxError("expected prefix name", name_tok.lineno)
        iri_tok = self.next()
        if iri_tok.kind != "iriref":
            raise ProvNSyntaxError("expected namespace IRI", iri_tok.lineno)
        self.document.namespaces.bind(name_tok.text, iri_tok.text[1:-1])

    def _parse_bundle(self):
        self.expect_word("bundle")
        bundle_id = self._parse_identifier()
        bundle = self.document.bundle(bundle_id)
        while True:
            tok = self.peek()
            if tok is None:
                raise ProvNSyntaxError("missing endBundle")
            if tok.kind == "qname" and tok.text == "endBundle":
                self.next()
                return
            self._parse_statement(bundle)

    def _parse_statement(self, target: ProvBundle):
        tok = self.next()
        if tok.kind != "qname":
            raise ProvNSyntaxError(f"expected statement keyword, got {tok.text!r}", tok.lineno)
        keyword = tok.text
        self.expect_punct("(")
        if keyword in _ELEMENT_KEYWORDS:
            self._parse_element(keyword, target)
        elif keyword in _RELATION_KEYWORDS:
            self._parse_relation(keyword, target)
        else:
            raise ProvNSyntaxError(f"unknown statement {keyword!r}", tok.lineno)
        self.expect_punct(")")

    # -- elements ------------------------------------------------------------------

    def _parse_element(self, keyword: str, target: ProvBundle):
        identifier = self._parse_identifier()
        start = end = None
        if keyword == "activity" and self.accept_punct(","):
            tok = self.peek()
            if tok is not None and tok.kind == "punct" and tok.text == "[":
                attributes = self._parse_attributes()
                self._build_element(keyword, target, identifier, None, None, attributes)
                return
            start = self._parse_time_or_marker()
            self.expect_punct(",")
            end = self._parse_time_or_marker()
            attributes = self._parse_optional_attr_block()
            self._build_element(keyword, target, identifier, start, end, attributes)
            return
        attributes = self._parse_optional_attr_block()
        self._build_element(keyword, target, identifier, start, end, attributes)

    def _build_element(self, keyword, target, identifier, start, end, attributes):
        if keyword == "activity":
            element = target.activity(identifier, start_time=start, end_time=end)
        elif keyword == "agent":
            element = target.agent(identifier)
        else:
            element = target.entity(identifier)
        for key, value in attributes:
            if key == PROV.type and isinstance(value, IRI):
                element.add_type(value)
            else:
                element.add_attribute(key, value)

    # -- relations -------------------------------------------------------------------

    def _parse_relation(self, keyword: str, target: ProvBundle):
        first = self._parse_identifier()
        self.expect_punct(",")
        second = self._parse_identifier()
        time = None
        third = None
        if self.accept_punct(","):
            tok = self.peek()
            if tok is not None and tok.kind == "punct" and tok.text == "[":
                attributes = self._parse_attributes()
                self._build_relation(keyword, target, first, second, time, third, attributes)
                return
            if tok is not None and tok.kind == "datetime":
                time = self._parse_time_or_marker()
            else:
                third = self._parse_identifier()
        attributes = self._parse_optional_attr_block()
        self._build_relation(keyword, target, first, second, time, third, attributes)

    def _build_relation(self, keyword, target, first, second, time, third, attributes):
        if keyword == "used":
            relation = target.used(first, second, time=time)
        elif keyword == "wasGeneratedBy":
            relation = target.was_generated_by(first, second, time=time)
        elif keyword == "wasInformedBy":
            relation = target.was_informed_by(first, second)
        elif keyword == "wasAssociatedWith":
            relation = target.was_associated_with(first, second, plan=third)
        elif keyword == "wasAttributedTo":
            relation = target.was_attributed_to(first, second)
        elif keyword == "actedOnBehalfOf":
            relation = target.acted_on_behalf_of(first, second, activity=third)
        elif keyword == "wasDerivedFrom":
            relation = target.was_derived_from(first, second)
        elif keyword == "hadPrimarySource":
            relation = target.was_derived_from(first, second, subtype="primary_source")
        elif keyword == "wasQuotedFrom":
            relation = target.was_derived_from(first, second, subtype="quotation")
        elif keyword == "wasRevisionOf":
            relation = target.was_derived_from(first, second, subtype="revision")
        elif keyword == "wasInfluencedBy":
            relation = target.was_influenced_by(first, second)
        elif keyword == "hadMember":
            relation = target.had_member(first, second)
        else:  # pragma: no cover - guarded by _RELATION_KEYWORDS
            raise ProvNSyntaxError(f"unknown relation {keyword!r}")
        for key, value in attributes:
            relation.add_attribute(key, value)

    # -- shared pieces ------------------------------------------------------------------

    def _parse_identifier(self) -> IRI:
        tok = self.next()
        if tok.kind == "iriref":
            return IRI(tok.text[1:-1])
        if tok.kind == "qiri":
            return IRI(tok.text[2:-2])
        if tok.kind == "qname":
            name = tok.text.strip("'")
            try:
                return self.document.resolve(name)
            except Exception:
                raise ProvNSyntaxError(f"unresolvable identifier {name!r}", tok.lineno) from None
        raise ProvNSyntaxError(f"expected identifier, got {tok.text!r}", tok.lineno)

    def _parse_time_or_marker(self):
        tok = self.next()
        if tok.kind == "marker":
            return None
        if tok.kind == "datetime":
            return parse_datetime(tok.text)
        raise ProvNSyntaxError(f"expected time or '-', got {tok.text!r}", tok.lineno)

    def _parse_optional_attr_block(self) -> List[Tuple[IRI, object]]:
        if self.accept_punct(","):
            return self._parse_attributes()
        return []

    def _parse_attributes(self) -> List[Tuple[IRI, object]]:
        self.expect_punct("[")
        attributes: List[Tuple[IRI, object]] = []
        if self.accept_punct("]"):
            return attributes
        while True:
            key = self._parse_identifier()
            eq = self.next()
            if not (eq.kind == "punct" and eq.text == "="):
                raise ProvNSyntaxError(f"expected '=', got {eq.text!r}", eq.lineno)
            attributes.append((key, self._parse_attribute_value()))
            if self.accept_punct("]"):
                return attributes
            self.expect_punct(",")

    def _parse_attribute_value(self):
        tok = self.next()
        if tok.kind == "string":
            lexical = unescape_string(tok.text[1:-1])
            nxt = self.peek()
            if nxt is not None and nxt.kind == "dtsep":
                self.next()
                datatype = self._parse_identifier()
                return Literal(lexical, datatype=datatype)
            if nxt is not None and nxt.kind == "langtag":
                self.next()
                return Literal(lexical, language=nxt.text[1:])
            return Literal(lexical)
        if tok.kind == "qname" and tok.text.startswith("'"):
            name = tok.text.strip("'")
            return self.document.resolve(name)
        if tok.kind == "qiri":
            return IRI(tok.text[2:-2])
        if tok.kind == "iriref":
            return IRI(tok.text[1:-1])
        if tok.kind == "datetime":
            return Literal(tok.text, datatype=XSD.DATETIME)
        raise ProvNSyntaxError(f"invalid attribute value {tok.text!r}", tok.lineno)


def parse_provn(text: str) -> ProvDocument:
    """Parse PROV-N text into a :class:`ProvDocument`."""
    return _Parser(text).parse()
