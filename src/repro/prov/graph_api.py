"""Graph-analysis views of PROV documents (networkx bridges).

The corpus's application layer (dependency identification, debugging,
decay detection — Section 3 of the paper) works on graph projections of
the provenance:

* :func:`to_networkx` — the full typed multigraph (every relation is an
  edge labeled with its PROV property);
* :func:`dependency_graph` — the entity-level derivation DAG implied by
  dataflow (output ← activity ← input), with edges pointing from derived
  entity to source entity;
* :func:`activity_graph` — the activity-level communication DAG.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from ..rdf.terms import IRI
from .model import (
    Association,
    Attribution,
    Communication,
    Delegation,
    Derivation,
    Generation,
    Influence,
    Membership,
    ProvBundle,
    ProvDocument,
    Usage,
)

__all__ = ["to_networkx", "dependency_graph", "activity_graph"]


def _containers(document: ProvDocument):
    yield document
    yield from document.bundles.values()


def to_networkx(document: ProvDocument) -> "nx.MultiDiGraph":
    """Full PROV multigraph: nodes are element IRIs with a ``kind`` attr,
    edges carry a ``relation`` attr (the PROV property local name)."""
    graph = nx.MultiDiGraph()
    for container in _containers(document):
        for identifier, element in container.elements.items():
            graph.add_node(identifier.value, kind=type(element).__name__.replace("Prov", "").lower())
        for relation in container.relations:
            if isinstance(relation, Usage):
                graph.add_edge(relation.activity.value, relation.entity.value, relation="used")
            elif isinstance(relation, Generation):
                graph.add_edge(relation.entity.value, relation.activity.value,
                               relation="wasGeneratedBy")
            elif isinstance(relation, Communication):
                graph.add_edge(relation.informed.value, relation.informant.value,
                               relation="wasInformedBy")
            elif isinstance(relation, Association):
                graph.add_edge(relation.activity.value, relation.agent.value,
                               relation="wasAssociatedWith")
                if relation.plan is not None:
                    graph.add_edge(relation.activity.value, relation.plan.value,
                                   relation="hadPlan")
            elif isinstance(relation, Attribution):
                graph.add_edge(relation.entity.value, relation.agent.value,
                               relation="wasAttributedTo")
            elif isinstance(relation, Delegation):
                graph.add_edge(relation.delegate.value, relation.responsible.value,
                               relation="actedOnBehalfOf")
            elif isinstance(relation, Derivation):
                graph.add_edge(relation.generated.value, relation.used_entity.value,
                               relation=relation.property_iri.local_name)
            elif isinstance(relation, Influence):
                graph.add_edge(relation.influencee.value, relation.influencer.value,
                               relation="wasInfluencedBy")
            elif isinstance(relation, Membership):
                graph.add_edge(relation.collection.value, relation.entity.value,
                               relation="hadMember")
    return graph


def dependency_graph(document: ProvDocument) -> "nx.DiGraph":
    """Entity dependency DAG: edge (derived → source) for every dataflow
    step output←input pair, plus explicitly asserted derivations.

    This is the structure behind application (i) of the paper: "identify
    the process that generated a given data product, and how it was
    derived from other data products".
    """
    graph = nx.DiGraph()
    for container in _containers(document):
        inputs_of = {}
        outputs_of = {}
        for relation in container.relations:
            if isinstance(relation, Usage):
                inputs_of.setdefault(relation.activity, []).append(relation.entity)
            elif isinstance(relation, Generation):
                outputs_of.setdefault(relation.activity, []).append(relation.entity)
        for activity, outputs in outputs_of.items():
            for output in outputs:
                graph.add_node(output.value)
                for source in inputs_of.get(activity, ()):
                    graph.add_edge(output.value, source.value, via=activity.value)
        for relation in container.relations_of(Derivation):
            graph.add_edge(relation.generated.value, relation.used_entity.value,
                           via=None)
    return graph


def activity_graph(document: ProvDocument) -> "nx.DiGraph":
    """Activity communication DAG: informed → informant edges, plus the
    dataflow-implied communications (shared entity between use and
    generation)."""
    graph = nx.DiGraph()
    for container in _containers(document):
        for identifier, element in container.elements.items():
            from .model import ProvActivity

            if isinstance(element, ProvActivity):
                graph.add_node(identifier.value)
        generated_by = {}
        for relation in container.relations_of(Generation):
            generated_by[relation.entity] = relation.activity
        for relation in container.relations_of(Communication):
            graph.add_edge(relation.informed.value, relation.informant.value)
        for relation in container.relations_of(Usage):
            producer = generated_by.get(relation.entity)
            if producer is not None and producer != relation.activity:
                graph.add_edge(relation.activity.value, producer.value)
    return graph
