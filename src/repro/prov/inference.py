"""PROV inference rules over RDF graphs.

The paper's Table 3 stars two cells — prov:Plan for Taverna and
prov:wasInfluencedBy for Taverna — meaning the term "is not directly
asserted in the traces, but it can be inferred".  This module implements
the inference regime that justifies those stars, as forward-chaining rules
over a PROV-O graph:

* **influence-from-subproperty** — every assertion of a subproperty of
  ``prov:wasInfluencedBy`` (``prov:used``, ``prov:wasGeneratedBy``, ...)
  entails ``prov:wasInfluencedBy`` between the same pair.
* **derivation-from-subproperty** — ``prov:hadPrimarySource`` and friends
  entail ``prov:wasDerivedFrom``.
* **plan-from-hadPlan** — the object of ``prov:hadPlan`` is a ``prov:Plan``
  (and hence an entity).
* **communication** — ``used(a2, e) ∧ wasGeneratedBy(e, a1) ⇒
  wasInformedBy(a2, a1)`` (PROV-CONSTRAINTS inference 5).
* **derivation-from-dataflow** (optional) — ``wasGeneratedBy(o, a) ∧
  used(a, i) ⇒ wasDerivedFrom(o, i)``: a *heuristic* the paper explicitly
  declines to assert ("data derivation relationships cannot be asserted
  easily without a proper understanding of the exact function of each
  process"); off by default and kept for the paper's stated future work.
* **typing** — domains/ranges of the starting-point properties type their
  endpoints (Entity/Activity/Agent).

Eager vs. lazy materialization is benchmarked by
``benchmarks/bench_ablation_inference.py``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.namespace import PROV, RDF
from ..rdf.terms import BlankNode, IRI
from ..rdf.triple import Triple
from .constants import DERIVATION_SUBPROPERTIES, INFLUENCE_SUBPROPERTIES

__all__ = ["ProvInferencer", "infer", "inferred_graph"]

#: (property, subject-type, object-type) typing rules for starting-point terms.
_DOMAIN_RANGE: List[Tuple[IRI, Optional[IRI], Optional[IRI]]] = [
    (PROV.used, PROV.Activity, PROV.Entity),
    (PROV.wasGeneratedBy, PROV.Entity, PROV.Activity),
    (PROV.wasInformedBy, PROV.Activity, PROV.Activity),
    (PROV.wasAssociatedWith, PROV.Activity, PROV.Agent),
    (PROV.wasAttributedTo, PROV.Entity, PROV.Agent),
    (PROV.actedOnBehalfOf, PROV.Agent, PROV.Agent),
    (PROV.wasDerivedFrom, PROV.Entity, PROV.Entity),
    (PROV.hadPrimarySource, PROV.Entity, PROV.Entity),
    (PROV.hadMember, PROV.Collection, PROV.Entity),
]


class ProvInferencer:
    """Forward-chaining PROV inference over a graph.

    Each ``apply_*`` method returns the triples it would add; :meth:`run`
    materializes all enabled rules to a fixed point and returns the set of
    newly added triples.
    """

    def __init__(self, graph: Graph, enable_dataflow_derivation: bool = False):
        self.graph = graph
        self.enable_dataflow_derivation = enable_dataflow_derivation

    # -- individual rules ---------------------------------------------------

    def apply_influence_subproperties(self) -> List[Triple]:
        new: List[Triple] = []
        for prop in INFLUENCE_SUBPROPERTIES:
            for t in self.graph.triples(None, prop, None):
                candidate = Triple(t.subject, PROV.wasInfluencedBy, t.object)
                if candidate not in self.graph:
                    new.append(candidate)
        return new

    def apply_derivation_subproperties(self) -> List[Triple]:
        new: List[Triple] = []
        for prop in DERIVATION_SUBPROPERTIES:
            for t in self.graph.triples(None, prop, None):
                candidate = Triple(t.subject, PROV.wasDerivedFrom, t.object)
                if candidate not in self.graph:
                    new.append(candidate)
        return new

    def apply_plan_from_had_plan(self) -> List[Triple]:
        new: List[Triple] = []
        for t in self.graph.triples(None, PROV.hadPlan, None):
            for candidate in (
                Triple(t.object, RDF.type, PROV.Plan),
                Triple(t.object, RDF.type, PROV.Entity),
            ):
                if candidate not in self.graph:
                    new.append(candidate)
        return new

    def apply_communication(self) -> List[Triple]:
        """used(a2, e) ∧ wasGeneratedBy(e, a1) ⇒ wasInformedBy(a2, a1)."""
        new: List[Triple] = []
        for used in self.graph.triples(None, PROV.used, None):
            a2, e = used.subject, used.object
            for gen in self.graph.triples(e, PROV.wasGeneratedBy, None):
                a1 = gen.object
                if a1 == a2:
                    continue
                candidate = Triple(a2, PROV.wasInformedBy, a1)
                if candidate not in self.graph:
                    new.append(candidate)
        return new

    def apply_dataflow_derivation(self) -> List[Triple]:
        """wasGeneratedBy(o, a) ∧ used(a, i) ⇒ wasDerivedFrom(o, i) (heuristic)."""
        new: List[Triple] = []
        for gen in self.graph.triples(None, PROV.wasGeneratedBy, None):
            output, activity = gen.subject, gen.object
            for used in self.graph.triples(activity, PROV.used, None):
                if used.object == output:
                    continue
                candidate = Triple(output, PROV.wasDerivedFrom, used.object)
                if candidate not in self.graph:
                    new.append(candidate)
        return new

    def apply_typing(self) -> List[Triple]:
        new: List[Triple] = []
        for prop, domain, range_ in _DOMAIN_RANGE:
            for t in self.graph.triples(None, prop, None):
                if domain is not None:
                    candidate = Triple(t.subject, RDF.type, domain)
                    if candidate not in self.graph:
                        new.append(candidate)
                if range_ is not None and not isinstance(t.object, BlankNode):
                    candidate = Triple(t.object, RDF.type, range_)
                    if candidate not in self.graph:
                        new.append(candidate)
        return new

    # -- driver ----------------------------------------------------------------

    def rules(self):
        rules = [
            self.apply_influence_subproperties,
            self.apply_derivation_subproperties,
            self.apply_plan_from_had_plan,
            self.apply_communication,
            self.apply_typing,
        ]
        if self.enable_dataflow_derivation:
            rules.insert(2, self.apply_dataflow_derivation)
        return rules

    def run(self, max_rounds: int = 10) -> Set[Triple]:
        """Materialize all rules to a fixed point; returns added triples."""
        added: Set[Triple] = set()
        for _ in range(max_rounds):
            round_new: List[Triple] = []
            for rule in self.rules():
                round_new.extend(rule())
            fresh = [t for t in round_new if t not in added]
            if not fresh:
                return added
            for t in fresh:
                self.graph.add(t)
                added.add(t)
        return added


def infer(graph: Graph, enable_dataflow_derivation: bool = False) -> Set[Triple]:
    """Materialize PROV inferences into *graph*; returns the added triples."""
    return ProvInferencer(graph, enable_dataflow_derivation).run()


def inferred_graph(graph: Graph, enable_dataflow_derivation: bool = False) -> Graph:
    """Return a copy of *graph* with all PROV inferences materialized."""
    clone = graph.copy()
    infer(clone, enable_dataflow_derivation)
    return clone
