"""PROV-N serialization (W3C PROV notation).

PROV-N is the human-readable notation of the PROV family; the corpus
tooling uses it for debugging output and documentation examples.  Output is
deterministic (records in insertion order, attributes sorted) and uses the
document's registered prefixes.
"""

from __future__ import annotations

from typing import List, Optional

from ..rdf.namespace import NamespaceManager
from ..rdf.terms import IRI, Literal, XSD, escape_string, format_datetime
from .model import (
    Association,
    Attribution,
    Communication,
    Delegation,
    Derivation,
    Generation,
    Influence,
    Membership,
    ProvActivity,
    ProvAgent,
    ProvBundle,
    ProvDocument,
    ProvElement,
    ProvEntity,
    Usage,
)

__all__ = ["serialize_provn"]


def serialize_provn(document: ProvDocument) -> str:
    """Render *document* as a PROV-N document string."""
    nsm = document.namespaces
    lines: List[str] = ["document"]
    for prefix, base in nsm.namespaces():
        lines.append(f"  prefix {prefix} <{base}>")
    if len(nsm):
        lines.append("")
    _render_bundle_body(document, nsm, lines, indent="  ")
    for bundle_id, bundle in document.bundles.items():
        lines.append(f"  bundle {_name(bundle_id, nsm)}")
        _render_bundle_body(bundle, nsm, lines, indent="    ")
        lines.append("  endBundle")
    lines.append("endDocument")
    return "\n".join(lines) + "\n"


def _render_bundle_body(bundle: ProvBundle, nsm: NamespaceManager, lines: List[str], indent: str):
    for element in bundle.elements.values():
        lines.append(indent + _element_line(element, nsm))
    for relation in bundle.relations:
        lines.append(indent + _relation_line(relation, nsm))


def _name(iri: IRI, nsm: NamespaceManager) -> str:
    curie = nsm.compact(iri)
    return curie if curie is not None else f"<{iri.value}>"


def _value(term, nsm: NamespaceManager) -> str:
    if isinstance(term, IRI):
        return f"'{_name(term, nsm)}'"
    if isinstance(term, Literal):
        escaped = escape_string(term.lexical)
        if term.language:
            return f'"{escaped}"@{term.language}'
        if term.datatype.value == XSD.STRING:
            return f'"{escaped}"'
        return f'"{escaped}" %% {_name(term.datatype, nsm)}'
    return str(term)


def _attr_block(element_or_relation, nsm: NamespaceManager, extra: Optional[List[str]] = None) -> str:
    parts: List[str] = list(extra or [])
    for predicate in sorted(element_or_relation.attributes, key=lambda p: p.value):
        for value in element_or_relation.attributes[predicate]:
            parts.append(f"{_name(predicate, nsm)}={_value(value, nsm)}")
    if not parts:
        return ""
    return ", [" + ", ".join(parts) + "]"


def _time(value) -> str:
    return format_datetime(value) if value is not None else "-"


def _element_line(element: ProvElement, nsm: NamespaceManager) -> str:
    name = _name(element.identifier, nsm)
    type_attrs = [f"prov:type='{_name(t, nsm)}'" for t in element.extra_types]
    attrs = _attr_block(element, nsm, extra=type_attrs)
    if isinstance(element, ProvActivity):
        if element.start_time is not None or element.end_time is not None:
            return (
                f"activity({name}, {_time(element.start_time)}, "
                f"{_time(element.end_time)}{attrs})"
            )
        return f"activity({name}{attrs})"
    if isinstance(element, ProvAgent):
        return f"agent({name}{attrs})"
    return f"entity({name}{attrs})"


def _relation_line(relation, nsm: NamespaceManager) -> str:
    attrs = _attr_block(relation, nsm)
    if isinstance(relation, Usage):
        when = f", {_time(relation.time)}" if relation.time is not None else ""
        return f"used({_name(relation.activity, nsm)}, {_name(relation.entity, nsm)}{when}{attrs})"
    if isinstance(relation, Generation):
        when = f", {_time(relation.time)}" if relation.time is not None else ""
        return (
            f"wasGeneratedBy({_name(relation.entity, nsm)}, "
            f"{_name(relation.activity, nsm)}{when}{attrs})"
        )
    if isinstance(relation, Communication):
        return f"wasInformedBy({_name(relation.informed, nsm)}, {_name(relation.informant, nsm)}{attrs})"
    if isinstance(relation, Association):
        plan = f", {_name(relation.plan, nsm)}" if relation.plan is not None else ""
        return (
            f"wasAssociatedWith({_name(relation.activity, nsm)}, "
            f"{_name(relation.agent, nsm)}{plan}{attrs})"
        )
    if isinstance(relation, Attribution):
        return f"wasAttributedTo({_name(relation.entity, nsm)}, {_name(relation.agent, nsm)}{attrs})"
    if isinstance(relation, Delegation):
        return (
            f"actedOnBehalfOf({_name(relation.delegate, nsm)}, "
            f"{_name(relation.responsible, nsm)}{attrs})"
        )
    if isinstance(relation, Derivation):
        keyword = {
            None: "wasDerivedFrom",
            "primary_source": "hadPrimarySource",
            "quotation": "wasQuotedFrom",
            "revision": "wasRevisionOf",
        }[relation.subtype]
        return f"{keyword}({_name(relation.generated, nsm)}, {_name(relation.used_entity, nsm)}{attrs})"
    if isinstance(relation, Influence):
        return (
            f"wasInfluencedBy({_name(relation.influencee, nsm)}, "
            f"{_name(relation.influencer, nsm)}{attrs})"
        )
    if isinstance(relation, Membership):
        return f"hadMember({_name(relation.collection, nsm)}, {_name(relation.entity, nsm)}{attrs})"
    raise TypeError(f"cannot render relation of type {type(relation).__name__}")
