"""PROV library: data model, serializations, inference, and validation.

A self-contained implementation of the W3C PROV family sized for the
corpus: PROV-DM documents (:mod:`.model`), PROV-N output (:mod:`.provn`),
the PROV-O RDF mapping (:mod:`.rdf_io`), forward-chaining inference
(:mod:`.inference`), PROV-CONSTRAINTS validation (:mod:`.constraints`),
and networkx projections for analysis (:mod:`.graph_api`).
"""

from .constants import (
    ADDITIONAL_TERMS,
    INFLUENCE_SUBPROPERTIES,
    PROV,
    STARTING_POINT_TERMS,
    ProvTerm,
)
from .constraints import Violation, is_valid, validate_document
from .graph_api import activity_graph, dependency_graph, to_networkx
from .inference import ProvInferencer, infer, inferred_graph
from .model import (
    Association,
    Attribution,
    Communication,
    Delegation,
    Derivation,
    Generation,
    Influence,
    Membership,
    ProvActivity,
    ProvAgent,
    ProvBundle,
    ProvDocument,
    ProvEntity,
    ProvModelError,
    Usage,
)
from .dot import to_dot
from .json_io import parse_provjson, serialize_provjson
from .provn import serialize_provn
from .provn_parser import ProvNSyntaxError, parse_provn
from .rdf_io import from_dataset, from_graph, to_dataset, to_graph
from .xml_io import parse_provxml, serialize_provxml

__all__ = [
    "ProvDocument",
    "ProvBundle",
    "ProvEntity",
    "ProvActivity",
    "ProvAgent",
    "Usage",
    "Generation",
    "Communication",
    "Association",
    "Attribution",
    "Delegation",
    "Derivation",
    "Influence",
    "Membership",
    "ProvModelError",
    "to_graph",
    "to_dataset",
    "from_graph",
    "from_dataset",
    "serialize_provn",
    "parse_provn",
    "ProvNSyntaxError",
    "serialize_provxml",
    "parse_provxml",
    "serialize_provjson",
    "parse_provjson",
    "to_dot",
    "infer",
    "inferred_graph",
    "ProvInferencer",
    "validate_document",
    "is_valid",
    "Violation",
    "to_networkx",
    "dependency_graph",
    "activity_graph",
    "PROV",
    "ProvTerm",
    "STARTING_POINT_TERMS",
    "ADDITIONAL_TERMS",
    "INFLUENCE_SUBPROPERTIES",
]
