"""PROV-O vocabulary constants and term groupings.

The term groupings mirror the paper's coverage tables:

* :data:`STARTING_POINT_TERMS` — the 12 terms of Table 2, taken from the
  PROV-O "starting point" section
  (http://www.w3.org/TR/prov-o/#description-starting-point-terms).
* :data:`ADDITIONAL_TERMS` — the 5 terms of Table 3.

Each term records whether it is a class or a property, which is what the
coverage scanner needs to know where to look (``rdf:type`` objects vs.
predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..rdf.namespace import PROV
from ..rdf.terms import IRI

__all__ = [
    "PROV",
    "ProvTerm",
    "STARTING_POINT_TERMS",
    "ADDITIONAL_TERMS",
    "INFLUENCE_SUBPROPERTIES",
    "DERIVATION_SUBPROPERTIES",
    "PROV_CLASSES",
    "PROV_PROPERTIES",
]


@dataclass(frozen=True)
class ProvTerm:
    """One PROV-O term as tracked by the coverage tables."""

    name: str  # prefixed form, e.g. "prov:Entity"
    iri: IRI
    is_class: bool

    def __str__(self) -> str:
        return self.name


def _cls(local: str) -> ProvTerm:
    return ProvTerm(f"prov:{local}", PROV.term(local), is_class=True)


def _prop(local: str) -> ProvTerm:
    return ProvTerm(f"prov:{local}", PROV.term(local), is_class=False)


#: Table 2 — PROV-O starting-point terms, in the paper's row order.
STARTING_POINT_TERMS: List[ProvTerm] = [
    _cls("Activity"),
    _cls("Agent"),
    _cls("Entity"),
    _prop("actedOnBehalfOf"),
    _prop("endedAtTime"),
    _prop("startedAtTime"),
    _prop("used"),
    _prop("wasAssociatedWith"),
    _prop("wasAttributedTo"),
    _prop("wasDerivedFrom"),
    _prop("wasGeneratedBy"),
    _prop("wasInformedBy"),
]

#: Table 3 — additional PROV terms, in the paper's row order.
ADDITIONAL_TERMS: List[ProvTerm] = [
    _cls("Bundle"),
    _cls("Plan"),
    _prop("wasInfluencedBy"),
    _prop("hadPrimarySource"),
    _prop("atLocation"),
]

#: Direct subproperties of prov:wasInfluencedBy (PROV-O expanded terms).
#: Used by the inference engine: any assertion of one of these entails a
#: prov:wasInfluencedBy statement between the same resources — this is what
#: makes the starred Taverna cell of Table 3 inferable.
INFLUENCE_SUBPROPERTIES: List[IRI] = [
    PROV.used,
    PROV.wasGeneratedBy,
    PROV.wasAssociatedWith,
    PROV.wasAttributedTo,
    PROV.actedOnBehalfOf,
    PROV.wasDerivedFrom,
    PROV.wasInformedBy,
    PROV.wasStartedBy,
    PROV.wasEndedBy,
    PROV.wasInvalidatedBy,
    PROV.hadPrimarySource,
    PROV.wasQuotedFrom,
    PROV.wasRevisionOf,
]

#: Subproperties of prov:wasDerivedFrom.
DERIVATION_SUBPROPERTIES: List[IRI] = [
    PROV.hadPrimarySource,
    PROV.wasQuotedFrom,
    PROV.wasRevisionOf,
]

#: PROV-O classes the model layer knows about.
PROV_CLASSES: Dict[str, IRI] = {
    "Entity": PROV.Entity,
    "Activity": PROV.Activity,
    "Agent": PROV.Agent,
    "Person": PROV.Person,
    "SoftwareAgent": PROV.SoftwareAgent,
    "Organization": PROV.Organization,
    "Bundle": PROV.Bundle,
    "Plan": PROV.Plan,
    "Collection": PROV.Collection,
    "Location": PROV.Location,
}

#: PROV-O properties the model layer emits.
PROV_PROPERTIES: Dict[str, IRI] = {
    "used": PROV.used,
    "wasGeneratedBy": PROV.wasGeneratedBy,
    "wasAssociatedWith": PROV.wasAssociatedWith,
    "wasAttributedTo": PROV.wasAttributedTo,
    "actedOnBehalfOf": PROV.actedOnBehalfOf,
    "wasDerivedFrom": PROV.wasDerivedFrom,
    "wasInformedBy": PROV.wasInformedBy,
    "wasInfluencedBy": PROV.wasInfluencedBy,
    "hadPrimarySource": PROV.hadPrimarySource,
    "startedAtTime": PROV.startedAtTime,
    "endedAtTime": PROV.endedAtTime,
    "atLocation": PROV.atLocation,
    "hadPlan": PROV.hadPlan,
    "hadMember": PROV.hadMember,
    "wasStartedBy": PROV.wasStartedBy,
    "wasEndedBy": PROV.wasEndedBy,
    "wasInvalidatedBy": PROV.wasInvalidatedBy,
    "generatedAtTime": PROV.generatedAtTime,
    "invalidatedAtTime": PROV.invalidatedAtTime,
    "value": PROV.value,
}
