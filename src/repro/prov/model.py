"""PROV-DM in-memory model: documents, bundles, elements, and relations.

The API follows the shape of the W3C PROV data model: a
:class:`ProvDocument` contains elements (entities, activities, agents),
relations (usage, generation, association, ...), and optionally named
:class:`ProvBundle` instances with their own records.  Factory methods on
the document/bundle (``doc.entity(...)``, ``doc.used(...)``) both create
and register records, so building a trace reads like PROV-N:

    doc = ProvDocument()
    doc.namespaces.bind("ex", "http://example.org/")
    run = doc.activity("ex:run1", start_time=t0, end_time=t1)
    data = doc.entity("ex:data1", {"prov:value": 42})
    doc.used(run, data)

Identifiers may be given as :class:`IRI`, full IRI strings, or CURIEs
resolved against the document's namespace manager.
"""

from __future__ import annotations

import datetime as _dt
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..rdf.namespace import NamespaceManager, PROV
from ..rdf.terms import IRI, Literal, Term, from_python

__all__ = [
    "ProvDocument",
    "ProvBundle",
    "ProvRecord",
    "ProvElement",
    "ProvEntity",
    "ProvActivity",
    "ProvAgent",
    "Usage",
    "Generation",
    "Communication",
    "Association",
    "Attribution",
    "Delegation",
    "Derivation",
    "Influence",
    "Membership",
    "ProvModelError",
]

Identifier = Union[IRI, str]
AttrValue = Union[Term, str, int, float, bool, _dt.datetime]
Attributes = Dict[Identifier, AttrValue]


class ProvModelError(ValueError):
    """Raised on invalid PROV model construction."""


class ProvRecord:
    """Base class for all PROV records.

    Every record can carry extra attributes (IRI → list of terms), used by
    the workflow exporters to attach wfprov/OPMW/dcterms descriptions.
    """

    def __init__(self, bundle: "ProvBundle"):
        self._bundle = bundle
        self.attributes: Dict[IRI, List[Term]] = {}

    @property
    def bundle(self) -> "ProvBundle":
        return self._bundle

    def add_attribute(self, key: Identifier, value: AttrValue) -> None:
        iri = self._bundle.resolve(key)
        term = value if isinstance(value, (IRI, Literal)) else from_python(value)
        self.attributes.setdefault(iri, []).append(term)

    def add_attributes(self, attributes: Optional[Attributes]) -> None:
        if not attributes:
            return
        for key, value in attributes.items():
            self.add_attribute(key, value)

    def get_attribute(self, key: Identifier) -> List[Term]:
        iri = self._bundle.resolve(key)
        return list(self.attributes.get(iri, ()))

    def first_attribute(self, key: Identifier) -> Optional[Term]:
        values = self.get_attribute(key)
        return values[0] if values else None


class ProvElement(ProvRecord):
    """An identified PROV element (entity, activity, or agent)."""

    prov_type: IRI = PROV.Entity  # overridden by subclasses

    def __init__(self, bundle: "ProvBundle", identifier: IRI):
        super().__init__(bundle)
        self.identifier = identifier
        self.extra_types: List[IRI] = []

    def add_type(self, rdf_type: Identifier) -> None:
        """Attach an additional rdf:type (e.g. wfprov:ProcessRun)."""
        iri = self._bundle.resolve(rdf_type)
        if iri != self.prov_type and iri not in self.extra_types:
            self.extra_types.append(iri)

    def all_types(self) -> List[IRI]:
        return [self.prov_type] + self.extra_types

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.identifier.value})"


class ProvEntity(ProvElement):
    prov_type = PROV.Entity


class ProvActivity(ProvElement):
    prov_type = PROV.Activity

    def __init__(
        self,
        bundle: "ProvBundle",
        identifier: IRI,
        start_time: Optional[_dt.datetime] = None,
        end_time: Optional[_dt.datetime] = None,
    ):
        super().__init__(bundle, identifier)
        if start_time is not None and end_time is not None and end_time < start_time:
            raise ProvModelError(
                f"activity {identifier.value} ends ({end_time}) before it starts ({start_time})"
            )
        self.start_time = start_time
        self.end_time = end_time


class ProvAgent(ProvElement):
    prov_type = PROV.Agent


class _Relation(ProvRecord):
    """Base class for binary (plus optional roles) PROV relations."""

    def _element_id(self, element: Union[ProvElement, IRI]) -> IRI:
        return element.identifier if isinstance(element, ProvElement) else element


class Usage(_Relation):
    """prov:used — an activity consumed an entity."""

    def __init__(self, bundle, activity: IRI, entity: IRI, time: Optional[_dt.datetime] = None,
                 role: Optional[IRI] = None):
        super().__init__(bundle)
        self.activity = activity
        self.entity = entity
        self.time = time
        self.role = role


class Generation(_Relation):
    """prov:wasGeneratedBy — an entity was produced by an activity."""

    def __init__(self, bundle, entity: IRI, activity: IRI, time: Optional[_dt.datetime] = None,
                 role: Optional[IRI] = None):
        super().__init__(bundle)
        self.entity = entity
        self.activity = activity
        self.time = time
        self.role = role


class Communication(_Relation):
    """prov:wasInformedBy — activity *informed* used output of *informant*."""

    def __init__(self, bundle, informed: IRI, informant: IRI):
        super().__init__(bundle)
        self.informed = informed
        self.informant = informant


class Association(_Relation):
    """prov:wasAssociatedWith — an agent's responsibility for an activity.

    A *plan* (workflow template) makes the association qualified: the RDF
    mapping then emits ``prov:qualifiedAssociation``/``prov:hadPlan``, which
    is precisely the Taverna idiom noted in Table 3 of the paper.
    """

    def __init__(self, bundle, activity: IRI, agent: IRI, plan: Optional[IRI] = None):
        super().__init__(bundle)
        self.activity = activity
        self.agent = agent
        self.plan = plan


class Attribution(_Relation):
    """prov:wasAttributedTo — an entity is ascribed to an agent."""

    def __init__(self, bundle, entity: IRI, agent: IRI):
        super().__init__(bundle)
        self.entity = entity
        self.agent = agent


class Delegation(_Relation):
    """prov:actedOnBehalfOf — agent responsibility chain."""

    def __init__(self, bundle, delegate: IRI, responsible: IRI, activity: Optional[IRI] = None):
        super().__init__(bundle)
        self.delegate = delegate
        self.responsible = responsible
        self.activity = activity


class Derivation(_Relation):
    """prov:wasDerivedFrom and its subtypes.

    *subtype* is one of None (plain derivation), ``"primary_source"``,
    ``"quotation"``, ``"revision"``.  Subtyped derivations are serialized
    with the subproperty only (prov:hadPrimarySource, ...), matching how
    the corpus systems assert them — the superproperty is left to inference.
    """

    SUBTYPE_PROPERTIES = {
        None: PROV.wasDerivedFrom,
        "primary_source": PROV.hadPrimarySource,
        "quotation": PROV.wasQuotedFrom,
        "revision": PROV.wasRevisionOf,
    }

    def __init__(self, bundle, generated: IRI, used_entity: IRI,
                 activity: Optional[IRI] = None, subtype: Optional[str] = None):
        super().__init__(bundle)
        if subtype not in self.SUBTYPE_PROPERTIES:
            raise ProvModelError(f"unknown derivation subtype {subtype!r}")
        self.generated = generated
        self.used_entity = used_entity
        self.activity = activity
        self.subtype = subtype

    @property
    def property_iri(self) -> IRI:
        return self.SUBTYPE_PROPERTIES[self.subtype]


class Influence(_Relation):
    """prov:wasInfluencedBy — the most general influence relation."""

    def __init__(self, bundle, influencee: IRI, influencer: IRI):
        super().__init__(bundle)
        self.influencee = influencee
        self.influencer = influencer


class Membership(_Relation):
    """prov:hadMember — collection membership."""

    def __init__(self, bundle, collection: IRI, entity: IRI):
        super().__init__(bundle)
        self.collection = collection
        self.entity = entity


_AGENT_TYPES = {
    None: PROV.Agent,
    "person": PROV.Person,
    "software": PROV.SoftwareAgent,
    "organization": PROV.Organization,
}


class ProvBundle:
    """A container of PROV records (the document itself, or a named bundle)."""

    def __init__(self, document: Optional["ProvDocument"], identifier: Optional[IRI] = None):
        self._document = document if document is not None else self  # type: ignore[assignment]
        self.identifier = identifier
        self.elements: Dict[IRI, ProvElement] = {}
        self.relations: List[_Relation] = []

    # -- identifiers ---------------------------------------------------------

    @property
    def document(self) -> "ProvDocument":
        return self._document  # type: ignore[return-value]

    @property
    def namespaces(self) -> NamespaceManager:
        return self.document._namespaces

    def resolve(self, identifier: Identifier) -> IRI:
        """Resolve an IRI, full IRI string, or CURIE to an IRI."""
        if isinstance(identifier, IRI):
            return identifier
        if not isinstance(identifier, str):
            raise ProvModelError(f"invalid identifier: {identifier!r}")
        if "://" in identifier or identifier.startswith("urn:"):
            return IRI(identifier)
        if ":" in identifier:
            prefix = identifier.split(":", 1)[0]
            if prefix in self.namespaces:
                return self.namespaces.expand(identifier)
        raise ProvModelError(f"cannot resolve identifier {identifier!r}")

    # -- element factories ------------------------------------------------------

    def entity(self, identifier: Identifier, attributes: Optional[Attributes] = None) -> ProvEntity:
        return self._add_element(ProvEntity, identifier, attributes)

    def collection(self, identifier: Identifier, attributes: Optional[Attributes] = None) -> ProvEntity:
        entity = self.entity(identifier, attributes)
        entity.add_type(PROV.Collection)
        return entity

    def plan(self, identifier: Identifier, attributes: Optional[Attributes] = None) -> ProvEntity:
        entity = self.entity(identifier, attributes)
        entity.add_type(PROV.Plan)
        return entity

    def activity(
        self,
        identifier: Identifier,
        start_time: Optional[_dt.datetime] = None,
        end_time: Optional[_dt.datetime] = None,
        attributes: Optional[Attributes] = None,
    ) -> ProvActivity:
        iri = self.resolve(identifier)
        existing = self.elements.get(iri)
        if existing is not None:
            if not isinstance(existing, ProvActivity):
                raise ProvModelError(f"{iri.value} already declared as {type(existing).__name__}")
            if start_time is not None:
                existing.start_time = start_time
            if end_time is not None:
                existing.end_time = end_time
            existing.add_attributes(attributes)
            return existing
        activity = ProvActivity(self, iri, start_time, end_time)
        activity.add_attributes(attributes)
        self.elements[iri] = activity
        return activity

    def agent(
        self,
        identifier: Identifier,
        agent_type: Optional[str] = None,
        attributes: Optional[Attributes] = None,
    ) -> ProvAgent:
        if agent_type not in _AGENT_TYPES:
            raise ProvModelError(f"unknown agent type {agent_type!r}")
        agent = self._add_element(ProvAgent, identifier, attributes)
        if agent_type is not None:
            agent.add_type(_AGENT_TYPES[agent_type])
        return agent

    def _add_element(self, cls, identifier: Identifier, attributes: Optional[Attributes]):
        iri = self.resolve(identifier)
        existing = self.elements.get(iri)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ProvModelError(f"{iri.value} already declared as {type(existing).__name__}")
            existing.add_attributes(attributes)
            return existing
        element = cls(self, iri)
        element.add_attributes(attributes)
        self.elements[iri] = element
        return element

    # -- relation factories --------------------------------------------------------

    def used(self, activity, entity, time: Optional[_dt.datetime] = None,
             role: Optional[Identifier] = None) -> Usage:
        relation = Usage(
            self,
            self._ref(activity),
            self._ref(entity),
            time,
            self.resolve(role) if role is not None else None,
        )
        self.relations.append(relation)
        return relation

    def was_generated_by(self, entity, activity, time: Optional[_dt.datetime] = None,
                         role: Optional[Identifier] = None) -> Generation:
        relation = Generation(
            self,
            self._ref(entity),
            self._ref(activity),
            time,
            self.resolve(role) if role is not None else None,
        )
        self.relations.append(relation)
        return relation

    def was_informed_by(self, informed, informant) -> Communication:
        relation = Communication(self, self._ref(informed), self._ref(informant))
        self.relations.append(relation)
        return relation

    def was_associated_with(self, activity, agent, plan=None) -> Association:
        relation = Association(
            self,
            self._ref(activity),
            self._ref(agent),
            self._ref(plan) if plan is not None else None,
        )
        self.relations.append(relation)
        return relation

    def was_attributed_to(self, entity, agent) -> Attribution:
        relation = Attribution(self, self._ref(entity), self._ref(agent))
        self.relations.append(relation)
        return relation

    def acted_on_behalf_of(self, delegate, responsible, activity=None) -> Delegation:
        relation = Delegation(
            self,
            self._ref(delegate),
            self._ref(responsible),
            self._ref(activity) if activity is not None else None,
        )
        self.relations.append(relation)
        return relation

    def was_derived_from(self, generated, used_entity, activity=None,
                         subtype: Optional[str] = None) -> Derivation:
        relation = Derivation(
            self,
            self._ref(generated),
            self._ref(used_entity),
            self._ref(activity) if activity is not None else None,
            subtype,
        )
        self.relations.append(relation)
        return relation

    def had_primary_source(self, generated, source) -> Derivation:
        return self.was_derived_from(generated, source, subtype="primary_source")

    def was_influenced_by(self, influencee, influencer) -> Influence:
        relation = Influence(self, self._ref(influencee), self._ref(influencer))
        self.relations.append(relation)
        return relation

    def had_member(self, collection, entity) -> Membership:
        relation = Membership(self, self._ref(collection), self._ref(entity))
        self.relations.append(relation)
        return relation

    def _ref(self, value: Union[ProvElement, Identifier]) -> IRI:
        if isinstance(value, ProvElement):
            return value.identifier
        return self.resolve(value)

    # -- access ------------------------------------------------------------------

    def get_element(self, identifier: Identifier) -> Optional[ProvElement]:
        return self.elements.get(self.resolve(identifier))

    def entities(self) -> Iterator[ProvEntity]:
        return (e for e in self.elements.values() if isinstance(e, ProvEntity))

    def activities(self) -> Iterator[ProvActivity]:
        return (e for e in self.elements.values() if isinstance(e, ProvActivity))

    def agents(self) -> Iterator[ProvAgent]:
        return (e for e in self.elements.values() if isinstance(e, ProvAgent))

    def relations_of(self, cls) -> Iterator[_Relation]:
        return (r for r in self.relations if isinstance(r, cls))

    def records(self) -> Iterator[ProvRecord]:
        yield from self.elements.values()
        yield from self.relations

    def __len__(self) -> int:
        return len(self.elements) + len(self.relations)

    def __repr__(self) -> str:
        name = self.identifier.value if self.identifier is not None else "<document>"
        return f"<ProvBundle {name}: {len(self.elements)} elements, {len(self.relations)} relations>"


class ProvDocument(ProvBundle):
    """The top-level PROV container: records plus named bundles."""

    def __init__(self, namespaces: Optional[NamespaceManager] = None):
        self._namespaces = namespaces if namespaces is not None else NamespaceManager()
        super().__init__(document=None)
        self.bundles: Dict[IRI, ProvBundle] = {}

    def bundle(self, identifier: Identifier) -> ProvBundle:
        """Create (or fetch) a named bundle within this document."""
        iri = self.resolve(identifier)
        existing = self.bundles.get(iri)
        if existing is not None:
            return existing
        bundle = ProvBundle(self, iri)
        self.bundles[iri] = bundle
        return bundle

    def all_records(self) -> Iterator[Tuple[Optional[IRI], ProvRecord]]:
        """Iterate ``(bundle_id, record)`` over the document and its bundles."""
        for record in self.records():
            yield None, record
        for bundle_id, bundle in self.bundles.items():
            for record in bundle.records():
                yield bundle_id, record

    def statistics(self) -> Dict[str, int]:
        """Record counts by kind — used by the corpus manifest."""
        counts = {
            "entities": 0,
            "activities": 0,
            "agents": 0,
            "relations": len(self.relations),
            "bundles": len(self.bundles),
        }
        containers: List[ProvBundle] = [self] + list(self.bundles.values())
        counts["relations"] = sum(len(c.relations) for c in containers)
        for container in containers:
            for element in container.elements.values():
                if isinstance(element, ProvActivity):
                    counts["activities"] += 1
                elif isinstance(element, ProvAgent):
                    counts["agents"] += 1
                else:
                    counts["entities"] += 1
        return counts

    def __repr__(self) -> str:
        stats = self.statistics()
        return (
            f"<ProvDocument entities={stats['entities']} activities={stats['activities']} "
            f"agents={stats['agents']} relations={stats['relations']} bundles={stats['bundles']}>"
        )
