"""PROV-DM ↔ PROV-O (RDF) mapping.

``to_graph`` / ``to_dataset`` serialize a :class:`ProvDocument` into RDF
following the PROV-O mapping:

* elements become typed resources with their attributes as triples;
* binary relations become the direct PROV-O properties;
* a time- or role-qualified usage/generation, and a plan-carrying
  association, additionally emit the *qualified* pattern
  (``prov:qualifiedUsage``/``prov:qualifiedGeneration``/
  ``prov:qualifiedAssociation`` blank nodes) — the idiom Taverna's
  provenance export uses for ``prov:hadPlan`` (cf. Table 3 of the paper);
* bundles become named graphs (``to_dataset``) or are merged
  (``to_graph``), with a ``prov:Bundle`` typing triple in the default graph.

``from_graph`` / ``from_dataset`` rebuild a document from RDF, inferring
element kinds from relation domains/ranges when typing triples are absent
(failed runs produce exactly such partial traces).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..rdf.graph import Dataset, Graph
from ..rdf.namespace import PROV, RDF, NamespaceManager
from ..rdf.terms import BlankNode, IRI, Literal, from_python
from .model import (
    Association,
    Attribution,
    Communication,
    Delegation,
    Derivation,
    Generation,
    Influence,
    Membership,
    ProvActivity,
    ProvAgent,
    ProvBundle,
    ProvDocument,
    ProvEntity,
    Usage,
)

__all__ = ["to_graph", "to_dataset", "from_graph", "from_dataset"]


class _QualifiedNodeFactory:
    """Deterministic blank-node ids for qualified-pattern nodes."""

    def __init__(self):
        self._count = 0

    def new(self) -> BlankNode:
        self._count += 1
        return BlankNode(f"q{self._count}")


def _emit_bundle(bundle: ProvBundle, graph: Graph, qnodes: _QualifiedNodeFactory) -> None:
    for element in bundle.elements.values():
        subject = element.identifier
        for rdf_type in element.all_types():
            graph.add((subject, RDF.type, rdf_type))
        if isinstance(element, ProvActivity):
            if element.start_time is not None:
                graph.add((subject, PROV.startedAtTime, from_python(element.start_time)))
            if element.end_time is not None:
                graph.add((subject, PROV.endedAtTime, from_python(element.end_time)))
        for predicate, values in element.attributes.items():
            for value in values:
                graph.add((subject, predicate, value))
    for relation in bundle.relations:
        _emit_relation(relation, graph, qnodes)


def _emit_relation(relation, graph: Graph, qnodes: _QualifiedNodeFactory) -> None:
    if isinstance(relation, Usage):
        graph.add((relation.activity, PROV.used, relation.entity))
        if relation.time is not None or relation.role is not None:
            node = qnodes.new()
            graph.add((relation.activity, PROV.qualifiedUsage, node))
            graph.add((node, RDF.type, PROV.Usage))
            graph.add((node, PROV.entity, relation.entity))
            if relation.time is not None:
                graph.add((node, PROV.atTime, from_python(relation.time)))
            if relation.role is not None:
                graph.add((node, PROV.hadRole, relation.role))
    elif isinstance(relation, Generation):
        graph.add((relation.entity, PROV.wasGeneratedBy, relation.activity))
        if relation.time is not None or relation.role is not None:
            node = qnodes.new()
            graph.add((relation.entity, PROV.qualifiedGeneration, node))
            graph.add((node, RDF.type, PROV.Generation))
            graph.add((node, PROV.activity, relation.activity))
            if relation.time is not None:
                graph.add((node, PROV.atTime, from_python(relation.time)))
            if relation.role is not None:
                graph.add((node, PROV.hadRole, relation.role))
    elif isinstance(relation, Communication):
        graph.add((relation.informed, PROV.wasInformedBy, relation.informant))
    elif isinstance(relation, Association):
        graph.add((relation.activity, PROV.wasAssociatedWith, relation.agent))
        if relation.plan is not None:
            node = qnodes.new()
            graph.add((relation.activity, PROV.qualifiedAssociation, node))
            graph.add((node, RDF.type, PROV.Association))
            graph.add((node, PROV.agent, relation.agent))
            graph.add((node, PROV.hadPlan, relation.plan))
    elif isinstance(relation, Attribution):
        graph.add((relation.entity, PROV.wasAttributedTo, relation.agent))
    elif isinstance(relation, Delegation):
        graph.add((relation.delegate, PROV.actedOnBehalfOf, relation.responsible))
    elif isinstance(relation, Derivation):
        graph.add((relation.generated, relation.property_iri, relation.used_entity))
    elif isinstance(relation, Influence):
        graph.add((relation.influencee, PROV.wasInfluencedBy, relation.influencer))
    elif isinstance(relation, Membership):
        graph.add((relation.collection, PROV.hadMember, relation.entity))
    else:
        raise TypeError(f"cannot serialize relation of type {type(relation).__name__}")
    for predicate, values in relation.attributes.items():
        # Relation-level attributes are rare; attach them to the natural
        # subject of the relation's direct triple.
        subject = _relation_subject(relation)
        for value in values:
            graph.add((subject, predicate, value))


def _relation_subject(relation) -> IRI:
    for attr in ("activity", "entity", "informed", "delegate", "generated",
                 "influencee", "collection"):
        value = getattr(relation, attr, None)
        if isinstance(value, IRI):
            return value
    raise TypeError(f"relation {type(relation).__name__} has no subject")


def to_graph(document: ProvDocument, graph: Optional[Graph] = None) -> Graph:
    """Serialize the document (bundles merged) into a single graph."""
    if graph is None:
        graph = Graph(namespaces=document.namespaces.copy())
    qnodes = _QualifiedNodeFactory()
    _emit_bundle(document, graph, qnodes)
    for bundle_id, bundle in document.bundles.items():
        graph.add((bundle_id, RDF.type, PROV.Bundle))
        graph.add((bundle_id, RDF.type, PROV.Entity))
        _emit_bundle(bundle, graph, qnodes)
    return graph


def to_dataset(document: ProvDocument, dataset: Optional[Dataset] = None) -> Dataset:
    """Serialize the document with each bundle in its own named graph."""
    if dataset is None:
        dataset = Dataset(namespaces=document.namespaces.copy())
    qnodes = _QualifiedNodeFactory()
    _emit_bundle(document, dataset.default, qnodes)
    for bundle_id, bundle in document.bundles.items():
        dataset.default.add((bundle_id, RDF.type, PROV.Bundle))
        dataset.default.add((bundle_id, RDF.type, PROV.Entity))
        _emit_bundle(bundle, dataset.graph(bundle_id), qnodes)
    return dataset


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_ENTITY_TYPES = {PROV.Entity, PROV.Plan, PROV.Collection, PROV.Bundle}
_AGENT_TYPES = {PROV.Agent: None, PROV.Person: "person",
                PROV.SoftwareAgent: "software", PROV.Organization: "organization"}

#: PROV structural predicates that must not be re-read as plain attributes.
_STRUCTURAL = {
    PROV.used, PROV.wasGeneratedBy, PROV.wasInformedBy, PROV.wasAssociatedWith,
    PROV.wasAttributedTo, PROV.actedOnBehalfOf, PROV.wasDerivedFrom,
    PROV.hadPrimarySource, PROV.wasQuotedFrom, PROV.wasRevisionOf,
    PROV.wasInfluencedBy, PROV.hadMember, PROV.startedAtTime, PROV.endedAtTime,
    PROV.qualifiedUsage, PROV.qualifiedGeneration, PROV.qualifiedAssociation,
    RDF.type,
}

_DERIVATION_SUBTYPES = {
    PROV.wasDerivedFrom: None,
    PROV.hadPrimarySource: "primary_source",
    PROV.wasQuotedFrom: "quotation",
    PROV.wasRevisionOf: "revision",
}


def from_graph(
    graph: Graph,
    document: Optional[ProvDocument] = None,
    bundle: Optional[ProvBundle] = None,
) -> ProvDocument:
    """Rebuild a PROV document from a PROV-O graph.

    When *bundle* is given, records are loaded into that bundle of
    *document* (used by :func:`from_dataset` for named graphs).
    """
    if document is None:
        document = ProvDocument(namespaces=graph.namespaces.copy())
    target: ProvBundle = bundle if bundle is not None else document

    qualified_nodes = set()
    for pred in (PROV.qualifiedUsage, PROV.qualifiedGeneration, PROV.qualifiedAssociation):
        for t in graph.triples(None, pred, None):
            qualified_nodes.add(t.object)

    # Pass 1: explicitly typed elements.
    for t in graph.triples(None, RDF.type, None):
        subject, rdf_type = t.subject, t.object
        if subject in qualified_nodes or isinstance(subject, BlankNode):
            continue
        if not isinstance(subject, IRI) or not isinstance(rdf_type, IRI):
            continue
        if rdf_type == PROV.Activity:
            target.activity(subject)
        elif rdf_type in _AGENT_TYPES:
            target.agent(subject, agent_type=_AGENT_TYPES[rdf_type])
        elif rdf_type in _ENTITY_TYPES:
            entity = target.entity(subject)
            if rdf_type != PROV.Entity:
                entity.add_type(rdf_type)
        else:
            element = target.elements.get(subject)
            if element is not None:
                element.add_type(rdf_type)
            else:
                # Domain-typed resource (e.g. wfprov:ProcessRun): keep the
                # type; pass 2/3 decides the PROV kind from relations.
                target.entity(subject).add_type(rdf_type)

    # Pass 2: relations (also imply kinds for untyped resources).
    def ensure_activity(iri):
        element = target.elements.get(iri)
        if isinstance(element, ProvActivity):
            return element
        if element is None:
            return target.activity(iri)
        return element

    def ensure_entity(iri):
        element = target.elements.get(iri)
        return element if element is not None else target.entity(iri)

    def ensure_agent(iri):
        element = target.elements.get(iri)
        if isinstance(element, ProvAgent):
            return element
        if element is None:
            return target.agent(iri)
        return element

    qualified_info = _collect_qualified(graph)

    for t in graph.triples(None, PROV.used, None):
        ensure_activity(t.subject)
        ensure_entity(t.object)
        info = qualified_info.get(("usage", t.subject, t.object), {})
        target.used(t.subject, t.object, time=info.get("time"), role=info.get("role"))
    for t in graph.triples(None, PROV.wasGeneratedBy, None):
        ensure_entity(t.subject)
        ensure_activity(t.object)
        info = qualified_info.get(("generation", t.subject, t.object), {})
        target.was_generated_by(t.subject, t.object, time=info.get("time"), role=info.get("role"))
    for t in graph.triples(None, PROV.wasInformedBy, None):
        ensure_activity(t.subject)
        ensure_activity(t.object)
        target.was_informed_by(t.subject, t.object)
    for t in graph.triples(None, PROV.wasAssociatedWith, None):
        ensure_activity(t.subject)
        ensure_agent(t.object)
        info = qualified_info.get(("association", t.subject, t.object), {})
        target.was_associated_with(t.subject, t.object, plan=info.get("plan"))
    for t in graph.triples(None, PROV.wasAttributedTo, None):
        ensure_entity(t.subject)
        ensure_agent(t.object)
        target.was_attributed_to(t.subject, t.object)
    for t in graph.triples(None, PROV.actedOnBehalfOf, None):
        ensure_agent(t.subject)
        ensure_agent(t.object)
        target.acted_on_behalf_of(t.subject, t.object)
    for predicate, subtype in _DERIVATION_SUBTYPES.items():
        for t in graph.triples(None, predicate, None):
            ensure_entity(t.subject)
            ensure_entity(t.object)
            target.was_derived_from(t.subject, t.object, subtype=subtype)
    for t in graph.triples(None, PROV.wasInfluencedBy, None):
        target.was_influenced_by(t.subject, t.object)
    for t in graph.triples(None, PROV.hadMember, None):
        ensure_entity(t.subject)
        ensure_entity(t.object)
        target.had_member(t.subject, t.object)

    # Pass 3: activity timestamps and remaining attributes.
    for element_id, element in list(target.elements.items()):
        if isinstance(element, ProvActivity):
            start = graph.value(subject=element_id, predicate=PROV.startedAtTime)
            end = graph.value(subject=element_id, predicate=PROV.endedAtTime)
            if isinstance(start, Literal):
                element.start_time = start.to_python()
            if isinstance(end, Literal):
                element.end_time = end.to_python()
        for t in graph.triples(element_id, None, None):
            if t.predicate in _STRUCTURAL or t.object in qualified_nodes:
                continue
            if isinstance(t.object, BlankNode):
                continue
            element.add_attribute(t.predicate, t.object)
    return document


def _collect_qualified(graph: Graph) -> Dict[tuple, Dict]:
    """Index qualified usage/generation/association nodes by their endpoints."""
    info: Dict[tuple, Dict] = {}
    for t in graph.triples(None, PROV.qualifiedUsage, None):
        node = t.object
        entity = graph.value(subject=node, predicate=PROV.entity)
        if entity is None:
            continue
        entry = info.setdefault(("usage", t.subject, entity), {})
        _fill_time_role(graph, node, entry)
    for t in graph.triples(None, PROV.qualifiedGeneration, None):
        node = t.object
        activity = graph.value(subject=node, predicate=PROV.activity)
        if activity is None:
            continue
        entry = info.setdefault(("generation", t.subject, activity), {})
        _fill_time_role(graph, node, entry)
    for t in graph.triples(None, PROV.qualifiedAssociation, None):
        node = t.object
        agent = graph.value(subject=node, predicate=PROV.agent)
        if agent is None:
            continue
        entry = info.setdefault(("association", t.subject, agent), {})
        plan = graph.value(subject=node, predicate=PROV.hadPlan)
        if plan is not None:
            entry["plan"] = plan
    return info


def _fill_time_role(graph: Graph, node, entry: Dict) -> None:
    time = graph.value(subject=node, predicate=PROV.atTime)
    if isinstance(time, Literal):
        entry["time"] = time.to_python()
    role = graph.value(subject=node, predicate=PROV.hadRole)
    if role is not None:
        entry["role"] = role


def from_dataset(dataset: Dataset, document: Optional[ProvDocument] = None) -> ProvDocument:
    """Rebuild a document from a dataset: named graphs become bundles."""
    if document is None:
        document = ProvDocument(namespaces=dataset.namespaces.copy())
    from_graph(dataset.default, document=document)
    for name in dataset.graph_names():
        if not isinstance(name, IRI):
            continue
        bundle = document.bundle(name)
        from_graph(dataset.graph(name), document=document, bundle=bundle)
    return document
