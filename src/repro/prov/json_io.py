"""PROV-JSON serialization (W3C member submission).

PROV-JSON is the native exchange format of the reference ``prov`` Python
toolbox, so speaking it makes the corpus consumable by the broadest
provenance tooling.  The structure groups records by statement type::

    {
      "prefix":   {"ex": "http://example.org/"},
      "entity":   {"ex:e1": {"prov:value": "..."}},
      "activity": {"ex:a1": {"prov:startTime": "..."}},
      "used":     {"_:u1": {"prov:activity": "ex:a1", "prov:entity": "ex:e1"}},
      "bundle":   {"ex:b1": { ...same shape recursively... }}
    }

Values are either plain strings or ``{"$": lexical, "type": datatype}``
objects.  Round-trip with :func:`parse_provjson` is lossless for the
corpus's model subset.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from ..rdf.namespace import NamespaceManager
from ..rdf.terms import IRI, Literal, XSD, format_datetime, parse_datetime
from .model import (
    Association,
    Attribution,
    Communication,
    Delegation,
    Derivation,
    Generation,
    Influence,
    Membership,
    ProvActivity,
    ProvAgent,
    ProvBundle,
    ProvDocument,
    Usage,
)

__all__ = ["serialize_provjson", "parse_provjson"]

_DERIVATION_KEYS = {
    None: "wasDerivedFrom",
    "primary_source": "hadPrimarySource",
    "quotation": "wasQuotedFrom",
    "revision": "wasRevisionOf",
}
_DERIVATION_SUBTYPES = {v: k for k, v in _DERIVATION_KEYS.items()}


def _qname(iri: IRI, nsm: NamespaceManager) -> str:
    curie = nsm.compact(iri)
    return curie if curie is not None else iri.value


def _expand(name: str, nsm: NamespaceManager) -> IRI:
    if "://" in name or name.startswith("urn:"):
        return IRI(name)
    if ":" in name:
        prefix = name.split(":", 1)[0]
        if prefix in nsm:
            return nsm.expand(name)
    return IRI(name)


def _value_json(value, nsm: NamespaceManager):
    if isinstance(value, IRI):
        return {"$": _qname(value, nsm), "type": "prov:QUALIFIED_NAME"}
    if value.language is not None:
        return {"$": value.lexical, "lang": value.language}
    if value.datatype.value == XSD.STRING:
        return value.lexical
    return {"$": value.lexical, "type": _qname(value.datatype, nsm)}


def _value_from_json(raw, nsm: NamespaceManager):
    if isinstance(raw, str):
        return Literal(raw)
    if isinstance(raw, bool):
        return Literal("true" if raw else "false", datatype=XSD.BOOLEAN)
    if isinstance(raw, int):
        return Literal(str(raw), datatype=XSD.INTEGER)
    if isinstance(raw, float):
        return Literal(repr(raw), datatype=XSD.DOUBLE)
    if isinstance(raw, dict):
        lexical = str(raw["$"])
        if "lang" in raw:
            return Literal(lexical, language=raw["lang"])
        type_name = raw.get("type")
        if type_name == "prov:QUALIFIED_NAME":
            return _expand(lexical, nsm)
        if type_name:
            return Literal(lexical, datatype=_expand(type_name, nsm))
        return Literal(lexical)
    raise ValueError(f"invalid PROV-JSON value: {raw!r}")


def _element_attrs(element, nsm: NamespaceManager) -> Dict[str, Any]:
    attrs: Dict[str, Any] = {}
    types = [
        {"$": _qname(t, nsm), "type": "prov:QUALIFIED_NAME"} for t in element.extra_types
    ]
    if types:
        attrs["prov:type"] = types if len(types) > 1 else types[0]
    if isinstance(element, ProvActivity):
        if element.start_time is not None:
            attrs["prov:startTime"] = format_datetime(element.start_time)
        if element.end_time is not None:
            attrs["prov:endTime"] = format_datetime(element.end_time)
    for predicate, values in element.attributes.items():
        rendered = [_value_json(v, nsm) for v in values]
        attrs[_qname(predicate, nsm)] = rendered if len(rendered) > 1 else rendered[0]
    return attrs


def _bundle_json(bundle: ProvBundle, nsm: NamespaceManager) -> Dict[str, Any]:
    out: Dict[str, Dict[str, Any]] = {}

    def section(name: str) -> Dict[str, Any]:
        return out.setdefault(name, {})

    for identifier, element in bundle.elements.items():
        if isinstance(element, ProvActivity):
            kind = "activity"
        elif isinstance(element, ProvAgent):
            kind = "agent"
        else:
            kind = "entity"
        section(kind)[_qname(identifier, nsm)] = _element_attrs(element, nsm)

    counters: Dict[str, int] = {}

    def rel_id(kind: str) -> str:
        counters[kind] = counters.get(kind, 0) + 1
        return f"_:{kind}{counters[kind]}"

    for relation in bundle.relations:
        if isinstance(relation, Usage):
            body = {"prov:activity": _qname(relation.activity, nsm),
                    "prov:entity": _qname(relation.entity, nsm)}
            if relation.time is not None:
                body["prov:time"] = format_datetime(relation.time)
            section("used")[rel_id("u")] = body
        elif isinstance(relation, Generation):
            body = {"prov:entity": _qname(relation.entity, nsm),
                    "prov:activity": _qname(relation.activity, nsm)}
            if relation.time is not None:
                body["prov:time"] = format_datetime(relation.time)
            section("wasGeneratedBy")[rel_id("g")] = body
        elif isinstance(relation, Communication):
            section("wasInformedBy")[rel_id("c")] = {
                "prov:informed": _qname(relation.informed, nsm),
                "prov:informant": _qname(relation.informant, nsm),
            }
        elif isinstance(relation, Association):
            body = {"prov:activity": _qname(relation.activity, nsm),
                    "prov:agent": _qname(relation.agent, nsm)}
            if relation.plan is not None:
                body["prov:plan"] = _qname(relation.plan, nsm)
            section("wasAssociatedWith")[rel_id("a")] = body
        elif isinstance(relation, Attribution):
            section("wasAttributedTo")[rel_id("t")] = {
                "prov:entity": _qname(relation.entity, nsm),
                "prov:agent": _qname(relation.agent, nsm),
            }
        elif isinstance(relation, Delegation):
            section("actedOnBehalfOf")[rel_id("d")] = {
                "prov:delegate": _qname(relation.delegate, nsm),
                "prov:responsible": _qname(relation.responsible, nsm),
            }
        elif isinstance(relation, Derivation):
            section(_DERIVATION_KEYS[relation.subtype])[rel_id("der")] = {
                "prov:generatedEntity": _qname(relation.generated, nsm),
                "prov:usedEntity": _qname(relation.used_entity, nsm),
            }
        elif isinstance(relation, Influence):
            section("wasInfluencedBy")[rel_id("i")] = {
                "prov:influencee": _qname(relation.influencee, nsm),
                "prov:influencer": _qname(relation.influencer, nsm),
            }
        elif isinstance(relation, Membership):
            section("hadMember")[rel_id("m")] = {
                "prov:collection": _qname(relation.collection, nsm),
                "prov:entity": _qname(relation.entity, nsm),
            }
        else:
            raise TypeError(f"cannot serialize relation {type(relation).__name__}")
    return out


def serialize_provjson(document: ProvDocument, indent: Optional[int] = 2) -> str:
    """Render *document* as PROV-JSON text."""
    nsm = document.namespaces
    out = {"prefix": {prefix: base for prefix, base in nsm.namespaces()}}
    out.update(_bundle_json(document, nsm))
    if document.bundles:
        out["bundle"] = {
            _qname(bundle_id, nsm): _bundle_json(bundle, nsm)
            for bundle_id, bundle in document.bundles.items()
        }
    return json.dumps(out, indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def parse_provjson(text: str) -> ProvDocument:
    """Parse PROV-JSON text into a document."""
    payload = json.loads(text)
    document = ProvDocument()
    for prefix, base in payload.get("prefix", {}).items():
        document.namespaces.bind(prefix, base)
    _parse_bundle_body(payload, document, document)
    for bundle_name, body in payload.get("bundle", {}).items():
        bundle = document.bundle(_expand(bundle_name, document.namespaces))
        _parse_bundle_body(body, document, bundle)
    return document


def _parse_bundle_body(payload: Dict[str, Any], document: ProvDocument, target: ProvBundle):
    nsm = document.namespaces

    def iri(name: str) -> IRI:
        return _expand(name, nsm)

    for name, attrs in payload.get("entity", {}).items():
        _load_element(target.entity(iri(name)), attrs, nsm)
    for name, attrs in payload.get("agent", {}).items():
        _load_element(target.agent(iri(name)), attrs, nsm)
    for name, attrs in payload.get("activity", {}).items():
        start = attrs.get("prov:startTime")
        end = attrs.get("prov:endTime")
        activity = target.activity(
            iri(name),
            start_time=parse_datetime(start) if isinstance(start, str) else None,
            end_time=parse_datetime(end) if isinstance(end, str) else None,
        )
        _load_element(activity, attrs, nsm, skip=("prov:startTime", "prov:endTime"))

    def time_of(body):
        raw = body.get("prov:time")
        return parse_datetime(raw) if isinstance(raw, str) else None

    for body in payload.get("used", {}).values():
        target.used(iri(body["prov:activity"]), iri(body["prov:entity"]), time=time_of(body))
    for body in payload.get("wasGeneratedBy", {}).values():
        target.was_generated_by(iri(body["prov:entity"]), iri(body["prov:activity"]),
                                time=time_of(body))
    for body in payload.get("wasInformedBy", {}).values():
        target.was_informed_by(iri(body["prov:informed"]), iri(body["prov:informant"]))
    for body in payload.get("wasAssociatedWith", {}).values():
        plan = body.get("prov:plan")
        target.was_associated_with(
            iri(body["prov:activity"]), iri(body["prov:agent"]),
            plan=iri(plan) if plan else None,
        )
    for body in payload.get("wasAttributedTo", {}).values():
        target.was_attributed_to(iri(body["prov:entity"]), iri(body["prov:agent"]))
    for body in payload.get("actedOnBehalfOf", {}).values():
        target.acted_on_behalf_of(iri(body["prov:delegate"]), iri(body["prov:responsible"]))
    for key, subtype in _DERIVATION_SUBTYPES.items():
        for body in payload.get(key, {}).values():
            target.was_derived_from(iri(body["prov:generatedEntity"]),
                                    iri(body["prov:usedEntity"]), subtype=subtype)
    for body in payload.get("wasInfluencedBy", {}).values():
        target.was_influenced_by(iri(body["prov:influencee"]), iri(body["prov:influencer"]))
    for body in payload.get("hadMember", {}).values():
        target.had_member(iri(body["prov:collection"]), iri(body["prov:entity"]))


def _load_element(element, attrs: Dict[str, Any], nsm: NamespaceManager,
                  skip: Tuple[str, ...] = ()):
    for key, raw in attrs.items():
        if key in skip:
            continue
        values = raw if isinstance(raw, list) else [raw]
        if key == "prov:type":
            for value in values:
                term = _value_from_json(value, nsm)
                if isinstance(term, IRI):
                    element.add_type(term)
                else:
                    element.add_attribute("prov:type", term)
            continue
        predicate = _expand(key, nsm)
        for value in values:
            element.add_attribute(predicate, _value_from_json(value, nsm))
