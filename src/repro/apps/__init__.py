"""The paper's Section 3 applications, built on the corpus.

* :mod:`.dependencies` — (i) dependencies between data products and processes
* :mod:`.debugging` — (ii) debugging workflow executions
* :mod:`.decay` — (iii) detection of workflow decay + repair from past runs
"""

from .debugging import DebugReport, RunDebugger
from .decay import DecayDetector, DecayReport, OutputSnapshot, RepairRecord, RepairSuggestion
from .dependencies import DependencyAnalyzer, Derivation

__all__ = [
    "DependencyAnalyzer",
    "Derivation",
    "RunDebugger",
    "DebugReport",
    "DecayDetector",
    "DecayReport",
    "OutputSnapshot",
    "RepairSuggestion",
    "RepairRecord",
]
