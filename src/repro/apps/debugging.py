"""Application (ii): debugging workflow executions.

Section 3 of the paper: "the PROV-corpus can be used to identify the
processes that are responsible for workflow failure and detect the steps
in the workflow that were affected."

:class:`RunDebugger` answers both halves from a trace's RDF alone:

* the *responsible* process is the one marked failed by the system's own
  status idiom (``tavernaprov:processStatus "failed"`` or
  ``opmw:hasStatus "FAILURE"``);
* the *affected* steps are the template steps with no corresponding
  process run in the trace — failed runs export truncated provenance, so
  the gap between the plan (wfdesc/OPMW template, which the exporters
  embed) and the trace is exactly the set of steps the failure prevented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..rdf.graph import Graph
from ..rdf.namespace import DCTERMS, OPMW, PROV, WFDESC, WFPROV, RDF
from ..rdf.terms import IRI, Literal
from ..taverna.provexport import TAVERNAPROV

__all__ = ["DebugReport", "RunDebugger"]


@dataclass
class DebugReport:
    """The outcome of debugging one run's trace."""

    run_iri: IRI
    system: str  # taverna | wings
    failed: bool
    responsible_processes: List[IRI] = field(default_factory=list)
    failure_causes: List[str] = field(default_factory=list)
    executed_steps: List[str] = field(default_factory=list)
    affected_steps: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if not self.failed:
            return f"{self.run_iri.value}: completed normally"
        responsible = ", ".join(p.value for p in self.responsible_processes) or "unknown"
        affected = ", ".join(self.affected_steps) or "none"
        causes = ", ".join(self.failure_causes) or "unknown"
        return (
            f"{self.run_iri.value}: FAILED ({causes}); responsible: {responsible}; "
            f"affected steps never executed: {affected}"
        )


class RunDebugger:
    """Failure analysis over one trace graph."""

    def __init__(self, graph: Graph):
        self.graph = graph

    def debug(self, run_iri: IRI) -> DebugReport:
        """Debug the run identified by *run_iri* (Taverna run or Wings account)."""
        if self.graph.count(run_iri, RDF.type, WFPROV.WorkflowRun):
            return self._debug_taverna(run_iri)
        if self.graph.count(run_iri, RDF.type, OPMW.WorkflowExecutionAccount):
            return self._debug_wings(run_iri)
        raise KeyError(f"{run_iri.value} is not a workflow run in this trace")

    # -- Taverna ---------------------------------------------------------------

    def _debug_taverna(self, run_iri: IRI) -> DebugReport:
        status = self.graph.value(subject=run_iri, predicate=TAVERNAPROV.runStatus)
        failed = isinstance(status, Literal) and status.lexical == "failed"
        report = DebugReport(run_iri, "taverna", failed)

        executed_process_descriptions: Set[IRI] = set()
        for process in self.graph.subjects(WFPROV.wasPartOfWorkflowRun, run_iri):
            if not self.graph.count(process, RDF.type, WFPROV.ProcessRun):
                continue
            description = self.graph.value(subject=process, predicate=WFPROV.describedByProcess)
            if isinstance(description, IRI):
                executed_process_descriptions.add(description)
                report.executed_steps.append(description.local_name or description.value)
            process_status = self.graph.value(
                subject=process, predicate=TAVERNAPROV.processStatus
            )
            if isinstance(process_status, Literal) and process_status.lexical == "failed":
                report.responsible_processes.append(process)
                message = self.graph.value(subject=process, predicate=TAVERNAPROV.errorMessage)
                if isinstance(message, Literal):
                    report.failure_causes.append(message.lexical)

        # Affected steps = planned wfdesc processes with no process run.
        workflow = self.graph.value(subject=run_iri, predicate=WFPROV.describedByWorkflow)
        if isinstance(workflow, IRI):
            for planned in self.graph.objects(workflow, WFDESC.hasSubProcess):
                if isinstance(planned, IRI) and planned not in executed_process_descriptions:
                    report.affected_steps.append(self._step_title(planned))
        report.executed_steps = sorted(self._tail(name) for name in report.executed_steps)
        report.affected_steps = sorted(report.affected_steps)
        return report

    # -- Wings ------------------------------------------------------------------

    def _debug_wings(self, account_iri: IRI) -> DebugReport:
        status = self.graph.value(subject=account_iri, predicate=OPMW.hasStatus)
        failed = isinstance(status, Literal) and status.lexical == "FAILURE"
        report = DebugReport(account_iri, "wings", failed)

        executed_template_steps: Set[IRI] = set()
        for process in self.graph.subjects_of_type(OPMW.WorkflowExecutionProcess):
            if not self.graph.count(process, OPMW.isStepOfTemplate, account_iri):
                continue
            template_step = self.graph.value(
                subject=process, predicate=OPMW.correspondsToTemplateProcess
            )
            if isinstance(template_step, IRI):
                executed_template_steps.add(template_step)
                report.executed_steps.append(self._step_title(template_step))
            process_status = self.graph.value(subject=process, predicate=OPMW.hasStatus)
            if isinstance(process_status, Literal) and process_status.lexical == "FAILURE":
                report.responsible_processes.append(process)
                message = self.graph.value(subject=process, predicate=DCTERMS.description)
                if isinstance(message, Literal):
                    report.failure_causes.append(message.lexical)

        template = self.graph.value(subject=account_iri, predicate=OPMW.correspondsToTemplate)
        if isinstance(template, IRI):
            for planned in self.graph.subjects(OPMW.isStepOfTemplate, template):
                is_step = self.graph.count(planned, RDF.type, OPMW.WorkflowTemplateProcess)
                if is_step and planned not in executed_template_steps:
                    report.affected_steps.append(self._step_title(planned))
        report.executed_steps = sorted(report.executed_steps)
        report.affected_steps = sorted(report.affected_steps)
        return report

    # -- downstream impact -------------------------------------------------------

    def failure_impact(self, run_iri: IRI) -> List[IRI]:
        """Data products tainted by the run's failure, sorted.

        The responsible processes' outputs plus everything transitively
        derived from them — the entity-level complement of
        ``affected_steps``.  Dependency traversal goes through
        :class:`~repro.apps.dependencies.DependencyAnalyzer`, so on a
        store-backed union graph it rides the persisted derivation DAG.
        """
        from .dependencies import DependencyAnalyzer

        report = self.debug(run_iri)
        analyzer = DependencyAnalyzer(self.graph)
        tainted: Set[IRI] = set()
        for process in report.responsible_processes:
            for t in self.graph.triples(None, PROV.wasGeneratedBy, process):
                if not isinstance(t.subject, IRI):
                    continue
                tainted.add(t.subject)
                tainted.update(
                    d for d in analyzer.dependents_of(t.subject)
                    if isinstance(d, IRI)
                )
        return sorted(tainted, key=lambda term: term.value)

    # -- helpers -----------------------------------------------------------------

    def _step_title(self, step_iri: IRI) -> str:
        title = self.graph.value(subject=step_iri, predicate=DCTERMS.title)
        if isinstance(title, Literal):
            return title.lexical
        return self._tail(step_iri.value)

    @staticmethod
    def _tail(value: str) -> str:
        trimmed = value.rstrip("/")
        for sep in ("/", "#", "_process_"):
            if sep in trimmed:
                trimmed = trimmed.rsplit(sep, 1)[1]
        return trimmed
