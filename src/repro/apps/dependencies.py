"""Application (i): dependencies between data products and processes.

Section 3 of the paper: "provenance traces can be used to identify the
process that generated a given data product, and how it was derived from
other data products in order to identify dependencies."

:class:`DependencyAnalyzer` works directly on a trace's RDF graph, so it
applies equally to Taverna and Wings traces (both assert ``prov:used`` and
``prov:wasGeneratedBy``; the analyzer derives entity→entity dependencies
through the shared activity, plus any explicitly asserted derivation
subproperties such as the Wings ``prov:hadPrimarySource``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..prov.constants import DERIVATION_SUBPROPERTIES
from ..rdf.graph import Graph
from ..rdf.namespace import PROV
from ..rdf.terms import IRI

__all__ = ["DependencyAnalyzer", "Derivation"]


@dataclass(frozen=True)
class Derivation:
    """One derived → source dependency, with the mediating activity."""

    product: IRI
    source: IRI
    activity: Optional[IRI]  # None when asserted directly (hadPrimarySource, ...)


class DependencyAnalyzer:
    """Entity/process dependency analysis over one trace graph."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self._generated_by: Dict[IRI, List[IRI]] = {}
        self._used_by: Dict[IRI, List[IRI]] = {}
        for t in graph.triples(None, PROV.wasGeneratedBy, None):
            self._generated_by.setdefault(t.subject, []).append(t.object)
        for t in graph.triples(None, PROV.used, None):
            self._used_by.setdefault(t.subject, []).append(t.object)

    # -- the paper's core question -------------------------------------------

    def generating_process(self, entity: IRI) -> Optional[IRI]:
        """The process that generated *entity* (None for workflow inputs)."""
        activities = self._generated_by.get(entity, [])
        return activities[0] if activities else None

    def inputs_of(self, activity: IRI) -> List[IRI]:
        """Entities the activity used, sorted for determinism."""
        return sorted(self._used_by.get(activity, []), key=lambda t: t.value)

    def direct_dependencies(self, entity: IRI) -> List[Derivation]:
        """The entities *entity* was directly derived from."""
        out: List[Derivation] = []
        for activity in self._generated_by.get(entity, []):
            for source in self.inputs_of(activity):
                if source != entity:
                    out.append(Derivation(entity, source, activity))
        for prop in [PROV.wasDerivedFrom] + list(DERIVATION_SUBPROPERTIES):
            for t in self.graph.triples(entity, prop, None):
                if isinstance(t.object, IRI):
                    out.append(Derivation(entity, t.object, None))
        return out

    def transitive_dependencies(self, entity: IRI) -> Set[IRI]:
        """Every data product *entity* transitively depends on."""
        seen: Set[IRI] = set()
        frontier = [entity]
        while frontier:
            current = frontier.pop()
            for dep in self.direct_dependencies(current):
                if dep.source not in seen:
                    seen.add(dep.source)
                    frontier.append(dep.source)
        return seen

    def dependents_of(self, entity: IRI) -> Set[IRI]:
        """Every data product that transitively depends on *entity*."""
        graph = self.dependency_graph()
        if entity.value not in graph:
            return set()
        return {IRI(n) for n in nx.ancestors(graph, entity.value)}

    # -- graph views -------------------------------------------------------------

    def dependency_graph(self) -> "nx.DiGraph":
        """Entity DAG: edge product → source, annotated with the activity."""
        graph = nx.DiGraph()
        for entity in self._generated_by:
            for dep in self.direct_dependencies(entity):
                graph.add_edge(
                    dep.product.value,
                    dep.source.value,
                    via=dep.activity.value if dep.activity is not None else None,
                )
        return graph

    def all_dependency_pairs(self) -> List[Tuple[IRI, IRI]]:
        """Every (product, source) pair in the trace, sorted."""
        pairs = set()
        for entity in list(self._generated_by):
            for dep in self.direct_dependencies(entity):
                pairs.add((dep.product, dep.source))
        return sorted(pairs, key=lambda p: (p[0].value, p[1].value))

    def derivation_path(self, product: IRI, source: IRI) -> Optional[List[IRI]]:
        """A derivation chain product → ... → source, or None."""
        graph = self.dependency_graph()
        if product.value not in graph or source.value not in graph:
            return None
        try:
            path = nx.shortest_path(graph, product.value, source.value)
        except nx.NetworkXNoPath:
            return None
        return [IRI(node) for node in path]
