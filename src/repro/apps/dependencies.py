"""Application (i): dependencies between data products and processes.

Section 3 of the paper: "provenance traces can be used to identify the
process that generated a given data product, and how it was derived from
other data products in order to identify dependencies."

:class:`DependencyAnalyzer` works directly on a trace's RDF graph, so it
applies equally to Taverna and Wings traces (both assert ``prov:used`` and
``prov:wasGeneratedBy``; the analyzer derives entity→entity dependencies
through the shared activity, plus any explicitly asserted derivation
subproperties such as the Wings ``prov:hadPrimarySource``).

Over a store-backed union graph the analyzer detects the persisted path
index (the duck-typed ``path_index()`` capability) and answers the
transitive questions — dependencies, dependents, lineage paths — by BFS
over the pre-composed derivation DAG in u32 id space, skipping both the
per-trace adjacency scan and per-step ``prov:used`` lookups.  The
derivation relation in the index is built by the same composition rule
as :meth:`DependencyAnalyzer.direct_dependencies`, so both routes agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..prov.constants import DERIVATION_SUBPROPERTIES
from ..rdf.graph import Graph
from ..rdf.namespace import PROV
from ..rdf.terms import IRI

__all__ = ["DependencyAnalyzer", "Derivation"]


@dataclass(frozen=True)
class Derivation:
    """One derived → source dependency, with the mediating activity."""

    product: IRI
    source: IRI
    activity: Optional[IRI]  # None when asserted directly (hadPrimarySource, ...)


class DependencyAnalyzer:
    """Entity/process dependency analysis over one trace graph."""

    def __init__(self, graph: Graph):
        self.graph = graph
        probe = getattr(graph, "path_index", None)
        #: Persisted derivation DAG, when the graph is a store-backed
        #: union view with a live index; None otherwise.
        self._index = probe() if callable(probe) else None
        # Adjacency maps are built lazily: the index fast paths never
        # need them, so an analyzer used only for transitive questions
        # over a store skips the two full predicate scans entirely.
        self._generated_by: Optional[Dict[IRI, List[IRI]]] = None
        self._used_by: Optional[Dict[IRI, List[IRI]]] = None

    @property
    def uses_index(self) -> bool:
        """True when transitive questions ride the persisted path index."""
        return self._index is not None

    def _ensure_maps(self) -> None:
        if self._generated_by is not None:
            return
        generated_by: Dict[IRI, List[IRI]] = {}
        used_by: Dict[IRI, List[IRI]] = {}
        for t in self.graph.triples(None, PROV.wasGeneratedBy, None):
            generated_by.setdefault(t.subject, []).append(t.object)
        for t in self.graph.triples(None, PROV.used, None):
            used_by.setdefault(t.subject, []).append(t.object)
        self._generated_by = generated_by
        self._used_by = used_by

    # -- the paper's core question -------------------------------------------

    def generating_process(self, entity: IRI) -> Optional[IRI]:
        """The process that generated *entity* (None for workflow inputs)."""
        self._ensure_maps()
        activities = self._generated_by.get(entity, [])
        return activities[0] if activities else None

    def generated_entities(self) -> List[IRI]:
        """Every entity with a ``prov:wasGeneratedBy`` assertion, sorted."""
        self._ensure_maps()
        return sorted(self._generated_by, key=lambda t: t.value)

    def inputs_of(self, activity: IRI) -> List[IRI]:
        """Entities the activity used, sorted for determinism."""
        self._ensure_maps()
        return sorted(self._used_by.get(activity, []), key=lambda t: t.value)

    def direct_dependencies(self, entity: IRI) -> List[Derivation]:
        """The entities *entity* was directly derived from."""
        self._ensure_maps()
        out: List[Derivation] = []
        for activity in self._generated_by.get(entity, []):
            for source in self.inputs_of(activity):
                if source != entity:
                    out.append(Derivation(entity, source, activity))
        for prop in [PROV.wasDerivedFrom] + list(DERIVATION_SUBPROPERTIES):
            for t in self.graph.triples(entity, prop, None):
                if isinstance(t.object, IRI):
                    out.append(Derivation(entity, t.object, None))
        return out

    def transitive_dependencies(self, entity: IRI) -> Set[IRI]:
        """Every data product *entity* transitively depends on."""
        if self._index is not None:
            return self._transitive_ids(entity, inverse=False)
        seen: Set[IRI] = set()
        frontier = [entity]
        while frontier:
            current = frontier.pop()
            for dep in self.direct_dependencies(current):
                if dep.source not in seen:
                    seen.add(dep.source)
                    frontier.append(dep.source)
        return seen

    def dependents_of(self, entity: IRI) -> Set[IRI]:
        """Every data product that transitively depends on *entity*."""
        if self._index is not None:
            return self._transitive_ids(entity, inverse=True)
        graph = self.dependency_graph()
        if entity.value not in graph:
            return set()
        return {IRI(n) for n in nx.ancestors(graph, entity.value)}

    def _transitive_ids(self, entity: IRI, inverse: bool) -> Set[IRI]:
        """Reachable set over the index's derivation DAG (forward =
        sources the entity depends on, inverse = dependent products)."""
        index = self._index
        entity_id = self.graph.term_to_id(entity)
        if entity_id is None:
            return set()
        step = index.neighbors_inv if inverse else index.neighbors
        seen: Set[int] = set()
        frontier = [entity_id]
        while frontier:
            current = frontier.pop()
            for neighbor in step(index.DERIVATION, current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        decode = self.graph.id_to_term
        return {decode(node) for node in seen}

    # -- graph views -------------------------------------------------------------

    def _products(self) -> List[IRI]:
        """Entities with at least one outgoing derivation: generated
        entities plus subjects of asserted derivation (sub)properties —
        products of the latter kind carry no ``prov:wasGeneratedBy``."""
        self._ensure_maps()
        products: Dict[IRI, None] = dict.fromkeys(self._generated_by)
        for prop in [PROV.wasDerivedFrom] + list(DERIVATION_SUBPROPERTIES):
            for t in self.graph.triples(None, prop, None):
                if isinstance(t.object, IRI):
                    products.setdefault(t.subject, None)
        return list(products)

    def dependency_graph(self) -> "nx.DiGraph":
        """Entity DAG: edge product → source, annotated with the activity."""
        graph = nx.DiGraph()
        for entity in self._products():
            for dep in self.direct_dependencies(entity):
                graph.add_edge(
                    dep.product.value,
                    dep.source.value,
                    via=dep.activity.value if dep.activity is not None else None,
                )
        return graph

    def all_dependency_pairs(self) -> List[Tuple[IRI, IRI]]:
        """Every (product, source) pair in the trace, sorted."""
        pairs = set()
        for entity in self._products():
            for dep in self.direct_dependencies(entity):
                pairs.add((dep.product, dep.source))
        return sorted(pairs, key=lambda p: (p[0].value, p[1].value))

    def derivation_path(self, product: IRI, source: IRI) -> Optional[List[IRI]]:
        """A derivation chain product → ... → source, or None."""
        if self._index is not None:
            return self._derivation_path_ids(product, source)
        graph = self.dependency_graph()
        if product.value not in graph or source.value not in graph:
            return None
        try:
            path = nx.shortest_path(graph, product.value, source.value)
        except nx.NetworkXNoPath:
            return None
        return [IRI(node) for node in path]

    def _derivation_path_ids(self, product: IRI, source: IRI) -> Optional[List[IRI]]:
        """Shortest chain over the index DAG, BFS with parent pointers.

        Mirrors the decoded route's membership contract: both endpoints
        must participate in the derivation DAG at all (as product *or*
        source of some edge), even for the trivial product == source
        chain.
        """
        index = self._index
        product_id = self.graph.term_to_id(product)
        source_id = self.graph.term_to_id(source)
        if product_id is None or source_id is None:
            return None
        rel = index.DERIVATION
        if not index.in_dag(rel, product_id) or not index.in_dag(rel, source_id):
            return None
        if product_id == source_id:
            return [product]
        parents: Dict[int, int] = {}
        frontier = [product_id]
        found = False
        while frontier and not found:
            next_frontier: List[int] = []
            for node in frontier:
                for neighbor in index.neighbors(rel, node):
                    if neighbor in parents or neighbor == product_id:
                        continue
                    parents[neighbor] = node
                    if neighbor == source_id:
                        found = True
                        break
                    next_frontier.append(neighbor)
                if found:
                    break
            frontier = next_frontier
        if not found:
            return None
        chain = [source_id]
        while chain[-1] != product_id:
            chain.append(parents[chain[-1]])
        decode = self.graph.id_to_term
        return [decode(node) for node in reversed(chain)]
