"""SPARQL result tables: SELECT solutions with export helpers.

Results are materialized (the corpus datasets are memory-resident), which
keeps the API simple: a :class:`ResultTable` is a sequence of
:class:`ResultRow` objects supporting name and index access, conversion to
plain Python values, CSV, and the SPARQL 1.1 JSON results format.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterator, List, Optional

from ..rdf.terms import BlankNode, IRI, Literal

__all__ = ["ResultRow", "ResultTable"]


class ResultRow:
    """One solution: variable name → RDF term (missing = unbound)."""

    __slots__ = ("_vars", "_binding")

    def __init__(self, variables: List[str], binding: Dict[str, Any]):
        self._vars = variables
        self._binding = binding

    def __getitem__(self, key):
        if isinstance(key, int):
            key = self._vars[key]
        return self._binding.get(key)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return self._binding.get(name)

    def get(self, key: str, default=None):
        value = self._binding.get(key)
        return value if value is not None else default

    def asdict(self) -> Dict[str, Any]:
        return dict(self._binding)

    def python(self) -> Dict[str, Any]:
        """Binding with literals converted to native Python values."""
        out: Dict[str, Any] = {}
        for name, term in self._binding.items():
            if isinstance(term, Literal):
                out[name] = term.to_python()
            elif isinstance(term, IRI):
                out[name] = term.value
            elif isinstance(term, BlankNode):
                out[name] = str(term)
            else:
                out[name] = term
        return out

    def __iter__(self):
        return iter(self._binding.get(v) for v in self._vars)

    def __len__(self) -> int:
        return len(self._vars)

    def __eq__(self, other) -> bool:
        if isinstance(other, ResultRow):
            return self._binding == other._binding
        return NotImplemented

    def __hash__(self):
        return hash(frozenset(self._binding.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"?{v}={self._binding.get(v)}" for v in self._vars)
        return f"ResultRow({inner})"


class ResultTable:
    """An ordered collection of solutions to a SELECT query."""

    def __init__(self, variables: List[str], rows: List[Dict[str, Any]]):
        self.variables = variables
        self._rows = [ResultRow(variables, row) for row in rows]

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __getitem__(self, index: int) -> ResultRow:
        return self._rows[index]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dicts of native Python values."""
        return [row.python() for row in self._rows]

    def column(self, name: str) -> List[Any]:
        """All values of one variable (native Python), unbound as None."""
        out = []
        for row in self._rows:
            term = row.get(name)
            if isinstance(term, Literal):
                out.append(term.to_python())
            elif isinstance(term, IRI):
                out.append(term.value)
            elif term is None:
                out.append(None)
            else:
                out.append(str(term))
        return out

    def to_csv(self) -> str:
        """SPARQL 1.1 CSV results (header row of variable names)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.variables)
        for row in self._rows:
            writer.writerow(["" if v is None else _plain(v) for v in row])
        return buffer.getvalue()

    def to_json(self) -> str:
        """SPARQL 1.1 Query Results JSON format."""
        bindings = []
        for row in self._rows:
            entry: Dict[str, Any] = {}
            for name in self.variables:
                term = row.get(name)
                if term is None:
                    continue
                entry[name] = _json_term(term)
            bindings.append(entry)
        document = {
            "head": {"vars": self.variables},
            "results": {"bindings": bindings},
        }
        return json.dumps(document, indent=2, sort_keys=True)

    def pretty(self, max_width: int = 60) -> str:
        """Fixed-width text table for console output."""
        headers = [f"?{v}" for v in self.variables]
        body = [["" if v is None else _plain(v) for v in row] for row in self._rows]
        clipped = [[cell[:max_width] for cell in row] for row in body]
        widths = [len(h) for h in headers]
        for row in clipped:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
        for row in clipped:
            lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<ResultTable {len(self._rows)} rows x {len(self.variables)} vars>"


def _plain(term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    return str(term)


def _json_term(term) -> Dict[str, str]:
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.id}
    entry = {"type": "literal", "value": term.lexical}
    if term.language:
        entry["xml:lang"] = term.language
    elif term.datatype.value != "http://www.w3.org/2001/XMLSchema#string":
        entry["datatype"] = term.datatype.value
    return entry
