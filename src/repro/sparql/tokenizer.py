"""SPARQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  Keywords
are case-insensitive per the SPARQL 1.1 grammar; variable tokens keep
their ``?``/``$`` sigil stripped.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional

__all__ = ["Token", "Tokenizer", "SparqlSyntaxError", "KEYWORDS"]


class SparqlSyntaxError(ValueError):
    """Raised on malformed SPARQL query text."""

    def __init__(self, message: str, lineno: int = 0):
        prefix = f"line {lineno}: " if lineno else ""
        super().__init__(prefix + message)
        self.lineno = lineno


#: Reserved words recognised as keywords (upper-cased canonical form).
KEYWORDS = frozenset(
    """
    SELECT ASK CONSTRUCT DESCRIBE WHERE FROM NAMED PREFIX BASE DISTINCT
    REDUCED OPTIONAL FILTER UNION GRAPH ORDER BY ASC DESC LIMIT OFFSET
    GROUP HAVING AS VALUES BIND MINUS EXISTS NOT IN COUNT SUM MIN MAX AVG
    SAMPLE GROUP_CONCAT SEPARATOR TRUE FALSE A UNDEF
    """.split()
)

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>\#[^\n]*)
    | (?P<iriref><[^<>"{}|^`\\\x00-\x20]*>)
    | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
    | (?P<string>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
    | (?P<langtag>@[A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*)
    | (?P<dtmark>\^\^)
    | (?P<bnode>_:[A-Za-z0-9_][A-Za-z0-9_.\-]*)
    | (?P<double>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
    | (?P<decimal>[+-]?\d*\.\d+)
    | (?P<integer>[+-]?\d+)
    | (?P<pname_or_kw>[A-Za-z_][A-Za-z0-9_\-]*(?::[A-Za-z0-9_\-.%]*)?|:[A-Za-z0-9_\-.%]*)
    | (?P<op>&&|\|\||!=|<=|>=|[=<>!*/+\-^|])
    | (?P<punct>[{}().;,])
    """,
    re.VERBOSE,
)


class Token:
    """A single lexical token with position info for error messages."""

    __slots__ = ("kind", "text", "lineno")

    def __init__(self, kind: str, text: str, lineno: int):
        self.kind = kind
        self.text = text
        self.lineno = lineno

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_punct(self, text: str) -> bool:
        return self.kind in ("punct", "op") and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.lineno})"


class Tokenizer:
    """Token stream with arbitrary lookahead over a SPARQL query string."""

    def __init__(self, text: str):
        self.tokens: List[Token] = list(self._scan(text))
        self.pos = 0

    @staticmethod
    def _scan(text: str) -> Iterator[Token]:
        lineno = 1
        pos = 0
        length = len(text)
        while pos < length:
            match = _TOKEN_RE.match(text, pos)
            if match is None or match.end() == pos:
                raise SparqlSyntaxError(f"unexpected character {text[pos]!r}", lineno)
            lineno += text.count("\n", pos, match.end())
            kind = match.lastgroup
            token_text = match.group()
            pos = match.end()
            if kind in ("ws", "comment"):
                continue
            if kind == "var":
                yield Token("var", token_text[1:], lineno)
            elif kind == "pname_or_kw":
                upper = token_text.upper()
                if ":" not in token_text and upper in KEYWORDS:
                    yield Token("keyword", upper, lineno)
                else:
                    yield Token("pname", token_text, lineno)
            else:
                yield Token(kind, token_text, lineno)

    # -- navigation ---------------------------------------------------------

    def peek(self, ahead: int = 0) -> Optional[Token]:
        index = self.pos + ahead
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            last = self.tokens[-1].lineno if self.tokens else 1
            raise SparqlSyntaxError("unexpected end of query", last)
        self.pos += 1
        return tok

    def expect_punct(self, text: str) -> Token:
        tok = self.next()
        if not tok.is_punct(text):
            raise SparqlSyntaxError(f"expected {text!r}, got {tok.text!r}", tok.lineno)
        return tok

    def expect_keyword(self, word: str) -> Token:
        tok = self.next()
        if not tok.is_keyword(word):
            raise SparqlSyntaxError(f"expected {word}, got {tok.text!r}", tok.lineno)
        return tok

    def accept_keyword(self, word: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.is_keyword(word):
            self.pos += 1
            return True
        return False

    def accept_punct(self, text: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.is_punct(text):
            self.pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)
