"""SPARQL expression evaluation: operators, built-ins, and type coercion.

Expressions are evaluated against a *binding* (dict: variable name → RDF
term).  SPARQL's error semantics are modeled with :class:`ExprError` —
errors propagate through most operators but are absorbed by ``BOUND``,
``COALESCE``, ``IF``, and the logical connectives per the spec.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Callable, Dict, List, Optional

from ..rdf.terms import (
    BlankNode,
    IRI,
    Literal,
    XSD,
    format_datetime,
    from_python,
)
from .algebra import (
    Aggregate,
    And,
    Arithmetic,
    Compare,
    ExistsExpr,
    Expression,
    FunctionCall,
    InExpr,
    Not,
    Or,
    TermExpr,
    VarExpr,
)

__all__ = ["ExprError", "evaluate_expression", "effective_boolean_value", "order_key"]

Binding = Dict[str, Any]


class ExprError(Exception):
    """A SPARQL expression evaluation error (type error, unbound var, ...)."""


def evaluate_expression(expr: Expression, binding: Binding, exists_evaluator=None):
    """Evaluate *expr* under *binding*; returns an RDF term.

    *exists_evaluator* is a callable ``(pattern, binding) -> bool`` supplied
    by the query evaluator so (NOT) EXISTS can re-enter pattern matching.
    Raises :class:`ExprError` on evaluation errors.
    """
    if isinstance(expr, TermExpr):
        return expr.term
    if isinstance(expr, VarExpr):
        value = binding.get(expr.var.name)
        if value is None:
            raise ExprError(f"unbound variable ?{expr.var.name}")
        return value
    if isinstance(expr, And):
        return _eval_and(expr, binding, exists_evaluator)
    if isinstance(expr, Or):
        return _eval_or(expr, binding, exists_evaluator)
    if isinstance(expr, Not):
        value = effective_boolean_value(
            evaluate_expression(expr.operand, binding, exists_evaluator)
        )
        return _boolean(not value)
    if isinstance(expr, Compare):
        return _eval_compare(expr, binding, exists_evaluator)
    if isinstance(expr, Arithmetic):
        return _eval_arithmetic(expr, binding, exists_evaluator)
    if isinstance(expr, FunctionCall):
        return _eval_function(expr, binding, exists_evaluator)
    if isinstance(expr, InExpr):
        return _eval_in(expr, binding, exists_evaluator)
    if isinstance(expr, ExistsExpr):
        if exists_evaluator is None:
            raise ExprError("EXISTS is not available in this context")
        found = exists_evaluator(expr.pattern, binding)
        return _boolean(found != expr.negated)
    if isinstance(expr, Aggregate):
        raise ExprError("aggregate used outside of a GROUP BY context")
    raise ExprError(f"cannot evaluate expression of type {type(expr).__name__}")


def _boolean(value: bool) -> Literal:
    return Literal("true" if value else "false", datatype=XSD.BOOLEAN)


def effective_boolean_value(term) -> bool:
    """SPARQL 17.2.2 Effective Boolean Value."""
    if isinstance(term, Literal):
        dt = term.datatype.value
        if dt == XSD.BOOLEAN:
            return term.lexical in ("true", "1")
        if dt == XSD.STRING or term.language is not None:
            return len(term.lexical) > 0
        if term.is_numeric:
            try:
                return float(term.lexical) != 0.0
            except ValueError:
                return False
        raise ExprError(f"no boolean value for literal {term.n3()}")
    raise ExprError("EBV of a non-literal is an error")


def _eval_and(expr: And, binding: Binding, exists_evaluator) -> Literal:
    # SPARQL: error && false = false; error && true = error.
    left_err: Optional[ExprError] = None
    try:
        left = effective_boolean_value(evaluate_expression(expr.left, binding, exists_evaluator))
    except ExprError as exc:
        left, left_err = None, exc
    try:
        right = effective_boolean_value(evaluate_expression(expr.right, binding, exists_evaluator))
    except ExprError:
        if left is False:
            return _boolean(False)
        raise
    if left_err is not None:
        if right is False:
            return _boolean(False)
        raise left_err
    return _boolean(left and right)


def _eval_or(expr: Or, binding: Binding, exists_evaluator) -> Literal:
    left_err: Optional[ExprError] = None
    try:
        left = effective_boolean_value(evaluate_expression(expr.left, binding, exists_evaluator))
    except ExprError as exc:
        left, left_err = None, exc
    try:
        right = effective_boolean_value(evaluate_expression(expr.right, binding, exists_evaluator))
    except ExprError:
        if left is True:
            return _boolean(True)
        raise
    if left_err is not None:
        if right is True:
            return _boolean(True)
        raise left_err
    return _boolean(left or right)


# -- comparison ---------------------------------------------------------------

def _comparable_value(term):
    """Map a term to a Python value usable with <, =, etc."""
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, _dt.datetime):
            # Normalize naive/aware mix: treat naive as UTC for ordering.
            if value.tzinfo is None:
                value = value.replace(tzinfo=_dt.timezone.utc)
            return ("datetime", value)
        if isinstance(value, bool):
            return ("boolean", value)
        if isinstance(value, (int, float)):
            return ("number", float(value))
        return ("string", term.lexical)
    if isinstance(term, IRI):
        return ("iri", term.value)
    if isinstance(term, BlankNode):
        return ("bnode", term.id)
    raise ExprError(f"cannot compare {term!r}")


def compare_terms(op: str, left, right) -> bool:
    """Apply a SPARQL comparison operator to two terms."""
    if op == "=":
        if left == right:
            return True
        lk, lv = _comparable_value(left)
        rk, rv = _comparable_value(right)
        if lk == rk and lk in ("number", "datetime", "boolean"):
            return lv == rv
        return False
    if op == "!=":
        return not compare_terms("=", left, right)
    lk, lv = _comparable_value(left)
    rk, rv = _comparable_value(right)
    if lk != rk:
        raise ExprError(f"type mismatch in comparison: {lk} {op} {rk}")
    if lk in ("iri", "bnode"):
        raise ExprError(f"order comparison not defined for {lk}")
    if op == "<":
        return lv < rv
    if op == "<=":
        return lv <= rv
    if op == ">":
        return lv > rv
    if op == ">=":
        return lv >= rv
    raise ExprError(f"unknown comparison operator {op!r}")


def _eval_compare(expr: Compare, binding: Binding, exists_evaluator) -> Literal:
    left = evaluate_expression(expr.left, binding, exists_evaluator)
    right = evaluate_expression(expr.right, binding, exists_evaluator)
    return _boolean(compare_terms(expr.op, left, right))


def _eval_in(expr: InExpr, binding: Binding, exists_evaluator) -> Literal:
    operand = evaluate_expression(expr.operand, binding, exists_evaluator)
    found = False
    for choice in expr.choices:
        try:
            value = evaluate_expression(choice, binding, exists_evaluator)
            if compare_terms("=", operand, value):
                found = True
                break
        except ExprError:
            continue
    return _boolean(found != expr.negated)


# -- arithmetic ---------------------------------------------------------------

def _numeric(term) -> float:
    if isinstance(term, Literal) and term.is_numeric:
        try:
            return float(term.lexical)
        except ValueError as exc:
            raise ExprError(str(exc)) from None
    raise ExprError(f"not a numeric literal: {term!r}")


def _eval_arithmetic(expr: Arithmetic, binding: Binding, exists_evaluator) -> Literal:
    left = _numeric(evaluate_expression(expr.left, binding, exists_evaluator))
    right = _numeric(evaluate_expression(expr.right, binding, exists_evaluator))
    if expr.op == "+":
        result = left + right
    elif expr.op == "-":
        result = left - right
    elif expr.op == "*":
        result = left * right
    elif expr.op == "/":
        if right == 0:
            raise ExprError("division by zero")
        result = left / right
    else:
        raise ExprError(f"unknown arithmetic operator {expr.op!r}")
    if expr.op != "/" and result == int(result):
        return Literal(str(int(result)), datatype=XSD.INTEGER)
    return Literal(repr(result), datatype=XSD.DOUBLE)


# -- built-in functions ---------------------------------------------------------

def _eval_function(expr: FunctionCall, binding: Binding, exists_evaluator) -> Any:
    name = expr.name

    if name == "BOUND":
        arg = expr.args[0]
        if not isinstance(arg, VarExpr):
            raise ExprError("BOUND requires a variable argument")
        return _boolean(binding.get(arg.var.name) is not None)
    if name == "COALESCE":
        for arg in expr.args:
            try:
                return evaluate_expression(arg, binding, exists_evaluator)
            except ExprError:
                continue
        raise ExprError("COALESCE: all arguments errored")
    if name == "IF":
        condition = effective_boolean_value(
            evaluate_expression(expr.args[0], binding, exists_evaluator)
        )
        chosen = expr.args[1] if condition else expr.args[2]
        return evaluate_expression(chosen, binding, exists_evaluator)

    args = [evaluate_expression(a, binding, exists_evaluator) for a in expr.args]

    if name == "STR":
        term = args[0]
        if isinstance(term, IRI):
            return Literal(term.value)
        if isinstance(term, Literal):
            return Literal(term.lexical)
        raise ExprError("STR of a blank node")
    if name == "LANG":
        term = args[0]
        if isinstance(term, Literal):
            return Literal(term.language or "")
        raise ExprError("LANG of a non-literal")
    if name == "LANGMATCHES":
        tag = _string(args[0]).lower()
        pattern = _string(args[1]).lower()
        if pattern == "*":
            return _boolean(bool(tag))
        return _boolean(tag == pattern or tag.startswith(pattern + "-"))
    if name == "DATATYPE":
        term = args[0]
        if isinstance(term, Literal):
            return term.datatype
        raise ExprError("DATATYPE of a non-literal")
    if name in ("IRI", "URI"):
        term = args[0]
        if isinstance(term, IRI):
            return term
        if isinstance(term, Literal):
            return IRI(term.lexical)
        raise ExprError("IRI() of a blank node")
    if name in ("ISIRI", "ISURI"):
        return _boolean(isinstance(args[0], IRI))
    if name == "ISBLANK":
        return _boolean(isinstance(args[0], BlankNode))
    if name == "ISLITERAL":
        return _boolean(isinstance(args[0], Literal))
    if name == "ISNUMERIC":
        return _boolean(isinstance(args[0], Literal) and args[0].is_numeric)
    if name == "SAMETERM":
        return _boolean(args[0] == args[1])
    if name == "REGEX":
        text = _string(args[0])
        pattern = _string(args[1])
        flags = _regex_flags(_string(args[2])) if len(args) > 2 else 0
        try:
            return _boolean(re.search(pattern, text, flags) is not None)
        except re.error as exc:
            raise ExprError(f"invalid regex: {exc}") from None
    if name == "REPLACE":
        text = _string(args[0])
        pattern = _string(args[1])
        replacement = _string(args[2])
        flags = _regex_flags(_string(args[3])) if len(args) > 3 else 0
        try:
            return Literal(re.sub(pattern, replacement, text, flags=flags))
        except re.error as exc:
            raise ExprError(f"invalid regex: {exc}") from None
    if name == "STRLEN":
        return from_python(len(_string(args[0])))
    if name == "SUBSTR":
        text = _string(args[0])
        start = int(_numeric(args[1]))  # 1-based per XPath
        if len(args) > 2:
            length = int(_numeric(args[2]))
            return Literal(text[start - 1 : start - 1 + length])
        return Literal(text[start - 1 :])
    if name == "UCASE":
        return Literal(_string(args[0]).upper())
    if name == "LCASE":
        return Literal(_string(args[0]).lower())
    if name == "STRSTARTS":
        return _boolean(_string(args[0]).startswith(_string(args[1])))
    if name == "STRENDS":
        return _boolean(_string(args[0]).endswith(_string(args[1])))
    if name == "CONTAINS":
        return _boolean(_string(args[1]) in _string(args[0]))
    if name == "STRBEFORE":
        text, sep = _string(args[0]), _string(args[1])
        head, found, _ = text.partition(sep)
        return Literal(head if found else "")
    if name == "STRAFTER":
        text, sep = _string(args[0]), _string(args[1])
        _, found, tail = text.partition(sep)
        return Literal(tail if found else "")
    if name == "CONCAT":
        return Literal("".join(_string(a) for a in args))
    if name == "ABS":
        return from_python(abs(_numeric(args[0])))
    if name == "ROUND":
        return from_python(float(round(_numeric(args[0]))))
    if name == "CEIL":
        import math

        return from_python(float(math.ceil(_numeric(args[0]))))
    if name == "FLOOR":
        import math

        return from_python(float(math.floor(_numeric(args[0]))))
    if name in ("YEAR", "MONTH", "DAY", "HOURS", "MINUTES", "SECONDS"):
        value = _datetime(args[0])
        field = {
            "YEAR": value.year,
            "MONTH": value.month,
            "DAY": value.day,
            "HOURS": value.hour,
            "MINUTES": value.minute,
            "SECONDS": value.second,
        }[name]
        return from_python(field)
    if name == "NOW":
        raise ExprError("NOW() is disabled: corpus queries must be deterministic")
    raise ExprError(f"unimplemented function {name}")


def _string(term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    raise ExprError("expected a string value")


def _datetime(term) -> _dt.datetime:
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, _dt.datetime):
            return value
    raise ExprError(f"not an xsd:dateTime: {term!r}")


def _regex_flags(letters: str) -> int:
    flags = 0
    for letter in letters:
        if letter == "i":
            flags |= re.IGNORECASE
        elif letter == "s":
            flags |= re.DOTALL
        elif letter == "m":
            flags |= re.MULTILINE
        elif letter == "x":
            flags |= re.VERBOSE
        else:
            raise ExprError(f"unsupported regex flag {letter!r}")
    return flags


# -- ordering -------------------------------------------------------------------

def order_key(term) -> tuple:
    """Total order over optional terms for ORDER BY.

    SPARQL ordering: unbound < blank nodes < IRIs < literals; literals
    order by natural value within comparable groups, lexically otherwise.
    """
    if term is None:
        return (0, "")
    if isinstance(term, BlankNode):
        return (1, term.id)
    if isinstance(term, IRI):
        return (2, term.value)
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, bool):
            return (3, "boolean", value)
        if isinstance(value, (int, float)):
            return (3, "number", float(value))
        if isinstance(value, _dt.datetime):
            if value.tzinfo is None:
                value = value.replace(tzinfo=_dt.timezone.utc)
            return (3, "datetime", value.timestamp())
        if isinstance(value, _dt.date):
            return (3, "date", value.toordinal())
        return (4, term.lexical)
    return (5, str(term))
