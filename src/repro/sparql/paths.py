"""SPARQL 1.1 property paths.

Provenance queries are path-shaped — "what did this output transitively
derive from" is ``?out (prov:used|prov:wasGeneratedBy)+ ?src`` — so the
engine supports the core path operators in the predicate position:

* ``iri`` — a single step
* ``^path`` — inverse
* ``path1 / path2`` — sequence
* ``path1 | path2`` — alternative
* ``path*`` — zero or more (reflexive-transitive closure)
* ``path+`` — one or more (transitive closure)
* ``( path )`` — grouping

Paths are evaluated by :func:`eval_path`, which yields ``(subject,
object)`` pairs given optionally-bound endpoints; closures are computed
with BFS over the graph, seeded from whichever endpoint is bound.  With
both endpoints unbound, BFS is seeded from the nodes that can actually
begin the path (the subjects/objects of its predicates) — zero-length
``*`` pairs still cover every node, as the spec requires, but no BFS
runs from nodes with no outgoing step.

Store-backed graphs can advertise a persisted reachability index via a
duck-typed ``path_index()`` capability (the same pattern as
``encoded_scope()`` — this module never imports ``repro.store`` or
``repro.pathindex``).  When the path's predicates all map to indexed
relations, the whole evaluation runs in u32 id space over mmap'd sorted
adjacency — same BFS, no per-step term decode — and decodes pairs only
at egress.  The id-space mirror replays the decoded evaluator's
discovery order operation for operation, so results are byte-identical;
anything unmappable (unknown predicates, ``GRAPH``-scoped views,
``p*`` with both endpoints unbound) falls back to graph-API BFS.  The
``repro_pathindex_total{outcome}`` counter tallies the dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from ..obs import metrics as _metrics
from ..rdf.graph import Graph
from ..rdf.terms import IRI, Term

__all__ = [
    "Path",
    "PathSequence",
    "PathAlternative",
    "PathInverse",
    "PathClosure",
    "eval_path",
    "index_supported",
]

_PATHINDEX_TOTAL = _metrics.counter(
    "repro_pathindex_total",
    "Property-path evaluations by path-index dispatch outcome",
    labels=("outcome",),
)
for _outcome in ("hit", "fallback", "no-index"):
    _PATHINDEX_TOTAL.labels(_outcome)
del _outcome


class Path:
    """Marker base class for compound path expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class PathSequence(Path):
    steps: Tuple[object, ...]  # each an IRI or Path


@dataclass(frozen=True)
class PathAlternative(Path):
    options: Tuple[object, ...]


@dataclass(frozen=True)
class PathInverse(Path):
    inner: object


@dataclass(frozen=True)
class PathClosure(Path):
    """``inner*`` when *include_zero*, else ``inner+``."""

    inner: object
    include_zero: bool


def eval_path(
    graph: Graph,
    path,
    subject: Optional[Term] = None,
    obj: Optional[Term] = None,
    use_index: bool = True,
) -> Iterator[Tuple[Term, Term]]:
    """Yield (subject, object) pairs connected by *path*.

    Either endpoint may be bound (a concrete term) or None.  Duplicate
    pairs are suppressed.  With ``use_index=False`` the persisted path
    index is bypassed even on index-capable graphs — the BFS parity
    baseline.
    """
    seen: Set[Tuple[Term, Term]] = set()
    for pair in _dispatch(graph, path, subject, obj, use_index):
        if pair not in seen:
            seen.add(pair)
            yield pair


# ---------------------------------------------------------------------------
# Index dispatch
# ---------------------------------------------------------------------------


def _live_index(graph: Graph):
    probe = getattr(graph, "path_index", None)
    return probe() if callable(probe) else None


def _compile(index, path):
    """Map *path* onto index relations; an op tree, or None when any
    predicate is not an indexed relation."""
    if isinstance(path, IRI):
        rel = index.rel_for(path.value)
        return None if rel is None else ("rel", rel)
    if isinstance(path, PathInverse):
        sub = _compile(index, path.inner)
        return None if sub is None else ("inv", sub)
    if isinstance(path, PathAlternative):
        subs = tuple(_compile(index, option) for option in path.options)
        return None if any(sub is None for sub in subs) else ("alt", subs)
    if isinstance(path, PathSequence):
        subs = tuple(_compile(index, step) for step in path.steps)
        return None if any(sub is None for sub in subs) else ("seq", subs)
    if isinstance(path, PathClosure):
        sub = _compile(index, path.inner)
        return None if sub is None else ("closure", sub, path.include_zero)
    return None


def _safe(op, s_bound: bool, o_bound: bool) -> bool:
    """Can *op* run fully in id space under these endpoint bindings?

    The one hole is ``p*`` reached with both endpoints unbound: its
    zero-length pairs range over every node in the *graph*, which the
    edge index cannot enumerate.
    """
    kind = op[0]
    if kind == "rel":
        return True
    if kind == "inv":
        return _safe(op[1], o_bound, s_bound)
    if kind == "alt":
        return all(_safe(sub, s_bound, o_bound) for sub in op[1])
    if kind == "seq":
        return _safe_seq(list(op[1]), s_bound, o_bound)
    # closure
    sub, include_zero = op[1], op[2]
    if s_bound:
        return _safe(sub, True, False)
    if o_bound:
        return _safe(sub, False, True)
    if include_zero:
        return False
    return _safe(sub, False, False) and _safe(sub, True, False)


def _safe_seq(ops: List, s_bound: bool, o_bound: bool) -> bool:
    if len(ops) == 1:
        return _safe(ops[0], s_bound, o_bound)
    if s_bound or not o_bound:
        return _safe(ops[0], s_bound, False) and _safe_seq(ops[1:], True, o_bound)
    return _safe(ops[-1], False, True) and _safe_seq(ops[:-1], False, True)


def index_supported(path, index) -> bool:
    """Would the index serve *path* (some endpoint binding permitting)?

    The planner's EXPLAIN annotation: true when every predicate in the
    path maps to an indexed relation.  Endpoint-shape holes (``p*`` both
    unbound) still fall back at runtime; the static answer keys the plan
    the way ``choose_access`` does for plain patterns.
    """
    return index is not None and _compile(index, path) is not None


def _dispatch(graph, path, subject, obj, use_index):
    index = _live_index(graph) if use_index else None
    if use_index:
        if index is None:
            _PATHINDEX_TOTAL.labels("no-index").inc()
        else:
            ops = _compile(index, path)
            sid = graph.term_to_id(subject) if subject is not None else None
            oid = graph.term_to_id(obj) if obj is not None else None
            servable = (
                ops is not None
                and _safe(ops, subject is not None, obj is not None)
                # A bound endpoint the dictionary has never seen matches
                # nothing (or only a zero-length pair) — the decoded
                # evaluator already handles that cheaply.
                and not (subject is not None and sid is None)
                and not (obj is not None and oid is None)
            )
            if servable:
                _PATHINDEX_TOTAL.labels("hit").inc()
                decode = graph.id_to_term
                for s_id, o_id in _ieval(index, ops, sid, oid):
                    yield (decode(s_id), decode(o_id))
                return
            _PATHINDEX_TOTAL.labels("fallback").inc()
    yield from _eval(graph, path, subject, obj)


# ---------------------------------------------------------------------------
# Id-space evaluation (index-backed; mirrors the decoded evaluator's
# iteration order operation for operation)
# ---------------------------------------------------------------------------


def _ieval(index, op, s: Optional[int], o: Optional[int]) -> Iterator[Tuple[int, int]]:
    kind = op[0]
    if kind == "rel":
        rel = op[1]
        if s is not None:
            if o is not None:
                if index.has_edge(rel, s, o):
                    yield (s, o)
            else:
                for neighbor in index.neighbors(rel, s):
                    yield (s, neighbor)
        elif o is not None:
            for neighbor in index.neighbors_inv(rel, o):
                yield (neighbor, o)
        else:
            # pairs() yields in (dst, src) order — the order a union
            # posg scan hands the decoded evaluator the same triples.
            yield from index.pairs(rel)
        return
    if kind == "inv":
        for s2, o2 in _ieval(index, op[1], o, s):
            yield (o2, s2)
        return
    if kind == "alt":
        for sub in op[1]:
            yield from _ieval(index, sub, s, o)
        return
    if kind == "seq":
        yield from _ieval_seq(index, list(op[1]), s, o)
        return
    yield from _ieval_closure(index, op, s, o)


def _ieval_seq(index, ops: List, s, o) -> Iterator[Tuple[int, int]]:
    if len(ops) == 1:
        yield from _ieval(index, ops[0], s, o)
        return
    if s is not None or o is None:
        head, rest = ops[0], ops[1:]
        for s1, mid in _ieval(index, head, s, None):
            for _, o1 in _ieval_seq(index, rest, mid, o):
                yield (s1, o1)
    else:
        rest, last = ops[:-1], ops[-1]
        for mid, o1 in _ieval(index, last, None, o):
            for s1, _ in _ieval_seq(index, rest, None, mid):
                yield (s1, o1)


def _istep_forward(index, op, node: int) -> Iterator[int]:
    for _, neighbor in _ieval(index, op, node, None):
        yield neighbor


def _istep_backward(index, op, node: int) -> Iterator[int]:
    for neighbor, _ in _ieval(index, op, None, node):
        yield neighbor


def _iclosure_from(index, op, start: int, include_zero: bool,
                   backward: bool = False) -> Iterator[int]:
    if include_zero:
        yield start
    step = _istep_backward if backward else _istep_forward
    visited: Set[int] = {start} if include_zero else set()
    frontier = [start]
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in step(index, op, node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
                    yield neighbor
        frontier = next_frontier


def _ieval_closure(index, op, s, o) -> Iterator[Tuple[int, int]]:
    sub, include_zero = op[1], op[2]
    if s is not None:
        for node in _iclosure_from(index, sub, s, include_zero):
            if o is None or node == o:
                yield (s, node)
        return
    if o is not None:
        for node in _iclosure_from(index, sub, o, include_zero, backward=True):
            yield (node, o)
        return
    # Both unbound (`+` only; `*` is rejected by _safe): seed from the
    # nodes that can begin the path, in their discovery order.
    starts = dict.fromkeys(s1 for s1, _ in _ieval(index, sub, None, None))
    for node in starts:
        for reached in _iclosure_from(index, sub, node, False):
            yield (node, reached)


# ---------------------------------------------------------------------------
# Graph-API evaluation (the BFS fallback and in-memory path)
# ---------------------------------------------------------------------------


def _eval(graph: Graph, path, subject, obj) -> Iterator[Tuple[Term, Term]]:
    if isinstance(path, IRI):
        for t in graph.triples(subject, path, obj):
            yield (t.subject, t.object)
        return
    if isinstance(path, PathInverse):
        for s, o in _eval(graph, path.inner, obj, subject):
            yield (o, s)
        return
    if isinstance(path, PathAlternative):
        for option in path.options:
            yield from _eval(graph, option, subject, obj)
        return
    if isinstance(path, PathSequence):
        yield from _eval_sequence(graph, list(path.steps), subject, obj)
        return
    if isinstance(path, PathClosure):
        yield from _eval_closure(graph, path, subject, obj)
        return
    raise TypeError(f"not a path expression: {path!r}")


def _eval_sequence(graph: Graph, steps: List, subject, obj) -> Iterator[Tuple[Term, Term]]:
    if len(steps) == 1:
        yield from _eval(graph, steps[0], subject, obj)
        return
    # Chain from the bound side to keep intermediate sets small.
    if subject is not None or obj is None:
        head, rest = steps[0], steps[1:]
        for s, mid in _eval(graph, head, subject, None):
            for _, o in _eval_sequence(graph, rest, mid, obj):
                yield (s, o)
    else:
        rest, last = steps[:-1], steps[-1]
        for mid, o in _eval(graph, last, None, obj):
            for s, _ in _eval_sequence(graph, rest, subject, mid):
                yield (s, o)


def _step_forward(graph: Graph, path, node: Term) -> Iterator[Term]:
    for _, o in _eval(graph, path, node, None):
        yield o


def _step_backward(graph: Graph, path, node: Term) -> Iterator[Term]:
    for s, _ in _eval(graph, path, None, node):
        yield s


def _closure_from(graph: Graph, path, start: Term, include_zero: bool,
                  backward: bool = False) -> Iterator[Term]:
    """BFS over *path* steps from *start*; yields reachable nodes."""
    if include_zero:
        yield start
    step = _step_backward if backward else _step_forward
    visited: Set[Term] = {start} if include_zero else set()
    frontier = [start]
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in step(graph, path.inner, node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
                    yield neighbor
        frontier = next_frontier


def _all_nodes(graph: Graph) -> Iterator[Term]:
    """Every subject/object node, deduplicated in encounter order (a
    set would iterate in hash order — nondeterministic across runs)."""
    seen: Set[Term] = set()
    for t in graph:
        for node in (t.subject, t.object):
            if node not in seen:
                seen.add(node)
                yield node


def _start_nodes(graph: Graph, inner) -> Iterator[Term]:
    """Nodes with at least one outgoing *inner* step — the only useful
    BFS seeds — deduplicated in encounter order."""
    seen: Set[Term] = set()
    for s, _ in _eval(graph, inner, None, None):
        if s not in seen:
            seen.add(s)
            yield s


def _eval_closure(graph: Graph, path: PathClosure, subject, obj):
    if subject is not None:
        for node in _closure_from(graph, path, subject, path.include_zero):
            if obj is None or node == obj:
                yield (subject, node)
        return
    if obj is not None:
        for node in _closure_from(graph, path, obj, path.include_zero, backward=True):
            yield (node, obj)
        return
    # Both unbound: BFS only from nodes that can begin the path (the
    # subjects of its predicates), never from every node in the graph.
    if path.include_zero:
        # Zero-length: the spec pairs every node with itself.
        for node in _all_nodes(graph):
            yield (node, node)
    for node in _start_nodes(graph, path.inner):
        for reached in _closure_from(graph, path, node, False):
            yield (node, reached)
