"""SPARQL 1.1 property paths.

Provenance queries are path-shaped — "what did this output transitively
derive from" is ``?out (prov:used|prov:wasGeneratedBy)+ ?src`` — so the
engine supports the core path operators in the predicate position:

* ``iri`` — a single step
* ``^path`` — inverse
* ``path1 / path2`` — sequence
* ``path1 | path2`` — alternative
* ``path*`` — zero or more (reflexive-transitive closure)
* ``path+`` — one or more (transitive closure)
* ``( path )`` — grouping

Paths are evaluated by :func:`eval_path`, which yields ``(subject,
object)`` pairs given optionally-bound endpoints; closures are computed
with BFS over the graph, seeded from whichever endpoint is bound (both
unbound falls back to iterating every node, as the spec requires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.terms import IRI, Term

__all__ = [
    "Path",
    "PathSequence",
    "PathAlternative",
    "PathInverse",
    "PathClosure",
    "eval_path",
]


class Path:
    """Marker base class for compound path expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class PathSequence(Path):
    steps: Tuple[object, ...]  # each an IRI or Path


@dataclass(frozen=True)
class PathAlternative(Path):
    options: Tuple[object, ...]


@dataclass(frozen=True)
class PathInverse(Path):
    inner: object


@dataclass(frozen=True)
class PathClosure(Path):
    """``inner*`` when *include_zero*, else ``inner+``."""

    inner: object
    include_zero: bool


def eval_path(
    graph: Graph,
    path,
    subject: Optional[Term] = None,
    obj: Optional[Term] = None,
) -> Iterator[Tuple[Term, Term]]:
    """Yield (subject, object) pairs connected by *path*.

    Either endpoint may be bound (a concrete term) or None.  Duplicate
    pairs are suppressed.
    """
    seen: Set[Tuple[Term, Term]] = set()
    for pair in _eval(graph, path, subject, obj):
        if pair not in seen:
            seen.add(pair)
            yield pair


def _eval(graph: Graph, path, subject, obj) -> Iterator[Tuple[Term, Term]]:
    if isinstance(path, IRI):
        for t in graph.triples(subject, path, obj):
            yield (t.subject, t.object)
        return
    if isinstance(path, PathInverse):
        for s, o in _eval(graph, path.inner, obj, subject):
            yield (o, s)
        return
    if isinstance(path, PathAlternative):
        for option in path.options:
            yield from _eval(graph, option, subject, obj)
        return
    if isinstance(path, PathSequence):
        yield from _eval_sequence(graph, list(path.steps), subject, obj)
        return
    if isinstance(path, PathClosure):
        yield from _eval_closure(graph, path, subject, obj)
        return
    raise TypeError(f"not a path expression: {path!r}")


def _eval_sequence(graph: Graph, steps: List, subject, obj) -> Iterator[Tuple[Term, Term]]:
    if len(steps) == 1:
        yield from _eval(graph, steps[0], subject, obj)
        return
    # Chain from the bound side to keep intermediate sets small.
    if subject is not None or obj is None:
        head, rest = steps[0], steps[1:]
        for s, mid in _eval(graph, head, subject, None):
            for _, o in _eval_sequence(graph, rest, mid, obj):
                yield (s, o)
    else:
        rest, last = steps[:-1], steps[-1]
        for mid, o in _eval(graph, last, None, obj):
            for s, _ in _eval_sequence(graph, rest, subject, mid):
                yield (s, o)


def _step_forward(graph: Graph, path, node: Term) -> Iterator[Term]:
    for _, o in _eval(graph, path, node, None):
        yield o


def _step_backward(graph: Graph, path, node: Term) -> Iterator[Term]:
    for s, _ in _eval(graph, path, None, node):
        yield s


def _closure_from(graph: Graph, path, start: Term, include_zero: bool,
                  backward: bool = False) -> Iterator[Term]:
    """BFS over *path* steps from *start*; yields reachable nodes."""
    if include_zero:
        yield start
    step = _step_backward if backward else _step_forward
    visited: Set[Term] = {start} if include_zero else set()
    frontier = [start]
    while frontier:
        next_frontier = []
        for node in frontier:
            for neighbor in step(graph, path.inner, node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
                    yield neighbor
        frontier = next_frontier


def _all_nodes(graph: Graph) -> Set[Term]:
    nodes: Set[Term] = set(graph.resources())
    for t in graph:
        nodes.add(t.object)
    return nodes


def _eval_closure(graph: Graph, path: PathClosure, subject, obj):
    if subject is not None:
        for node in _closure_from(graph, path, subject, path.include_zero):
            if obj is None or node == obj:
                yield (subject, node)
        return
    if obj is not None:
        for node in _closure_from(graph, path, obj, path.include_zero, backward=True):
            yield (node, obj)
        return
    # Both unbound: start from every node that can begin the path (for
    # `*`, the spec says every node in the graph pairs with itself).
    if path.include_zero:
        for node in _all_nodes(graph):
            yield from ((node, reached) for reached in
                        _closure_from(graph, path, node, True))
    else:
        starts = {s for s, _ in _eval(graph, path.inner, None, None)}
        for node in starts:
            yield from ((node, reached) for reached in
                        _closure_from(graph, path, node, False))
