"""SPARQL parser: query text → algebra tree.

Implements the subset of SPARQL 1.1 used by the corpus's exemplar queries
and the coverage tooling: SELECT / ASK with BGPs, OPTIONAL, FILTER, UNION,
MINUS, BIND, GRAPH, property shorthand (``;`` ``,`` and ``a``), expressions
with the full operator precedence ladder, (NOT) EXISTS, IN, aggregates with
GROUP BY / HAVING, and ORDER BY / LIMIT / OFFSET.
"""

from __future__ import annotations

from typing import List, Optional

from ..rdf.namespace import RDF, NamespaceManager
from ..rdf.terms import BlankNode, IRI, Literal, XSD, unescape_string
from .algebra import (
    Aggregate,
    And,
    Arithmetic,
    AskQuery,
    BGP,
    Bind,
    Compare,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expression,
    Filter,
    FunctionCall,
    GraphPattern,
    InExpr,
    Join,
    LeftJoin,
    Minus,
    Not,
    Or,
    OrderCondition,
    Pattern,
    PatternTerm,
    Projection,
    SelectQuery,
    TermExpr,
    TriplePattern,
    Union,
    Values,
    Var,
    VarExpr,
)
from .paths import PathAlternative, PathClosure, PathInverse, PathSequence
from .tokenizer import SparqlSyntaxError, Token, Tokenizer

__all__ = ["parse_query", "QueryParser"]

#: Built-in function names the expression grammar accepts.
BUILTIN_FUNCTIONS = frozenset(
    """
    BOUND REGEX STR LANG DATATYPE IRI URI STRLEN SUBSTR UCASE LCASE
    STRSTARTS STRENDS CONTAINS CONCAT REPLACE ABS ROUND CEIL FLOOR
    YEAR MONTH DAY HOURS MINUTES SECONDS NOW COALESCE IF SAMETERM
    ISIRI ISURI ISBLANK ISLITERAL ISNUMERIC LANGMATCHES STRBEFORE STRAFTER
    """.split()
)

_AGGREGATES = frozenset({"COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT"})


def parse_query(text: str, namespaces: Optional[NamespaceManager] = None):
    """Parse SPARQL text into a :class:`SelectQuery` or :class:`AskQuery`.

    *namespaces* pre-binds prefixes in addition to any PREFIX declarations
    in the query itself (the corpus queries rely on the core prefix table).
    """
    return QueryParser(text, namespaces=namespaces).parse()


class QueryParser:
    def __init__(self, text: str, namespaces: Optional[NamespaceManager] = None):
        self.tokens = Tokenizer(text)
        self.nsm = namespaces.copy() if namespaces is not None else NamespaceManager()
        self.base = ""
        self._bnode_count = 0

    # -- top level -----------------------------------------------------------

    def parse(self):
        self._parse_prologue()
        tok = self.tokens.peek()
        if tok is None:
            raise SparqlSyntaxError("empty query")
        if tok.is_keyword("SELECT"):
            query = self._parse_select()
        elif tok.is_keyword("ASK"):
            query = self._parse_ask()
        elif tok.is_keyword("CONSTRUCT"):
            query = self._parse_construct()
        elif tok.is_keyword("DESCRIBE"):
            query = self._parse_describe()
        else:
            raise SparqlSyntaxError(
                f"expected SELECT, ASK, CONSTRUCT, or DESCRIBE, got {tok.text!r}",
                tok.lineno,
            )
        if not self.tokens.at_end():
            stray = self.tokens.peek()
            raise SparqlSyntaxError(f"unexpected trailing input {stray.text!r}", stray.lineno)
        return query

    def _parse_prologue(self):
        while True:
            if self.tokens.accept_keyword("PREFIX"):
                pname = self.tokens.next()
                if pname.kind != "pname" or not pname.text.endswith(":"):
                    raise SparqlSyntaxError(
                        f"expected prefix declaration, got {pname.text!r}", pname.lineno
                    )
                iri = self.tokens.next()
                if iri.kind != "iriref":
                    raise SparqlSyntaxError(f"expected IRI, got {iri.text!r}", iri.lineno)
                self.nsm.bind(pname.text[:-1], iri.text[1:-1])
            elif self.tokens.accept_keyword("BASE"):
                iri = self.tokens.next()
                if iri.kind != "iriref":
                    raise SparqlSyntaxError(f"expected IRI, got {iri.text!r}", iri.lineno)
                self.base = iri.text[1:-1]
            else:
                return

    def _parse_select(self) -> SelectQuery:
        self.tokens.expect_keyword("SELECT")
        distinct = self.tokens.accept_keyword("DISTINCT")
        if not distinct:
            self.tokens.accept_keyword("REDUCED")
        projections: List[Projection] = []
        if not self.tokens.accept_punct("*"):
            while True:
                tok = self.tokens.peek()
                if tok is None:
                    raise SparqlSyntaxError("unterminated SELECT clause")
                if tok.kind == "var":
                    self.tokens.next()
                    projections.append(Projection(Var(tok.text)))
                elif tok.is_punct("("):
                    self.tokens.next()
                    expr = self._parse_expression()
                    self.tokens.expect_keyword("AS")
                    var_tok = self.tokens.next()
                    if var_tok.kind != "var":
                        raise SparqlSyntaxError("expected variable after AS", var_tok.lineno)
                    self.tokens.expect_punct(")")
                    projections.append(Projection(Var(var_tok.text), expr))
                else:
                    break
            if not projections:
                tok = self.tokens.peek()
                raise SparqlSyntaxError("SELECT clause has no projections", tok.lineno if tok else 0)
        self.tokens.accept_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        query = SelectQuery(projections=projections, where=where, distinct=distinct)
        self._parse_solution_modifiers(query)
        return query

    def _parse_ask(self) -> AskQuery:
        self.tokens.expect_keyword("ASK")
        self.tokens.accept_keyword("WHERE")
        return AskQuery(where=self._parse_group_graph_pattern())

    def _parse_construct(self) -> ConstructQuery:
        self.tokens.expect_keyword("CONSTRUCT")
        self.tokens.expect_punct("{")
        template: List[TriplePattern] = []
        tok = self.tokens.peek()
        if tok is not None and not tok.is_punct("}"):
            template = self._parse_triples_block()
        self.tokens.expect_punct("}")
        self.tokens.accept_keyword("WHERE")
        where = self._parse_group_graph_pattern()
        query = ConstructQuery(template=template, where=where)
        if self.tokens.accept_keyword("LIMIT"):
            query.limit = self._parse_nonneg_int("LIMIT")
        if self.tokens.accept_keyword("OFFSET"):
            query.offset = self._parse_nonneg_int("OFFSET")
        return query

    def _parse_describe(self) -> DescribeQuery:
        self.tokens.expect_keyword("DESCRIBE")
        targets: List[PatternTerm] = []
        while True:
            tok = self.tokens.peek()
            if tok is None:
                break
            if tok.kind == "var":
                self.tokens.next()
                targets.append(Var(tok.text))
            elif tok.kind == "iriref":
                self.tokens.next()
                targets.append(self._resolve_iri(tok))
            elif tok.kind == "pname":
                self.tokens.next()
                targets.append(self._expand_pname(tok))
            else:
                break
        if not targets:
            raise SparqlSyntaxError("DESCRIBE requires at least one target")
        where = None
        tok = self.tokens.peek()
        if tok is not None and (tok.is_keyword("WHERE") or tok.is_punct("{")):
            self.tokens.accept_keyword("WHERE")
            where = self._parse_group_graph_pattern()
        return DescribeQuery(targets=targets, where=where)

    def _parse_solution_modifiers(self, query: SelectQuery):
        if self.tokens.accept_keyword("GROUP"):
            self.tokens.expect_keyword("BY")
            while True:
                tok = self.tokens.peek()
                if tok is None:
                    break
                if tok.kind == "var":
                    self.tokens.next()
                    query.group_by.append(VarExpr(Var(tok.text)))
                elif tok.is_punct("("):
                    self.tokens.next()
                    query.group_by.append(self._parse_expression())
                    self.tokens.expect_punct(")")
                else:
                    break
            if not query.group_by:
                raise SparqlSyntaxError("GROUP BY requires at least one grouping expression")
        if self.tokens.accept_keyword("HAVING"):
            self.tokens.expect_punct("(")
            query.having = self._parse_expression()
            self.tokens.expect_punct(")")
        if self.tokens.accept_keyword("ORDER"):
            self.tokens.expect_keyword("BY")
            while True:
                tok = self.tokens.peek()
                if tok is None:
                    break
                if tok.is_keyword("ASC") or tok.is_keyword("DESC"):
                    descending = tok.is_keyword("DESC")
                    self.tokens.next()
                    self.tokens.expect_punct("(")
                    expr = self._parse_expression()
                    self.tokens.expect_punct(")")
                    query.order_by.append(OrderCondition(expr, descending))
                elif tok.kind == "var":
                    self.tokens.next()
                    query.order_by.append(OrderCondition(VarExpr(Var(tok.text))))
                elif tok.is_punct("("):
                    self.tokens.next()
                    expr = self._parse_expression()
                    self.tokens.expect_punct(")")
                    query.order_by.append(OrderCondition(expr))
                else:
                    break
            if not query.order_by:
                raise SparqlSyntaxError("ORDER BY requires at least one condition")
        if self.tokens.accept_keyword("LIMIT"):
            query.limit = self._parse_nonneg_int("LIMIT")
        if self.tokens.accept_keyword("OFFSET"):
            query.offset = self._parse_nonneg_int("OFFSET")
            # LIMIT may legally follow OFFSET too.
            if self.tokens.accept_keyword("LIMIT"):
                query.limit = self._parse_nonneg_int("LIMIT")

    def _parse_nonneg_int(self, clause: str) -> int:
        tok = self.tokens.next()
        if tok.kind != "integer" or int(tok.text) < 0:
            raise SparqlSyntaxError(f"{clause} requires a non-negative integer", tok.lineno)
        return int(tok.text)

    # -- graph patterns --------------------------------------------------------

    def _parse_group_graph_pattern(self) -> Pattern:
        self.tokens.expect_punct("{")
        current: Optional[Pattern] = None
        filters: List[Expression] = []

        def join(pattern: Pattern):
            nonlocal current
            if current is None:
                current = pattern
            elif isinstance(current, BGP) and isinstance(pattern, BGP):
                current.triples.extend(pattern.triples)
            else:
                current = Join(current, pattern)

        while True:
            tok = self.tokens.peek()
            if tok is None:
                raise SparqlSyntaxError("unterminated group graph pattern")
            if tok.is_punct("}"):
                self.tokens.next()
                break
            if tok.is_keyword("OPTIONAL"):
                self.tokens.next()
                inner = self._parse_group_graph_pattern()
                condition = None
                if isinstance(inner, Filter):
                    inner, condition = inner.pattern, inner.condition
                base = current if current is not None else BGP()
                current = LeftJoin(base, inner, condition)
            elif tok.is_keyword("FILTER"):
                self.tokens.next()
                filters.append(self._parse_constraint())
            elif tok.is_keyword("BIND"):
                self.tokens.next()
                self.tokens.expect_punct("(")
                expr = self._parse_expression()
                self.tokens.expect_keyword("AS")
                var_tok = self.tokens.next()
                if var_tok.kind != "var":
                    raise SparqlSyntaxError("expected variable after AS", var_tok.lineno)
                self.tokens.expect_punct(")")
                base = current if current is not None else BGP()
                current = Bind(base, Var(var_tok.text), expr)
            elif tok.is_keyword("MINUS"):
                self.tokens.next()
                inner = self._parse_group_graph_pattern()
                base = current if current is not None else BGP()
                current = Minus(base, inner)
            elif tok.is_keyword("GRAPH"):
                self.tokens.next()
                name = self._parse_var_or_term()
                inner = self._parse_group_graph_pattern()
                join(GraphPattern(name, inner))
            elif tok.is_keyword("VALUES"):
                self.tokens.next()
                values = self._parse_values()
                base = current if current is not None else BGP()
                values.pattern = base
                current = values
            elif tok.is_punct("{"):
                join(self._parse_group_or_union())
            else:
                join(BGP(self._parse_triples_block()))
            self.tokens.accept_punct(".")
        result: Pattern = current if current is not None else BGP()
        for condition in filters:
            result = Filter(result, condition)
        return result

    def _parse_values(self) -> Values:
        """VALUES ?x { ... }  or  VALUES (?x ?y) { (a b) (c d) }."""
        tok = self.tokens.peek()
        variables: List[Var] = []
        single = False
        if tok is not None and tok.kind == "var":
            self.tokens.next()
            variables = [Var(tok.text)]
            single = True
        else:
            self.tokens.expect_punct("(")
            while not self.tokens.accept_punct(")"):
                var_tok = self.tokens.next()
                if var_tok.kind != "var":
                    raise SparqlSyntaxError(
                        f"expected variable in VALUES, got {var_tok.text!r}", var_tok.lineno
                    )
                variables.append(Var(var_tok.text))
        if not variables:
            raise SparqlSyntaxError("VALUES requires at least one variable")
        self.tokens.expect_punct("{")
        rows: List[List] = []
        while not self.tokens.accept_punct("}"):
            if single:
                rows.append([self._parse_values_term()])
            else:
                self.tokens.expect_punct("(")
                row = []
                while not self.tokens.accept_punct(")"):
                    row.append(self._parse_values_term())
                if len(row) != len(variables):
                    raise SparqlSyntaxError(
                        f"VALUES row has {len(row)} terms for {len(variables)} variables"
                    )
                rows.append(row)
        return Values(variables=variables, rows=rows)

    def _parse_values_term(self):
        tok = self.tokens.peek()
        if tok is not None and tok.is_keyword("UNDEF"):
            self.tokens.next()
            return None
        term = self._parse_var_or_term()
        if isinstance(term, Var):
            raise SparqlSyntaxError("variables are not allowed in VALUES data")
        return term

    def _parse_group_or_union(self) -> Pattern:
        pattern = self._parse_group_graph_pattern()
        while self.tokens.accept_keyword("UNION"):
            right = self._parse_group_graph_pattern()
            pattern = Union(pattern, right)
        return pattern

    def _parse_triples_block(self) -> List[TriplePattern]:
        triples: List[TriplePattern] = []
        while True:
            subject = self._parse_var_or_term()
            self._parse_property_list(subject, triples)
            if not self.tokens.accept_punct("."):
                break
            tok = self.tokens.peek()
            if tok is None or tok.is_punct("}") or tok.kind == "keyword" or tok.is_punct("{"):
                break
        return triples

    def _parse_property_list(self, subject: PatternTerm, triples: List[TriplePattern]):
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_var_or_term()
                triples.append(TriplePattern(subject, predicate, obj))
                if not self.tokens.accept_punct(","):
                    break
            if not self.tokens.accept_punct(";"):
                break
            nxt = self.tokens.peek()
            if nxt is None or nxt.is_punct(".") or nxt.is_punct("}") or nxt.is_punct("]"):
                break

    def _parse_verb(self) -> PatternTerm:
        tok = self.tokens.peek()
        if tok is not None and tok.kind == "var":
            self.tokens.next()
            return Var(tok.text)
        return self._parse_path()

    # -- property paths ---------------------------------------------------------

    def _parse_path(self):
        """PathAlternative: seq ('|' seq)*; returns an IRI for trivial paths."""
        options = [self._parse_path_sequence()]
        while True:
            tok = self.tokens.peek()
            if tok is not None and tok.kind == "op" and tok.text == "|":
                self.tokens.next()
                options.append(self._parse_path_sequence())
            else:
                break
        if len(options) == 1:
            return options[0]
        return PathAlternative(tuple(options))

    def _parse_path_sequence(self):
        steps = [self._parse_path_elt()]
        while True:
            tok = self.tokens.peek()
            if tok is not None and tok.kind == "op" and tok.text == "/":
                self.tokens.next()
                steps.append(self._parse_path_elt())
            else:
                break
        if len(steps) == 1:
            return steps[0]
        return PathSequence(tuple(steps))

    def _parse_path_elt(self):
        primary = self._parse_path_primary()
        tok = self.tokens.peek()
        if tok is not None and tok.kind == "op" and tok.text in ("*", "+"):
            self.tokens.next()
            return PathClosure(primary, include_zero=(tok.text == "*"))
        return primary

    def _parse_path_primary(self):
        tok = self.tokens.next()
        if tok.kind == "op" and tok.text == "^":
            return PathInverse(self._parse_path_elt())
        if tok.is_punct("("):
            path = self._parse_path()
            self.tokens.expect_punct(")")
            return path
        if tok.is_keyword("A"):
            return RDF.type
        if tok.kind == "iriref":
            return self._resolve_iri(tok)
        if tok.kind == "pname":
            return self._expand_pname(tok)
        raise SparqlSyntaxError(f"invalid predicate or path {tok.text!r}", tok.lineno)

    def _parse_var_or_term(self) -> PatternTerm:
        tok = self.tokens.next()
        if tok.kind == "var":
            return Var(tok.text)
        if tok.kind == "iriref":
            return self._resolve_iri(tok)
        if tok.kind == "pname":
            return self._expand_pname(tok)
        if tok.kind == "bnode":
            return BlankNode(tok.text[2:])
        if tok.kind == "string":
            return self._finish_literal(tok)
        if tok.kind == "integer":
            return Literal(tok.text, datatype=XSD.INTEGER)
        if tok.kind == "decimal":
            return Literal(tok.text, datatype=XSD.DECIMAL)
        if tok.kind == "double":
            return Literal(tok.text, datatype=XSD.DOUBLE)
        if tok.is_keyword("TRUE"):
            return Literal("true", datatype=XSD.BOOLEAN)
        if tok.is_keyword("FALSE"):
            return Literal("false", datatype=XSD.BOOLEAN)
        raise SparqlSyntaxError(f"expected term or variable, got {tok.text!r}", tok.lineno)

    def _finish_literal(self, tok: Token) -> Literal:
        lexical = unescape_string(tok.text[1:-1])
        nxt = self.tokens.peek()
        if nxt is not None and nxt.kind == "dtmark":
            self.tokens.next()
            dt_tok = self.tokens.next()
            if dt_tok.kind == "iriref":
                return Literal(lexical, datatype=self._resolve_iri(dt_tok))
            if dt_tok.kind == "pname":
                return Literal(lexical, datatype=self._expand_pname(dt_tok))
            raise SparqlSyntaxError("expected datatype IRI after ^^", dt_tok.lineno)
        if nxt is not None and nxt.kind == "langtag":
            self.tokens.next()
            return Literal(lexical, language=nxt.text[1:])
        return Literal(lexical)

    def _resolve_iri(self, tok: Token) -> IRI:
        value = tok.text[1:-1]
        if self.base and "://" not in value and not value.startswith("urn:"):
            value = self.base + value
        try:
            return IRI(value)
        except ValueError as exc:
            raise SparqlSyntaxError(str(exc), tok.lineno) from None

    def _expand_pname(self, tok: Token) -> IRI:
        prefix, _, local = tok.text.partition(":")
        try:
            return self.nsm.expand(f"{prefix}:{local}")
        except KeyError:
            raise SparqlSyntaxError(f"unknown prefix {prefix!r}", tok.lineno) from None

    # -- expressions ------------------------------------------------------------

    def _parse_constraint(self) -> Expression:
        tok = self.tokens.peek()
        if tok is not None and tok.is_punct("("):
            self.tokens.next()
            expr = self._parse_expression()
            self.tokens.expect_punct(")")
            return expr
        return self._parse_primary_expression()

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while True:
            tok = self.tokens.peek()
            if tok is not None and tok.kind == "op" and tok.text == "||":
                self.tokens.next()
                left = Or(left, self._parse_and())
            else:
                return left

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        while True:
            tok = self.tokens.peek()
            if tok is not None and tok.kind == "op" and tok.text == "&&":
                self.tokens.next()
                left = And(left, self._parse_relational())
            else:
                return left

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        tok = self.tokens.peek()
        if tok is not None and tok.kind == "op" and tok.text in ("=", "!=", "<", "<=", ">", ">="):
            self.tokens.next()
            return Compare(tok.text, left, self._parse_additive())
        if tok is not None and tok.is_keyword("IN"):
            self.tokens.next()
            return InExpr(left, self._parse_expression_list(), negated=False)
        if tok is not None and tok.is_keyword("NOT"):
            nxt = self.tokens.peek(1)
            if nxt is not None and nxt.is_keyword("IN"):
                self.tokens.next()
                self.tokens.next()
                return InExpr(left, self._parse_expression_list(), negated=True)
        return left

    def _parse_expression_list(self) -> List[Expression]:
        self.tokens.expect_punct("(")
        items: List[Expression] = []
        if not self.tokens.accept_punct(")"):
            while True:
                items.append(self._parse_expression())
                if self.tokens.accept_punct(")"):
                    break
                self.tokens.expect_punct(",")
        return items

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            tok = self.tokens.peek()
            if tok is not None and tok.kind == "op" and tok.text in ("+", "-"):
                self.tokens.next()
                left = Arithmetic(tok.text, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            tok = self.tokens.peek()
            if tok is not None and tok.kind == "op" and tok.text in ("*", "/"):
                self.tokens.next()
                left = Arithmetic(tok.text, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        tok = self.tokens.peek()
        if tok is not None and tok.kind == "op" and tok.text == "!":
            self.tokens.next()
            return Not(self._parse_unary())
        if tok is not None and tok.kind == "op" and tok.text in ("+", "-"):
            self.tokens.next()
            operand = self._parse_unary()
            if tok.text == "-":
                zero = TermExpr(Literal("0", datatype=XSD.INTEGER))
                return Arithmetic("-", zero, operand)
            return operand
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        tok = self.tokens.next()
        if tok.is_punct("("):
            expr = self._parse_expression()
            self.tokens.expect_punct(")")
            return expr
        if tok.kind == "var":
            return VarExpr(Var(tok.text))
        if tok.kind == "iriref":
            return TermExpr(self._resolve_iri(tok))
        if tok.kind == "string":
            return TermExpr(self._finish_literal(tok))
        if tok.kind == "integer":
            return TermExpr(Literal(tok.text, datatype=XSD.INTEGER))
        if tok.kind == "decimal":
            return TermExpr(Literal(tok.text, datatype=XSD.DECIMAL))
        if tok.kind == "double":
            return TermExpr(Literal(tok.text, datatype=XSD.DOUBLE))
        if tok.is_keyword("TRUE"):
            return TermExpr(Literal("true", datatype=XSD.BOOLEAN))
        if tok.is_keyword("FALSE"):
            return TermExpr(Literal("false", datatype=XSD.BOOLEAN))
        if tok.is_keyword("EXISTS"):
            return ExistsExpr(self._parse_group_graph_pattern(), negated=False)
        if tok.is_keyword("NOT"):
            self.tokens.expect_keyword("EXISTS")
            return ExistsExpr(self._parse_group_graph_pattern(), negated=True)
        if tok.kind == "keyword" and tok.text in _AGGREGATES:
            return self._parse_aggregate(tok.text)
        if tok.kind == "pname":
            if ":" in tok.text:
                # Function by IRI is out of scope; treat as constant term.
                return TermExpr(self._expand_pname(tok))
            name = tok.text.upper()
            if name in BUILTIN_FUNCTIONS:
                return FunctionCall(name, self._parse_arg_list())
            raise SparqlSyntaxError(f"unknown function {tok.text!r}", tok.lineno)
        raise SparqlSyntaxError(f"unexpected token in expression: {tok.text!r}", tok.lineno)

    def _parse_arg_list(self) -> List[Expression]:
        self.tokens.expect_punct("(")
        args: List[Expression] = []
        if self.tokens.accept_punct(")"):
            return args
        while True:
            args.append(self._parse_expression())
            if self.tokens.accept_punct(")"):
                return args
            self.tokens.expect_punct(",")

    def _parse_aggregate(self, name: str) -> Aggregate:
        self.tokens.expect_punct("(")
        distinct = self.tokens.accept_keyword("DISTINCT")
        if name == "COUNT" and self.tokens.accept_punct("*"):
            self.tokens.expect_punct(")")
            return Aggregate("COUNT", None, distinct=distinct)
        expr = self._parse_expression()
        separator = " "
        if name == "GROUP_CONCAT" and self.tokens.accept_punct(";"):
            self.tokens.expect_keyword("SEPARATOR")
            eq = self.tokens.next()
            if not (eq.kind == "op" and eq.text == "="):
                raise SparqlSyntaxError("expected '=' after SEPARATOR", eq.lineno)
            sep_tok = self.tokens.next()
            if sep_tok.kind != "string":
                raise SparqlSyntaxError("SEPARATOR requires a string", sep_tok.lineno)
            separator = unescape_string(sep_tok.text[1:-1])
        self.tokens.expect_punct(")")
        return Aggregate(name, expr, distinct=distinct, separator=separator)
