"""SPARQL query evaluation over in-memory graphs and datasets.

The evaluator walks the algebra tree with *lateral* semantics: every
pattern is evaluated against a list of partial solutions and extends each
one, which gives correct OPTIONAL/EXISTS behavior without a separate join
machinery.  Basic graph patterns are reordered by a selectivity heuristic
before evaluation (see :func:`plan_bgp`); the ablation bench compares this
against the written order.

Entry point: :class:`QueryEngine` — construct over a :class:`Graph` or a
:class:`Dataset` and call :meth:`QueryEngine.query` with SPARQL text.

Acceleration layer: the engine keeps a bounded LRU cache of query results
keyed by ``(query text, source version)`` — the version is the source's
monotonic mutation counter, so any write to the graph/dataset implicitly
invalidates every cached entry without bookkeeping.  Predicate
cardinalities used by the planner live in the per-graph
:class:`~repro.rdf.statistics.GraphStatistics` object instead of being
rebuilt per query.  Both caches are lock-protected: the endpoint serves
one shared engine from many threads.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Union as TyUnion

from ..rdf.graph import Dataset, Graph
from ..rdf.namespace import CORE_PREFIXES, NamespaceManager
from ..rdf.terms import BlankNode, IRI, Literal, Term
from .algebra import (
    Aggregate,
    AskQuery,
    BGP,
    Bind,
    ConstructQuery,
    DescribeQuery,
    Expression,
    Filter,
    FunctionCall,
    GraphPattern,
    Join,
    LeftJoin,
    Minus,
    Pattern,
    Projection,
    SelectQuery,
    TriplePattern,
    Union,
    Values,
    Var,
    VarExpr,
)
from .functions import (
    ExprError,
    effective_boolean_value,
    evaluate_expression,
    order_key,
)
from ..obs import metrics as _metrics
from ..obs import tracectx as _tracectx
from ..obs.trace import span as _span
from .encoded import encoded_executor
from .parser import parse_query
from .paths import Path, eval_path
from .plan import (
    ProfileCollector,
    QueryPlan,
    QueryProfile,
    build_plan,
    plan_bgp_steps,
    written_order_steps,
)
from .results import ResultTable

__all__ = ["QueryEngine", "plan_bgp", "plan_bgp_steps", "DEFAULT_RESULT_CACHE_SIZE"]

Binding = Dict[str, Term]

#: Default capacity of the per-engine LRU query-result cache.
DEFAULT_RESULT_CACHE_SIZE = 128
_DIGEST_CACHE_SIZE = 256  # (query text, version) → plan digest memo

_CACHE_EVENTS = _metrics.counter(
    "repro_query_cache_total", "Query result cache events", labels=("event",)
)
_QUERY_SECONDS = _metrics.histogram(
    "repro_query_seconds", "SPARQL query phase wall time in seconds",
    labels=("phase",),
)
# The label sets are fixed and small, so materialise every series up
# front — scrapes see them at zero instead of the family appearing to
# have no data until the first event.
for _event in ("hit", "miss", "eviction"):
    _CACHE_EVENTS.labels(_event)
for _phase in ("parse", "execute"):
    _QUERY_SECONDS.labels(_phase)
del _event, _phase

_MISS = object()  # sentinel: cached-None must be distinguishable


def plan_bgp(
    patterns: List[TriplePattern],
    bound_vars: Iterable[str] = (),
    graph: Optional[Graph] = None,
) -> List[TriplePattern]:
    """Order triple patterns most-selective-first.

    Greedy: repeatedly pick the pattern with the most bound positions
    (constants plus variables already bound by previously chosen patterns),
    preferring bound subjects over bound objects over bound predicates, and
    using the graph's predicate cardinalities as a tiebreaker when
    available.  This mirrors classic selectivity-based BGP reordering.

    Thin wrapper over :func:`repro.sparql.plan.plan_bgp_steps` — the
    annotated planner EXPLAIN renders — so the plan shown and the plan
    executed can never diverge.
    """
    return [step.pattern for step in plan_bgp_steps(patterns, bound_vars, graph)]


class QueryEngine:
    """Evaluates SPARQL queries over a Graph or Dataset.

    When constructed over a :class:`Dataset`, plain BGPs match the *union*
    of the default and all named graphs (the behavior of most triple
    stores' default configuration, and what the corpus queries expect),
    while ``GRAPH`` patterns address individual named graphs.
    """

    def __init__(
        self,
        source: TyUnion[Graph, Dataset],
        namespaces: Optional[NamespaceManager] = None,
        optimize_joins: bool = True,
        cache_size: int = DEFAULT_RESULT_CACHE_SIZE,
        tracer=None,
        slow_log=None,
        encoded: bool = True,
        path_index: bool = True,
        latency_sketch=None,
    ):
        if isinstance(source, Dataset):
            self.dataset: Optional[Dataset] = source
            self._union_version = source.version
            self._default = source.union_graph()
        elif isinstance(source, Graph):
            self.dataset = None
            self._union_version = None
            self._default = source
        else:
            raise TypeError("QueryEngine requires a Graph or Dataset")
        self.namespaces = namespaces if namespaces is not None else _corpus_namespaces(source)
        self.optimize_joins = optimize_joins
        #: Run BGPs in id space over store-backed graphs (merge/bisect
        #: batch scans, decode at BGP egress).  ``False`` forces the
        #: per-binding decoded pipeline — the parity baseline.
        self.encoded = encoded
        #: Serve property-path closures from the persisted path index on
        #: index-capable graphs.  ``False`` forces graph-API BFS — the
        #: parity baseline for path queries.
        self.path_index = path_index
        self.tracer = tracer
        #: Optional :class:`repro.obs.slowlog.SlowQueryLog`; when set,
        #: string queries are profiled (cheap batch-level collection) so
        #: threshold-crossing queries log full operator statistics.
        self.slow_log = slow_log
        #: Optional :class:`repro.obs.quantiles.QuantileFamily` keyed by
        #: plan digest; when set, every string query's wall time feeds
        #: the per-plan-shape latency sketch (true p50/p95/p99, not
        #: bucket-quantized).  Digests are memoized per (text, version)
        #: so a cached-result hit never has to rebuild a plan.
        self.latency_sketch = latency_sketch
        self._digest_cache: "OrderedDict[tuple, str]" = OrderedDict()
        # Count of active per-thread profilers.  The evaluator's hot
        # paths gate on its truthiness — a single attribute check when
        # no profile (and no slow log) is in play.
        self._profiling = 0
        # Result cache: (query text, source version) → result.  The lock
        # also guards the lazy union-graph refresh; the endpoint shares
        # one engine across ThreadingHTTPServer worker threads.
        self.cache_size = max(0, cache_size)
        self._lock = threading.RLock()
        self._tlocal = threading.local()
        self._result_cache: "OrderedDict[tuple, object]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0

    # -- versioning / caching -------------------------------------------------

    def source_version(self) -> int:
        """The source's current monotonic version (cache-key component)."""
        return self.dataset.version if self.dataset is not None else self._default.version

    def _refresh_default_locked(self) -> None:
        """Rebuild the union-graph snapshot if the dataset has moved.

        Before versioning existed the snapshot was built once in the
        constructor and silently served stale data after any dataset
        mutation; now staleness is detected by version comparison.  The
        copy retries until it observes the same version before and after
        (and no mid-iteration RuntimeError), so a concurrent writer can
        never leave a torn snapshot behind.  The snapshot graph itself is
        only ever *replaced*, never mutated, which is what lets queries
        evaluate on it outside the engine lock.
        """
        if self.dataset is None:
            return
        while True:
            version = self.dataset.version
            if version == self._union_version:
                return
            try:
                snapshot = self.dataset.union_graph()
            except RuntimeError:
                continue  # raced a writer mid-iteration; re-copy
            if self.dataset.version == version:
                self._default = snapshot
                self._union_version = version
                return

    def _default_graph(self) -> Graph:
        """The default graph for the query running on this thread.

        :meth:`_dispatch` pins the current snapshot in a thread-local so
        a concurrent refresh cannot swap graphs mid-evaluation (which
        would mix two dataset versions inside one result).
        """
        pinned = getattr(self._tlocal, "default", None)
        return pinned if pinned is not None else self._default

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current size and version."""
        with self._lock:
            return {
                "size": len(self._result_cache),
                "maxsize": self.cache_size,
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "evictions": self._cache_evictions,
                "version": self.source_version(),
            }

    def clear_cache(self) -> None:
        with self._lock:
            self._result_cache.clear()

    # -- public API ----------------------------------------------------------

    def query(self, query: TyUnion[str, SelectQuery, AskQuery]):
        """Run a SELECT (→ ResultTable) or ASK (→ bool) query.

        String queries go through the LRU result cache: a hit returns
        the previously computed result object as long as the source's
        version is unchanged.  Any mutation bumps the version, which
        makes every older cache entry unreachable (logical invalidation
        — entries age out of the LRU without explicit purging).
        """
        tracer = self.tracer
        if not isinstance(query, str):
            with self._lock:
                self._refresh_default_locked()
            with _span(tracer, "sparql.execute", cat="query"):
                return self._dispatch(query)
        slow_log = self.slow_log
        started = time.perf_counter()
        with _span(tracer, "sparql.query", cat="query",
                   query=query[:120]) as query_span:
            key = None
            with self._lock:
                self._refresh_default_locked()
                if self.cache_size:
                    key = (query, self.source_version())
                    cached = self._result_cache.get(key, _MISS)
                    if cached is not _MISS:
                        self._result_cache.move_to_end(key)
                        self._cache_hits += 1
                        _CACHE_EVENTS.labels("hit").inc()
                        query_span.set(cache="hit")
                        if slow_log is not None:
                            elapsed_ms = (time.perf_counter() - started) * 1000.0
                            if slow_log.should_record(elapsed_ms):
                                slow_log.add(self._slow_record(
                                    query, elapsed_ms, "hit", None, None, query_span))
                        if self.latency_sketch is not None:
                            self._observe_latency(
                                query, None, time.perf_counter() - started)
                        return cached
                    self._cache_misses += 1
                    _CACHE_EVENTS.labels("miss").inc()
                    query_span.set(cache="miss")
            phase_started = time.perf_counter()
            with _span(tracer, "sparql.parse", cat="query"):
                parsed = parse_query(query, namespaces=self.namespaces)
            _QUERY_SECONDS.labels("parse").observe(time.perf_counter() - phase_started)
            # With a slow log attached every miss runs under a profile
            # collector: collection is batch-level (per operator call,
            # not per row), so a threshold-crossing query can log full
            # operator statistics without a costly re-execution.
            collector = ProfileCollector() if slow_log is not None else None
            phase_started = time.perf_counter()
            with _span(tracer, "sparql.execute", cat="query"):
                if collector is not None:
                    self._install_profiler(collector)
                    try:
                        result = self._dispatch(parsed)
                    finally:
                        self._uninstall_profiler()
                else:
                    result = self._dispatch(parsed)
            _QUERY_SECONDS.labels("execute").observe(time.perf_counter() - phase_started)
            if key is not None:
                with self._lock:
                    self._result_cache[key] = result
                    while len(self._result_cache) > self.cache_size:
                        self._result_cache.popitem(last=False)
                        self._cache_evictions += 1
                        _CACHE_EVENTS.labels("eviction").inc()
            if slow_log is not None:
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                if slow_log.should_record(elapsed_ms):
                    slow_log.add(self._slow_record(
                        query, elapsed_ms, "miss", parsed, collector, query_span))
            if self.latency_sketch is not None:
                self._observe_latency(
                    query, parsed, time.perf_counter() - started)
            return result

    # -- introspection -------------------------------------------------------

    def explain(self, query: TyUnion[str, SelectQuery, AskQuery]) -> QueryPlan:
        """EXPLAIN: the plan this engine would execute right now.

        Static — nothing is evaluated.  The returned
        :class:`~repro.sparql.plan.QueryPlan` renders as text, JSON, or
        Chrome-trace args; its ``digest`` is deterministic for a given
        query + source contents, so plan regressions diff cleanly.
        """
        text = query if isinstance(query, str) else None
        if isinstance(query, str):
            parsed = parse_query(query, namespaces=self.namespaces)
        else:
            parsed = query
        with self._lock:
            self._refresh_default_locked()
        return build_plan(parsed, self._default, text=text,
                          optimize=self.optimize_joins)

    def profile(self, query: TyUnion[str, SelectQuery, AskQuery]) -> QueryProfile:
        """PROFILE: execute with per-operator statistics collection.

        Bypasses the result cache in both directions (a cached answer
        would produce an empty profile; a profiled run should not
        poison timings either).  Returns a
        :class:`~repro.sparql.plan.QueryProfile` carrying the result,
        the plan, and the merged stats report.
        """
        text = query if isinstance(query, str) else None
        if isinstance(query, str):
            with _span(self.tracer, "sparql.parse", cat="query"):
                parsed = parse_query(query, namespaces=self.namespaces)
        else:
            parsed = query
        with self._lock:
            self._refresh_default_locked()
        plan = build_plan(parsed, self._default, text=text,
                          optimize=self.optimize_joins)
        collector = ProfileCollector()
        self._install_profiler(collector)
        started = time.perf_counter()
        try:
            with _span(self.tracer, "sparql.execute", cat="query"):
                result = self._dispatch(parsed)
        finally:
            self._uninstall_profiler()
        duration_ms = (time.perf_counter() - started) * 1000.0
        report = plan.profile_report(collector, duration_ms)
        return QueryProfile(result=result, plan=plan, report=report,
                            duration_ms=duration_ms)

    def _plan_digest(self, text: str, parsed) -> Optional[str]:
        """The plan digest for *text* at the current source version.

        Memoized per (text, version) so the cached-result hit path gets
        the digest without re-parsing or re-planning; with ``parsed``
        ``None`` (hit path) an unmemoized digest simply stays unknown —
        the miss that populated the result cache populated this cache
        in the same call, so that only happens across an engine restart.
        """
        key = (text, self.source_version())
        with self._lock:
            digest = self._digest_cache.get(key)
            if digest is not None:
                self._digest_cache.move_to_end(key)
                return digest
        if parsed is None:
            return None
        plan = build_plan(parsed, self._default, text=text,
                          optimize=self.optimize_joins)
        with self._lock:
            self._digest_cache[key] = plan.digest
            while len(self._digest_cache) > _DIGEST_CACHE_SIZE:
                self._digest_cache.popitem(last=False)
        return plan.digest

    def _observe_latency(self, text: str, parsed, seconds: float) -> None:
        digest = self._plan_digest(text, parsed)
        if digest is not None:
            self.latency_sketch.observe(digest, seconds)

    def _slow_record(self, text: str, duration_ms: float, cache: str,
                     parsed, collector, query_span) -> dict:
        """Build one structured slow-query-log record (JSON-serializable)."""
        record = {
            "ts": round(time.time(), 3),
            "query_sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
            "query": text[:200],
            "duration_ms": round(duration_ms, 3),
            "cache": cache,
            "plan_digest": None,
            "generation": self.source_version(),
            # W3C coordinates of the enclosing request, when one is
            # active: the slow-log entry joins /trace/<id> and the
            # X-Trace-Id header by this id.  (NULL_SPAN.id is None, so
            # untraced engines record span_id: null as before.)
            "trace_id": _tracectx.current_trace_id(),
            "span_id": query_span.id,
            "operators": [],
        }
        if parsed is not None:
            plan = build_plan(parsed, self._default, text=text,
                              optimize=self.optimize_joins)
            record["plan_digest"] = plan.digest
            if collector is not None:
                report = plan.profile_report(collector, duration_ms)
                record["operators"] = report["operators"]
                record["misestimates"] = report["misestimates"]
        return record

    # -- profiler plumbing ---------------------------------------------------

    def _install_profiler(self, collector: ProfileCollector) -> None:
        self._tlocal.profiler = collector
        with self._lock:
            self._profiling += 1

    def _uninstall_profiler(self) -> None:
        self._tlocal.profiler = None
        with self._lock:
            self._profiling -= 1

    def _profiler(self):
        """The profiler active on this thread, or ``None`` (hot path:
        one attribute check when no profile is running anywhere)."""
        if not self._profiling:
            return None
        return getattr(self._tlocal, "profiler", None)

    def _dispatch(self, query):
        self._tlocal.default = self._default  # pin the snapshot for this query
        try:
            if isinstance(query, SelectQuery):
                return self._run_select(query)
            if isinstance(query, AskQuery):
                return self._run_ask(query)
            if isinstance(query, ConstructQuery):
                return self._run_construct(query)
            if isinstance(query, DescribeQuery):
                return self._run_describe(query)
            raise TypeError(f"unsupported query type {type(query).__name__}")
        finally:
            self._tlocal.default = None

    def construct(self, text: str) -> Graph:
        result = self.query(text)
        if not isinstance(result, Graph):
            raise TypeError("construct() requires a CONSTRUCT query")
        return result

    def ask(self, text: str) -> bool:
        result = self.query(text)
        if not isinstance(result, bool):
            raise TypeError("ask() requires an ASK query")
        return result

    def select(self, text: str) -> ResultTable:
        result = self.query(text)
        if not isinstance(result, ResultTable):
            raise TypeError("select() requires a SELECT query")
        return result

    # -- SELECT pipeline --------------------------------------------------------

    def _run_select(self, query: SelectQuery) -> ResultTable:
        solutions = self._eval(query.where, [{}], self._default_graph())
        if query.has_aggregates():
            rows, variables = self._aggregate(query, solutions)
            scopes = rows  # ORDER BY sees group keys and aggregate aliases
        else:
            rows, variables = self._project(query, solutions)
            # ORDER BY is evaluated over the pre-projection solution
            # extended with any computed projection aliases.
            scopes = [dict(sol) | row for sol, row in zip(solutions, rows)]
        if query.order_by:
            paired = list(zip(scopes, rows))
            for condition in reversed(query.order_by):
                paired.sort(
                    key=lambda pair: self._order_value(condition.expression, pair[0]),
                    reverse=condition.descending,
                )
            rows = [row for _, row in paired]
        if query.distinct:
            seen = set()
            unique = []
            for row in rows:
                key = tuple(sorted((k, v) for k, v in row.items()))
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            rows = unique
        if query.offset:
            rows = rows[query.offset :]
        if query.limit is not None:
            rows = rows[: query.limit]
        return ResultTable(variables, rows)

    def _run_ask(self, query: AskQuery) -> bool:
        for _ in self._eval(query.where, [{}], self._default_graph()):
            return True
        return False

    def _run_construct(self, query: ConstructQuery) -> Graph:
        """Instantiate the template once per solution; ill-formed
        instantiations (unbound positions, literal subjects) are skipped
        per the SPARQL spec."""
        solutions = self._eval(query.where, [{}], self._default_graph())
        if query.offset:
            solutions = solutions[query.offset:]
        if query.limit is not None:
            solutions = solutions[: query.limit]
        out = Graph(namespaces=self.namespaces.copy())
        for sol in solutions:
            for tp in query.template:
                s = _resolve(tp.subject, sol)
                p = _resolve(tp.predicate, sol)
                o = _resolve(tp.object, sol)
                if isinstance(s, Var) or isinstance(p, Var) or isinstance(o, Var):
                    continue
                if not isinstance(s, (IRI, BlankNode)) or not isinstance(p, IRI):
                    continue
                out.add((s, p, o))
        return out

    def _run_describe(self, query: DescribeQuery) -> Graph:
        """Concise bounded description: every triple whose subject is a
        described resource, expanded through blank-node objects."""
        resources: List[Term] = []
        constants = [t for t in query.targets if not isinstance(t, Var)]
        variables = [t for t in query.targets if isinstance(t, Var)]
        resources.extend(constants)
        if variables:
            solutions = self._eval(query.where, [{}], self._default_graph()) if query.where else []
            for sol in solutions:
                for var in variables:
                    value = sol.get(var.name)
                    if value is not None and value not in resources:
                        resources.append(value)
        out = Graph(namespaces=self.namespaces.copy())
        frontier = list(resources)
        seen = set()
        while frontier:
            resource = frontier.pop()
            if resource in seen or isinstance(resource, Literal):
                continue
            seen.add(resource)
            for t in self._default_graph().triples(resource, None, None):
                out.add(t)
                if isinstance(t.object, BlankNode) and t.object not in seen:
                    frontier.append(t.object)
        return out

    def _project(self, query: SelectQuery, solutions: List[Binding]):
        if query.select_all:
            variables = sorted({name for sol in solutions for name in sol})
            return [dict(sol) for sol in solutions], variables
        variables = [p.var.name for p in query.projections]
        rows = []
        for sol in solutions:
            row: Binding = {}
            for proj in query.projections:
                if proj.expression is None:
                    value = sol.get(proj.var.name)
                else:
                    try:
                        value = evaluate_expression(proj.expression, sol, self._exists)
                    except ExprError:
                        value = None
                if value is not None:
                    row[proj.var.name] = value
            rows.append(row)
        return rows, variables

    def _order_value(self, expression: Expression, row: Binding):
        try:
            return order_key(evaluate_expression(expression, row, self._exists))
        except ExprError:
            return order_key(None)

    # -- aggregation --------------------------------------------------------------

    def _aggregate(self, query: SelectQuery, solutions: List[Binding]):
        groups: Dict[tuple, List[Binding]] = {}
        for sol in solutions:
            key_parts = []
            for expr in query.group_by:
                try:
                    key_parts.append(evaluate_expression(expr, sol, self._exists))
                except ExprError:
                    key_parts.append(None)
            groups.setdefault(tuple(key_parts), []).append(sol)
        if not groups and not query.group_by:
            groups[()] = []  # aggregates over an empty solution set yield one row
        variables = [p.var.name for p in query.projections]
        group_var_names = [
            expr.var.name for expr in query.group_by if isinstance(expr, VarExpr)
        ]
        rows: List[Binding] = []
        for key, members in sorted(groups.items(), key=lambda kv: tuple(order_key(k) for k in kv[0])):
            group_binding: Binding = {}
            for expr, value in zip(query.group_by, key):
                if isinstance(expr, VarExpr) and value is not None:
                    group_binding[expr.var.name] = value
            if query.having is not None:
                try:
                    ok = effective_boolean_value(
                        self._eval_group_expression(query.having, group_binding, members)
                    )
                except ExprError:
                    ok = False
                if not ok:
                    continue
            row: Binding = {}
            for proj in query.projections:
                if proj.expression is None:
                    if proj.var.name not in group_var_names:
                        raise ExprError(
                            f"?{proj.var.name} must appear in GROUP BY or inside an aggregate"
                        )
                    value = group_binding.get(proj.var.name)
                else:
                    try:
                        value = self._eval_group_expression(proj.expression, group_binding, members)
                    except ExprError:
                        value = None
                if value is not None:
                    row[proj.var.name] = value
            rows.append(row)
        return rows, variables

    def _eval_group_expression(self, expr: Expression, group_binding: Binding, members: List[Binding]):
        if isinstance(expr, Aggregate):
            return self._eval_aggregate(expr, members)
        if isinstance(expr, VarExpr):
            value = group_binding.get(expr.var.name)
            if value is None:
                raise ExprError(f"?{expr.var.name} not bound at group level")
            return value
        # Rebuild composite expressions bottom-up over the group context.
        from .algebra import And, Arithmetic, Compare, Not, Or, TermExpr

        if isinstance(expr, TermExpr):
            return expr.term
        if isinstance(expr, Compare):
            from .functions import compare_terms

            left = self._eval_group_expression(expr.left, group_binding, members)
            right = self._eval_group_expression(expr.right, group_binding, members)
            return Literal(
                "true" if compare_terms(expr.op, left, right) else "false",
                datatype="http://www.w3.org/2001/XMLSchema#boolean",
            )
        if isinstance(expr, (And, Or, Not, Arithmetic, FunctionCall)):
            # Aggregate-free subtrees evaluate under the group binding alone.
            return evaluate_expression(expr, group_binding, self._exists)
        raise ExprError(f"unsupported group-level expression {type(expr).__name__}")

    def _eval_aggregate(self, agg: Aggregate, members: List[Binding]):
        from ..rdf.terms import from_python

        values: List[Term] = []
        if agg.expression is None:  # COUNT(*)
            count = len(members)
            if agg.distinct:
                count = len({tuple(sorted((k, v) for k, v in m.items())) for m in members})
            return from_python(count)
        for member in members:
            try:
                values.append(evaluate_expression(agg.expression, member, self._exists))
            except ExprError:
                continue
        if agg.distinct:
            unique: List[Term] = []
            seen = set()
            for value in values:
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            values = unique
        if agg.name == "COUNT":
            return from_python(len(values))
        if agg.name == "SAMPLE":
            return values[0] if values else None
        if agg.name == "GROUP_CONCAT":
            return Literal(agg.separator.join(_lexical(v) for v in values))
        if not values:
            return None
        if agg.name in ("MIN", "MAX"):
            chooser = min if agg.name == "MIN" else max
            return chooser(values, key=order_key)
        numbers = []
        for value in values:
            if isinstance(value, Literal) and value.is_numeric:
                numbers.append(float(value.lexical))
            else:
                raise ExprError(f"{agg.name} over non-numeric value")
        if agg.name == "SUM":
            total = sum(numbers)
            return from_python(int(total) if total == int(total) else total)
        if agg.name == "AVG":
            return from_python(sum(numbers) / len(numbers))
        raise ExprError(f"unknown aggregate {agg.name}")

    # -- pattern evaluation ---------------------------------------------------------

    def _eval(self, pattern: Pattern, inputs: List[Binding], graph: Graph) -> List[Binding]:
        # Hot path: one int check when nobody is profiling anywhere.
        if not self._profiling:
            return self._eval_node(pattern, inputs, graph)
        profiler = getattr(self._tlocal, "profiler", None)
        if profiler is None:
            return self._eval_node(pattern, inputs, graph)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        out = self._eval_node(pattern, inputs, graph)
        profiler.record_operator(
            pattern, len(inputs), len(out),
            time.perf_counter() - wall0, time.process_time() - cpu0)
        return out

    def _eval_node(self, pattern: Pattern, inputs: List[Binding], graph: Graph) -> List[Binding]:
        if isinstance(pattern, BGP):
            return self._eval_bgp(pattern, inputs, graph)
        if isinstance(pattern, Join):
            return self._eval(pattern.right, self._eval(pattern.left, inputs, graph), graph)
        if isinstance(pattern, LeftJoin):
            return self._eval_left_join(pattern, inputs, graph)
        if isinstance(pattern, Union):
            left = self._eval(pattern.left, inputs, graph)
            right = self._eval(pattern.right, inputs, graph)
            return left + right
        if isinstance(pattern, Minus):
            return self._eval_minus(pattern, inputs, graph)
        if isinstance(pattern, Filter):
            solutions = self._eval(pattern.pattern, inputs, graph)
            kept = []
            for sol in solutions:
                try:
                    if effective_boolean_value(
                        evaluate_expression(pattern.condition, sol, self._exists)
                    ):
                        kept.append(sol)
                except ExprError:
                    continue
            return kept
        if isinstance(pattern, Bind):
            solutions = self._eval(pattern.pattern, inputs, graph)
            out = []
            for sol in solutions:
                extended = dict(sol)
                try:
                    value = evaluate_expression(pattern.expression, sol, self._exists)
                    if pattern.var.name in extended and extended[pattern.var.name] != value:
                        continue  # BIND clash: solution is incompatible
                    extended[pattern.var.name] = value
                except ExprError:
                    pass  # errors leave the variable unbound
                out.append(extended)
            return out
        if isinstance(pattern, GraphPattern):
            return self._eval_graph_pattern(pattern, inputs)
        if isinstance(pattern, Values):
            return self._eval_values(pattern, inputs, graph)
        raise TypeError(f"unknown pattern type {type(pattern).__name__}")

    def _eval_values(self, pattern: Values, inputs: List[Binding], graph: Graph):
        base = (
            self._eval(pattern.pattern, inputs, graph)
            if pattern.pattern is not None
            else [dict(sol) for sol in inputs]
        )
        out: List[Binding] = []
        for sol in base:
            for row in pattern.rows:
                merged = dict(sol)
                compatible = True
                for var, value in zip(pattern.variables, row):
                    if value is None:
                        continue  # UNDEF leaves the variable as-is
                    existing = merged.get(var.name)
                    if existing is None:
                        merged[var.name] = value
                    elif existing != value:
                        compatible = False
                        break
                if compatible:
                    out.append(merged)
        return out

    def _eval_bgp(self, bgp: BGP, inputs: List[Binding], graph: Graph) -> List[Binding]:
        if not bgp.triples:
            return [dict(sol) for sol in inputs]
        # After OPTIONAL/UNION the inputs are heterogeneous: only a
        # variable bound in *every* input solution may seed the planner
        # as bound, or patterns get ordered for bindings most solutions
        # don't have.
        if inputs:
            bound = set(inputs[0])
            for sol in inputs[1:]:
                bound.intersection_update(sol)
        else:
            bound = set()
        if self.optimize_joins:
            if self.tracer is not None:
                with _span(self.tracer, "sparql.plan", cat="query",
                           patterns=len(bgp.triples)):
                    steps = plan_bgp_steps(bgp.triples, bound, graph)
            else:
                steps = plan_bgp_steps(bgp.triples, bound, graph)
        else:
            steps = written_order_steps(bgp.triples, graph)
        profiler = (getattr(self._tlocal, "profiler", None)
                    if self._profiling else None)
        # The encoded pipeline pays off when a step can see more than
        # one binding — a multi-pattern BGP (the batch grows step to
        # step) or a multi-solution input.  A single-pattern BGP over a
        # single solution (EXISTS checks, OPTIONAL right sides seeded
        # one binding at a time) has exactly one scan range either way,
        # so the leaner per-binding path wins.
        batchable = len(bgp.triples) > 1 or len(inputs) > 1
        executor = (encoded_executor(graph, bgp.triples)
                    if self.encoded and batchable else None)
        if executor is not None:
            # Id-space pipeline: encode once, extend batches of encoded
            # bindings (merge/bisect scans), decode once at egress.
            batch = executor.encode_inputs(inputs)
            for step in steps:
                if profiler is not None:
                    batch = profiler.run_pattern(step, batch, graph, executor.extend)
                else:
                    batch = executor.extend(step, batch, graph)
                if not batch:
                    return []
            return executor.decode(batch)
        solutions = [dict(sol) for sol in inputs]
        for step in steps:
            if profiler is not None:
                solutions = profiler.run_pattern(
                    step, solutions, graph, self._extend_step)
            else:
                solutions = self._extend_with_pattern(step.pattern, solutions, graph)
            if not solutions:
                return []
        return solutions

    def _extend_step(self, step, solutions: List[Binding], graph: Graph) -> List[Binding]:
        """Profiler callback for the decoded pipeline (the profiler hands
        the full :class:`PlanStep` so encoded execution can reuse its
        annotations; here only the pattern matters)."""
        return self._extend_with_pattern(step.pattern, solutions, graph)

    def _extend_with_pattern(
        self, tp: TriplePattern, solutions: List[Binding], graph: Graph
    ) -> List[Binding]:
        out: List[Binding] = []
        is_path = isinstance(tp.predicate, Path)
        for sol in solutions:
            s = _resolve(tp.subject, sol)
            o = _resolve(tp.object, sol)
            if is_path:
                for s_val, o_val in eval_path(
                    graph,
                    tp.predicate,
                    s if not isinstance(s, Var) else None,
                    o if not isinstance(o, Var) else None,
                    use_index=self.path_index,
                ):
                    extended = dict(sol)
                    if _bind(extended, s, s_val) and _bind(extended, o, o_val):
                        out.append(extended)
                continue
            p = _resolve(tp.predicate, sol)
            # A variable repeated inside the pattern must match consistently.
            for triple in graph.triples(
                s if not isinstance(s, Var) else None,
                p if not isinstance(p, Var) else None,
                o if not isinstance(o, Var) else None,
            ):
                extended = dict(sol)
                if not _bind(extended, s, triple.subject):
                    continue
                if not _bind(extended, p, triple.predicate):
                    continue
                if not _bind(extended, o, triple.object):
                    continue
                out.append(extended)
        return out

    def _eval_left_join(self, pattern: LeftJoin, inputs: List[Binding], graph: Graph):
        lefts = self._eval(pattern.left, inputs, graph)
        out: List[Binding] = []
        for sol in lefts:
            extensions = self._eval(pattern.right, [sol], graph)
            if pattern.condition is not None:
                kept = []
                for ext in extensions:
                    try:
                        if effective_boolean_value(
                            evaluate_expression(pattern.condition, ext, self._exists)
                        ):
                            kept.append(ext)
                    except ExprError:
                        continue
                extensions = kept
            if extensions:
                out.extend(extensions)
            else:
                out.append(sol)
        return out

    def _eval_minus(self, pattern: Minus, inputs: List[Binding], graph: Graph):
        lefts = self._eval(pattern.left, inputs, graph)
        rights = self._eval(pattern.right, [{}], graph)
        out = []
        for sol in lefts:
            excluded = False
            for other in rights:
                shared = set(sol) & set(other)
                if shared and all(sol[v] == other[v] for v in shared):
                    excluded = True
                    break
            if not excluded:
                out.append(sol)
        return out

    def _eval_graph_pattern(self, pattern: GraphPattern, inputs: List[Binding]):
        if self.dataset is None:
            return []  # a bare graph has no named graphs
        out: List[Binding] = []
        if isinstance(pattern.name, Var):
            var = pattern.name.name
            for sol in inputs:
                pre_bound = sol.get(var)
                names = [pre_bound] if pre_bound is not None else self.dataset.graph_names()
                for name in names:
                    if not self.dataset.has_graph(name):
                        continue
                    seeded = dict(sol)
                    seeded[var] = name
                    out.extend(self._eval(pattern.pattern, [seeded], self.dataset.graph(name)))
            return out
        target_name = pattern.name
        if not self.dataset.has_graph(target_name):
            return []
        target = self.dataset.graph(target_name)
        return self._eval(pattern.pattern, inputs, target)

    def _exists(self, pattern: Pattern, binding: Binding) -> bool:
        """EXISTS probe: does *pattern* match under *binding*?"""
        return bool(self._eval(pattern, [dict(binding)], self._default_graph()))


def _resolve(term, binding: Binding):
    if isinstance(term, Var):
        bound = binding.get(term.name)
        return bound if bound is not None else term
    return term


def _bind(binding: Binding, pattern_term, value: Term) -> bool:
    """Record a variable match; False if it conflicts with an earlier one."""
    if isinstance(pattern_term, Var):
        existing = binding.get(pattern_term.name)
        if existing is None:
            binding[pattern_term.name] = value
            return True
        return existing == value
    return True


def _lexical(term: Term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    return str(term)


def _corpus_namespaces(source) -> NamespaceManager:
    nsm = source.namespaces.copy()
    for prefix, base in CORE_PREFIXES.items():
        if prefix not in nsm:
            nsm.bind(prefix, base)
    return nsm
