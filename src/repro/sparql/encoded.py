"""Encoded-ID BGP execution over store-backed graphs.

The decoded pipeline resolves every pattern against a solution's *terms*
and re-encodes them per binding inside ``StoreGraph.triples()`` — paying
a dictionary lookup, a fresh binary search, and a per-record decode for
every partial solution.  This module keeps the whole BGP in u32 term
ids instead:

* constants are resolved to ids once per pattern (an unknown constant
  empties the batch immediately);
* each input solution carries a parallel ``{var: id}`` dict, extended
  batch-at-a-time as patterns execute;
* ids are decoded back to terms only once, when the finished batch
  leaves the BGP.

Patterns probe the same four sorted segment orderings the decoded path
uses (the ordering choice replicates ``StoreGraph._match_ids`` exactly,
so row order is byte-identical), but batch execution unlocks two
operators the per-binding path cannot express:

* **bisect** — when no join-bound variable sits in the ordering's sort
  prefix, every solution in the group shares one probe key, so the
  range is located and materialized *once* for the whole batch;
* **merge** — when a join-bound variable is in the prefix, the group's
  keys are sorted and a monotone cursor advances with galloping search
  (:meth:`SegmentReader.gallop_left`), making a batch of k probes cost
  O(k · log(gap)) instead of O(k · log n).

The executor is created per BGP via :func:`encoded_executor`, which
duck-types on ``graph.encoded_scope()`` — in-memory graphs (no encoded
surface) and BGPs containing property paths fall back to the decoded
pipeline.  Paths must: a zero-length closure (``p*``) yields ``(t, t)``
even for a term the dictionary has never seen, which id space cannot
represent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs import metrics as _metrics
from ..rdf.terms import Term
from .algebra import TriplePattern, Var
from .paths import Path
from .plan import PlanStep, SEGMENT_ORDERINGS, choose_access

__all__ = ["encoded_executor", "EncodedExecutor"]

_SCAN_STRATEGY = _metrics.counter(
    "repro_query_scan_strategy_total",
    "Encoded BGP scan batches by chosen operator",
    labels=("strategy",),
)
for _strategy in ("merge", "bisect"):
    _SCAN_STRATEGY.labels(_strategy)
del _strategy

#: (orig solution, encoded bindings). ``enc`` maps a variable to its
#: term id, or None when the bound term is unknown to the dictionary —
#: such a solution dies at the first step that uses the variable.
EncodedSolution = Tuple[Dict[str, Term], Dict[str, Optional[int]]]

_ABSENT = object()


def encoded_executor(graph, patterns: List[TriplePattern]):
    """An :class:`EncodedExecutor` for *graph*, or ``None`` when the
    graph has no encoded surface or the BGP contains a property path."""
    scope_of = getattr(graph, "encoded_scope", None)
    if scope_of is None:
        return None
    if any(isinstance(tp.predicate, Path) for tp in patterns):
        return None
    return EncodedExecutor(graph, scope_of(), patterns)


class EncodedExecutor:
    """Executes one BGP's steps batch-at-a-time in id space."""

    __slots__ = ("graph", "scope", "_bgp_vars")

    def __init__(self, graph, scope: Optional[int], patterns: List[TriplePattern]):
        self.graph = graph
        self.scope = scope
        self._bgp_vars = set()
        for tp in patterns:
            self._bgp_vars |= tp.variables()

    # -- batch lifecycle -----------------------------------------------------

    def encode_inputs(self, inputs: List[Dict[str, Term]]) -> List[EncodedSolution]:
        """Encode only the variables this BGP's patterns touch."""
        graph = self.graph
        needed = self._bgp_vars
        batch: List[EncodedSolution] = []
        for sol in inputs:
            enc: Dict[str, Optional[int]] = {}
            for name, value in sol.items():
                if name in needed:
                    enc[name] = graph.term_to_id(value)
            batch.append((sol, enc))
        return batch

    def decode(self, batch: List[EncodedSolution]) -> List[Dict[str, Term]]:
        """Materialize terms for variables bound during the BGP."""
        graph = self.graph
        out = []
        for orig, enc in batch:
            sol = dict(orig)
            for name, term_id in enc.items():
                if name not in sol and term_id is not None:
                    sol[name] = graph.id_to_term(term_id)
            out.append(sol)
        return out

    # -- one pattern step ----------------------------------------------------

    def extend(self, step: PlanStep, batch: List[EncodedSolution], graph=None):
        """Extend every solution in *batch* through *step*'s pattern.

        Outputs preserve input order (each solution's extensions are
        emitted in segment-record order, matching the decoded path
        byte for byte); an empty return short-circuits the BGP.
        """
        tp = step.pattern
        terms = (tp.subject, tp.predicate, tp.object)
        names = [t.name if isinstance(t, Var) else None for t in terms]
        const_ids: List[Optional[int]] = [None, None, None]
        for position, term in enumerate(terms):
            if names[position] is None:
                const_id = self.graph.term_to_id(term)
                if const_id is None:
                    return []  # unknown constant: nothing can match
                const_ids[position] = const_id

        # Group solutions by their *actual* bound signature — after
        # OPTIONAL/UNION the batch is heterogeneous and each group may
        # need a different ordering (mirroring the decoded path, which
        # re-chose per solution).
        groups: Dict[str, List[int]] = {}
        for index, (_, enc) in enumerate(batch):
            mask_chars = []
            dead = False
            for position in (0, 1, 2):
                name = names[position]
                if name is None:
                    mask_chars.append("b")
                    continue
                value = enc.get(name, _ABSENT)
                if value is _ABSENT:
                    mask_chars.append("?")
                elif value is None:
                    dead = True  # bound to a term the store never saw
                    break
                else:
                    mask_chars.append("j")
            if not dead:
                groups.setdefault("".join(mask_chars), []).append(index)

        extensions: List[List[EncodedSolution]] = [[] for _ in batch]
        for mask, indices in groups.items():
            self._run_group(mask, indices, batch, names, const_ids, extensions)
        out: List[EncodedSolution] = []
        for per_input in extensions:
            out.extend(per_input)
        return out

    def _run_group(self, mask, indices, batch, names, const_ids, extensions):
        scope = self.scope
        operator, ordering = choose_access(mask, scope)
        perm = SEGMENT_ORDERINGS[ordering]
        reader = self.graph.segment_reader(ordering)
        graph_filter = scope if (scope is not None and ordering != "gspo") else None
        deduplicate = scope is None  # union: same triple in several graphs
        free_positions = [p for p in (0, 1, 2) if mask[p] == "?"]

        def key_of(enc) -> Tuple[int, ...]:
            key = []
            for field in range(4):
                position = perm[field]
                if position == 3:
                    if ordering == "gspo":
                        key.append(scope)
                        continue
                    break  # union orderings never bind the graph field
                state = mask[position]
                if state == "?":
                    break
                key.append(
                    const_ids[position] if state == "b" else enc[names[position]]
                )
            return tuple(key)

        solution_keys = [(index, key_of(batch[index][1])) for index in indices]
        unique_keys = {key for _, key in solution_keys}
        if operator == "merge" and len(unique_keys) < 2:
            # A merge over one key *is* a bisect probe — and galloping
            # to it from record 0 would cost ~2× the comparisons.  This
            # is the common case for per-solution sub-evaluations
            # (EXISTS, OPTIONAL right sides seeded one binding at a
            # time), so dispatch on the runtime key count, not just the
            # static mask.
            operator = "bisect"
        _SCAN_STRATEGY.labels(operator).inc()
        matches: Dict[Tuple[int, ...], List[Tuple[int, int, int]]] = {}
        if operator == "merge":
            # Sorted keys + a monotone galloping cursor: each range
            # starts at or after the previous one's end.
            cursor = 0
            for key in sorted(unique_keys):
                lo = reader.gallop_left(key, cursor)
                hi = reader.gallop_left(key[:-1] + (key[-1] + 1,), lo)
                matches[key] = self._materialize(
                    reader, lo, hi, perm, graph_filter, deduplicate
                )
                cursor = hi
        else:
            # Either no join-bound prefix position (every solution in
            # the group shares the constants-only key) or a single-key
            # merge demoted above: one bisect per distinct key.
            for key in unique_keys:
                lo, hi = reader.range_for_prefix(key)
                matches[key] = self._materialize(
                    reader, lo, hi, perm, graph_filter, deduplicate
                )

        for index, key in solution_keys:
            orig, enc = batch[index]
            slot = extensions[index]
            for triple in matches[key]:
                new_enc = enc
                compatible = True
                for position in free_positions:
                    name = names[position]
                    value = triple[position]
                    current = new_enc.get(name, _ABSENT)
                    if current is _ABSENT:
                        if new_enc is enc:
                            new_enc = dict(enc)
                        new_enc[name] = value
                    elif current != value:
                        compatible = False  # repeated variable mismatch
                        break
                if compatible:
                    slot.append((orig, new_enc))

    @staticmethod
    def _materialize(reader, lo, hi, perm, graph_filter, deduplicate):
        """Record range → (s, p, o) id triples, permuted back, with the
        graph id filtered (single-graph over a union ordering) or
        adjacent duplicates collapsed (union scope: graph sorts last, so
        the same triple from several graphs is adjacent)."""
        triples: List[Tuple[int, int, int]] = []
        record = reader.record
        last = None
        for index in range(lo, hi):
            rec = record(index)
            if graph_filter is not None and rec[3] != graph_filter:
                continue
            if deduplicate:
                head = rec[:3]
                if head == last:
                    continue
                last = head
            ids = [0, 0, 0]
            for field in range(4):
                position = perm[field]
                if position != 3:
                    ids[position] = rec[field]
            triples.append((ids[0], ids[1], ids[2]))
        return triples
