"""EXPLAIN / PROFILE: serializable query plans and operator statistics.

The planner (:func:`plan_bgp_steps`) is the single source of truth for
BGP join ordering: :func:`repro.sparql.evaluator.plan_bgp` delegates to
it, so the order EXPLAIN shows is — by construction, not by convention —
the order the evaluator executes.  Each chosen pattern carries:

* a **bound mask** (one char per position: ``b`` constant, ``j``
  join-bound variable, ``?`` free) at the moment it was selected;
* the **predicate cardinality estimate** the statistics cache supplied;
* a **tiebreak reason** — the first score component that separated the
  winner from the runner-up (or "only pattern" / "tie: written order").

:func:`build_plan` folds a parsed query into a :class:`QueryPlan`: a
tree of :class:`PlanNode` rendered as text, JSON, or Chrome-trace args.
The **digest** is the first 16 hex chars of the SHA-256 of the plan's
canonical JSON; it covers only static facts (operators, pattern order,
masks, estimates, reasons), so the same query over the same store yields
byte-identical EXPLAIN output across runs and across ``--jobs`` builds
(PR 3 made stores bit-identical; statistics derive from them).

:class:`ProfileCollector` is the opt-in per-operator statistics
recorder the evaluator consults at two choke points (operator dispatch
and per-pattern extension).  When no profile is active the evaluator
pays a single attribute check — the same contract as the
:class:`~repro.obs.metrics.MetricsRegistry`.  Collected per operator:
rows in/out, wall and CPU time, call count; per scan additionally
segment bisect probes and decode-LRU hits (attributed by reading the
store's plain-int counters before/after each pattern batch) and the
estimate-vs-actual cardinality error.  A pattern whose actual output
exceeds its estimate by more than 10x bumps
``repro_planner_misestimate_total`` so bench trajectories catch
statistics staleness.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..obs import metrics as _metrics
from ..rdf.terms import IRI
from .algebra import (
    Aggregate,
    And,
    Arithmetic,
    AskQuery,
    BGP,
    Bind,
    Compare,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Filter,
    FunctionCall,
    GraphPattern,
    InExpr,
    Join,
    LeftJoin,
    Minus,
    Not,
    Or,
    Pattern,
    SelectQuery,
    TermExpr,
    TriplePattern,
    Union,
    Values,
    Var,
    VarExpr,
)
from .paths import (
    Path,
    PathAlternative,
    PathClosure,
    PathInverse,
    PathSequence,
    index_supported,
)

__all__ = [
    "PlanStep",
    "PlanNode",
    "QueryPlan",
    "QueryProfile",
    "ProfileCollector",
    "SEGMENT_ORDERINGS",
    "build_plan",
    "choose_access",
    "plan_bgp_steps",
    "render_term",
    "render_expression",
]

_MISESTIMATES = _metrics.counter(
    "repro_planner_misestimate_total",
    "Profiled scans whose actual cardinality exceeded the estimate by >10x",
)

#: Factor by which actual rows must exceed the estimate to count as a
#: planner misestimate (only judged when an estimate exists).
MISESTIMATE_FACTOR = 10

# ---------------------------------------------------------------------------
# Deterministic rendering of algebra fragments
# ---------------------------------------------------------------------------


def render_term(term) -> str:
    """A stable string for a pattern position: term N3, ``?var``, or path."""
    if isinstance(term, Var):
        return f"?{term.name}"
    if isinstance(term, Path):
        return _render_path(term)
    n3 = getattr(term, "n3", None)
    return n3() if callable(n3) else str(term)


def _render_path(path) -> str:
    if isinstance(path, PathSequence):
        return "/".join(_render_path(step) for step in path.steps)
    if isinstance(path, PathAlternative):
        return "(" + "|".join(_render_path(o) for o in path.options) + ")"
    if isinstance(path, PathInverse):
        return "^" + _render_path(path.inner)
    if isinstance(path, PathClosure):
        return _render_path(path.inner) + ("*" if path.include_zero else "+")
    return render_term(path)


def render_triple_pattern(tp: TriplePattern) -> str:
    return (
        f"{render_term(tp.subject)} {render_term(tp.predicate)} "
        f"{render_term(tp.object)}"
    )


def render_expression(expr) -> str:
    """A stable one-line rendering of a filter/select expression."""
    if expr is None:
        return ""
    if isinstance(expr, VarExpr):
        return f"?{expr.var.name}"
    if isinstance(expr, TermExpr):
        return render_term(expr.term)
    if isinstance(expr, And):
        return f"({render_expression(expr.left)} && {render_expression(expr.right)})"
    if isinstance(expr, Or):
        return f"({render_expression(expr.left)} || {render_expression(expr.right)})"
    if isinstance(expr, Not):
        return f"!({render_expression(expr.operand)})"
    if isinstance(expr, Compare):
        return f"({render_expression(expr.left)} {expr.op} {render_expression(expr.right)})"
    if isinstance(expr, Arithmetic):
        return f"({render_expression(expr.left)} {expr.op} {render_expression(expr.right)})"
    if isinstance(expr, FunctionCall):
        args = ", ".join(render_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ExistsExpr):
        return ("NOT EXISTS" if expr.negated else "EXISTS") + "{...}"
    if isinstance(expr, InExpr):
        choices = ", ".join(render_expression(c) for c in expr.choices)
        keyword = "NOT IN" if expr.negated else "IN"
        return f"({render_expression(expr.operand)} {keyword} ({choices}))"
    if isinstance(expr, Aggregate):
        inner = "*" if expr.expression is None else render_expression(expr.expression)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{inner})"
    return type(expr).__name__


# ---------------------------------------------------------------------------
# Annotated BGP planning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanStep:
    """One chosen triple pattern with the evidence behind the choice."""

    pattern: TriplePattern
    bound_mask: str  # 'b' constant, 'j' join-bound var, '?' free — s/p/o
    estimate: int  # predicate cardinality estimate (0 = unknown)
    reason: str  # which score component won the tiebreak
    #: Scan operator for encoded (store-backed) execution: "merge" when
    #: a join-bound variable sits in the chosen ordering's sort prefix
    #: (batch sorted, monotone galloping cursor), "bisect" otherwise.
    #: ``None`` on graphs without an encoded surface, and for BGPs
    #: containing property paths (those run on the decoded pipeline).
    access: Optional[str] = None
    #: Segment ordering the scan ranges over (spog/posg/ospg/gspo).
    ordering: Optional[str] = None


#: Mirrors :data:`repro.store.segments.ORDERINGS`.  The planner must
#: stay store-agnostic (sparql does not import from repro.store), so the
#: permutations are restated here; a test pins the two in lockstep.
SEGMENT_ORDERINGS = {
    "spog": (0, 1, 2, 3),
    "posg": (1, 2, 0, 3),
    "ospg": (2, 0, 1, 3),
    "gspo": (3, 0, 1, 2),
}

#: Union-scope ordering preference: first ordering whose sort prefix
#: covers the pattern's bound positions wins.  Mirrors the dispatch in
#: ``StoreGraph._match_ids`` — every subset of {s, p, o} is a prefix of
#: exactly one entry when probed in this order.
_UNION_PREFERENCE = (
    ("spog", (0, 1, 2)),
    ("posg", (1, 2, 0)),
    ("ospg", (2, 0, 1)),
)


def choose_access(mask: str, scope: Optional[int]) -> Tuple[str, str]:
    """(operator, ordering) for one pattern under a graph scope.

    *mask* is the s/p/o bound mask ('b' constant, 'j' join-bound, '?'
    free); *scope* is ``None`` for the union of all graphs or a graph id
    for a single-graph view.  The ordering is the one whose sort prefix
    covers every bound position — single-graph scopes prefer ``gspo``
    when the bound set is an (s, p, o) chain prefix (the graph id leads
    the key), else fall back to a union ordering with the graph id
    filtered per record.  The operator is "merge" when any prefix
    position is join-bound: the executor sorts the batch's keys and
    advances a monotone galloping cursor instead of bisecting from
    scratch per binding.
    """
    bound = [i for i, c in enumerate(mask) if c != "?"]
    bound_set = set(bound)
    if scope is not None and bound_set == set(range(len(bound))):
        prefix_positions: Tuple[int, ...] = tuple(range(len(bound)))
        ordering = "gspo"
    else:
        for ordering, prefix in _UNION_PREFERENCE:
            if set(prefix[: len(bound)]) == bound_set:
                prefix_positions = prefix[: len(bound)]
                break
    operator = "merge" if any(mask[i] == "j" for i in prefix_positions) else "bisect"
    return operator, ordering


def _access_annotator(patterns: List[TriplePattern], graph):
    """(mask, tp) → (access, ordering) annotation for one plan step.

    Plain patterns annotate via :func:`choose_access` when *graph*
    supports encoded execution and the BGP is path-free (a path in the
    BGP disables the encoded executor, so advertising merge/bisect there
    would describe a pipeline that never runs).  Property-path steps
    annotate ``("pathindex", "fwd"|"inv")`` when the graph's persisted
    path index can serve the path — the direction the closure BFS walks
    given the mask's bound endpoint.  Annotating only capability-bearing
    graphs keeps in-memory plan digests byte-identical to earlier
    releases.
    """
    scope_of = getattr(graph, "encoded_scope", None)
    has_path = any(isinstance(tp.predicate, Path) for tp in patterns)
    index = None
    if has_path:
        probe = getattr(graph, "path_index", None)
        index = probe() if callable(probe) else None
    if scope_of is None and index is None:
        return lambda mask, tp: (None, None)
    scope = scope_of() if scope_of is not None else None

    def annotate(mask, tp):
        if isinstance(tp.predicate, Path):
            if index is not None and index_supported(tp.predicate, index):
                direction = "fwd" if mask[0] != "?" or mask[2] == "?" else "inv"
                return ("pathindex", direction)
            return (None, None)
        if scope_of is None or has_path:
            return (None, None)
        return choose_access(mask, scope)

    return annotate


#: Score-tuple component index → human-readable tiebreak reason.  Must
#: stay aligned with the tuple built in :func:`_score`.
_SCORE_REASONS = (
    "most bound positions",
    "plain pattern before property path",
    "bound subject",
    "bound object",
    "lower predicate cardinality",
)


def _mask(tp: TriplePattern, bound: set) -> str:
    chars = []
    for term in (tp.subject, tp.predicate, tp.object):
        if isinstance(term, Var):
            chars.append("j" if term.name in bound else "?")
        else:
            chars.append("b")
    return "".join(chars)


def plan_bgp_steps(
    patterns: List[TriplePattern],
    bound_vars: Iterable[str] = (),
    graph=None,
) -> List[PlanStep]:
    """Order triple patterns most-selective-first, with annotations.

    Greedy: repeatedly pick the pattern with the most bound positions
    (constants plus variables already bound by previously chosen
    patterns), preferring plain patterns over property paths, bound
    subjects over bound objects, and using the graph's predicate
    cardinalities as the final tiebreaker.  This is the planner the
    evaluator executes (``plan_bgp`` is a thin wrapper), so EXPLAIN
    output is the executed order by construction.
    """
    remaining = list(patterns)
    bound = set(bound_vars)
    statistics = graph.statistics() if graph is not None else None
    annotate = _access_annotator(patterns, graph)
    steps: List[PlanStep] = []

    def score(tp: TriplePattern) -> tuple:
        s = not isinstance(tp.subject, Var) or tp.subject.name in bound
        p = not isinstance(tp.predicate, Var) or tp.predicate.name in bound
        o = not isinstance(tp.object, Var) or tp.object.name in bound
        bound_count = s + p + o
        cardinality = 0
        if isinstance(tp.predicate, IRI) and p:
            cardinality = (
                statistics.predicate_cardinality(tp.predicate)
                if statistics is not None
                else 0
            )
        is_path = isinstance(tp.predicate, Path)
        return (-bound_count, is_path, not s, not o, cardinality)

    while remaining:
        scored = sorted(
            ((score(tp), index, tp) for index, tp in enumerate(remaining)),
            key=lambda item: (item[0], item[1]),
        )
        best_score, best_index, best = scored[0]
        if len(scored) == 1:
            reason = "only pattern"
        else:
            reason = "tie: written order"
            runner_score = scored[1][0]
            for component, (won, lost) in enumerate(zip(best_score, runner_score)):
                if won != lost:
                    reason = _SCORE_REASONS[component]
                    break
        estimate = 0
        if isinstance(best.predicate, IRI) and statistics is not None:
            estimate = statistics.predicate_cardinality(best.predicate)
        mask = _mask(best, bound)
        access, ordering = annotate(mask, best)
        steps.append(PlanStep(best, mask, estimate, reason, access, ordering))
        remaining.pop(best_index)
        bound.update(best.variables())
    return steps


def written_order_steps(
    patterns: List[TriplePattern], graph=None
) -> List[PlanStep]:
    """Steps for an engine with join optimization disabled.

    Masks are computed with no assumed bindings (matching historical
    EXPLAIN output for optimizer-off engines), so the static operator
    choice here can only be "bisect"; the encoded executor still picks
    merge at runtime from the solutions' actual bound sets.
    """
    annotate = _access_annotator(patterns, graph)
    steps = []
    for tp in patterns:
        mask = _mask(tp, set())
        access, ordering = annotate(mask, tp)
        steps.append(PlanStep(tp, mask, 0, "written order", access, ordering))
    return steps


# ---------------------------------------------------------------------------
# Plan tree
# ---------------------------------------------------------------------------


@dataclass
class PlanNode:
    """One operator in a query plan.

    ``detail`` holds only static, JSON-serializable facts (it feeds the
    digest); ``key`` is the ``id()`` of the algebra node this operator
    came from, letting a :class:`ProfileCollector` attach runtime stats
    recorded against the same parsed query object.
    """

    op: str
    detail: Dict[str, object] = field(default_factory=dict)
    children: List["PlanNode"] = field(default_factory=list)
    key: Optional[int] = None

    def to_dict(self) -> dict:
        out: dict = {"op": self.op}
        if self.detail:
            out["detail"] = self.detail
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def walk(self) -> Iterable["PlanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


class QueryPlan:
    """A stable, serializable plan tree plus its digest."""

    def __init__(self, root: PlanNode, query: Optional[str] = None):
        self.root = root
        self.query = query
        self._digest: Optional[str] = None

    @property
    def digest(self) -> str:
        """First 16 hex chars of SHA-256 over the canonical plan JSON.

        Deterministic by construction: the dict holds only static plan
        facts, serialized with sorted keys and fixed separators.
        """
        if self._digest is None:
            canonical = json.dumps(
                self.root.to_dict(), sort_keys=True, separators=(",", ":")
            )
            self._digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        return self._digest

    def to_dict(self) -> dict:
        return {"digest": self.digest, "plan": self.root.to_dict()}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def to_text(self) -> str:
        """Byte-stable indented tree rendering."""
        lines = [f"plan digest={self.digest}"]
        self._render(self.root, lines, prefix="", is_last=True, is_root=True)
        return "\n".join(lines)

    def trace_args(self) -> Dict[str, object]:
        """Flat attributes suitable for a Chrome-trace span's ``args``."""
        return {
            "plan_digest": self.digest,
            "plan_operators": sum(1 for _ in self.root.walk()),
        }

    def _render(self, node: PlanNode, lines, prefix, is_last, is_root=False):
        detail = _render_detail(node.detail)
        label = f"{node.op}{'  ' + detail if detail else ''}"
        if is_root:
            lines.append(label)
            child_prefix = ""
        else:
            connector = "`- " if is_last else "|- "
            lines.append(f"{prefix}{connector}{label}")
            child_prefix = prefix + ("   " if is_last else "|  ")
        for index, child in enumerate(node.children):
            self._render(child, lines, child_prefix, index == len(node.children) - 1)

    # -- profile merging ----------------------------------------------------

    def profile_report(
        self, collector: "ProfileCollector", duration_ms: Optional[float] = None
    ) -> dict:
        """Merge collected runtime statistics into the plan tree.

        Returns a JSON-serializable dict with the merged tree plus a
        flat preorder ``operators`` list (what the slow-query log
        embeds).  Nodes the evaluator never reached keep zero stats.
        """
        operators: List[dict] = []

        def merge(node: PlanNode) -> dict:
            out: dict = {"op": node.op}
            if node.detail:
                out["detail"] = dict(node.detail)
            stats = collector.stats_for(node.key)
            if stats is not None:
                out.update(stats)
            row = {"op": node.op}
            label = ""
            if node.detail:
                label = str(
                    node.detail.get("pattern")
                    or node.detail.get("condition")
                    or node.detail.get("expression")
                    or ""
                )
            row["label"] = label
            for field_name in (
                "calls", "rows_in", "rows_out", "wall_ms", "cpu_ms",
                "probes", "decode_hits", "estimate", "error_ratio",
                "misestimate", "join", "ordering",
            ):
                if field_name in out:
                    row[field_name] = out[field_name]
                elif field_name in (node.detail or {}):
                    row[field_name] = node.detail[field_name]
            operators.append(row)
            if node.children:
                out["children"] = [merge(child) for child in node.children]
            return out

        merged = merge(self.root)
        report = {
            "digest": self.digest,
            "plan": merged,
            "operators": operators,
            "misestimates": collector.misestimates,
        }
        if duration_ms is not None:
            report["duration_ms"] = round(duration_ms, 3)
        return report


def _render_detail(detail: Dict[str, object]) -> str:
    if not detail:
        return ""
    parts = []
    for key in sorted(detail):
        value = detail[key]
        if isinstance(value, (list, tuple)):
            value = ",".join(str(v) for v in value)
        parts.append(f"{key}={value}")
    return " ".join(parts)


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def build_plan(
    query, graph=None, text: Optional[str] = None, optimize: bool = True
) -> QueryPlan:
    """EXPLAIN a parsed query against *graph* (for cardinality estimates).

    Purely static: nothing is executed.  Variable boundness is
    propagated the way the lateral evaluator binds variables (left to
    right through joins, into OPTIONAL right sides), so the BGP orders
    shown match execution.  Pass ``optimize=False`` to mirror an engine
    with join reordering disabled (patterns stay in written order).
    """
    if isinstance(query, SelectQuery):
        detail: Dict[str, object] = {
            "projections": ["*"] if query.select_all
            else [f"?{p.var.name}" for p in query.projections],
        }
        if query.distinct:
            detail["distinct"] = True
        if query.group_by:
            detail["group_by"] = [render_expression(e) for e in query.group_by]
        if query.having is not None:
            detail["having"] = render_expression(query.having)
        if query.order_by:
            detail["order_by"] = [
                ("-" if c.descending else "") + render_expression(c.expression)
                for c in query.order_by
            ]
        if query.limit is not None:
            detail["limit"] = query.limit
        if query.offset:
            detail["offset"] = query.offset
        child, _ = _pattern_node(query.where, set(), graph, optimize)
        root = PlanNode("select", detail, [child], key=id(query))
    elif isinstance(query, AskQuery):
        child, _ = _pattern_node(query.where, set(), graph, optimize)
        root = PlanNode("ask", {}, [child], key=id(query))
    elif isinstance(query, ConstructQuery):
        detail = {"template_triples": len(query.template)}
        if query.limit is not None:
            detail["limit"] = query.limit
        if query.offset:
            detail["offset"] = query.offset
        child, _ = _pattern_node(query.where, set(), graph, optimize)
        root = PlanNode("construct", detail, [child], key=id(query))
    elif isinstance(query, DescribeQuery):
        detail = {"targets": [render_term(t) for t in query.targets]}
        children = []
        if query.where is not None:
            child, _ = _pattern_node(query.where, set(), graph, optimize)
            children.append(child)
        root = PlanNode("describe", detail, children, key=id(query))
    else:
        raise TypeError(f"cannot explain {type(query).__name__}")
    return QueryPlan(root, query=text)


def _pattern_node(
    pattern: Pattern, bound: set, graph, optimize: bool = True
) -> Tuple[PlanNode, set]:
    """(plan node, variables bound after the pattern)."""
    if isinstance(pattern, BGP):
        steps = (
            plan_bgp_steps(pattern.triples, bound, graph)
            if optimize
            else written_order_steps(pattern.triples, graph)
        )
        children = []
        for index, step in enumerate(steps):
            detail: Dict[str, object] = {
                "index": index,
                "pattern": render_triple_pattern(step.pattern),
                "mask": step.bound_mask,
                "estimate": step.estimate,
                "reason": step.reason,
            }
            if step.access is not None:
                # Only encoded-capable graphs annotate, so in-memory
                # digests are unaffected.
                detail["join"] = step.access
                detail["ordering"] = step.ordering
            children.append(PlanNode("scan", detail, key=id(step.pattern)))
        out = set(bound)
        for tp in pattern.triples:
            out |= tp.variables()
        return PlanNode("bgp", {"patterns": len(steps)}, children, key=id(pattern)), out
    if isinstance(pattern, Join):
        left, bound_left = _pattern_node(pattern.left, bound, graph, optimize)
        right, bound_out = _pattern_node(pattern.right, bound_left, graph, optimize)
        return PlanNode("join", {}, [left, right], key=id(pattern)), bound_out
    if isinstance(pattern, LeftJoin):
        left, bound_left = _pattern_node(pattern.left, bound, graph, optimize)
        right, bound_out = _pattern_node(pattern.right, bound_left, graph, optimize)
        detail = {}
        if pattern.condition is not None:
            detail["condition"] = render_expression(pattern.condition)
        return PlanNode("optional", detail, [left, right], key=id(pattern)), bound_out
    if isinstance(pattern, Union):
        left, bound_left = _pattern_node(pattern.left, bound, graph, optimize)
        right, bound_right = _pattern_node(pattern.right, bound, graph, optimize)
        return (
            PlanNode("union", {}, [left, right], key=id(pattern)),
            bound_left | bound_right,
        )
    if isinstance(pattern, Minus):
        left, bound_left = _pattern_node(pattern.left, bound, graph, optimize)
        # MINUS right side is evaluated from scratch (no shared bindings).
        right, _ = _pattern_node(pattern.right, set(), graph, optimize)
        return PlanNode("minus", {}, [left, right], key=id(pattern)), bound_left
    if isinstance(pattern, Filter):
        child, bound_out = _pattern_node(pattern.pattern, bound, graph, optimize)
        detail = {"condition": render_expression(pattern.condition)}
        return PlanNode("filter", detail, [child], key=id(pattern)), bound_out
    if isinstance(pattern, Bind):
        child, bound_out = _pattern_node(pattern.pattern, bound, graph, optimize)
        detail = {
            "var": f"?{pattern.var.name}",
            "expression": render_expression(pattern.expression),
        }
        return (
            PlanNode("extend", detail, [child], key=id(pattern)),
            bound_out | {pattern.var.name},
        )
    if isinstance(pattern, GraphPattern):
        seeded = set(bound)
        detail = {"name": render_term(pattern.name)}
        if isinstance(pattern.name, Var):
            seeded.add(pattern.name.name)
        child, bound_out = _pattern_node(pattern.pattern, seeded, graph, optimize)
        return PlanNode("graph", detail, [child], key=id(pattern)), bound_out
    if isinstance(pattern, Values):
        detail = {
            "variables": [f"?{v.name}" for v in pattern.variables],
            "rows": len(pattern.rows),
        }
        children = []
        bound_out = set(bound) | {v.name for v in pattern.variables}
        if pattern.pattern is not None:
            child, inner_bound = _pattern_node(pattern.pattern, bound, graph, optimize)
            children.append(child)
            bound_out |= inner_bound
        return PlanNode("values", detail, children, key=id(pattern)), bound_out
    return PlanNode(type(pattern).__name__.lower(), {}, [], key=id(pattern)), set(bound)


# ---------------------------------------------------------------------------
# Profiling
# ---------------------------------------------------------------------------


def _runtime_counters(graph) -> Tuple[int, int]:
    """(segment bisect probes, decode-LRU hits) — plain ints, store-backed
    graphs only; in-memory graphs report zeros."""
    counters = getattr(graph, "runtime_counters", None)
    if counters is None:
        return (0, 0)
    return counters()


class ProfileCollector:
    """Accumulates per-operator and per-scan statistics for one query.

    Keyed by ``id()`` of algebra nodes so stats land on the plan nodes
    :func:`build_plan` produced from the *same* parsed query object.
    Times are inclusive of children (the evaluator is recursive).
    """

    __slots__ = ("operators", "patterns", "misestimates")

    def __init__(self):
        self.operators: Dict[int, dict] = {}
        self.patterns: Dict[int, dict] = {}
        self.misestimates = 0

    # -- recording ----------------------------------------------------

    def record_operator(
        self, node, rows_in: int, rows_out: int, wall_s: float, cpu_s: float
    ) -> None:
        stats = self.operators.get(id(node))
        if stats is None:
            stats = {"calls": 0, "rows_in": 0, "rows_out": 0, "wall_s": 0.0, "cpu_s": 0.0}
            self.operators[id(node)] = stats
        stats["calls"] += 1
        stats["rows_in"] += rows_in
        stats["rows_out"] += rows_out
        stats["wall_s"] += wall_s
        stats["cpu_s"] += cpu_s

    def run_pattern(
        self,
        step: PlanStep,
        solutions: List[dict],
        graph,
        extend: Callable,
    ) -> List[dict]:
        """Run one pattern-extension batch, attributing its cost.

        *extend* takes ``(step, solutions, graph)`` — the full step, so
        the encoded executor can reuse the planned mask annotations.
        """
        probes_before, decode_before = _runtime_counters(graph)
        started = time.perf_counter()
        out = extend(step, solutions, graph)
        wall_s = time.perf_counter() - started
        probes_after, decode_after = _runtime_counters(graph)
        key = id(step.pattern)
        stats = self.patterns.get(key)
        if stats is None:
            stats = {
                "calls": 0,
                "rows_in": 0,
                "rows_out": 0,
                "wall_s": 0.0,
                "probes": 0,
                "decode_hits": 0,
                "estimate": step.estimate,
                "misestimate": False,
            }
            self.patterns[key] = stats
        stats["calls"] += 1
        stats["rows_in"] += len(solutions)
        stats["rows_out"] += len(out)
        stats["wall_s"] += wall_s
        stats["probes"] += probes_after - probes_before
        stats["decode_hits"] += decode_after - decode_before
        if (
            not stats["misestimate"]
            and step.estimate > 0
            and stats["rows_out"] > MISESTIMATE_FACTOR * step.estimate
        ):
            stats["misestimate"] = True
            self.misestimates += 1
            _MISESTIMATES.inc()
        return out

    # -- reporting ----------------------------------------------------

    def stats_for(self, key: Optional[int]) -> Optional[dict]:
        """JSON-ready runtime stats for one plan node, or ``None``."""
        if key is None:
            return None
        stats = self.operators.get(key)
        if stats is not None:
            return {
                "calls": stats["calls"],
                "rows_in": stats["rows_in"],
                "rows_out": stats["rows_out"],
                "wall_ms": round(stats["wall_s"] * 1000.0, 3),
                "cpu_ms": round(stats["cpu_s"] * 1000.0, 3),
            }
        stats = self.patterns.get(key)
        if stats is not None:
            out = {
                "calls": stats["calls"],
                "rows_in": stats["rows_in"],
                "rows_out": stats["rows_out"],
                "wall_ms": round(stats["wall_s"] * 1000.0, 3),
                "probes": stats["probes"],
                "decode_hits": stats["decode_hits"],
            }
            if stats["estimate"]:
                out["error_ratio"] = round(
                    stats["rows_out"] / stats["estimate"], 2
                )
            if stats["misestimate"]:
                out["misestimate"] = True
            return out
        return None


@dataclass
class QueryProfile:
    """The outcome of :meth:`QueryEngine.profile`: result + statistics.

    ``report`` is the JSON-serializable merged plan/stats dict (see
    :meth:`QueryPlan.profile_report`); ``result`` is whatever the query
    produced (ResultTable / bool / Graph).
    """

    result: object
    plan: QueryPlan
    report: dict
    duration_ms: float

    def to_dict(self) -> dict:
        return self.report

    def to_json(self) -> str:
        return json.dumps(self.report, indent=2, sort_keys=True)

    def to_text(self) -> str:
        """Flat per-operator table (preorder, times inclusive)."""
        lines = [
            f"profile digest={self.plan.digest} "
            f"duration_ms={self.report.get('duration_ms')}"
        ]
        header = (
            f"{'op':<10} {'label':<46} {'calls':>6} {'rows_in':>8} "
            f"{'rows_out':>8} {'wall_ms':>9} {'probes':>8} {'est':>8} "
            f"{'join':>6}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.report["operators"]:
            label = str(row.get("label", ""))
            if len(label) > 46:
                label = label[:43] + "..."
            wall = row.get("wall_ms")
            lines.append(
                f"{row['op']:<10} {label:<46} {row.get('calls', 0):>6} "
                f"{row.get('rows_in', 0):>8} {row.get('rows_out', 0):>8} "
                f"{wall if wall is not None else 0:>9} "
                f"{row.get('probes', 0):>8} {row.get('estimate', ''):>8} "
                f"{row.get('join', ''):>6}"
            )
        if self.report.get("misestimates"):
            lines.append(f"misestimated patterns: {self.report['misestimates']}")
        return "\n".join(lines)
