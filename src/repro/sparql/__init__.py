"""SPARQL engine: tokenizer, parser, algebra, and evaluator.

The subset implemented covers everything the corpus's exemplar queries and
coverage tooling need: SELECT/ASK, BGPs with join reordering, OPTIONAL,
FILTER (full expression grammar + built-ins), UNION, MINUS, BIND, GRAPH,
(NOT) EXISTS/IN, aggregates with GROUP BY/HAVING, ORDER BY and slicing.
"""

from .algebra import AskQuery, SelectQuery, Var
from .evaluator import DEFAULT_RESULT_CACHE_SIZE, QueryEngine, plan_bgp
from .parser import parse_query
from .results import ResultRow, ResultTable
from .tokenizer import SparqlSyntaxError

__all__ = [
    "QueryEngine",
    "DEFAULT_RESULT_CACHE_SIZE",
    "parse_query",
    "plan_bgp",
    "ResultTable",
    "ResultRow",
    "SelectQuery",
    "AskQuery",
    "Var",
    "SparqlSyntaxError",
]
