"""SPARQL engine: tokenizer, parser, algebra, evaluator, introspection.

The subset implemented covers everything the corpus's exemplar queries and
coverage tooling need: SELECT/ASK, BGPs with join reordering, OPTIONAL,
FILTER (full expression grammar + built-ins), UNION, MINUS, BIND, GRAPH,
(NOT) EXISTS/IN, aggregates with GROUP BY/HAVING, ORDER BY and slicing.
``repro.sparql.plan`` adds EXPLAIN/PROFILE: serializable plan trees with
deterministic digests and per-operator execution statistics.
"""

from .algebra import AskQuery, SelectQuery, Var
from .evaluator import (
    DEFAULT_RESULT_CACHE_SIZE,
    QueryEngine,
    plan_bgp,
    plan_bgp_steps,
)
from .parser import parse_query
from .plan import QueryPlan, QueryProfile, build_plan
from .results import ResultRow, ResultTable
from .tokenizer import SparqlSyntaxError

__all__ = [
    "QueryEngine",
    "DEFAULT_RESULT_CACHE_SIZE",
    "parse_query",
    "plan_bgp",
    "plan_bgp_steps",
    "build_plan",
    "QueryPlan",
    "QueryProfile",
    "ResultTable",
    "ResultRow",
    "SelectQuery",
    "AskQuery",
    "Var",
    "SparqlSyntaxError",
]
