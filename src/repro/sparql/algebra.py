"""SPARQL algebra: the tree the parser builds and the evaluator walks.

Patterns (graph-pattern algebra):

* :class:`TriplePattern` / :class:`BGP` — basic graph patterns
* :class:`Join`, :class:`LeftJoin` (OPTIONAL), :class:`Union`, :class:`Minus`
* :class:`Filter`, :class:`Bind`, :class:`GraphPattern` (GRAPH ?g { ... })

Expressions (FILTER / BIND / SELECT expressions):

* :class:`VarExpr`, :class:`TermExpr` — leaves
* :class:`And`, :class:`Or`, :class:`Not`, :class:`Compare`, :class:`Arithmetic`
* :class:`FunctionCall` — built-ins (REGEX, BOUND, STR, ...)
* :class:`ExistsExpr` — (NOT) EXISTS
* :class:`Aggregate` — COUNT/SUM/MIN/MAX/AVG/SAMPLE/GROUP_CONCAT

Queries:

* :class:`SelectQuery` (projection, DISTINCT, GROUP BY, ORDER BY, slicing)
* :class:`AskQuery`
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union as TyUnion

from ..rdf.terms import Term

__all__ = [
    "Var",
    "TriplePattern",
    "BGP",
    "Join",
    "LeftJoin",
    "Union",
    "Minus",
    "Filter",
    "Bind",
    "GraphPattern",
    "Values",
    "Expression",
    "VarExpr",
    "TermExpr",
    "And",
    "Or",
    "Not",
    "Compare",
    "Arithmetic",
    "FunctionCall",
    "ExistsExpr",
    "InExpr",
    "Aggregate",
    "Projection",
    "OrderCondition",
    "SelectQuery",
    "AskQuery",
    "ConstructQuery",
    "DescribeQuery",
]


@dataclass(frozen=True)
class Var:
    """A SPARQL variable (name without the ``?`` sigil)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


#: A position in a triple pattern: a concrete term or a variable.
PatternTerm = TyUnion[Term, Var]


@dataclass(frozen=True)
class TriplePattern:
    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> set:
        return {t.name for t in (self.subject, self.predicate, self.object) if isinstance(t, Var)}

    def bound_count(self) -> int:
        """Number of concrete (non-variable) positions — a selectivity proxy."""
        return sum(1 for t in (self.subject, self.predicate, self.object) if not isinstance(t, Var))


class Pattern:
    """Marker base class for graph patterns."""

    __slots__ = ()


@dataclass
class BGP(Pattern):
    triples: List[TriplePattern] = field(default_factory=list)


@dataclass
class Join(Pattern):
    left: Pattern
    right: Pattern


@dataclass
class LeftJoin(Pattern):
    """OPTIONAL: keep left solutions, extend with right where compatible."""

    left: Pattern
    right: Pattern
    condition: Optional["Expression"] = None


@dataclass
class Union(Pattern):
    left: Pattern
    right: Pattern


@dataclass
class Minus(Pattern):
    left: Pattern
    right: Pattern


@dataclass
class Filter(Pattern):
    pattern: Pattern
    condition: "Expression"


@dataclass
class Bind(Pattern):
    pattern: Pattern
    var: Var
    expression: "Expression"


@dataclass
class GraphPattern(Pattern):
    """GRAPH name-or-var { pattern } — evaluated against named graphs."""

    name: PatternTerm
    pattern: Pattern


@dataclass
class Values(Pattern):
    """VALUES inline data: joined against the surrounding pattern.

    *rows* holds one term per variable, with None for UNDEF.
    """

    variables: List[Var]
    rows: List[List[Optional[Term]]]
    pattern: Optional[Pattern] = None  # the group the VALUES joins into


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression:
    """Marker base class for filter/select expressions."""

    __slots__ = ()


@dataclass
class VarExpr(Expression):
    var: Var


@dataclass
class TermExpr(Expression):
    term: Term


@dataclass
class And(Expression):
    left: Expression
    right: Expression


@dataclass
class Or(Expression):
    left: Expression
    right: Expression


@dataclass
class Not(Expression):
    operand: Expression


@dataclass
class Compare(Expression):
    op: str  # one of = != < <= > >=
    left: Expression
    right: Expression


@dataclass
class Arithmetic(Expression):
    op: str  # one of + - * /
    left: Expression
    right: Expression


@dataclass
class FunctionCall(Expression):
    name: str  # canonical upper-case built-in name
    args: List[Expression]


@dataclass
class ExistsExpr(Expression):
    pattern: Pattern
    negated: bool = False


@dataclass
class InExpr(Expression):
    operand: Expression
    choices: List[Expression]
    negated: bool = False


@dataclass
class Aggregate(Expression):
    """An aggregate over a group: COUNT(*), COUNT(?x), SUM(?x), ..."""

    name: str  # COUNT, SUM, MIN, MAX, AVG, SAMPLE, GROUP_CONCAT
    expression: Optional[Expression]  # None only for COUNT(*)
    distinct: bool = False
    separator: str = " "


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

@dataclass
class Projection:
    """One SELECT item: a plain variable or ``(expr AS ?alias)``."""

    var: Var
    expression: Optional[Expression] = None  # None = project the variable


@dataclass
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass
class SelectQuery:
    projections: List[Projection]  # empty list = SELECT *
    where: Pattern
    distinct: bool = False
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: List[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0

    @property
    def select_all(self) -> bool:
        return not self.projections

    def has_aggregates(self) -> bool:
        if self.group_by:
            return True
        return any(
            _contains_aggregate(p.expression) for p in self.projections if p.expression is not None
        )


@dataclass
class AskQuery:
    where: Pattern


@dataclass
class DescribeQuery:
    """DESCRIBE target+ [WHERE { pattern }]: the concise bounded
    description (subject triples, plus blank-node closure) of each target
    resource — constants or variables bound by the pattern."""

    targets: List[PatternTerm]
    where: Optional[Pattern] = None


@dataclass
class ConstructQuery:
    """CONSTRUCT { template } WHERE { pattern }: instantiate the template
    for every solution, collecting the ground triples into a new graph."""

    template: List[TriplePattern]
    where: Pattern
    limit: Optional[int] = None
    offset: int = 0


def _contains_aggregate(expr: Optional[Expression]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, (And, Or, Compare, Arithmetic)):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, Not):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, FunctionCall):
        return any(_contains_aggregate(a) for a in expr.args)
    return False
