"""Interoperable access to Taverna and Wings traces (Section 6).

The paper's future work: "investigate further interoperable queries to
retrieve provenance results from both workflows systems."  The two
systems expose the same facts through different idioms — runs are
``wfprov:WorkflowRun`` activities vs ``opmw:WorkflowExecutionAccount``
bundles, times are ``prov:*AtTime`` vs ``opmw:overall*Time``, the
responsible agent is an association vs an attribution, status lives in
``tavernaprov:runStatus`` vs ``opmw:hasStatus``.

:class:`InteropView` normalizes all of that into one :class:`UnifiedRun`
record per run, computed entirely with SPARQL over the corpus dataset —
the "interoperable query" the paper asks for, packaged as an API.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from .rdf.graph import Dataset, Graph
from .rdf.terms import IRI, Literal
from .sparql.evaluator import QueryEngine

__all__ = ["UnifiedRun", "InteropView", "UNIFIED_RUNS_QUERY"]

#: The single interoperable query behind the unified view: one UNION
#: branch per system, each normalizing its idiom into the same variables.
UNIFIED_RUNS_QUERY = """
PREFIX tavernaprov: <http://ns.taverna.org.uk/2012/tavernaprov/>
SELECT ?run ?system ?template ?start ?end ?status ?agent WHERE {
  {
    ?run a wfprov:WorkflowRun .
    FILTER NOT EXISTS { ?run wfprov:wasPartOfWorkflowRun ?parent }
    BIND("taverna" AS ?system)
    OPTIONAL { ?run wfprov:describedByWorkflow ?template }
    OPTIONAL { ?run prov:startedAtTime ?start }
    OPTIONAL { ?run prov:endedAtTime ?end }
    OPTIONAL { ?run tavernaprov:runStatus ?rawstatus }
    BIND(IF(BOUND(?rawstatus) && ?rawstatus = "failed", "failed", "ok") AS ?status)
    OPTIONAL { ?run prov:wasAssociatedWith ?agent }
  }
  UNION
  {
    ?run a opmw:WorkflowExecutionAccount .
    BIND("wings" AS ?system)
    OPTIONAL { ?run opmw:correspondsToTemplate ?template }
    OPTIONAL { ?run opmw:overallStartTime ?start }
    OPTIONAL { ?run opmw:overallEndTime ?end }
    OPTIONAL { ?run opmw:hasStatus ?rawstatus }
    BIND(IF(BOUND(?rawstatus) && ?rawstatus = "FAILURE", "failed", "ok") AS ?status)
    OPTIONAL { ?run prov:wasAttributedTo ?agent }
  }
}
ORDER BY ?start
"""


@dataclass(frozen=True)
class UnifiedRun:
    """System-independent description of one workflow run."""

    run: IRI
    system: str  # taverna | wings
    template: Optional[IRI]
    start: Optional[_dt.datetime]
    end: Optional[_dt.datetime]
    status: str  # ok | failed
    agent: Optional[IRI]

    @property
    def failed(self) -> bool:
        return self.status == "failed"

    @property
    def duration(self) -> Optional[_dt.timedelta]:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start


class InteropView:
    """Normalized, cross-system view over a corpus dataset."""

    def __init__(self, source: Union[Graph, Dataset]):
        self.engine = QueryEngine(source)
        self.engine.namespaces.bind(
            "tavernaprov", "http://ns.taverna.org.uk/2012/tavernaprov/", replace=False
        )
        self._runs: Optional[List[UnifiedRun]] = None

    def runs(self) -> List[UnifiedRun]:
        """Every run of the dataset, normalized and time-ordered."""
        if self._runs is None:
            table = self.engine.select(UNIFIED_RUNS_QUERY)
            self._runs = [self._to_unified(row) for row in table]
        return self._runs

    @staticmethod
    def _to_unified(row) -> UnifiedRun:
        def time(term):
            if isinstance(term, Literal):
                value = term.to_python()
                if isinstance(value, _dt.datetime):
                    return value
            return None

        return UnifiedRun(
            run=row.run,
            system=row.system.lexical,
            template=row.template if isinstance(row.template, IRI) else None,
            start=time(row.start),
            end=time(row.end),
            status=row.status.lexical if row.status is not None else "ok",
            agent=row.agent if isinstance(row.agent, IRI) else None,
        )

    # -- cross-system analytics ----------------------------------------------

    def failed_runs(self) -> List[UnifiedRun]:
        return [r for r in self.runs() if r.failed]

    def by_system(self) -> Dict[str, List[UnifiedRun]]:
        grouped: Dict[str, List[UnifiedRun]] = {"taverna": [], "wings": []}
        for run in self.runs():
            grouped[run.system].append(run)
        return grouped

    def runs_of_template(self, template: IRI) -> List[UnifiedRun]:
        return [r for r in self.runs() if r.template == template]

    def failure_rate(self) -> float:
        runs = self.runs()
        if not runs:
            return 0.0
        return len(self.failed_runs()) / len(runs)

    def mean_duration(self, system: Optional[str] = None) -> Optional[_dt.timedelta]:
        durations = [
            r.duration for r in self.runs()
            if r.duration is not None and (system is None or r.system == system)
        ]
        if not durations:
            return None
        return sum(durations, _dt.timedelta(0)) / len(durations)

    def timeline(self) -> List[UnifiedRun]:
        """Runs in execution order — the decay-monitoring axis."""
        return sorted(
            (r for r in self.runs() if r.start is not None), key=lambda r: r.start
        )
