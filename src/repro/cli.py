"""Command-line interface: ``repro-corpus``.

Sub-commands:

* ``build <dir>`` — build the corpus (seeded) and write the ProvBench
  directory layout;
* ``stats <dir>`` — print the Section 2 statistics of a stored corpus;
* ``table1`` — build in memory and print Table 1;
* ``figure1`` — print the Figure 1 domain histogram;
* ``coverage`` — print Tables 2 and 3;
* ``query <dir> <sparql or @file>`` — run a SPARQL query over a stored
  corpus;
* ``serve <dir> [--port N]`` — start the SPARQL endpoint over a stored
  corpus.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-corpus",
        description="ProvBench Wf4Ever-PROV corpus reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=2013, help="corpus build seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build the corpus and write it to disk")
    p_build.add_argument("directory", type=Path)

    p_stats = sub.add_parser("stats", help="print statistics of a stored corpus")
    p_stats.add_argument("directory", type=Path)

    sub.add_parser("table1", help="build in memory and print Table 1")
    sub.add_parser("figure1", help="print the Figure 1 domain histogram")
    sub.add_parser("coverage", help="print Tables 2 and 3 (PROV term coverage)")

    p_query = sub.add_parser("query", help="run SPARQL over a stored corpus")
    p_query.add_argument("directory", type=Path)
    p_query.add_argument("sparql", help="query text, or @path/to/file.rq")
    p_query.add_argument("--format", choices=("table", "csv", "json"), default="table")

    p_serve = sub.add_parser("serve", help="serve a stored corpus over SPARQL")
    p_serve.add_argument("directory", type=Path)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8890)
    p_serve.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="query-result cache capacity (0 disables; default 128)",
    )

    sub.add_parser("maintenance", help="run the vocabulary-alignment maintenance pass")
    sub.add_parser("profile", help="print the structural profile of the corpus")
    sub.add_parser("report", help="print the full reproduction report (Markdown)")

    p_ro = sub.add_parser("ro", help="print the Research Object manifest of a template")
    p_ro.add_argument("template_id")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "build": _cmd_build,
        "stats": _cmd_stats,
        "table1": _cmd_table1,
        "figure1": _cmd_figure1,
        "coverage": _cmd_coverage,
        "query": _cmd_query,
        "serve": _cmd_serve,
        "maintenance": _cmd_maintenance,
        "profile": _cmd_profile,
        "report": _cmd_report,
        "ro": _cmd_ro,
    }[args.command]
    return handler(args)


def _cmd_build(args) -> int:
    from .corpus import CorpusBuilder, write_corpus

    corpus = CorpusBuilder(seed=args.seed).build()
    manifest = write_corpus(corpus, args.directory)
    stats = corpus.statistics()
    print(f"built corpus under {args.directory}")
    print(f"  workflows: {stats['workflows']}  runs: {stats['runs']}  "
          f"failed: {stats['failed_runs']}")
    print(f"  size: {stats['size_bytes'] / (1024 * 1024):.1f} MB "
          f"({stats['triples']} triples)")
    print(f"  manifest: {manifest}")
    return 0


def _cmd_stats(args) -> int:
    from .corpus import load_corpus

    stored = load_corpus(args.directory)
    print(json.dumps(stored.statistics, indent=2, sort_keys=True))
    return 0


def _cmd_table1(args) -> int:
    from .corpus import CorpusBuilder, format_table1

    corpus = CorpusBuilder(seed=args.seed).build()
    print(format_table1(corpus))
    return 0


def _cmd_figure1(args) -> int:
    from .corpus import DOMAINS

    width = max(len(d.name) for d in DOMAINS)
    print("Figure 1: Domains of workflows  (# = Taverna, * = Wings)")
    for domain in DOMAINS:
        bar = "#" * domain.taverna_workflows + "*" * domain.wings_workflows
        print(f"{domain.name.ljust(width)}  {bar}  "
              f"({domain.taverna_workflows} Taverna, {domain.wings_workflows} Wings)")
    return 0


def _cmd_coverage(args) -> int:
    from .corpus import CorpusBuilder
    from .coverage import coverage_report, format_table2, format_table3

    corpus = CorpusBuilder(seed=args.seed).build()
    report = coverage_report(corpus.system_graph("taverna"), corpus.system_graph("wings"))
    print(format_table2(report))
    print()
    print(format_table3(report))
    if not report.matches_paper():
        print("\nWARNING: coverage deviates from the paper:", file=sys.stderr)
        for difference in report.differences():
            print(f"  {difference}", file=sys.stderr)
        return 1
    return 0


def _cmd_query(args) -> int:
    from .corpus import load_corpus
    from .sparql import QueryEngine

    sparql = args.sparql
    if sparql.startswith("@"):
        sparql = Path(sparql[1:]).read_text()
    stored = load_corpus(args.directory)
    engine = QueryEngine(stored.dataset())
    result = engine.query(sparql)
    if isinstance(result, bool):
        print("true" if result else "false")
        return 0
    if args.format == "csv":
        print(result.to_csv(), end="")
    elif args.format == "json":
        print(result.to_json())
    else:
        print(result.pretty())
        print(f"({len(result)} rows)")
    return 0


def _cmd_serve(args) -> int:
    from .corpus import load_corpus
    from .endpoint import SparqlEndpoint
    from .sparql import DEFAULT_RESULT_CACHE_SIZE

    stored = load_corpus(args.directory)
    cache_size = args.cache_size if args.cache_size is not None else DEFAULT_RESULT_CACHE_SIZE
    endpoint = SparqlEndpoint(
        stored.dataset(), host=args.host, port=args.port, cache_size=cache_size
    )
    endpoint.start()
    print(f"serving corpus SPARQL endpoint at {endpoint.query_url} (Ctrl-C to stop)")
    print(f"  cache: {cache_size} entries  stats: {endpoint.stats_url}")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        endpoint.stop()
    return 0


def _cmd_maintenance(args) -> int:
    from .corpus import CorpusBuilder, check_corpus

    corpus = CorpusBuilder(seed=args.seed).build()
    report = check_corpus(corpus)
    print(report.summary())
    for issue in report.issues:
        print(f"  {issue}")
    return 0 if report.aligned else 1


def _cmd_profile(args) -> int:
    from .corpus import CorpusBuilder, profile_corpus

    corpus = CorpusBuilder(seed=args.seed).build()
    profile = profile_corpus(corpus)
    print(json.dumps(profile.summary(), indent=2, sort_keys=True))
    return 0


def _cmd_report(args) -> int:
    from .corpus import CorpusBuilder
    from .report import build_report

    corpus = CorpusBuilder(seed=args.seed).build()
    print(build_report(corpus))
    return 0


def _cmd_ro(args) -> int:
    from .corpus import CorpusBuilder, package_template
    from .rdf import serialize_turtle

    corpus = CorpusBuilder(seed=args.seed).build()
    try:
        manifest = package_template(corpus, args.template_id)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(serialize_turtle(manifest.graph))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
