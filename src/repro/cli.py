"""Command-line interface: ``repro-corpus``.

Sub-commands:

* ``build <dir>`` — build the corpus (seeded) and write the ProvBench
  directory layout; ``--scale N`` multiplies workflows/runs for a
  deterministic N×-sized corpus, streamed run-at-a-time so memory stays
  flat at any scale;
* ``stats <dir>`` — print the Section 2 statistics of a stored corpus;
* ``table1`` — build in memory and print Table 1;
* ``figure1`` — print the Figure 1 domain histogram;
* ``coverage`` — print Tables 2 and 3;
* ``query <dir> <sparql or @file>`` — run a SPARQL query over a stored
  corpus;
* ``lineage <dir> <entity>`` — trace an entity's derivation lineage
  (ancestors by default, ``--descendants`` for dependents, ``--to IRI``
  for a chain between two entities); with ``--store`` the traversal runs
  over the store's persisted path index;
* ``serve <dir> [--port N]`` — start the SPARQL endpoint over a stored
  corpus;
* ``store ingest <dir>`` — incrementally ingest a stored corpus into a
  persistent quad store (only new/changed traces are parsed);
* ``store info <store-dir>`` — print a quad store's manifest summary;
* ``obs summary <trace>`` — aggregate a span trace file per phase;
* ``obs scrape <url>`` — fetch and print ``/metrics`` from a running
  endpoint;
* ``obs metrics`` — render this process's metrics registry;
* ``obs top <dir>`` — aggregated cross-process view of an ``--obs-dir``
  directory (per-process shard ages plus the folded series).

``query`` and ``serve`` accept ``--store PATH`` to answer from the
persistent store (mmap'd dictionary-encoded segments) instead of
re-parsing every trace file on startup.

``build``, ``store ingest``, and ``serve`` accept ``--obs-dir DIR``:
every process involved (the parent and all ``--jobs N`` pool workers)
publishes its counters to an mmap'd metric shard under DIR and appends
structured events to DIR's JSONL event log, so worker-side counters
survive the pool boundary into ``/metrics``, ``/stats``, and
``obs top``.

``build``, ``store ingest``, ``query``, and ``serve`` accept
``--trace FILE`` to write a Chrome ``trace_event`` file (open it in
``chrome://tracing`` or https://ui.perfetto.dev) covering the command's
phase spans — including spans forwarded from ``--jobs N`` pool workers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-corpus",
        description="ProvBench Wf4Ever-PROV corpus reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=2013, help="corpus build seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_build = sub.add_parser("build", help="build the corpus and write it to disk")
    p_build.add_argument("directory", type=Path)
    p_build.add_argument(
        "--store", type=Path, nargs="?", const=True, default=None, metavar="DIR",
        help="also ingest the written traces into a persistent quad store "
             "(default location: <directory>/.store)",
    )
    p_build.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the build (and store ingest, with "
             "--store); 0 = one per CPU.  Output is byte-identical to "
             "--jobs 1 (default: 1)",
    )
    p_build.add_argument(
        "--scale", type=int, default=1, metavar="N",
        help="corpus scale multiplier: N× workflows and runs per domain, "
             "deterministically seeded; --scale 1 reproduces the paper's "
             "corpus byte for byte (default: 1)",
    )
    _add_spill_budget_flag(p_build)
    _add_trace_flag(p_build)
    _add_obs_dir_flag(p_build)

    p_stats = sub.add_parser("stats", help="print statistics of a stored corpus")
    p_stats.add_argument("directory", type=Path)

    sub.add_parser("table1", help="build in memory and print Table 1")
    sub.add_parser("figure1", help="print the Figure 1 domain histogram")
    sub.add_parser("coverage", help="print Tables 2 and 3 (PROV term coverage)")

    p_query = sub.add_parser("query", help="run SPARQL over a stored corpus")
    p_query.add_argument("directory", type=Path)
    p_query.add_argument("sparql", help="query text, or @path/to/file.rq")
    p_query.add_argument("--format", choices=("table", "csv", "json"), default="table")
    p_query.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="answer from a persistent quad store (synced with the corpus first)",
    )
    p_query.add_argument(
        "--explain", action="store_true",
        help="print the query plan (EXPLAIN) instead of evaluating; the "
             "digest is deterministic for a given query + corpus",
    )
    p_query.add_argument(
        "--profile", action="store_true",
        help="evaluate with per-operator statistics (PROFILE) and print "
             "the merged plan + stats report",
    )
    _add_trace_flag(p_query)

    p_lineage = sub.add_parser(
        "lineage", help="trace an entity's derivation lineage in a stored corpus"
    )
    p_lineage.add_argument("directory", type=Path, help="corpus directory")
    p_lineage.add_argument("entity", help="entity IRI to trace")
    p_lineage.add_argument(
        "--to", metavar="IRI", default=None,
        help="print a derivation chain from the entity to this source IRI",
    )
    p_lineage.add_argument(
        "--descendants", action="store_true",
        help="list transitive dependents (what was derived from the entity) "
             "instead of its transitive dependencies",
    )
    p_lineage.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="answer from a persistent quad store; lineage then runs over "
             "the store's persisted path index",
    )
    p_lineage.add_argument("--json", action="store_true", help="print JSON")

    p_serve = sub.add_parser("serve", help="serve a stored corpus over SPARQL")
    p_serve.add_argument(
        "directory", type=Path, nargs="?", default=None,
        help="corpus directory (optional when --store points at a built store)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8890)
    p_serve.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="query-result cache capacity (0 disables; default 128)",
    )
    p_serve.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="serve from a persistent quad store (ingests the corpus first "
             "when a corpus directory is also given)",
    )
    p_serve.add_argument(
        "--decode-cache", type=int, default=None, metavar="N",
        help="bounded decoded-term cache capacity for --store (default 65536)",
    )
    p_serve.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="MS",
        help="record queries slower than MS in the /slowlog ring buffer "
             "(0 records every query; default: disabled)",
    )
    p_serve.add_argument(
        "--slowlog-capacity", type=int, default=128, metavar="N",
        help="slow-query ring-buffer capacity (default: 128)",
    )
    p_serve.add_argument(
        "--profile-hz", type=float, default=None, metavar="HZ",
        help="run the always-on statistical profiler at HZ samples/s; "
             "GET /debug/profile returns collapsed stacks over a window "
             "(default: profiler started per /debug/profile request only)",
    )
    p_serve.add_argument(
        "--trace-slow-ms", type=float, default=None, metavar="MS",
        help="retain full span trees (GET /trace/<id>) for requests "
             "slower than MS or errored (default: --slow-query-ms, "
             "else 100)",
    )
    _add_trace_flag(p_serve, "endpoint request/query spans, written on shutdown")
    _add_obs_dir_flag(p_serve)

    p_store = sub.add_parser("store", help="persistent quad store operations")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_ingest = store_sub.add_parser(
        "ingest", help="incrementally ingest a stored corpus into a quad store"
    )
    p_ingest.add_argument("directory", type=Path, help="corpus directory")
    p_ingest.add_argument(
        "--store", type=Path, default=None, metavar="DIR",
        help="store directory (default: <corpus>/.store)",
    )
    p_ingest.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for trace parsing; 0 = one per CPU.  "
             "Segments are byte-identical to --jobs 1 (default: 1)",
    )
    _add_spill_budget_flag(p_ingest)
    _add_trace_flag(p_ingest)
    _add_obs_dir_flag(p_ingest)
    p_info = store_sub.add_parser("info", help="print a quad store's summary")
    p_info.add_argument("store_dir", type=Path)

    p_obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_summary = obs_sub.add_parser(
        "summary", help="aggregate a --trace file per (category, span name)"
    )
    p_obs_summary.add_argument("trace", type=Path, help="trace file written by --trace")
    p_obs_summary.add_argument("--json", action="store_true", help="print JSON")
    p_obs_scrape = obs_sub.add_parser(
        "scrape", help="fetch and print /metrics from a running endpoint"
    )
    p_obs_scrape.add_argument("url", help="endpoint base URL or .../metrics URL")
    obs_sub.add_parser("metrics", help="render this process's metrics registry")
    p_obs_slowlog = obs_sub.add_parser(
        "slowlog", help="print a slow-query log (live endpoint URL or JSONL file)"
    )
    p_obs_slowlog.add_argument(
        "source", help="endpoint base URL, .../slowlog URL, or slowlog JSONL file"
    )
    p_obs_slowlog.add_argument("--json", action="store_true", help="print raw JSON")
    p_obs_profile = obs_sub.add_parser(
        "profile", help="sample a live endpoint's /debug/profile, or "
                        "re-render a saved folded-stacks file"
    )
    p_obs_profile.add_argument(
        "source", help="endpoint base URL, .../debug/profile URL, or a "
                       "collapsed-stacks (folded) file",
    )
    p_obs_profile.add_argument(
        "--seconds", type=float, default=2.0, metavar="N",
        help="sampling window when the source is a URL (default: 2)",
    )
    p_obs_profile.add_argument(
        "--speedscope", action="store_true",
        help="emit speedscope JSON (https://speedscope.app) instead of "
             "folded stacks",
    )
    p_obs_profile.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write output to FILE instead of stdout",
    )
    p_obs_top = obs_sub.add_parser(
        "top", help="render the aggregated cross-process metrics of an "
                    "observability directory (shards + top series)"
    )
    p_obs_top.add_argument("obs_dir", type=Path, help="directory given to --obs-dir")
    p_obs_top.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="series rows to show (default: 20; 0 = all)",
    )
    p_obs_top.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="refresh every SECONDS until interrupted (default: one shot)",
    )
    p_obs_top.add_argument("--json", action="store_true",
                           help="print the aggregated snapshot as JSON")

    sub.add_parser("maintenance", help="run the vocabulary-alignment maintenance pass")
    sub.add_parser("profile", help="print the structural profile of the corpus")
    sub.add_parser("report", help="print the full reproduction report (Markdown)")

    p_ro = sub.add_parser("ro", help="print the Research Object manifest of a template")
    p_ro.add_argument("template_id")
    return parser


def _add_trace_flag(parser, what: str = "phase spans for this command") -> None:
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help=f"write a Chrome trace_event file of {what} "
             "(open in chrome://tracing or Perfetto)",
    )


def _add_obs_dir_flag(parser) -> None:
    parser.add_argument(
        "--obs-dir", type=Path, default=None, metavar="DIR",
        help="shared observability directory: pool workers publish their "
             "counters as mmap'd metric shards there (aggregated by "
             "/metrics, /stats, and `obs top`) and all phases append to "
             "its structured event log",
    )


def _apply_obs_dir(args):
    """Configure the process-wide shard + event log for ``--obs-dir``."""
    obs_dir = getattr(args, "obs_dir", None)
    if obs_dir is None:
        return None
    from .obs import events, shm

    shm.configure(str(obs_dir))
    events.configure(str(obs_dir))
    return obs_dir


def _flush_obs(obs_dir) -> None:
    """Publish this process's final counter values to its shard."""
    if obs_dir is None:
        return
    from .obs import shm

    shm.flush()


def _add_spill_budget_flag(parser) -> None:
    parser.add_argument(
        "--spill-budget", type=int, default=None, metavar="QUADS",
        help="pending-quad budget before the store ingest spills sorted "
             "runs to disk (0 disables spilling; default: 500000).  "
             "Segment bytes are identical at any budget",
    )


def _progress_hook(label: str, unit: str, work_unit: str, work_of=None):
    """An ``on_*(done, total, payload)`` callback driving a one-line
    stderr :class:`~repro.obs.Progress` (silent unless stderr is a TTY).

    *work_of* extracts the cumulative work count from the payload;
    without it the payload itself is the count.
    """
    from .obs.progress import Progress

    state = {}

    def on_event(done, total, payload):
        progress = state.get("progress")
        if progress is None:
            progress = state["progress"] = Progress(
                label, total=total, unit=unit, work_unit=work_unit
            )
        progress.total = total
        work = work_of(payload) if work_of is not None else payload
        if done >= total:
            progress.finish(done, work=work)
        else:
            progress.update(done, work=work)

    return on_event


def _make_tracer(args):
    """A Tracer when ``--trace`` was given, else None.

    Also starts one root W3C trace context for the command, so every
    span the traced build/ingest/serve records — in this process and in
    pool workers — stamps the same ``trace_id`` and the trace file
    cross-references slow-query-log records and events by id.
    """
    if getattr(args, "trace", None) is None:
        return None
    from .obs import tracectx
    from .obs.trace import Tracer

    tracectx.activate(tracectx.start_trace())
    return Tracer()


def _write_trace(tracer, args) -> None:
    if tracer is None:
        return
    count = tracer.write(args.trace)
    print(f"  trace: {args.trace} ({count} spans)")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "build": _cmd_build,
        "stats": _cmd_stats,
        "table1": _cmd_table1,
        "figure1": _cmd_figure1,
        "coverage": _cmd_coverage,
        "query": _cmd_query,
        "lineage": _cmd_lineage,
        "serve": _cmd_serve,
        "store": _cmd_store,
        "obs": _cmd_obs,
        "maintenance": _cmd_maintenance,
        "profile": _cmd_profile,
        "report": _cmd_report,
        "ro": _cmd_ro,
    }[args.command]
    return handler(args)


def _cmd_build(args) -> int:
    from .corpus import CorpusBuilder, build_and_write

    tracer = _make_tracer(args)
    obs_dir = _apply_obs_dir(args)
    builder = CorpusBuilder(seed=args.seed, scale=args.scale)
    store_dir = args.directory / ".store" if args.store is True else args.store
    store_kwargs = None
    if args.spill_budget is not None:
        store_kwargs = {"spill_quad_budget": args.spill_budget}
    # Streaming build: traces go straight to disk run-at-a-time, so a
    # --scale 50 corpus never holds more than one trace in memory.
    manifest = build_and_write(
        builder, args.directory, store=store_dir, jobs=args.jobs, tracer=tracer,
        on_trace=_progress_hook("build", "runs", "triples",
                                work_of=lambda writer: writer.triples),
        store_kwargs=store_kwargs,
        on_ingest_file=_progress_hook("ingest", "files", "quads"),
    )
    stats = json.loads(manifest.read_text())["statistics"]
    print(f"built corpus under {args.directory}")
    if store_dir is not None:
        print(f"  quad store: {store_dir}")
    print(f"  workflows: {stats['workflows']}  runs: {stats['runs']}  "
          f"failed: {stats['failed_runs']}")
    print(f"  size: {stats['size_bytes'] / (1024 * 1024):.1f} MB "
          f"({stats['triples']} triples)")
    print(f"  manifest: {manifest}")
    if obs_dir is not None:
        print(f"  obs dir: {obs_dir}")
    _write_trace(tracer, args)
    _flush_obs(obs_dir)
    return 0


def _cmd_stats(args) -> int:
    from .corpus import load_corpus

    stored = load_corpus(args.directory)
    print(json.dumps(stored.statistics, indent=2, sort_keys=True))
    return 0


def _cmd_table1(args) -> int:
    from .corpus import CorpusBuilder, format_table1

    corpus = CorpusBuilder(seed=args.seed).build()
    print(format_table1(corpus))
    return 0


def _cmd_figure1(args) -> int:
    from .corpus import DOMAINS

    width = max(len(d.name) for d in DOMAINS)
    print("Figure 1: Domains of workflows  (# = Taverna, * = Wings)")
    for domain in DOMAINS:
        bar = "#" * domain.taverna_workflows + "*" * domain.wings_workflows
        print(f"{domain.name.ljust(width)}  {bar}  "
              f"({domain.taverna_workflows} Taverna, {domain.wings_workflows} Wings)")
    return 0


def _cmd_coverage(args) -> int:
    from .corpus import CorpusBuilder
    from .coverage import coverage_report, format_table2, format_table3

    corpus = CorpusBuilder(seed=args.seed).build()
    report = coverage_report(corpus.system_graph("taverna"), corpus.system_graph("wings"))
    print(format_table2(report))
    print()
    print(format_table3(report))
    if not report.matches_paper():
        print("\nWARNING: coverage deviates from the paper:", file=sys.stderr)
        for difference in report.differences():
            print(f"  {difference}", file=sys.stderr)
        return 1
    return 0


def _cmd_query(args) -> int:
    from .corpus import load_corpus
    from .sparql import QueryEngine

    sparql = args.sparql
    if sparql.startswith("@"):
        sparql = Path(sparql[1:]).read_text()
    tracer = _make_tracer(args)
    stored = load_corpus(args.directory, store=args.store)
    with stored:
        engine = QueryEngine(stored.dataset(), tracer=tracer)
        if args.explain:
            plan = engine.explain(sparql)
            print(plan.to_json() if args.format == "json" else plan.to_text())
            _write_trace(tracer, args)
            return 0
        if args.profile:
            profile = engine.profile(sparql)
            print(profile.to_json() if args.format == "json" else profile.to_text())
            _write_trace(tracer, args)
            return 0
        result = engine.query(sparql)
        if isinstance(result, bool):
            print("true" if result else "false")
            return 0
        if args.format == "csv":
            print(result.to_csv(), end="")
        elif args.format == "json":
            print(result.to_json())
        else:
            print(result.pretty())
            print(f"({len(result)} rows)")
    _write_trace(tracer, args)
    return 0


def _cmd_lineage(args) -> int:
    from .apps.dependencies import DependencyAnalyzer
    from .corpus import load_corpus
    from .rdf.terms import IRI

    entity = IRI(args.entity)
    stored = load_corpus(args.directory, store=args.store)
    with stored:
        analyzer = DependencyAnalyzer(stored.dataset().union_graph())
        if args.to is not None:
            mode = "path"
            chain = analyzer.derivation_path(entity, IRI(args.to))
            results = [term.value for term in chain] if chain is not None else None
        elif args.descendants:
            mode = "descendants"
            results = sorted(
                term.value for term in analyzer.dependents_of(entity)
            )
        else:
            mode = "ancestors"
            results = sorted(
                term.value for term in analyzer.transitive_dependencies(entity)
            )
        indexed = analyzer.uses_index
    if args.json:
        print(json.dumps({
            "entity": entity.value,
            "mode": mode,
            "indexed": indexed,
            "results": results,
        }, indent=2))
        # An empty ancestor/dependent list is a valid answer; only a
        # requested-but-absent chain is a failure.
        return 0 if args.to is None or results is not None else 1
    if args.to is not None:
        if results is None:
            print(f"no derivation chain from {entity.value} to {args.to}")
            return 1
        print("  ->  ".join(results))
        return 0
    for value in results:
        print(value)
    label = "dependent(s)" if mode == "descendants" else "ancestor(s)"
    via = "path index" if indexed else "graph traversal"
    print(f"({len(results)} {label} of {entity.value}, via {via})")
    return 0


def _cmd_serve(args) -> int:
    from .endpoint import SparqlEndpoint
    from .sparql import DEFAULT_RESULT_CACHE_SIZE

    store = None
    if args.store is not None:
        from .store import QuadStore, StoreDataset, ingest_corpus

        kwargs = {}
        if args.decode_cache is not None:
            kwargs["decode_cache_size"] = args.decode_cache
        store = QuadStore(args.store, **kwargs)
        if args.directory is not None:
            report = ingest_corpus(store, args.directory)
            if not report.no_op:
                print(f"store synced: {json.dumps(report.summary())}")
        source = StoreDataset(store)
    elif args.directory is not None:
        from .corpus import load_corpus

        source = load_corpus(args.directory).dataset()
    else:
        print("error: serve needs a corpus directory, --store, or both", file=sys.stderr)
        return 2
    cache_size = args.cache_size if args.cache_size is not None else DEFAULT_RESULT_CACHE_SIZE
    tracer = _make_tracer(args)
    endpoint = SparqlEndpoint(
        source, host=args.host, port=args.port, cache_size=cache_size, tracer=tracer,
        slow_query_ms=args.slow_query_ms, slowlog_capacity=args.slowlog_capacity,
        obs_dir=str(args.obs_dir) if args.obs_dir is not None else None,
        profile_hz=args.profile_hz, trace_slow_ms=args.trace_slow_ms,
    )
    endpoint.start()
    backing = f"store {args.store}" if store is not None else f"corpus {args.directory}"
    print(f"serving SPARQL endpoint over {backing} at {endpoint.query_url} (Ctrl-C to stop)")
    print(f"  cache: {cache_size} entries  stats: {endpoint.stats_url}")
    print(f"  metrics: {endpoint.metrics_url}  healthz: {endpoint.healthz_url}")
    if endpoint.obs_dir is not None:
        print(f"  obs dir: {endpoint.obs_dir} (aggregated /metrics; "
              f"`repro-corpus obs top {endpoint.obs_dir}` for a live view)")
    if endpoint.slow_log is not None:
        print(f"  slowlog: {endpoint.slowlog_url} "
              f"(threshold {endpoint.slow_log.threshold_ms:g} ms)")
    print(f"  tracing: {endpoint.trace_url}/<trace-id> "
          f"(slow/error requests ≥ {endpoint.trace_slow_ms:g} ms retained)")
    if args.profile_hz:
        print(f"  profiler: {endpoint.profile_url} ({args.profile_hz:g} Hz)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        endpoint.stop()
    finally:
        if store is not None:
            store.close()
        _write_trace(tracer, args)
    return 0


def _cmd_store(args) -> int:
    from .store import QuadStore, ingest_corpus

    if args.store_command == "ingest":
        # validate before QuadStore mkdirs: a typo'd corpus path must not
        # leave an empty store directory behind
        if not args.directory.is_dir():
            print(f"error: no corpus directory at {args.directory}", file=sys.stderr)
            return 1
        store_dir = args.store if args.store is not None else args.directory / ".store"
        tracer = _make_tracer(args)
        obs_dir = _apply_obs_dir(args)
        kwargs = {}
        if args.spill_budget is not None:
            kwargs["spill_quad_budget"] = args.spill_budget
        with QuadStore(store_dir, **kwargs) as store:
            report = ingest_corpus(
                store, args.directory, jobs=args.jobs, tracer=tracer,
                on_file=_progress_hook("ingest", "files", "quads"),
            )
        print(json.dumps(report.summary(), indent=2, sort_keys=True))
        if report.no_op:
            print("store already up to date (no files re-parsed)")
        if obs_dir is not None:
            print(f"obs dir: {obs_dir}")
        _write_trace(tracer, args)
        _flush_obs(obs_dir)
        return 0
    # info — refuse to silently create a store at a mistyped path
    if not (args.store_dir / "store.json").exists():
        print(f"error: no quad store at {args.store_dir}", file=sys.stderr)
        return 1
    with QuadStore(args.store_dir) as store:
        print(json.dumps(store.store_info(), indent=2, sort_keys=True))
    return 0


def _cmd_obs(args) -> int:
    if args.obs_command == "summary":
        from .obs.trace import read_trace, summarize

        if not args.trace.exists():
            print(f"error: no trace file at {args.trace}", file=sys.stderr)
            return 1
        rows = summarize(read_trace(args.trace))
        if args.json:
            print(json.dumps(rows, indent=2))
            return 0
        if not rows:
            print("(empty trace)")
            return 0
        header = f"{'cat':<10} {'span':<16} {'count':>7} {'total_ms':>10} {'mean_ms':>9} {'max_ms':>9}"
        print(header)
        print("-" * len(header))
        for row in rows:
            print(f"{row['cat']:<10} {row['name']:<16} {row['count']:>7} "
                  f"{row['total_ms']:>10.3f} {row['mean_ms']:>9.3f} {row['max_ms']:>9.3f}")
        return 0
    if args.obs_command == "scrape":
        import urllib.request

        url = args.url
        if not url.rstrip("/").endswith("/metrics"):
            url = url.rstrip("/") + "/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            sys.stdout.write(response.read().decode("utf-8"))
        return 0
    if args.obs_command == "slowlog":
        return _obs_slowlog(args)
    if args.obs_command == "profile":
        return _obs_profile(args)
    if args.obs_command == "top":
        return _obs_top(args)
    # metrics — render this process's registry (mostly zeros unless the
    # command that populated it ran in-process; useful to eyeball the
    # exposition format and the declared metric families)
    from .obs import metrics

    sys.stdout.write(metrics.render())
    return 0


def _obs_profile(args) -> int:
    """Collapsed stacks from a live endpoint or a saved folded file."""
    from .obs import profiler as _profiler

    source = args.source
    if source.startswith(("http://", "https://")):
        import urllib.request

        url = source.rstrip("/")
        if not url.endswith("/debug/profile"):
            url += "/debug/profile"
        url += f"?seconds={args.seconds:g}"
        with urllib.request.urlopen(url, timeout=args.seconds + 30) as response:
            folded = response.read().decode("utf-8")
    else:
        path = Path(source)
        if not path.exists():
            print(f"error: no folded-stacks file at {path}", file=sys.stderr)
            return 1
        folded = path.read_text(encoding="utf-8")
    counts = _profiler.parse_folded(folded)
    if args.speedscope:
        output = json.dumps(
            _profiler.render_speedscope(counts, name=source), indent=2
        ) + "\n"
    else:
        output = _profiler.render_folded(counts)
    if args.out is not None:
        args.out.write_text(output, encoding="utf-8")
        print(f"wrote {args.out} ({sum(counts.values())} samples, "
              f"{len(counts)} distinct stacks)")
    else:
        sys.stdout.write(output)
    return 0


def _obs_top(args) -> int:
    """Aggregated cross-process view of an ``--obs-dir`` directory."""
    import time as _time

    from .obs import shm

    if not (args.obs_dir / shm.MANIFEST_FILE).exists():
        print(f"error: no observability directory at {args.obs_dir}", file=sys.stderr)
        return 1

    def once() -> None:
        snapshot = shm.snapshot_aggregated(str(args.obs_dir))
        if args.json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
            return
        shards = snapshot["shards"]
        print(f"obs dir: {args.obs_dir}  live shards: {len(shards)}")
        if shards:
            print(f"  {'pid':>8} {'alive':<5} {'age_s':>9} {'stale_s':>9} "
                  f"{'slots':>6}  file")
            for shard in shards:
                print(f"  {shard['pid']:>8} {str(shard['alive']).lower():<5} "
                      f"{shard['age_s']:>9.1f} {shard['updated_age_s']:>9.1f} "
                      f"{shard['slots']:>6}  {shard['file']}")
        rows = []
        for name, family in snapshot["metrics"].items():
            for sample in family["samples"]:
                labels = "".join(
                    f",{k}={v}" for k, v in sorted(sample["labels"].items())
                )
                value = sample["value"]
                if isinstance(value, dict):
                    rows.append((value["count"],
                                 f"{name}{{{labels[1:]}}}" if labels else name,
                                 f"count={value['count']:g} sum={value['sum']:g}"))
                else:
                    rows.append((value,
                                 f"{name}{{{labels[1:]}}}" if labels else name,
                                 f"{value:g}"))
        rows.sort(key=lambda row: (-abs(row[0]), row[1]))
        shown = rows if args.limit <= 0 else rows[: args.limit]
        if shown:
            width = max(len(row[1]) for row in shown)
            print(f"  {'series'.ljust(width)}  value")
            for _, series, rendered in shown:
                print(f"  {series.ljust(width)}  {rendered}")
            if len(shown) < len(rows):
                print(f"  ... {len(rows) - len(shown)} more series "
                      f"(--limit 0 for all)")
        else:
            print("  (no series published yet)")

    if args.watch is None:
        once()
        return 0
    try:
        while True:
            once()
            print()
            _time.sleep(max(0.1, args.watch))
    except KeyboardInterrupt:
        return 0


def _obs_slowlog(args) -> int:
    source = args.source
    if source.startswith(("http://", "https://")):
        import urllib.request

        url = source
        if not url.rstrip("/").endswith("/slowlog"):
            url = url.rstrip("/") + "/slowlog"
        with urllib.request.urlopen(url, timeout=10) as response:
            payload = json.loads(response.read().decode("utf-8"))
        entries = payload.get("entries", [])
        if not payload.get("enabled", False):
            print("slow-query log disabled on this endpoint "
                  "(start serve with --slow-query-ms)", file=sys.stderr)
    else:
        from .obs.slowlog import read_jsonl

        if not Path(source).exists():
            print(f"error: no slowlog file at {source}", file=sys.stderr)
            return 1
        entries = read_jsonl(source)
    if args.json:
        print(json.dumps(entries, indent=2, sort_keys=True))
        return 0
    if not entries:
        print("(no slow queries recorded)")
        return 0
    header = (f"{'duration_ms':>12} {'cache':<5} {'plan_digest':<17} "
              f"{'span':>6}  query")
    print(header)
    print("-" * len(header))
    for entry in entries:
        digest = entry.get("plan_digest") or "-"
        span_id = entry.get("span_id")
        query = " ".join((entry.get("query") or "").split())
        print(f"{entry.get('duration_ms', 0):>12.3f} {entry.get('cache', '?'):<5} "
              f"{digest:<17} {span_id if span_id is not None else '-':>6}  "
              f"{query[:80]}")
    return 0


def _cmd_maintenance(args) -> int:
    from .corpus import CorpusBuilder, check_corpus

    corpus = CorpusBuilder(seed=args.seed).build()
    report = check_corpus(corpus)
    print(report.summary())
    for issue in report.issues:
        print(f"  {issue}")
    return 0 if report.aligned else 1


def _cmd_profile(args) -> int:
    from .corpus import CorpusBuilder, profile_corpus

    corpus = CorpusBuilder(seed=args.seed).build()
    profile = profile_corpus(corpus)
    print(json.dumps(profile.summary(), indent=2, sort_keys=True))
    return 0


def _cmd_report(args) -> int:
    from .corpus import CorpusBuilder
    from .report import build_report

    corpus = CorpusBuilder(seed=args.seed).build()
    print(build_report(corpus))
    return 0


def _cmd_ro(args) -> int:
    from .corpus import CorpusBuilder, package_template
    from .rdf import serialize_turtle

    corpus = CorpusBuilder(seed=args.seed).build()
    try:
        manifest = package_template(corpus, args.template_id)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(serialize_turtle(manifest.graph))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
