"""Version-keyed, thread-safe per-graph statistics.

The SPARQL join planner (:func:`repro.sparql.evaluator.plan_bgp`) ranks
triple patterns by predicate cardinality.  Before this module existed it
rebuilt a cardinality dict from scratch on *every query*; now each
:class:`~repro.rdf.graph.Graph` owns one :class:`GraphStatistics` (via
:meth:`Graph.statistics`) that caches cardinalities until the graph's
monotonic version counter moves, at which point the whole cache is
dropped in O(1).

The object is shared between all engines querying the same graph — in
particular between the endpoint's worker threads — so every access is
taken under a lock.  Hit/miss/invalidation counters make the cache's
effectiveness observable through the endpoint's ``/stats`` route.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import Graph
    from .terms import IRI

__all__ = ["GraphStatistics"]


class GraphStatistics:
    """Cached index statistics for one graph, invalidated by version bump."""

    def __init__(self, graph: "Graph"):
        self._graph = graph
        self._lock = threading.Lock()
        self._version = -1  # always behind a fresh graph's version 0+
        self._predicate_cardinality: Dict["IRI", int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _ensure_current_locked(self) -> None:
        version = self._graph.version
        if version != self._version:
            if self._predicate_cardinality:
                self.invalidations += 1
            self._predicate_cardinality.clear()
            self._version = version

    def predicate_cardinality(self, predicate: "IRI") -> int:
        """Triples with this predicate, cached at the current version."""
        with self._lock:
            self._ensure_current_locked()
            cached = self._predicate_cardinality.get(predicate)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
            count = self._graph.count(predicate=predicate)
            self._predicate_cardinality[predicate] = count
            return count

    def distinct_predicates(self) -> int:
        """Number of distinct predicates (straight off the POS index)."""
        return sum(1 for _ in self._graph.predicates())

    def snapshot(self) -> Dict[str, int]:
        """Counters for observability endpoints; safe to call anytime."""
        with self._lock:
            return {
                "version": self._graph.version,
                "cached_predicates": len(self._predicate_cardinality),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }
