"""TriG serialization and parsing (RDF 1.1 TriG).

The Wings traces of the corpus use named graphs: each workflow-execution
account is a ``prov:Bundle`` whose contents live in a named graph.  TriG is
Turtle plus ``GRAPH <name> { ... }`` blocks; both the serializer and the
parser delegate to the Turtle machinery.
"""

from __future__ import annotations

from typing import List, Optional

from .graph import Dataset
from .namespace import NamespaceManager
from .terms import XSD, IRI, Literal
from .turtle import TurtleParser, serialize_graph_body

__all__ = ["serialize_trig", "parse_trig"]


def serialize_trig(dataset: Dataset, namespaces: Optional[NamespaceManager] = None) -> str:
    """Serialize *dataset* as TriG: default graph first, then named graphs."""
    nsm = namespaces if namespaces is not None else dataset.namespaces
    out: List[str] = []
    used = _used_prefixes(dataset, nsm)
    for prefix, base in nsm.namespaces():
        if prefix in used:
            out.append(f"@prefix {prefix}: <{base}> .\n")
    if out:
        out.append("\n")
    out.extend(serialize_graph_body(dataset.default, nsm))
    for name in dataset.graph_names():
        graph = dataset.graph(name)
        curie = nsm.compact(name) if isinstance(name, IRI) else None
        label = curie if curie is not None else name.n3()
        out.append(f"\nGRAPH {label} {{\n")
        out.extend(serialize_graph_body(graph, nsm, indent="    "))
        out.append("}\n")
    return "".join(out)


def _used_prefixes(dataset: Dataset, nsm: NamespaceManager) -> set:
    used = set()
    graphs = [dataset.default] + list(dataset.named_graphs())
    terms = []
    for g in graphs:
        if g.identifier is not None and isinstance(g.identifier, IRI):
            terms.append(g.identifier)
        for t in g:
            terms.extend(t)
    for term in terms:
        candidates = [term] if isinstance(term, IRI) else []
        if isinstance(term, Literal) and term.datatype.value != XSD.STRING:
            candidates.append(term.datatype)
        for iri in candidates:
            curie = nsm.compact(iri)
            if curie is not None:
                used.add(curie.split(":", 1)[0])
    return used


def parse_trig(
    text: str, dataset: Optional[Dataset] = None, source: Optional[str] = None
) -> Dataset:
    """Parse TriG text into *dataset* (a new Dataset when omitted).

    *source* names the document in error messages, as in
    :func:`repro.rdf.turtle.parse_turtle`.
    """
    if dataset is None:
        dataset = Dataset()
    parser = TurtleParser(text, dataset=dataset, allow_graphs=True, source=source)
    parser.parse()
    return dataset
