"""In-memory RDF graph and dataset with triple-pattern indexes.

The :class:`Graph` maintains three hash indexes (SPO, POS, OSP) so that any
triple pattern with at least one bound position is answered without a full
scan.  This is the storage engine under both the SPARQL evaluator and the
PROV coverage scanner; the ablation bench
``benchmarks/bench_ablation_indexes.py`` measures the effect of the indexes
against the linear fallback (:meth:`Graph.triples_scan`).

:class:`Dataset` adds named graphs, which the corpus uses for Wings bundles
(one ``prov:Bundle`` per workflow execution account) serialized as TriG.

Both carry a monotonic :attr:`Graph.version` counter that is bumped on
every effective mutation; the SPARQL layer keys its statistics and
query-result caches on it, so cache invalidation is a version comparison
instead of a rebuild-per-query (see ``repro.rdf.statistics`` and
``repro.sparql.evaluator``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from .namespace import NamespaceManager, RDF
from .terms import BlankNode, IRI, Literal, Term, from_python
from .triple import Object, Predicate, Quad, Subject, Triple

__all__ = ["Graph", "Dataset", "Pattern"]

#: A triple pattern: None matches any term in that position.
Pattern = Tuple[Optional[Subject], Optional[Predicate], Optional[Object]]

_TripleKey = Tuple[Subject, Predicate, Object]


def _coerce_object(value) -> Object:
    """Allow native Python values wherever an object term is expected."""
    if isinstance(value, (IRI, BlankNode, Literal)):
        return value
    return from_python(value)


class Graph:
    """A set of RDF triples with pattern-matching access.

    Supports the usual container protocol (``len``, ``in``, iteration) plus
    set operations (union, intersection, difference) used by the decay
    detector to diff traces of the same workflow template across runs.
    """

    def __init__(
        self,
        triples: Optional[Iterable[Union[Triple, Tuple]]] = None,
        identifier: Optional[Union[IRI, BlankNode]] = None,
        namespaces: Optional[NamespaceManager] = None,
    ):
        self.identifier = identifier
        self.namespaces = namespaces if namespaces is not None else NamespaceManager()
        # Leaf level is a dict-as-ordered-set (term -> None): iteration
        # follows insertion order, so graph traversal is deterministic
        # across processes regardless of PYTHONHASHSEED — the store
        # ingest's byte-identical-segments guarantee depends on this.
        self._spo: Dict[Subject, Dict[Predicate, Dict[Object, None]]] = {}
        self._pos: Dict[Predicate, Dict[Object, Dict[Subject, None]]] = {}
        self._osp: Dict[Object, Dict[Subject, Dict[Predicate, None]]] = {}
        self._size = 0
        self._version = 0
        self._statistics = None
        if triples is not None:
            for t in triples:
                self.add(t)

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumped on every effective change.

        Two reads returning the same version guarantee the graph content
        did not change in between — the cache layers key on this.
        """
        return self._version

    def statistics(self):
        """The (lazily created) per-graph statistics cache.

        Returns a :class:`repro.rdf.statistics.GraphStatistics` bound to
        this graph; it invalidates itself by comparing :attr:`version`.
        """
        if self._statistics is None:
            from .statistics import GraphStatistics

            self._statistics = GraphStatistics(self)
        return self._statistics

    # -- mutation ---------------------------------------------------------

    def add(self, triple: Union[Triple, Tuple]) -> bool:
        """Add a triple; returns True if it was not already present."""
        s, p, o = self._as_terms(triple)
        po = self._spo.setdefault(s, {})
        objs = po.setdefault(p, {})
        if o in objs:
            return False
        objs[o] = None
        self._pos.setdefault(p, {}).setdefault(o, {})[s] = None
        self._osp.setdefault(o, {}).setdefault(s, {})[p] = None
        self._size += 1
        self._version += 1
        return True

    def add_all(self, triples: Iterable[Union[Triple, Tuple]]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Union[Triple, Tuple]) -> bool:
        """Remove a triple; returns True if it was present."""
        s, p, o = self._as_terms(triple)
        objs = self._spo.get(s, {}).get(p)
        if objs is None or o not in objs:
            return False
        self._remove_present(s, p, o)
        self._version += 1
        return True

    def _remove_present(self, s: Subject, p: Predicate, o: Object) -> None:
        """Delete a triple known to be present from all three indexes.

        All three paths use strict ``del`` so that index skew (a triple
        present in one index but not another) raises instead of silently
        corrupting size accounting.
        """
        objs = self._spo[s][p]
        del objs[o]
        if not objs:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        subs = self._pos[p][o]
        del subs[s]
        if not subs:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        preds = self._osp[o][s]
        del preds[p]
        if not preds:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1

    def remove_pattern(self, subject=None, predicate=None, obj=None) -> int:
        """Remove every triple matching the pattern; returns the count.

        Victim keys are collected with direct index cursors (no
        :class:`Triple` objects, no per-triple pattern re-matching) and
        deleted via the known-present fast path.
        """
        if subject is None and predicate is None and obj is None:
            count = self._size
            self.clear()
            return count
        victims: List[_TripleKey]
        if subject is not None:
            po = self._spo.get(subject, {})
            if predicate is not None:
                objs = po.get(predicate, ())
                if obj is not None:
                    victims = [(subject, predicate, obj)] if obj in objs else []
                else:
                    victims = [(subject, predicate, o) for o in objs]
            elif obj is not None:
                preds = self._osp.get(obj, {}).get(subject, ())
                victims = [(subject, p, obj) for p in preds]
            else:
                victims = [(subject, p, o) for p, objs in po.items() for o in objs]
        elif predicate is not None:
            os_ = self._pos.get(predicate, {})
            if obj is not None:
                victims = [(s, predicate, obj) for s in os_.get(obj, ())]
            else:
                victims = [(s, predicate, o) for o, subs in os_.items() for s in subs]
        else:
            sp = self._osp.get(obj, {})
            victims = [(s, p, obj) for s, preds in sp.items() for p in preds]
        for s, p, o in victims:
            self._remove_present(s, p, o)
        if victims:
            self._version += 1
        return len(victims)

    def clear(self) -> None:
        if self._size:
            self._version += 1
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    def check_invariants(self) -> None:
        """Assert the three indexes agree with each other and with _size.

        A debugging/testing aid: raises AssertionError on any skew
        (orphaned empty buckets, triples missing from an index, or a
        size-accounting drift).
        """
        spo = {(s, p, o) for s, po in self._spo.items() for p, objs in po.items() for o in objs}
        pos = {(s, p, o) for p, os_ in self._pos.items() for o, subs in os_.items() for s in subs}
        osp = {(s, p, o) for o, sp in self._osp.items() for s, preds in sp.items() for p in preds}
        assert spo == pos == osp, "index skew between SPO/POS/OSP"
        assert len(spo) == self._size, f"size accounting drift: {len(spo)} != {self._size}"
        for index in (self._spo, self._pos, self._osp):
            for inner in index.values():
                assert inner, "orphaned empty second-level bucket"
                for leaf in inner.values():
                    assert leaf, "orphaned empty leaf set"

    @staticmethod
    def _as_terms(triple: Union[Triple, Tuple]) -> _TripleKey:
        if isinstance(triple, Triple):
            return triple.as_tuple()
        s, p, o = triple
        return (s, p, _coerce_object(o))

    # -- pattern matching --------------------------------------------------

    def triples(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[Predicate] = None,
        obj: Optional[Object] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the pattern (None = wildcard).

        Index selection: the most selective bound position drives the
        lookup, so ``(s, p, None)`` costs O(result), not O(graph).
        """
        if subject is not None:
            po = self._spo.get(subject)
            if po is None:
                return
            if predicate is not None:
                objs = po.get(predicate)
                if objs is None:
                    return
                if obj is not None:
                    if obj in objs:
                        yield Triple(subject, predicate, obj)
                    return
                for o in objs:
                    yield Triple(subject, predicate, o)
                return
            for p, objs in po.items():
                if obj is not None:
                    if obj in objs:
                        yield Triple(subject, p, obj)
                else:
                    for o in objs:
                        yield Triple(subject, p, o)
            return
        if predicate is not None:
            os_ = self._pos.get(predicate)
            if os_ is None:
                return
            if obj is not None:
                for s in os_.get(obj, ()):
                    yield Triple(s, predicate, obj)
                return
            for o, subjects in os_.items():
                for s in subjects:
                    yield Triple(s, predicate, o)
            return
        if obj is not None:
            sp = self._osp.get(obj)
            if sp is None:
                return
            for s, preds in sp.items():
                for p in preds:
                    yield Triple(s, p, obj)
            return
        for s, po in self._spo.items():
            for p, objs in po.items():
                for o in objs:
                    yield Triple(s, p, o)

    def triples_scan(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[Predicate] = None,
        obj: Optional[Object] = None,
    ) -> Iterator[Triple]:
        """Linear-scan pattern matching (the index ablation baseline)."""
        for s, po in self._spo.items():
            if subject is not None and s != subject:
                continue
            for p, objs in po.items():
                if predicate is not None and p != predicate:
                    continue
                for o in objs:
                    if obj is not None and o != obj:
                        continue
                    yield Triple(s, p, o)

    def count(self, subject=None, predicate=None, obj=None) -> int:
        """Count matching triples straight off the indexes (no Triple
        objects are materialized for the common patterns — the SPARQL join
        planner calls this on its hot path)."""
        if subject is None and predicate is None and obj is None:
            return self._size
        if subject is not None and predicate is None and obj is None:
            return sum(len(objs) for objs in self._spo.get(subject, {}).values())
        if subject is None and predicate is not None and obj is None:
            return sum(len(subs) for subs in self._pos.get(predicate, {}).values())
        if subject is None and predicate is None and obj is not None:
            return sum(len(preds) for preds in self._osp.get(obj, {}).values())
        if subject is not None and predicate is not None and obj is None:
            return len(self._spo.get(subject, {}).get(predicate, ()))
        if subject is None and predicate is not None and obj is not None:
            return len(self._pos.get(predicate, {}).get(obj, ()))
        if subject is not None and predicate is None and obj is not None:
            return len(self._osp.get(obj, {}).get(subject, ()))
        return 1 if (subject, predicate, obj) in self else 0

    # -- single-value convenience accessors --------------------------------

    def value(
        self,
        subject: Optional[Subject] = None,
        predicate: Optional[Predicate] = None,
        obj: Optional[Object] = None,
        default=None,
    ):
        """Return the term filling the single None position of the pattern."""
        positions = [subject is None, predicate is None, obj is None]
        if sum(positions) != 1:
            raise ValueError("value() requires exactly one unbound position")
        for t in self.triples(subject, predicate, obj):
            if subject is None:
                return t.subject
            if predicate is None:
                return t.predicate
            return t.object
        return default

    def objects(self, subject: Subject, predicate: Predicate) -> Iterator[Object]:
        for t in self.triples(subject, predicate, None):
            yield t.object

    def subjects(self, predicate: Predicate, obj: Object) -> Iterator[Subject]:
        for t in self.triples(None, predicate, obj):
            yield t.subject

    def predicates(self, subject: Optional[Subject] = None) -> Iterator[Predicate]:
        """Yield the distinct predicates of the graph (or of one subject)."""
        if subject is not None:
            yield from self._spo.get(subject, {})
        else:
            yield from self._pos

    def subjects_of_type(self, rdf_type: IRI) -> Iterator[Subject]:
        yield from self.subjects(RDF.type, rdf_type)

    def resources(self) -> Set[Subject]:
        """All subjects appearing in the graph."""
        return set(self._spo)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        # An empty graph is falsy like other containers; guard against the
        # common bug of `if graph:` meaning `is not None`.
        return self._size > 0

    def __contains__(self, triple: Union[Triple, Tuple]) -> bool:
        s, p, o = self._as_terms(triple)
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._size == other._size and all(t in other for t in self)

    def __repr__(self) -> str:
        name = self.identifier.n3() if self.identifier is not None else "default"
        return f"<Graph {name} ({self._size} triples)>"

    # -- set operations -----------------------------------------------------

    def union(self, other: "Graph") -> "Graph":
        result = self.copy()
        result.add_all(other)
        return result

    def intersection(self, other: "Graph") -> "Graph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return Graph(t for t in small if t in large)

    def difference(self, other: "Graph") -> "Graph":
        return Graph(t for t in self if t not in other)

    __add__ = union
    __sub__ = difference
    __and__ = intersection

    def copy(self) -> "Graph":
        clone = Graph(identifier=self.identifier, namespaces=self.namespaces.copy())
        clone.add_all(self)
        return clone

    # -- analysis helpers ----------------------------------------------------

    def predicate_histogram(self) -> Dict[IRI, int]:
        """Map each predicate to its triple count (used by coverage reports)."""
        return {p: sum(len(s) for s in os_.values()) for p, os_ in self._pos.items()}

    def sorted_triples(self) -> List[Triple]:
        """Deterministically ordered triples (stable serializer output)."""
        return sorted(self.triples(), key=Triple.sort_key)


class Dataset:
    """A default graph plus zero or more named graphs (RDF 1.1 dataset)."""

    def __init__(self, namespaces: Optional[NamespaceManager] = None):
        self.namespaces = namespaces if namespaces is not None else NamespaceManager()
        self.default = Graph(namespaces=self.namespaces)
        self._named: Dict[Union[IRI, BlankNode], Graph] = {}
        self._structure_version = 0

    @property
    def version(self) -> int:
        """Monotonic dataset version: structural changes (graphs added or
        removed) plus the versions of every member graph.

        Removing a graph bumps the structural counter by more than the
        removed graph's version so the sum can never move backwards.
        """
        return (
            self._structure_version
            + self.default.version
            + sum(g.version for g in self._named.values())
        )

    def graph(self, name: Optional[Union[IRI, BlankNode]] = None) -> Graph:
        """Return (creating if needed) the graph with the given name."""
        if name is None:
            return self.default
        g = self._named.get(name)
        if g is None:
            g = Graph(identifier=name, namespaces=self.namespaces)
            self._named[name] = g
            self._structure_version += 1
        return g

    def has_graph(self, name: Union[IRI, BlankNode]) -> bool:
        return name in self._named

    def remove_graph(self, name: Union[IRI, BlankNode]) -> bool:
        g = self._named.pop(name, None)
        if g is None:
            return False
        self._structure_version += g.version + 1
        return True

    def graph_names(self) -> List[Union[IRI, BlankNode]]:
        return sorted(self._named, key=lambda t: t.sort_key())

    def named_graphs(self) -> Iterator[Graph]:
        for name in self.graph_names():
            yield self._named[name]

    def add(self, quad: Union[Quad, Tuple]) -> bool:
        if isinstance(quad, Quad):
            return self.graph(quad.graph).add(quad.triple())
        if len(quad) == 4:
            s, p, o, g = quad
            return self.graph(g).add((s, p, o))
        return self.default.add(quad)

    def quads(
        self,
        subject=None,
        predicate=None,
        obj=None,
        graph: Optional[Union[IRI, BlankNode, bool]] = None,
    ) -> Iterator[Quad]:
        """Yield quads matching a pattern.

        *graph* = None matches every graph; pass an IRI/BlankNode to
        restrict to one named graph, or ``False`` for the default graph.
        """
        if graph is None:
            sources: List[Tuple[Optional[Union[IRI, BlankNode]], Graph]] = [(None, self.default)]
            sources.extend((name, g) for name, g in self._named.items())
        elif graph is False:
            sources = [(None, self.default)]
        else:
            g = self._named.get(graph)
            sources = [(graph, g)] if g is not None else []
        for name, g in sources:
            for t in g.triples(subject, predicate, obj):
                yield Quad(t.subject, t.predicate, t.object, name)

    def union_graph(self) -> Graph:
        """Merge the default and all named graphs into one graph.

        This is what the corpus-wide queries run against when graph
        boundaries do not matter (e.g. coverage scans).
        """
        merged = Graph(namespaces=self.namespaces.copy())
        merged.add_all(self.default)
        for g in self._named.values():
            merged.add_all(g)
        return merged

    def __len__(self) -> int:
        return len(self.default) + sum(len(g) for g in self._named.values())

    def __repr__(self) -> str:
        return f"<Dataset default={len(self.default)} named_graphs={len(self._named)} total={len(self)}>"
