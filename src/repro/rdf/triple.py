"""Triples and quads — the statements stored in graphs and datasets."""

from __future__ import annotations

from typing import Optional, Tuple, Union

from .terms import BlankNode, IRI, Literal, Term

__all__ = ["Subject", "Predicate", "Object", "Triple", "Quad"]

Subject = Union[IRI, BlankNode]
Predicate = IRI
Object = Union[IRI, BlankNode, Literal]


class Triple:
    """An RDF triple (subject, predicate, object) with positional access."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: Subject, predicate: Predicate, obj: Object):
        if not isinstance(subject, (IRI, BlankNode)):
            raise TypeError(f"triple subject must be IRI or BlankNode, got {type(subject).__name__}")
        if not isinstance(predicate, IRI):
            raise TypeError(f"triple predicate must be IRI, got {type(predicate).__name__}")
        if not isinstance(obj, (IRI, BlankNode, Literal)):
            raise TypeError(f"triple object must be an RDF term, got {type(obj).__name__}")
        object.__setattr__(self, "subject", subject)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "object", obj)

    def __setattr__(self, name, value):
        raise AttributeError("Triple is immutable")

    def __iter__(self):
        return iter((self.subject, self.predicate, self.object))

    def __getitem__(self, index: int) -> Term:
        return (self.subject, self.predicate, self.object)[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Triple):
            return (
                self.subject == other.subject
                and self.predicate == other.predicate
                and self.object == other.object
            )
        if isinstance(other, tuple) and len(other) == 3:
            return (self.subject, self.predicate, self.object) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.subject, self.predicate, self.object))

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def sort_key(self) -> Tuple:
        return (self.subject.sort_key(), self.predicate.sort_key(), self.object.sort_key())

    def as_tuple(self) -> Tuple[Subject, Predicate, Object]:
        return (self.subject, self.predicate, self.object)


class Quad(Triple):
    """A triple plus the named graph it belongs to (None = default graph)."""

    __slots__ = ("graph",)

    def __init__(
        self,
        subject: Subject,
        predicate: Predicate,
        obj: Object,
        graph: Optional[Union[IRI, BlankNode]] = None,
    ):
        super().__init__(subject, predicate, obj)
        if graph is not None and not isinstance(graph, (IRI, BlankNode)):
            raise TypeError("quad graph name must be IRI, BlankNode, or None")
        object.__setattr__(self, "graph", graph)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Quad):
            return super().__eq__(other) and self.graph == other.graph
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.subject, self.predicate, self.object, self.graph))

    def __repr__(self) -> str:
        return f"Quad({self.subject!r}, {self.predicate!r}, {self.object!r}, graph={self.graph!r})"

    def triple(self) -> Triple:
        return Triple(self.subject, self.predicate, self.object)
