"""Turtle serialization and parsing (RDF 1.1 Turtle).

Turtle is the primary format of the corpus: each workflow-run trace is
stored as one ``.ttl`` file.  The serializer groups triples by subject and
predicate (``;`` / ``,`` shorthand) with sorted, deterministic output; the
parser is a hand-written recursive-descent parser over a regex tokenizer and
supports the subset of Turtle the corpus uses plus blank-node property
lists, collections, numeric/boolean shorthand and both ``@prefix`` and
SPARQL-style ``PREFIX`` directives.

The tokenizer and statement parser are shared with the TriG module, which
adds named-graph blocks on top.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple, Union

from .graph import Dataset, Graph
from .namespace import NamespaceManager, RDF
from .terms import BlankNode, IRI, Literal, XSD, escape_string, unescape_string
from .triple import Object, Subject, Triple

__all__ = ["serialize_turtle", "parse_turtle", "TurtleError", "Tokenizer", "TurtleParser"]


class TurtleError(ValueError):
    """Raised on malformed Turtle/TriG input.

    Carries the parse location so corpus loading can tell the user
    *which* trace file broke and where: ``lineno``/``column`` locate the
    failure inside the document, ``source`` names the document (a corpus
    relative path when parsing came through :func:`repro.corpus.storage.
    load_corpus`, or whatever the caller passed to ``parse_turtle``).
    """

    def __init__(
        self,
        message: str,
        lineno: int,
        column: Optional[int] = None,
        source: Optional[str] = None,
    ):
        self.raw_message = message
        self.lineno = lineno
        self.column = column
        self.source = source
        location = f"line {lineno}"
        if column is not None:
            location += f", column {column}"
        prefix = f"{source}: " if source else ""
        super().__init__(f"{prefix}{location}: {message}")

    def __reduce__(self):
        # Exception's default reduce replays args=(formatted message,)
        # against our four-argument __init__; rebuild from the real
        # fields so instances survive pickling (pool workers return
        # parse failures across process boundaries).
        return (TurtleError, (self.raw_message, self.lineno, self.column, self.source))

    def with_source(self, source: str) -> "TurtleError":
        """A copy of this error attributed to a named document."""
        return TurtleError(self.raw_message, self.lineno, self.column, source)


# ---------------------------------------------------------------------------
# Serializer
# ---------------------------------------------------------------------------

def _term_text(term, nsm: NamespaceManager) -> str:
    """Render a term, preferring CURIEs and literal shorthand."""
    if isinstance(term, IRI):
        if term == RDF.type:
            return "a"
        curie = nsm.compact(term)
        return curie if curie is not None else term.n3()
    if isinstance(term, Literal):
        dt = term.datatype.value
        if term.language is None:
            if dt == XSD.INTEGER and re.fullmatch(r"[+-]?\d+", term.lexical):
                return term.lexical
            if dt == XSD.BOOLEAN and term.lexical in ("true", "false"):
                return term.lexical
            if dt == XSD.DECIMAL and re.fullmatch(r"[+-]?\d*\.\d+", term.lexical):
                return term.lexical
            if dt == XSD.STRING:
                return f'"{escape_string(term.lexical)}"'
            curie = nsm.compact(term.datatype)
            suffix = f"^^{curie}" if curie is not None else f"^^{term.datatype.n3()}"
            return f'"{escape_string(term.lexical)}"{suffix}'
        return term.n3()
    return term.n3()


def serialize_graph_body(graph: Graph, nsm: NamespaceManager, indent: str = "") -> Iterator[str]:
    """Yield the subject-grouped statement lines of a graph (no prefixes)."""
    by_subject = {}
    for t in graph:
        by_subject.setdefault(t.subject, []).append(t)
    for subject in sorted(by_subject, key=lambda s: s.sort_key()):
        triples = by_subject[subject]
        by_pred = {}
        for t in triples:
            by_pred.setdefault(t.predicate, []).append(t.object)
        # rdf:type first — conventional Turtle style for readability.
        preds = sorted(by_pred, key=lambda p: (p != RDF.type, p.sort_key()))
        lines: List[str] = []
        subject_text = _term_text(subject, nsm)
        for i, pred in enumerate(preds):
            objs = sorted(by_pred[pred], key=lambda o: o.sort_key())
            obj_text = ", ".join(_term_text(o, nsm) for o in objs)
            pred_text = _term_text(pred, nsm)
            if i == 0:
                lines.append(f"{indent}{subject_text} {pred_text} {obj_text}")
            else:
                lines.append(f"{indent}    {pred_text} {obj_text}")
        yield " ;\n".join(lines) + " .\n"


def serialize_turtle(graph: Graph, namespaces: Optional[NamespaceManager] = None) -> str:
    """Serialize *graph* as Turtle with a prefix header."""
    nsm = namespaces if namespaces is not None else graph.namespaces
    out: List[str] = []
    used = _used_prefixes(graph, nsm)
    for prefix, base in nsm.namespaces():
        if prefix in used:
            out.append(f"@prefix {prefix}: <{base}> .\n")
    if out:
        out.append("\n")
    out.extend(serialize_graph_body(graph, nsm))
    return "".join(out)


def _used_prefixes(graph: Graph, nsm: NamespaceManager) -> set:
    used = set()
    for t in graph:
        for term in t:
            candidates = [term] if isinstance(term, IRI) else []
            if isinstance(term, Literal) and term.datatype.value != XSD.STRING:
                candidates.append(term.datatype)
            for iri in candidates:
                curie = nsm.compact(iri)
                if curie is not None:
                    used.add(curie.split(":", 1)[0])
    return used


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<comment>\#[^\n]*)
    | (?P<iriref><[^<>"{}|^`\\\x00-\x20]*>)
    | (?P<string_long>\"\"\"(?:[^"\\]|\\.|"(?!""))*\"\"\")
    | (?P<string>"(?:[^"\\\n]|\\.)*")
    | (?P<bnode>_:[A-Za-z0-9_][A-Za-z0-9_.\-]*)
    | (?P<prefix_decl>@prefix\b|@base\b)
    | (?P<sparql_prefix>(?i:PREFIX)\b)
    | (?P<sparql_base>(?i:BASE)\b)
    | (?P<graph_kw>(?i:GRAPH)\b)
    | (?P<langtag>@[A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*)
    | (?P<double>[+-]?(?:\d+\.\d*|\.\d+|\d+)[eE][+-]?\d+)
    | (?P<decimal>[+-]?\d*\.\d+)
    | (?P<integer>[+-]?\d+)
    | (?P<boolean>\b(?:true|false)\b)
    | (?P<a>\ba\b)
    | (?P<pname>[A-Za-z_][A-Za-z0-9_\-]*)?:(?:[A-Za-z0-9_\-.]*[A-Za-z0-9_\-])?
    | (?P<dtmark>\^\^)
    | (?P<punct>[;,.\[\](){}])
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "lineno", "column")

    def __init__(self, kind: str, text: str, lineno: int, column: int = 0):
        self.kind = kind
        self.text = text
        self.lineno = lineno
        self.column = column

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.lineno})"


class Tokenizer:
    """Regex tokenizer for Turtle/TriG with one-token lookahead."""

    def __init__(self, text: str):
        self._tokens = list(self._scan(text))
        self._pos = 0

    @staticmethod
    def _scan(text: str) -> Iterator[Token]:
        lineno = 1
        line_start = 0  # offset of the current line's first character
        pos = 0
        length = len(text)
        while pos < length:
            match = _TOKEN_RE.match(text, pos)
            if match is None or match.end() == pos:
                raise TurtleError(
                    f"unexpected character {text[pos]!r}", lineno, pos - line_start + 1
                )
            column = pos - line_start + 1
            newlines = text.count("\n", pos, match.end())
            if newlines:
                lineno += newlines
                line_start = text.rindex("\n", pos, match.end()) + 1
            kind = match.lastgroup
            token_text = match.group()
            pos = match.end()
            if kind in ("ws", "comment"):
                continue
            if kind is None:
                # pname group may match with lastgroup None when prefix part absent
                kind = "pname"
            yield Token(kind, token_text, lineno, column)

    def peek(self) -> Optional[Token]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            last_line = self._tokens[-1].lineno if self._tokens else 1
            raise TurtleError("unexpected end of input", last_line)
        self._pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise TurtleError(
                f"expected {want!r}, got {tok.text!r}", tok.lineno, tok.column
            )
        return tok

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class TurtleParser:
    """Recursive-descent parser emitting triples into a sink graph.

    The same class parses TriG when *allow_graphs* is set: named-graph
    blocks route triples into ``dataset.graph(name)``.
    """

    def __init__(
        self,
        text: str,
        graph: Optional[Graph] = None,
        dataset: Optional[Dataset] = None,
        allow_graphs: bool = False,
        source: Optional[str] = None,
    ):
        self.source = source
        try:
            self.tokens = Tokenizer(text)
        except TurtleError as exc:
            raise self._attribute(exc) from None
        self.dataset = dataset
        self.allow_graphs = allow_graphs
        if allow_graphs:
            if dataset is None:
                raise TurtleError("TriG parsing requires a dataset sink", 0)
            self.nsm = dataset.namespaces
            self.sink = dataset.default
        else:
            self.graph = graph if graph is not None else Graph()
            self.nsm = self.graph.namespaces
            self.sink = self.graph
        self.base = ""
        self._anon_count = 0

    def _attribute(self, exc: TurtleError) -> TurtleError:
        """Attach this parser's document name to an unattributed error."""
        if self.source and exc.source is None:
            return exc.with_source(self.source)
        return exc

    def _last_location(self) -> Tuple[int, Optional[int]]:
        """Position of the most recently consumed token (best effort)."""
        idx = min(self.tokens._pos, len(self.tokens._tokens)) - 1
        if idx >= 0:
            tok = self.tokens._tokens[idx]
            return tok.lineno, tok.column
        return 1, None

    # -- entry point --------------------------------------------------------

    def parse(self):
        try:
            self._parse_document()
        except TurtleError as exc:
            raise self._attribute(exc) from None
        except ValueError as exc:
            # Term constructors (Literal, unescape_string, ...) raise bare
            # ValueError; normalize so callers see one typed parse error.
            lineno, column = self._last_location()
            raise self._attribute(TurtleError(str(exc), lineno, column)) from None
        return self.dataset if self.allow_graphs else self.graph

    def _parse_document(self):
        while not self.tokens.at_end():
            tok = self.tokens.peek()
            if tok.kind == "prefix_decl":
                self._parse_at_directive()
            elif tok.kind == "sparql_prefix":
                self.tokens.next()
                self._parse_prefix_binding(require_dot=False)
            elif tok.kind == "sparql_base":
                self.tokens.next()
                iri_tok = self.tokens.expect("iriref")
                self.base = iri_tok.text[1:-1]
            elif self.allow_graphs and self._looks_like_graph_block():
                self._parse_graph_block()
            else:
                self._parse_statement(self.sink)

    def _parse_at_directive(self):
        tok = self.tokens.next()
        if tok.text == "@prefix":
            self._parse_prefix_binding(require_dot=True)
        else:  # @base
            iri_tok = self.tokens.expect("iriref")
            self.base = iri_tok.text[1:-1]
            self.tokens.expect("punct", ".")

    def _parse_prefix_binding(self, require_dot: bool):
        pname = self.tokens.next()
        if pname.kind != "pname" or not pname.text.endswith(":"):
            raise TurtleError(
                f"expected prefix name, got {pname.text!r}", pname.lineno, pname.column
            )
        prefix = pname.text[:-1]
        iri_tok = self.tokens.expect("iriref")
        self.nsm.bind(prefix, iri_tok.text[1:-1])
        if require_dot:
            self.tokens.expect("punct", ".")
        else:
            nxt = self.tokens.peek()
            if nxt is not None and nxt.kind == "punct" and nxt.text == ".":
                self.tokens.next()

    # -- TriG graph blocks ----------------------------------------------------

    def _looks_like_graph_block(self) -> bool:
        tok = self.tokens.peek()
        if tok is None:
            return False
        if tok.kind == "graph_kw":
            return True
        if tok.kind == "punct" and tok.text == "{":
            return True
        if tok.kind in ("iriref", "pname", "bnode"):
            nxt = self.tokens._tokens[self.tokens._pos + 1] if self.tokens._pos + 1 < len(self.tokens._tokens) else None
            return nxt is not None and nxt.kind == "punct" and nxt.text == "{"
        return False

    def _parse_graph_block(self):
        tok = self.tokens.peek()
        name = None
        if tok.kind == "graph_kw":
            self.tokens.next()
            name = self._parse_graph_name()
        elif tok.kind != "punct":
            name = self._parse_graph_name()
        self.tokens.expect("punct", "{")
        target = self.dataset.graph(name)
        while True:
            tok = self.tokens.peek()
            if tok is None:
                raise TurtleError("unterminated graph block", 0)
            if tok.kind == "punct" and tok.text == "}":
                self.tokens.next()
                break
            self._parse_statement(target, in_graph=True)

    def _parse_graph_name(self) -> Union[IRI, BlankNode]:
        tok = self.tokens.next()
        if tok.kind == "iriref":
            return self._resolve_iri(tok.text[1:-1], tok.lineno)
        if tok.kind == "pname":
            return self._expand_pname(tok)
        if tok.kind == "bnode":
            return BlankNode(tok.text[2:])
        raise TurtleError(f"invalid graph name {tok.text!r}", tok.lineno, tok.column)

    # -- statements ------------------------------------------------------------

    def _parse_statement(self, sink: Graph, in_graph: bool = False):
        subject = self._parse_subject(sink)
        self._parse_predicate_object_list(subject, sink)
        tok = self.tokens.peek()
        if tok is not None and tok.kind == "punct" and tok.text == ".":
            self.tokens.next()
        elif in_graph and tok is not None and tok.kind == "punct" and tok.text == "}":
            pass  # final statement of a graph block may omit '.'
        elif tok is None and not in_graph:
            raise TurtleError("missing '.' at end of statement", 0)
        else:
            lineno = tok.lineno if tok is not None else 0
            column = tok.column if tok is not None else None
            text = tok.text if tok is not None else "<eof>"
            raise TurtleError(f"expected '.', got {text!r}", lineno, column)

    def _parse_subject(self, sink: Graph) -> Subject:
        tok = self.tokens.peek()
        if tok.kind == "punct" and tok.text == "[":
            return self._parse_bnode_property_list(sink)
        if tok.kind == "punct" and tok.text == "(":
            return self._parse_collection(sink)
        term = self._parse_term(sink)
        if not isinstance(term, (IRI, BlankNode)):
            raise TurtleError("literal cannot be a subject", tok.lineno, tok.column)
        return term

    def _parse_predicate_object_list(self, subject: Subject, sink: Graph):
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_object(sink)
                sink.add(Triple(subject, predicate, obj))
                tok = self.tokens.peek()
                if tok is not None and tok.kind == "punct" and tok.text == ",":
                    self.tokens.next()
                    continue
                break
            tok = self.tokens.peek()
            if tok is not None and tok.kind == "punct" and tok.text == ";":
                self.tokens.next()
                nxt = self.tokens.peek()
                # allow trailing ';' before '.', ']' or '}'
                if nxt is not None and nxt.kind == "punct" and nxt.text in (".", "]", "}"):
                    break
                continue
            break

    def _parse_predicate(self) -> IRI:
        tok = self.tokens.next()
        if tok.kind == "a":
            return RDF.type
        if tok.kind == "iriref":
            return self._resolve_iri(tok.text[1:-1], tok.lineno, tok.column)
        if tok.kind == "pname":
            return self._expand_pname(tok)
        raise TurtleError(f"invalid predicate {tok.text!r}", tok.lineno, tok.column)

    def _parse_object(self, sink: Graph) -> Object:
        tok = self.tokens.peek()
        if tok.kind == "punct" and tok.text == "[":
            return self._parse_bnode_property_list(sink)
        if tok.kind == "punct" and tok.text == "(":
            return self._parse_collection(sink)
        return self._parse_term(sink)

    def _parse_bnode_property_list(self, sink: Graph) -> BlankNode:
        open_tok = self.tokens.expect("punct", "[")
        self._anon_count += 1
        node = BlankNode(f"anon{self._anon_count}")
        tok = self.tokens.peek()
        if tok is not None and tok.kind == "punct" and tok.text == "]":
            self.tokens.next()
            return node
        self._parse_predicate_object_list(node, sink)
        self.tokens.expect("punct", "]")
        return node

    def _parse_collection(self, sink: Graph) -> Union[IRI, BlankNode]:
        self.tokens.expect("punct", "(")
        items: List[Object] = []
        while True:
            tok = self.tokens.peek()
            if tok is None:
                raise TurtleError("unterminated collection", 0)
            if tok.kind == "punct" and tok.text == ")":
                self.tokens.next()
                break
            items.append(self._parse_object(sink))
        if not items:
            return RDF.nil
        head = None
        prev = None
        for item in items:
            self._anon_count += 1
            cell = BlankNode(f"list{self._anon_count}")
            if head is None:
                head = cell
            if prev is not None:
                sink.add(Triple(prev, RDF.rest, cell))
            sink.add(Triple(cell, RDF.first, item))
            prev = cell
        sink.add(Triple(prev, RDF.rest, RDF.nil))
        return head

    # -- terms -------------------------------------------------------------------

    def _parse_term(self, sink: Graph):
        tok = self.tokens.next()
        if tok.kind == "iriref":
            return self._resolve_iri(tok.text[1:-1], tok.lineno, tok.column)
        if tok.kind == "pname":
            return self._expand_pname(tok)
        if tok.kind == "bnode":
            return BlankNode(tok.text[2:])
        if tok.kind in ("string", "string_long"):
            return self._finish_literal(tok)
        if tok.kind == "integer":
            return Literal(tok.text, datatype=XSD.INTEGER)
        if tok.kind == "decimal":
            return Literal(tok.text, datatype=XSD.DECIMAL)
        if tok.kind == "double":
            return Literal(tok.text, datatype=XSD.DOUBLE)
        if tok.kind == "boolean":
            return Literal(tok.text, datatype=XSD.BOOLEAN)
        if tok.kind == "a":
            return RDF.type
        raise TurtleError(f"unexpected token {tok.text!r}", tok.lineno, tok.column)

    def _finish_literal(self, tok: Token) -> Literal:
        if tok.kind == "string_long":
            raw = tok.text[3:-3]
        else:
            raw = tok.text[1:-1]
        try:
            lexical = unescape_string(raw)
        except ValueError as exc:
            raise TurtleError(str(exc), tok.lineno, tok.column) from None
        nxt = self.tokens.peek()
        if nxt is not None and nxt.kind == "dtmark":
            self.tokens.next()
            dt_tok = self.tokens.next()
            if dt_tok.kind == "iriref":
                datatype = self._resolve_iri(dt_tok.text[1:-1], dt_tok.lineno, dt_tok.column)
            elif dt_tok.kind == "pname":
                datatype = self._expand_pname(dt_tok)
            else:
                raise TurtleError(
                    "expected datatype IRI after ^^", dt_tok.lineno, dt_tok.column
                )
            return Literal(lexical, datatype=datatype)
        if nxt is not None and nxt.kind == "langtag":
            self.tokens.next()
            try:
                return Literal(lexical, language=nxt.text[1:])
            except ValueError as exc:
                raise TurtleError(str(exc), nxt.lineno, nxt.column) from None
        return Literal(lexical)

    def _resolve_iri(self, value: str, lineno: int, column: Optional[int] = None) -> IRI:
        if self.base and "://" not in value and not value.startswith("urn:"):
            value = self.base + value
        try:
            return IRI(value)
        except ValueError as exc:
            raise TurtleError(str(exc), lineno, column) from None

    def _expand_pname(self, tok: Token) -> IRI:
        prefix, _, local = tok.text.partition(":")
        try:
            return self.nsm.expand(f"{prefix}:{local}")
        except KeyError:
            raise TurtleError(
                f"unknown prefix {prefix!r}", tok.lineno, tok.column
            ) from None


def parse_turtle(
    text: str, graph: Optional[Graph] = None, source: Optional[str] = None
) -> Graph:
    """Parse Turtle text into *graph* (a new Graph when omitted).

    *source* names the document in error messages — pass a file path so a
    :class:`TurtleError` pinpoints which trace broke and where.
    """
    return TurtleParser(text, graph=graph, source=source).parse()
