"""RDF substrate: terms, graphs, datasets, and serializations.

This subpackage is a self-contained RDF 1.1 implementation sized for the
ProvBench corpus: immutable terms, hash-indexed graphs, named-graph
datasets, and four serializations (Turtle, TriG, N-Triples/N-Quads, and a
JSON-LD-flavoured JSON profile).
"""

from .graph import Dataset, Graph
from .statistics import GraphStatistics
from .namespace import (
    CORE_PREFIXES,
    DCTERMS,
    FOAF,
    OPMW,
    OWL,
    PROV,
    RDF,
    RDFS,
    RO,
    WFDESC,
    WFPROV,
    XSD_NS,
    Namespace,
    NamespaceManager,
)
from .isomorphism import canonical_hash, isomorphic
from .ntriples import parse_nquads, parse_ntriples, serialize_nquads, serialize_ntriples
from .terms import XSD, BlankNode, IRI, Literal, from_python
from .trig import parse_trig, serialize_trig
from .triple import Quad, Triple
from .turtle import parse_turtle, serialize_turtle
from .jsonld import from_jsonld, to_jsonld

__all__ = [
    "IRI",
    "BlankNode",
    "Literal",
    "XSD",
    "from_python",
    "Triple",
    "Quad",
    "Graph",
    "Dataset",
    "GraphStatistics",
    "Namespace",
    "NamespaceManager",
    "CORE_PREFIXES",
    "RDF",
    "RDFS",
    "OWL",
    "XSD_NS",
    "PROV",
    "WFPROV",
    "WFDESC",
    "OPMW",
    "RO",
    "DCTERMS",
    "FOAF",
    "serialize_turtle",
    "parse_turtle",
    "serialize_trig",
    "parse_trig",
    "serialize_ntriples",
    "parse_ntriples",
    "serialize_nquads",
    "parse_nquads",
    "to_jsonld",
    "from_jsonld",
    "isomorphic",
    "canonical_hash",
]
