"""N-Triples and N-Quads serialization (RDF 1.1 line-based formats).

These are the exchange formats of the corpus loader tests: trivially
streamable, one statement per line, no prefix state.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Optional, TextIO, Union

from .graph import Dataset, Graph
from .terms import BlankNode, IRI, Literal, unescape_string
from .triple import Quad, Triple

__all__ = [
    "serialize_ntriples",
    "parse_ntriples",
    "serialize_nquads",
    "parse_nquads",
    "NTriplesError",
]


class NTriplesError(ValueError):
    """Raised on malformed N-Triples/N-Quads input, with the line number."""

    def __init__(self, message: str, lineno: int):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def serialize_ntriples(graph: Graph, out: Optional[TextIO] = None) -> Optional[str]:
    """Serialize *graph* as canonical (sorted) N-Triples."""
    lines = (t.n3() + "\n" for t in graph.sorted_triples())
    if out is None:
        return "".join(lines)
    for line in lines:
        out.write(line)
    return None


def serialize_nquads(dataset: Dataset, out: Optional[TextIO] = None) -> Optional[str]:
    """Serialize *dataset* as canonical N-Quads (default graph first)."""

    def lines() -> Iterator[str]:
        for t in dataset.default.sorted_triples():
            yield t.n3() + "\n"
        for name in dataset.graph_names():
            for t in dataset.graph(name).sorted_triples():
                yield f"{t.subject.n3()} {t.predicate.n3()} {t.object.n3()} {name.n3()} .\n"

    if out is None:
        return "".join(lines())
    for line in lines():
        out.write(line)
    return None


_TERM_RE = re.compile(
    r"""\s*(?:
        <(?P<iri>[^>]*)>
      | _:(?P<bnode>[A-Za-z0-9_.\-]+)
      | "(?P<lit>(?:[^"\\]|\\.)*)"
        (?:\^\^<(?P<dt>[^>]*)>|@(?P<lang>[A-Za-z]{1,8}(?:-[A-Za-z0-9]{1,8})*))?
    )""",
    re.VERBOSE,
)


def _parse_term(text: str, pos: int, lineno: int):
    match = _TERM_RE.match(text, pos)
    if match is None:
        raise NTriplesError(f"expected RDF term at column {pos}", lineno)
    if match.group("iri") is not None:
        return IRI(match.group("iri")), match.end()
    if match.group("bnode") is not None:
        return BlankNode(match.group("bnode")), match.end()
    lexical = unescape_string(match.group("lit"))
    if match.group("dt") is not None:
        return Literal(lexical, datatype=match.group("dt")), match.end()
    if match.group("lang") is not None:
        return Literal(lexical, language=match.group("lang")), match.end()
    return Literal(lexical), match.end()


def _parse_statements(text: str, max_terms: int) -> Iterator[tuple]:
    # Split on '\n' only: characters like U+0085 are legal inside literals
    # and must not be treated as line terminators (str.splitlines would).
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.strip(" \t\r")
        if not line or line.startswith("#"):
            continue
        terms = []
        pos = 0
        while len(terms) < max_terms:
            term, pos = _parse_term(line, pos, lineno)
            terms.append(term)
            rest = line[pos:].lstrip()
            if rest.startswith("."):
                trailing = rest[1:].strip()
                if trailing and not trailing.startswith("#"):
                    raise NTriplesError("content after terminating '.'", lineno)
                break
            pos = len(line) - len(rest)
        else:
            rest = line[pos:].lstrip()
            if not rest.startswith("."):
                raise NTriplesError("missing terminating '.'", lineno)
        if len(terms) < 3:
            raise NTriplesError("statement has fewer than 3 terms", lineno)
        if not isinstance(terms[0], (IRI, BlankNode)):
            raise NTriplesError("subject must be an IRI or blank node", lineno)
        if not isinstance(terms[1], IRI):
            raise NTriplesError("predicate must be an IRI", lineno)
        yield tuple(terms), lineno


def parse_ntriples(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse N-Triples text into *graph* (a new Graph when omitted)."""
    if graph is None:
        graph = Graph()
    for terms, lineno in _parse_statements(text, max_terms=3):
        graph.add(Triple(*terms))
    return graph


def parse_nquads(text: str, dataset: Optional[Dataset] = None) -> Dataset:
    """Parse N-Quads text into *dataset* (a new Dataset when omitted)."""
    if dataset is None:
        dataset = Dataset()
    for terms, lineno in _parse_statements(text, max_terms=4):
        if len(terms) == 3:
            dataset.default.add(Triple(*terms))
        else:
            s, p, o, g = terms
            if not isinstance(g, (IRI, BlankNode)):
                raise NTriplesError("graph label must be an IRI or blank node", lineno)
            dataset.add(Quad(s, p, o, g))
    return dataset
