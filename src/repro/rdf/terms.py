"""RDF term model: IRIs, blank nodes, and literals.

This module implements the node types of the RDF 1.1 abstract syntax
(https://www.w3.org/TR/rdf11-concepts/).  Terms are immutable, hashable
values so they can be used directly as dictionary keys inside the triple
indexes of :mod:`repro.rdf.graph`.

The provenance corpus stores most values as typed literals (``xsd:dateTime``
for activity timestamps, ``xsd:integer``/``xsd:double`` for data values), so
literals carry full datatype handling, including conversion to and from
native Python values via :func:`Literal.to_python` and :func:`from_python`.
"""

from __future__ import annotations

import datetime as _dt
import re
from typing import Any, Optional, Union

__all__ = [
    "Term",
    "IRI",
    "BlankNode",
    "Literal",
    "XSD",
    "from_python",
    "is_valid_iri",
]


class XSD:
    """IRIs of the XML Schema datatypes used by the corpus."""

    _BASE = "http://www.w3.org/2001/XMLSchema#"

    STRING = _BASE + "string"
    BOOLEAN = _BASE + "boolean"
    INTEGER = _BASE + "integer"
    LONG = _BASE + "long"
    INT = _BASE + "int"
    DECIMAL = _BASE + "decimal"
    DOUBLE = _BASE + "double"
    FLOAT = _BASE + "float"
    DATETIME = _BASE + "dateTime"
    DATE = _BASE + "date"
    TIME = _BASE + "time"
    DURATION = _BASE + "duration"
    ANYURI = _BASE + "anyURI"

    NUMERIC = frozenset({INTEGER, LONG, INT, DECIMAL, DOUBLE, FLOAT})


_IRI_FORBIDDEN = re.compile(r"[\x00-\x20<>\"{}|^`\\]")

# RDF 1.1: language-tagged strings use this datatype implicitly.
_RDF_LANGSTRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"


def is_valid_iri(value: str) -> bool:
    """Return True if *value* is usable as an IRI reference.

    This is a pragmatic check (no control characters, no characters that
    Turtle/N-Triples would require escaping in an IRIREF, and a scheme or
    relative form), not a full RFC 3987 validation.
    """
    if not value:
        return False
    return _IRI_FORBIDDEN.search(value) is None


class Term:
    """Base class for all RDF terms.

    Terms compare by value and sort deterministically across kinds
    (blank nodes < IRIs < literals), which keeps serializer output stable —
    an important property for the corpus, whose files are regenerated and
    diffed between builds.
    """

    __slots__ = ()

    _SORT_RANK = 0

    def n3(self) -> str:
        """Return the N-Triples/Turtle token for this term."""
        raise NotImplementedError

    def sort_key(self) -> tuple:
        return (self._SORT_RANK, str(self))

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()


class IRI(Term):
    """An IRI reference (RDF 1.1 "IRI")."""

    __slots__ = ("value",)

    _SORT_RANK = 1

    def __init__(self, value: str):
        if not isinstance(value, str):
            raise TypeError(f"IRI value must be str, got {type(value).__name__}")
        if not is_valid_iri(value):
            raise ValueError(f"invalid IRI: {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("IRI is immutable")

    def __reduce__(self):
        # __slots__ + a blocking __setattr__ defeat the default pickle
        # path; rebuild through __init__ (terms cross process boundaries
        # in the parallel corpus build).
        return (IRI, (self.value,))

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IRI) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("IRI", self.value))

    def n3(self) -> str:
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """The part of the IRI after the last ``#`` or ``/``."""
        value = self.value
        for sep in ("#", "/"):
            if sep in value:
                tail = value.rsplit(sep, 1)[1]
                if sep == "#" or tail:
                    return tail
        return value

    @property
    def namespace(self) -> str:
        """The IRI up to and including the last ``#`` or ``/``."""
        return self.value[: len(self.value) - len(self.local_name)]


class BlankNode(Term):
    """An RDF blank node with a local identifier.

    Identifiers are scoped to a document; the corpus serializers keep them
    stable so re-serialization round-trips.
    """

    __slots__ = ("id",)

    _SORT_RANK = 0
    _counter = 0

    def __init__(self, node_id: Optional[str] = None):
        if node_id is None:
            BlankNode._counter += 1
            node_id = f"b{BlankNode._counter}"
        if not isinstance(node_id, str) or not node_id:
            raise ValueError("blank node id must be a non-empty string")
        if not re.fullmatch(r"[A-Za-z0-9_.\-]+", node_id):
            raise ValueError(f"invalid blank node id: {node_id!r}")
        object.__setattr__(self, "id", node_id)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("BlankNode is immutable")

    def __reduce__(self):
        return (BlankNode, (self.id,))

    def __str__(self) -> str:
        return f"_:{self.id}"

    def __repr__(self) -> str:
        return f"BlankNode({self.id!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BlankNode) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("BlankNode", self.id))

    def n3(self) -> str:
        return f"_:{self.id}"

    @classmethod
    def reset_counter(cls) -> None:
        """Reset the automatic id counter (used by deterministic builds)."""
        cls._counter = 0


_DT_RE = re.compile(
    r"(?P<y>-?\d{4,})-(?P<mo>\d{2})-(?P<d>\d{2})T"
    r"(?P<h>\d{2}):(?P<mi>\d{2}):(?P<s>\d{2})(?P<frac>\.\d+)?"
    r"(?P<tz>Z|[+-]\d{2}:\d{2})?"
)


class Literal(Term):
    """An RDF literal: lexical form + datatype IRI, or a language-tagged string."""

    __slots__ = ("lexical", "datatype", "language")

    _SORT_RANK = 2

    def __init__(
        self,
        lexical: str,
        datatype: Optional[Union[str, IRI]] = None,
        language: Optional[str] = None,
    ):
        if not isinstance(lexical, str):
            raise TypeError("literal lexical form must be str")
        if language is not None and datatype is not None:
            raise ValueError("a literal cannot have both a language tag and a datatype")
        if language is not None:
            if not re.fullmatch(r"[A-Za-z]{1,8}(-[A-Za-z0-9]{1,8})*", language):
                raise ValueError(f"invalid language tag: {language!r}")
            language = language.lower()
            dt_value = _RDF_LANGSTRING
        elif datatype is None:
            dt_value = XSD.STRING
        else:
            dt_value = datatype.value if isinstance(datatype, IRI) else str(datatype)
            if not is_valid_iri(dt_value):
                raise ValueError(f"invalid datatype IRI: {dt_value!r}")
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", IRI(dt_value))
        object.__setattr__(self, "language", language)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Literal is immutable")

    def __reduce__(self):
        if self.language is not None:
            return (Literal, (self.lexical, None, self.language))
        return (Literal, (self.lexical, self.datatype.value))

    def __str__(self) -> str:
        return self.lexical

    def __repr__(self) -> str:
        if self.language:
            return f"Literal({self.lexical!r}, language={self.language!r})"
        if self.datatype.value == XSD.STRING:
            return f"Literal({self.lexical!r})"
        return f"Literal({self.lexical!r}, datatype={self.datatype.value!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and other.lexical == self.lexical
            and other.datatype == self.datatype
            and other.language == self.language
        )

    def __hash__(self) -> int:
        return hash(("Literal", self.lexical, self.datatype.value, self.language))

    def n3(self) -> str:
        escaped = escape_string(self.lexical)
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype.value == XSD.STRING:
            return f'"{escaped}"'
        return f'"{escaped}"^^<{self.datatype.value}>'

    @property
    def is_numeric(self) -> bool:
        return self.datatype.value in XSD.NUMERIC

    def to_python(self) -> Any:
        """Convert to the natural Python value for the literal's datatype.

        Unknown datatypes and malformed lexical forms fall back to the
        lexical string, mirroring SPARQL's treatment of ill-typed literals.
        """
        dt = self.datatype.value
        try:
            if dt == XSD.BOOLEAN:
                if self.lexical in ("true", "1"):
                    return True
                if self.lexical in ("false", "0"):
                    return False
                return self.lexical
            if dt in (XSD.INTEGER, XSD.LONG, XSD.INT):
                return int(self.lexical)
            if dt in (XSD.DECIMAL, XSD.DOUBLE, XSD.FLOAT):
                return float(self.lexical)
            if dt == XSD.DATETIME:
                return parse_datetime(self.lexical)
            if dt == XSD.DATE:
                return _dt.date.fromisoformat(self.lexical)
        except (ValueError, TypeError):
            return self.lexical
        return self.lexical

    def sort_key(self) -> tuple:
        return (self._SORT_RANK, self.datatype.value, self.lexical, self.language or "")


def parse_datetime(lexical: str) -> _dt.datetime:
    """Parse an ``xsd:dateTime`` lexical form into an aware/naive datetime."""
    match = _DT_RE.fullmatch(lexical)
    if match is None:
        raise ValueError(f"invalid xsd:dateTime: {lexical!r}")
    micro = 0
    if match.group("frac"):
        micro = int(round(float(match.group("frac")) * 1_000_000))
    tz = None
    tz_text = match.group("tz")
    if tz_text == "Z":
        tz = _dt.timezone.utc
    elif tz_text:
        sign = 1 if tz_text[0] == "+" else -1
        hours, minutes = int(tz_text[1:3]), int(tz_text[4:6])
        tz = _dt.timezone(sign * _dt.timedelta(hours=hours, minutes=minutes))
    return _dt.datetime(
        int(match.group("y")),
        int(match.group("mo")),
        int(match.group("d")),
        int(match.group("h")),
        int(match.group("mi")),
        int(match.group("s")),
        micro,
        tzinfo=tz,
    )


def format_datetime(value: _dt.datetime) -> str:
    """Format a datetime as a canonical ``xsd:dateTime`` lexical form."""
    text = value.strftime("%Y-%m-%dT%H:%M:%S")
    if value.microsecond:
        text += f".{value.microsecond:06d}".rstrip("0")
    if value.tzinfo is not None:
        offset = value.utcoffset()
        if offset == _dt.timedelta(0):
            text += "Z"
        else:
            total = int(offset.total_seconds())
            sign = "+" if total >= 0 else "-"
            total = abs(total)
            text += f"{sign}{total // 3600:02d}:{(total % 3600) // 60:02d}"
    return text


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "\b": "\\b",
    "\f": "\\f",
}


def escape_string(value: str) -> str:
    """Escape a string for use inside a double-quoted Turtle/N-Triples literal."""
    out = []
    for ch in value:
        if ch in _ESCAPES:
            out.append(_ESCAPES[ch])
        elif ord(ch) < 0x20:
            out.append(f"\\u{ord(ch):04X}")
        else:
            out.append(ch)
    return "".join(out)


def unescape_string(value: str) -> str:
    """Reverse :func:`escape_string` (used by the parsers)."""
    out = []
    i = 0
    n = len(value)
    reverse = {v[1]: k for k, v in _ESCAPES.items()}
    while i < n:
        ch = value[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise ValueError("dangling escape at end of string")
        nxt = value[i + 1]
        if nxt in reverse:
            out.append(reverse[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(value[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(value[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise ValueError(f"unknown escape: \\{nxt}")
    return "".join(out)


def from_python(value: Any) -> Literal:
    """Build a typed literal from a native Python value.

    Booleans must be tested before integers (``bool`` subclasses ``int``).
    """
    if isinstance(value, Literal):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD.BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD.INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD.DOUBLE)
    if isinstance(value, _dt.datetime):
        return Literal(format_datetime(value), datatype=XSD.DATETIME)
    if isinstance(value, _dt.date):
        return Literal(value.isoformat(), datatype=XSD.DATE)
    if isinstance(value, str):
        return Literal(value)
    raise TypeError(f"cannot convert {type(value).__name__} to an RDF literal")
