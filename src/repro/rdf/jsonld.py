"""A compact JSON serialization of RDF graphs (JSON-LD-flavoured).

The corpus's web-facing tooling (Section 6 future work) exchanges traces as
JSON.  This module implements a deliberately small, lossless profile of
JSON-LD: a ``@context`` holding the prefix map, and one node object per
subject with ``@id`` / ``@type`` keys and CURIE property keys.  Values are
either node references (``{"@id": ...}``), typed values
(``{"@value": ..., "@type": ...}``), language-tagged values, or plain
JSON scalars for ``xsd:string``/numeric/boolean literals.

Round-tripping through :func:`to_jsonld` / :func:`from_jsonld` preserves the
graph exactly (up to blank-node identity, which is kept verbatim).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from .graph import Graph
from .namespace import NamespaceManager, RDF
from .terms import BlankNode, IRI, Literal, XSD
from .triple import Object, Subject, Triple

__all__ = ["to_jsonld", "from_jsonld", "dumps", "loads"]


def _key_for(iri: IRI, nsm: NamespaceManager) -> str:
    curie = nsm.compact(iri)
    return curie if curie is not None else iri.value


def _node_ref(term: Subject) -> str:
    return term.value if isinstance(term, IRI) else f"_:{term.id}"


def _value_json(obj: Object, nsm: NamespaceManager) -> Any:
    if isinstance(obj, (IRI, BlankNode)):
        return {"@id": _node_ref(obj)}
    dt = obj.datatype.value
    if obj.language is not None:
        return {"@value": obj.lexical, "@language": obj.language}
    if dt == XSD.STRING:
        return obj.lexical
    if dt == XSD.BOOLEAN and obj.lexical in ("true", "false"):
        return obj.lexical == "true"
    if dt == XSD.INTEGER:
        try:
            return int(obj.lexical)
        except ValueError:
            pass
    return {"@value": obj.lexical, "@type": _key_for(obj.datatype, nsm)}


def to_jsonld(graph: Graph, namespaces: Optional[NamespaceManager] = None) -> Dict[str, Any]:
    """Convert *graph* to a JSON-LD-style dict with @context and @graph."""
    nsm = namespaces if namespaces is not None else graph.namespaces
    context = {prefix: base for prefix, base in nsm.namespaces()}
    nodes: Dict[str, Dict[str, Any]] = {}
    for t in graph.sorted_triples():
        node_id = _node_ref(t.subject)
        node = nodes.setdefault(node_id, {"@id": node_id})
        if t.predicate == RDF.type and isinstance(t.object, IRI):
            node.setdefault("@type", []).append(_key_for(t.object, nsm))
            continue
        key = _key_for(t.predicate, nsm)
        node.setdefault(key, []).append(_value_json(t.object, nsm))
    # Single-valued lists collapse to their value for compactness.
    for node in nodes.values():
        for key, value in list(node.items()):
            if key != "@id" and isinstance(value, list) and len(value) == 1:
                node[key] = value[0]
    return {"@context": context, "@graph": list(nodes.values())}


def _term_from_ref(ref: str) -> Subject:
    if ref.startswith("_:"):
        return BlankNode(ref[2:])
    return IRI(ref)


def _expand_key(key: str, nsm: NamespaceManager) -> IRI:
    if ":" in key:
        prefix = key.split(":", 1)[0]
        if prefix in nsm:
            return nsm.expand(key)
    return IRI(key)


def _object_from_json(value: Any, nsm: NamespaceManager) -> Object:
    if isinstance(value, dict):
        if "@id" in value:
            return _term_from_ref(value["@id"])
        lexical = str(value["@value"])
        if "@language" in value:
            return Literal(lexical, language=value["@language"])
        if "@type" in value:
            return Literal(lexical, datatype=_expand_key(value["@type"], nsm))
        return Literal(lexical)
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD.BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD.INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD.DOUBLE)
    return Literal(str(value))


def from_jsonld(document: Dict[str, Any], graph: Optional[Graph] = None) -> Graph:
    """Rebuild a graph from the dict produced by :func:`to_jsonld`."""
    if graph is None:
        graph = Graph()
    nsm = graph.namespaces
    for prefix, base in document.get("@context", {}).items():
        nsm.bind(prefix, base)
    for node in document.get("@graph", []):
        subject = _term_from_ref(node["@id"])
        for key, value in node.items():
            if key == "@id":
                continue
            values = value if isinstance(value, list) else [value]
            if key == "@type":
                for v in values:
                    graph.add(Triple(subject, RDF.type, _expand_key(v, nsm)))
                continue
            predicate = _expand_key(key, nsm)
            for v in values:
                graph.add(Triple(subject, predicate, _object_from_json(v, nsm)))
    return graph


def dumps(graph: Graph, indent: Optional[int] = 2) -> str:
    """Serialize *graph* to a JSON string."""
    return json.dumps(to_jsonld(graph), indent=indent, sort_keys=True)


def loads(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse a JSON string produced by :func:`dumps`."""
    return from_jsonld(json.loads(text), graph=graph)
