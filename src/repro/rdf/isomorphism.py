"""RDF graph isomorphism (blank-node aware equality).

Plain ``Graph.__eq__`` compares triples literally, so two graphs that
differ only in blank-node labels — e.g. the qualified-pattern nodes that
two independent serializations of the same trace mint in different orders
— compare unequal.  :func:`isomorphic` decides equality up to a blank-node
bijection, and :func:`canonical_hash` produces a label-independent digest
usable as a cache/dedup key.

Algorithm: iterative color refinement (hash the multiset of each blank
node's ground neighborhood, then refine with neighbor colors to a fixed
point), followed by deterministic branching over the smallest ambiguous
color class when refinement alone cannot individualize — the standard
canonicalization recipe, sized for the corpus's graphs (tens of blank
nodes, not millions).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

from .graph import Graph
from .terms import BlankNode, Term

__all__ = ["isomorphic", "canonical_hash"]

#: Safety bound: branching is exponential in the worst case.
_MAX_BRANCH_NODES = 64


def _digest(*parts: str) -> str:
    h = hashlib.sha1()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def _term_key(term: Term, colors: Dict[BlankNode, str]) -> str:
    if isinstance(term, BlankNode):
        return f"_:{colors[term]}"
    return term.n3()


def _initial_colors(graph: Graph) -> Dict[BlankNode, str]:
    colors: Dict[BlankNode, str] = {}
    for t in graph:
        for term in (t.subject, t.object):
            if isinstance(term, BlankNode) and term not in colors:
                colors[term] = "init"
    return colors


def _refine(graph: Graph, colors: Dict[BlankNode, str]) -> Dict[BlankNode, str]:
    """One refinement round: color ← hash of incident-triple signatures."""
    new_colors: Dict[BlankNode, str] = {}
    for node in colors:
        signatures: List[str] = []
        for t in graph.triples(node, None, None):
            signatures.append(f"S {t.predicate.n3()} {_term_key(t.object, colors)}")
        for t in graph.triples(None, None, node):
            signatures.append(f"O {t.predicate.n3()} {_term_key(t.subject, colors)}")
        signatures.sort()
        new_colors[node] = _digest(colors[node], *signatures)
    return new_colors


def _refine_to_fixpoint(graph: Graph, colors: Dict[BlankNode, str]) -> Dict[BlankNode, str]:
    while True:
        new_colors = _refine(graph, colors)
        if _partition(new_colors) == _partition(colors):
            return new_colors
        colors = new_colors


def _partition(colors: Dict[BlankNode, str]) -> frozenset:
    """The grouping induced by the colors, independent of color values
    (colors change every round, the *grouping* is what converges)."""
    groups: Dict[str, List[str]] = {}
    for node, color in colors.items():
        groups.setdefault(color, []).append(node.id)
    return frozenset(tuple(sorted(members)) for members in groups.values())


def _ambiguous_class(colors: Dict[BlankNode, str]) -> Optional[List[BlankNode]]:
    groups: Dict[str, List[BlankNode]] = {}
    for node, color in colors.items():
        groups.setdefault(color, []).append(node)
    ambiguous = [members for members in groups.values() if len(members) > 1]
    if not ambiguous:
        return None
    return min(ambiguous, key=lambda members: (len(members), sorted(n.id for n in members)))


def _canonical_form(graph: Graph, colors: Dict[BlankNode, str]) -> str:
    lines = sorted(
        f"{_term_key(t.subject, colors)} {t.predicate.n3()} {_term_key(t.object, colors)}"
        for t in graph
    )
    return "\n".join(lines)


def _canonicalize(graph: Graph, colors: Dict[BlankNode, str], depth: int = 0) -> str:
    colors = _refine_to_fixpoint(graph, colors)
    ambiguous = _ambiguous_class(colors)
    if ambiguous is None:
        return _canonical_form(graph, colors)
    if len(colors) > _MAX_BRANCH_NODES or depth > _MAX_BRANCH_NODES:
        # Give up on full individualization: the refined form is still a
        # sound (if coarser) canonical representative for comparison.
        return _canonical_form(graph, colors)
    # Individualize each candidate in the smallest ambiguous class and
    # keep the lexicographically smallest resulting form.
    best: Optional[str] = None
    for candidate in sorted(ambiguous, key=lambda n: n.id):
        branched = dict(colors)
        branched[candidate] = _digest("pick", colors[candidate])
        form = _canonicalize(graph, branched, depth + 1)
        if best is None or form < best:
            best = form
    return best


def canonical_hash(graph: Graph) -> str:
    """A digest invariant under blank-node relabeling."""
    colors = _initial_colors(graph)
    return _digest(_canonicalize(graph, colors)) if colors else _digest(
        _canonical_form(graph, {})
    )


def isomorphic(left: Graph, right: Graph) -> bool:
    """True when the graphs are equal up to a blank-node bijection."""
    if len(left) != len(right):
        return False
    # Ground (blank-node-free) triples must match exactly.
    left_ground = {t for t in left if not _has_bnode(t)}
    right_ground = {t for t in right if not _has_bnode(t)}
    if left_ground != right_ground:
        return False
    return canonical_hash(left) == canonical_hash(right)


def _has_bnode(triple) -> bool:
    return isinstance(triple.subject, BlankNode) or isinstance(triple.object, BlankNode)
