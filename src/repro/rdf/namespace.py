"""Namespaces and prefix management.

A :class:`Namespace` is a convenience factory for IRIs sharing a common
prefix (``PROV.Entity`` → ``IRI("http://www.w3.org/ns/prov#Entity")``), and
a :class:`NamespaceManager` maps prefixes to namespaces for serialization
(compacting IRIs to CURIEs) and parsing (expanding CURIEs back).

The module also defines the namespaces used throughout the corpus: PROV-O,
wfprov/wfdesc (Research Object model), OPMW, and the supporting W3C/DC
vocabularies.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .terms import IRI

__all__ = [
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "OWL",
    "XSD_NS",
    "PROV",
    "WFPROV",
    "WFDESC",
    "OPMW",
    "RO",
    "DCTERMS",
    "FOAF",
    "CORE_PREFIXES",
]


class Namespace:
    """An IRI prefix that manufactures terms by attribute or item access."""

    def __init__(self, base: str):
        if not isinstance(base, str) or not base:
            raise ValueError("namespace base must be a non-empty string")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, name: str) -> IRI:
        return IRI(self._base + name)

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> IRI:
        return self.term(name)

    def __contains__(self, iri: object) -> bool:
        if isinstance(iri, IRI):
            return iri.value.startswith(self._base)
        if isinstance(iri, str):
            return iri.startswith(self._base)
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Namespace) and other._base == self._base

    def __hash__(self) -> int:
        return hash(("Namespace", self._base))

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"

    def __str__(self) -> str:
        return self._base


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")
PROV = Namespace("http://www.w3.org/ns/prov#")
WFPROV = Namespace("http://purl.org/wf4ever/wfprov#")
WFDESC = Namespace("http://purl.org/wf4ever/wfdesc#")
OPMW = Namespace("http://www.opmw.org/ontology/")
RO = Namespace("http://purl.org/wf4ever/ro#")
DCTERMS = Namespace("http://purl.org/dc/terms/")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")

#: Prefix table shared by serializers and the corpus's SPARQL queries.
CORE_PREFIXES: Dict[str, str] = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "owl": OWL.base,
    "xsd": XSD_NS.base,
    "prov": PROV.base,
    "wfprov": WFPROV.base,
    "wfdesc": WFDESC.base,
    "opmw": OPMW.base,
    "ro": RO.base,
    "dcterms": DCTERMS.base,
    "foaf": FOAF.base,
}


class NamespaceManager:
    """Bidirectional prefix ↔ namespace registry.

    Longest-match compaction: when namespaces nest (e.g. a corpus base IRI
    under the ProvBench domain), an IRI compacts against the most specific
    registered namespace.
    """

    def __init__(self, bind_core: bool = True):
        self._prefix_to_ns: Dict[str, str] = {}
        self._ns_to_prefix: Dict[str, str] = {}
        if bind_core:
            for prefix, base in CORE_PREFIXES.items():
                self.bind(prefix, base)

    def bind(self, prefix: str, namespace: str | Namespace, replace: bool = True) -> None:
        base = namespace.base if isinstance(namespace, Namespace) else str(namespace)
        if prefix in self._prefix_to_ns and not replace:
            if self._prefix_to_ns[prefix] != base:
                raise ValueError(f"prefix {prefix!r} already bound")
            return
        old = self._prefix_to_ns.get(prefix)
        if old is not None:
            self._ns_to_prefix.pop(old, None)
        self._prefix_to_ns[prefix] = base
        self._ns_to_prefix[base] = prefix

    def expand(self, curie: str) -> IRI:
        """Expand ``prefix:local`` into an IRI."""
        if ":" not in curie:
            raise ValueError(f"not a CURIE: {curie!r}")
        prefix, local = curie.split(":", 1)
        try:
            base = self._prefix_to_ns[prefix]
        except KeyError:
            raise KeyError(f"unknown prefix: {prefix!r}") from None
        return IRI(base + local)

    def compact(self, iri: IRI | str) -> Optional[str]:
        """Compact an IRI into ``prefix:local`` if a namespace matches.

        Returns None when no registered namespace is a prefix of the IRI or
        the remaining local part is not a valid CURIE local name.
        """
        value = iri.value if isinstance(iri, IRI) else str(iri)
        best: Optional[Tuple[str, str]] = None
        for base, prefix in self._ns_to_prefix.items():
            if value.startswith(base) and (best is None or len(base) > len(best[0])):
                best = (base, prefix)
        if best is None:
            return None
        base, prefix = best
        local = value[len(base):]
        if not _is_valid_local(local):
            return None
        return f"{prefix}:{local}"

    def namespaces(self) -> Iterator[Tuple[str, str]]:
        """Iterate ``(prefix, base)`` pairs sorted by prefix."""
        return iter(sorted(self._prefix_to_ns.items()))

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns

    def __len__(self) -> int:
        return len(self._prefix_to_ns)

    def copy(self) -> "NamespaceManager":
        clone = NamespaceManager(bind_core=False)
        for prefix, base in self._prefix_to_ns.items():
            clone.bind(prefix, base)
        return clone


def _is_valid_local(local: str) -> bool:
    """Conservative PN_LOCAL check: serialize unusual locals as full IRIs."""
    if local == "":
        return False
    if local[0] == "-" or local[-1] == ".":
        return False
    return all(ch.isalnum() or ch in "_-." for ch in local)
