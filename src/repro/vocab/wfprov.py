"""wfprov — the Wf4Ever workflow-provenance ontology (used by Taverna).

http://purl.org/wf4ever/wfprov# — wfprov extends PROV-O with
workflow-specific classes and properties; Taverna's provenance plugin
(taverna-prov) exports traces typed with these terms alongside the plain
PROV-O statements.  Class → PROV superclass:

* ``wfprov:WorkflowRun``  ⊑ prov:Activity (also a wfprov:ProcessRun)
* ``wfprov:ProcessRun``   ⊑ prov:Activity
* ``wfprov:Artifact``     ⊑ prov:Entity
* ``wfprov:WorkflowEngine`` ⊑ prov:SoftwareAgent

Property → PROV superproperty:

* ``wfprov:usedInput``      ⊑ prov:used
* ``wfprov:wasOutputFrom``  ⊑ prov:wasGeneratedBy
* ``wfprov:wasPartOfWorkflowRun`` (process run → workflow run)
* ``wfprov:wasEnactedBy``   ⊑ prov:wasAssociatedWith (run → engine)
* ``wfprov:describedByProcess`` / ``wfprov:describedByWorkflow`` link runs
  to their wfdesc descriptions (the plan).
* ``wfprov:describedByParameter`` links artifacts to formal parameters.
"""

from __future__ import annotations

from typing import Dict

from ..rdf.namespace import WFPROV, PROV
from ..rdf.terms import IRI

__all__ = [
    "WFPROV",
    "WorkflowRun",
    "ProcessRun",
    "Artifact",
    "WorkflowEngine",
    "usedInput",
    "wasOutputFrom",
    "wasPartOfWorkflowRun",
    "wasEnactedBy",
    "describedByProcess",
    "describedByWorkflow",
    "describedByParameter",
    "PROV_SUPERPROPERTIES",
    "PROV_SUPERCLASSES",
]

WorkflowRun = WFPROV.WorkflowRun
ProcessRun = WFPROV.ProcessRun
Artifact = WFPROV.Artifact
WorkflowEngine = WFPROV.WorkflowEngine

usedInput = WFPROV.usedInput
wasOutputFrom = WFPROV.wasOutputFrom
wasPartOfWorkflowRun = WFPROV.wasPartOfWorkflowRun
wasEnactedBy = WFPROV.wasEnactedBy
describedByProcess = WFPROV.describedByProcess
describedByWorkflow = WFPROV.describedByWorkflow
describedByParameter = WFPROV.describedByParameter

#: wfprov property → its PROV-O superproperty (for interoperable queries).
PROV_SUPERPROPERTIES: Dict[IRI, IRI] = {
    usedInput: PROV.used,
    wasOutputFrom: PROV.wasGeneratedBy,
    wasEnactedBy: PROV.wasAssociatedWith,
}

#: wfprov class → its PROV-O superclass.
PROV_SUPERCLASSES: Dict[IRI, IRI] = {
    WorkflowRun: PROV.Activity,
    ProcessRun: PROV.Activity,
    Artifact: PROV.Entity,
    WorkflowEngine: PROV.SoftwareAgent,
}
