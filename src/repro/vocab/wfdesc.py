"""wfdesc — the Wf4Ever abstract workflow-description ontology.

http://purl.org/wf4ever/wfdesc# — describes workflow *templates* (as
opposed to wfprov, which describes *runs*): a ``wfdesc:Workflow`` has
``wfdesc:Process`` steps connected by ``wfdesc:DataLink`` objects between
``wfdesc:Input``/``wfdesc:Output`` parameters.  The Taverna exporter
publishes each template as a wfdesc description and links run-level
resources to it via the ``wfprov:describedBy*`` properties.
"""

from __future__ import annotations

from ..rdf.namespace import WFDESC

__all__ = [
    "WFDESC",
    "Workflow",
    "Process",
    "Parameter",
    "Input",
    "Output",
    "DataLink",
    "hasSubProcess",
    "hasInput",
    "hasOutput",
    "hasDataLink",
    "hasSource",
    "hasSink",
]

Workflow = WFDESC.Workflow
Process = WFDESC.Process
Parameter = WFDESC.Parameter
Input = WFDESC.Input
Output = WFDESC.Output
DataLink = WFDESC.DataLink

hasSubProcess = WFDESC.hasSubProcess
hasInput = WFDESC.hasInput
hasOutput = WFDESC.hasOutput
hasDataLink = WFDESC.hasDataLink
hasSource = WFDESC.hasSource
hasSink = WFDESC.hasSink
