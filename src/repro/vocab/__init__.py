"""Workflow-provenance vocabularies layered on PROV-O.

* :mod:`.wfprov` — Wf4Ever run-level terms (Taverna traces)
* :mod:`.wfdesc` — Wf4Ever template-level terms (Taverna plans)
* :mod:`.opmw` — Open Provenance Model for Workflows (Wings traces)
* :mod:`.ro` — Research Object aggregation terms
"""

from . import opmw, ro, wfdesc, wfprov

__all__ = ["wfprov", "wfdesc", "opmw", "ro"]
