"""ro — the Wf4Ever Research Object core ontology.

http://purl.org/wf4ever/ro# — Research Objects aggregate a workflow, its
provenance traces, annotations, and related resources into one shareable
unit.  The corpus uses RO terms to associate each provenance trace with
the workflow it describes and the aggregation it is published in.
"""

from __future__ import annotations

from ..rdf.namespace import RO

__all__ = [
    "RO",
    "ResearchObject",
    "Resource",
    "AggregatedAnnotation",
    "aggregates",
    "annotatesAggregatedResource",
]

ResearchObject = RO.ResearchObject
Resource = RO.Resource
AggregatedAnnotation = RO.AggregatedAnnotation

aggregates = RO.aggregates
annotatesAggregatedResource = RO.annotatesAggregatedResource
