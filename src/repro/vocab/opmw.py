"""OPMW — the Open Provenance Model for Workflows (used by Wings).

http://www.opmw.org/ontology/ — OPMW describes both workflow templates
(``opmw:WorkflowTemplate``, ``opmw:WorkflowTemplateProcess``,
``opmw:WorkflowTemplateArtifact``) and executions
(``opmw:WorkflowExecutionAccount``, ``opmw:WorkflowExecutionProcess``,
``opmw:WorkflowExecutionArtifact``), with properties binding executions to
the template elements they instantiate.  The Wings exporter publishes
traces with these terms alongside PROV-O; the execution account is the
``prov:Bundle`` of the run.
"""

from __future__ import annotations

from ..rdf.namespace import OPMW

__all__ = [
    "OPMW",
    "WorkflowTemplate",
    "WorkflowTemplateProcess",
    "WorkflowTemplateArtifact",
    "ParameterVariable",
    "DataVariable",
    "WorkflowExecutionAccount",
    "WorkflowExecutionProcess",
    "WorkflowExecutionArtifact",
    "correspondsToTemplate",
    "correspondsToTemplateProcess",
    "correspondsToTemplateArtifact",
    "isGeneratedBy",
    "uses",
    "isStepOfTemplate",
    "isVariableOfTemplate",
    "executedInWorkflowSystem",
    "hasExecutableComponent",
    "hasStatus",
    "overallStartTime",
    "overallEndTime",
    "hasSize",
    "hasLocation",
]

WorkflowTemplate = OPMW.WorkflowTemplate
WorkflowTemplateProcess = OPMW.WorkflowTemplateProcess
WorkflowTemplateArtifact = OPMW.WorkflowTemplateArtifact
ParameterVariable = OPMW.ParameterVariable
DataVariable = OPMW.DataVariable
WorkflowExecutionAccount = OPMW.WorkflowExecutionAccount
WorkflowExecutionProcess = OPMW.WorkflowExecutionProcess
WorkflowExecutionArtifact = OPMW.WorkflowExecutionArtifact

correspondsToTemplate = OPMW.correspondsToTemplate
correspondsToTemplateProcess = OPMW.correspondsToTemplateProcess
correspondsToTemplateArtifact = OPMW.correspondsToTemplateArtifact
isGeneratedBy = OPMW.isGeneratedBy
uses = OPMW.uses
isStepOfTemplate = OPMW.isStepOfTemplate
isVariableOfTemplate = OPMW.isVariableOfTemplate
executedInWorkflowSystem = OPMW.executedInWorkflowSystem
hasExecutableComponent = OPMW.hasExecutableComponent
hasStatus = OPMW.hasStatus
overallStartTime = OPMW.overallStartTime
overallEndTime = OPMW.overallEndTime
hasSize = OPMW.hasSize
hasLocation = OPMW.hasLocation
