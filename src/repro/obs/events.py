"""Structured JSONL event log with size-bounded rotation.

Trace spans answer "how long did this take", metrics answer "how many",
but neither records *what happened* — which run spilled, when a
compaction folded how many segments, which request carried which query
digest.  :class:`EventLog` appends one JSON object per line to
``events.jsonl`` inside the observability directory, so build, ingest,
compaction, spill, and endpoint request paths leave a durable,
greppable record that cross-references trace spans and slowlog entries
by ``span_id`` and query digest.

Record schema (version 1): every record carries ``v`` (schema
version), ``ts`` (unix seconds, float), ``pid``, and ``kind``
(dot-namespaced, e.g. ``ingest.file``, ``store.compaction``,
``endpoint.request``); everything else is kind-specific and flat.
Writes are single ``os.write`` calls on an ``O_APPEND`` descriptor, so
concurrent processes (pool workers, the endpoint) interleave whole
lines, never torn ones — the same property the shard substrate in
:mod:`repro.obs.shm` relies on for its directory files.

Rotation is size-bounded: when ``events.jsonl`` would exceed
``max_bytes`` the log renames it to ``events.jsonl.1`` (shifting older
generations up, keeping ``keep`` of them) and starts fresh — a long
endpoint run cannot fill the disk.  :func:`read_events` is tolerant by
construction: a crashed writer's truncated trailing line is skipped
with a warning, not an exception, mirroring ``read_trace``.

Module-level :func:`configure` / :func:`emit` give call sites a
zero-argument fast path: ``emit()`` is a no-op unless an observability
directory was configured, so instrumented code pays one attribute
check when observability is off.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "EVENTS_FILE",
    "EventLog",
    "configure",
    "emit",
    "get_event_log",
    "read_events",
    "unconfigure",
]

SCHEMA_VERSION = 1
EVENTS_FILE = "events.jsonl"
DEFAULT_MAX_BYTES = 16 * 1024 * 1024
DEFAULT_KEEP = 2


class EventLog:
    """Append-only JSONL event sink for one observability directory."""

    def __init__(
        self,
        obs_dir: str,
        max_bytes: int = DEFAULT_MAX_BYTES,
        keep: int = DEFAULT_KEEP,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.obs_dir = obs_dir
        self.path = os.path.join(obs_dir, EVENTS_FILE)
        self.max_bytes = max_bytes
        self.keep = keep
        self._clock = clock or time.time
        self._lock = threading.Lock()
        self._fd: Optional[int] = None
        self._written = 0  # bytes written through our fd since open/rotate
        os.makedirs(obs_dir, exist_ok=True)

    # -- writing -------------------------------------------------------

    def _open(self) -> int:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                self._written = os.fstat(self._fd).st_size
            except OSError:
                self._written = 0
        return self._fd

    def _rotate_locked(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None
        # Another process may already have rotated; only shift if the
        # live file is actually oversized.
        try:
            if os.path.getsize(self.path) < self.max_bytes:
                return
        except OSError:
            return
        for n in range(self.keep, 0, -1):
            older = f"{self.path}.{n}"
            newer = f"{self.path}.{n - 1}" if n > 1 else self.path
            try:
                os.replace(newer, older)
            except OSError:
                pass

    def emit(self, kind: str, **fields) -> None:
        """Append one schema-versioned event record."""
        record: Dict = {
            "v": SCHEMA_VERSION,
            "ts": round(self._clock(), 6),
            "pid": os.getpid(),
            "kind": kind,
        }
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        line = (
            json.dumps(record, ensure_ascii=False, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        with self._lock:
            if self._written + len(line) > self.max_bytes:
                self._rotate_locked()
                self._written = 0
            try:
                os.write(self._open(), line)
                self._written += len(line)
            except OSError:
                # Telemetry must never take down the operation it observes.
                pass

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- reading -----------------------------------------------------------


def read_events(
    path: str,
    kind: Optional[str] = None,
    warn: Optional[Callable[[str], None]] = None,
) -> Iterator[Dict]:
    """Yield event records from a JSONL event file, oldest first.

    *path* may be the events file itself or an observability directory
    (rotated generations ``events.jsonl.N`` are read first so the
    stream stays chronological).  Malformed or truncated lines — the
    signature a crashed writer leaves — are skipped with a warning.
    """
    if warn is None:
        warn = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
    if os.path.isdir(path):
        base = os.path.join(path, EVENTS_FILE)
    else:
        base = path
    files: List[str] = []
    n = 1
    while os.path.exists(f"{base}.{n}"):
        files.append(f"{base}.{n}")
        n += 1
    files.reverse()  # oldest rotated generation first
    if os.path.exists(base):
        files.append(base)
    for file_path in files:
        with open(file_path, "r", encoding="utf-8", errors="replace") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    warn(
                        f"warning: skipping malformed event at "
                        f"{file_path}:{lineno}"
                    )
                    continue
                if not isinstance(record, dict):
                    warn(
                        f"warning: skipping non-object event at "
                        f"{file_path}:{lineno}"
                    )
                    continue
                if kind is not None and record.get("kind") != kind:
                    continue
                yield record


# -- module-level convenience -----------------------------------------

_log: Optional[EventLog] = None
_log_pid: Optional[int] = None


def configure(obs_dir: str, max_bytes: int = DEFAULT_MAX_BYTES,
              keep: int = DEFAULT_KEEP) -> EventLog:
    """Open (or re-open) the process-wide event log under *obs_dir*."""
    global _log, _log_pid
    if _log is not None:
        _log.close()
    _log = EventLog(obs_dir, max_bytes=max_bytes, keep=keep)
    _log_pid = os.getpid()
    return _log


def get_event_log() -> Optional[EventLog]:
    return _log


def emit(kind: str, **fields) -> None:
    """Emit through the process-wide log; no-op when unconfigured."""
    global _log, _log_pid
    log = _log
    if log is None:
        return
    if _log_pid != os.getpid():
        # Forked child inherited the parent's fd/lock; reopen cleanly.
        _log = log = EventLog(log.obs_dir, max_bytes=log.max_bytes,
                              keep=log.keep)
        _log_pid = os.getpid()
    log.emit(kind, **fields)


def unconfigure() -> None:
    global _log, _log_pid
    if _log is not None:
        _log.close()
    _log = None
    _log_pid = None
