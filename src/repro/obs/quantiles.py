"""Streaming quantile sketches (CKMS targeted quantiles).

Fixed-bucket histograms answer "how many requests were under 25 ms",
but the saturation benchmarks need true tail percentiles — p99 at
1.2 ms and p99 at 24 ms land in the same bucket.  This module
implements the Cormode–Korn–Muthukrishnan–Srivastava *targeted
quantile* sketch ("Effective Computation of Biased Quantiles over Data
Streams", ICDE 2005): a compressed sample list that answers a fixed
set of quantiles with per-quantile rank-error guarantees in O(1/ε ·
log εn) space, independent of the stream length.

Error bound (documented contract, pinned by the test suite): for each
target ``(φ, ε)`` and a stream of *n* observations, ``query(φ)``
returns a stream value whose rank *r* satisfies ``|r − φ·n| ≤ ε·n``.
With the default targets that means p50 ±1 %, p95 ±0.5 %, and p99
±0.1 % of *n* in rank — on a 10 000-observation stream the reported
p99 is between the 9 880th and 9 920th order statistic.

:class:`QuantileSketch` is the single-series primitive;
:class:`QuantileFamily` is the labelled, thread-safe fan-out the
endpoint uses (one sketch per route / per plan digest) with Prometheus
``summary`` exposition — the ``repro_endpoint_request_seconds`` p99
gauge the CI smoke greps comes from here.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import _escape_label, _format_value

__all__ = ["DEFAULT_TARGETS", "QuantileFamily", "QuantileSketch"]

#: (quantile, allowed rank error as a fraction of n) — the tails are
#: tracked tighter than the median, which is the whole point of the
#: *biased/targeted* variant.
DEFAULT_TARGETS: Tuple[Tuple[float, float], ...] = (
    (0.5, 0.01),
    (0.95, 0.005),
    (0.99, 0.001),
)

_BUFFER_SIZE = 128


class QuantileSketch:
    """CKMS sketch for a fixed set of targeted quantiles.

    Samples are ``[value, g, delta]`` triples in value order: ``g`` is
    the gap in rank to the previous sample, ``delta`` the permissible
    rank slack.  New observations buffer and fold in sorted batches;
    :meth:`_compress` merges adjacent samples while the CKMS invariant
    ``g_i + g_{i+1} + Δ_{i+1} ≤ f(r_i, n)`` holds.
    """

    __slots__ = ("targets", "_samples", "_buffer", "_count", "_sum")

    def __init__(self, targets: Sequence[Tuple[float, float]] = DEFAULT_TARGETS):
        for quantile, epsilon in targets:
            if not 0.0 < quantile < 1.0:
                raise ValueError(f"target quantile {quantile} outside (0, 1)")
            if not 0.0 < epsilon < 1.0:
                raise ValueError(f"target error {epsilon} outside (0, 1)")
        self.targets = tuple(sorted(targets))
        self._samples: List[List[float]] = []  # [value, g, delta], sorted by value
        self._buffer: List[float] = []
        self._count = 0
        self._sum = 0.0

    # -- ingest --------------------------------------------------------

    def observe(self, value: float) -> None:
        self._buffer.append(float(value))
        self._sum += value
        if len(self._buffer) >= _BUFFER_SIZE:
            self._flush()

    def _invariant(self, rank: float, n: int) -> float:
        """f(r, n): the width the sketch may be off by around rank r."""
        slack = math.inf
        for quantile, epsilon in self.targets:
            if quantile * n <= rank:
                f = 2.0 * epsilon * rank / quantile
            else:
                f = 2.0 * epsilon * (n - rank) / (1.0 - quantile)
            if f < slack:
                slack = f
        return max(slack, 1.0)

    def _flush(self) -> None:
        if not self._buffer:
            return
        self._buffer.sort()
        samples = self._samples
        index = 0
        rank = 0.0  # rank mass strictly before samples[index]
        for value in self._buffer:
            while index < len(samples) and samples[index][0] < value:
                rank += samples[index][1]
                index += 1
            if index == 0 or index == len(samples):
                delta = 0.0  # new min/max is exact by construction
            else:
                delta = math.floor(self._invariant(rank, self._count)) - 1.0
                if delta < 0.0:
                    delta = 0.0
            samples.insert(index, [value, 1.0, delta])
            index += 1
            rank += 1.0
            self._count += 1
        self._buffer = []
        self._compress()

    def _compress(self) -> None:
        samples = self._samples
        if len(samples) < 3:
            return
        n = self._count
        # Walk from the tail; ranks accumulate from the head, so keep a
        # prefix-rank array in one pass rather than re-summing per merge.
        ranks = [0.0] * len(samples)
        running = 0.0
        for i, sample in enumerate(samples):
            running += sample[1]
            ranks[i] = running
        for i in range(len(samples) - 2, 0, -1):
            # Merging i into its right neighbour keeps the invariant when
            # the combined gap still fits f at the *merged* sample's rank
            # (prefix ranks below i are stable under tail-first merges;
            # using the left neighbour's rank instead over-merges where f
            # decreases with rank, i.e. below a target quantile).
            right = samples[i + 1]
            merged = samples[i][1] + right[1]
            if merged + right[2] <= self._invariant(ranks[i - 1] + merged, n):
                right[1] = merged
                del samples[i]

    # -- queries -------------------------------------------------------

    def query(self, quantile: float) -> Optional[float]:
        """The stream value at *quantile* (rank error per the targets);
        ``None`` on an empty sketch."""
        self._flush()
        samples = self._samples
        if not samples:
            return None
        n = self._count
        target_rank = quantile * n
        allowed = self._invariant(target_rank, n) / 2.0
        rank = 0.0
        for i in range(1, len(samples)):
            rank += samples[i - 1][1]
            if rank + samples[i][1] + samples[i][2] > target_rank + allowed:
                return samples[i - 1][0]
        return samples[-1][0]

    @property
    def count(self) -> int:
        return self._count + len(self._buffer)

    @property
    def sum(self) -> float:
        return self._sum

    def __len__(self) -> int:
        return self.count

    @property
    def sample_count(self) -> int:
        """Compressed samples held (space check, not the stream length)."""
        self._flush()
        return len(self._samples)

    def snapshot(self) -> Dict:
        return {
            "count": self.count,
            "sum": round(self._sum, 9),
            "samples": self.sample_count,
            "quantiles": {
                _format_value(q): self.query(q) for q, _ in self.targets
            },
        }


class QuantileFamily:
    """A labelled family of sketches with Prometheus summary exposition.

    One label dimension (``route``, ``plan_digest``), bounded series
    count: past *max_series* distinct label values, new observations
    fold into the ``"other"`` series instead of growing without bound
    (an endpoint fed adversarial query shapes must not leak sketches).
    """

    OVERFLOW_LABEL = "other"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        label: str = "route",
        targets: Sequence[Tuple[float, float]] = DEFAULT_TARGETS,
        max_series: int = 64,
    ):
        self.name = name
        self.help = help_text
        self.label = label
        self.targets = tuple(sorted(targets))
        self.max_series = max_series
        self._lock = threading.Lock()
        self._sketches: Dict[str, QuantileSketch] = {}

    def _sketch_for(self, label_value: str) -> QuantileSketch:
        sketch = self._sketches.get(label_value)
        if sketch is None:
            if len(self._sketches) >= self.max_series:
                label_value = self.OVERFLOW_LABEL
                sketch = self._sketches.get(label_value)
                if sketch is None:
                    sketch = self._sketches[label_value] = QuantileSketch(self.targets)
            else:
                sketch = self._sketches[label_value] = QuantileSketch(self.targets)
        return sketch

    def observe(self, label_value: str, value: float) -> None:
        with self._lock:
            self._sketch_for(str(label_value)).observe(value)

    def quantile(self, label_value: str, quantile: float) -> Optional[float]:
        with self._lock:
            sketch = self._sketches.get(str(label_value))
            return sketch.query(quantile) if sketch is not None else None

    def labels(self) -> List[str]:
        with self._lock:
            return sorted(self._sketches)

    def render(self) -> str:
        """Prometheus ``summary`` exposition for every series."""
        with self._lock:
            if not self._sketches:
                return ""
            lines = []
            if self.help:
                lines.append(f"# HELP {self.name} {self.help}")
            lines.append(f"# TYPE {self.name} summary")
            for label_value in sorted(self._sketches):
                sketch = self._sketches[label_value]
                escaped = _escape_label(label_value)
                for quantile, _ in self.targets:
                    value = sketch.query(quantile)
                    if value is None:
                        continue
                    lines.append(
                        f'{self.name}{{{self.label}="{escaped}",'
                        f'quantile="{_format_value(quantile)}"}} '
                        f"{_format_value(value)}"
                    )
                lines.append(
                    f'{self.name}_sum{{{self.label}="{escaped}"}} '
                    f"{_format_value(sketch.sum)}"
                )
                lines.append(
                    f'{self.name}_count{{{self.label}="{escaped}"}} '
                    f"{sketch.count}"
                )
            return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict:
        with self._lock:
            return {
                label_value: sketch.snapshot()
                for label_value, sketch in sorted(self._sketches.items())
            }
