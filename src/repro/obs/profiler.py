"""Always-on statistical profiler: folded stacks from ``sys._current_frames``.

A single daemon thread wakes ``hz`` times per second, snapshots every
thread's current Python stack via :func:`sys._current_frames`, and
folds each stack into an aggregated counter keyed by
``(attribution, frame tuple)``.  No tracing hooks, no interpreter
slowdown between samples — the steady-state cost is the sampling
thread's own work, which the profiler *accounts for* (cumulative
``overhead_s``) and the benchmark gate bounds at ≤1.05× on the
heaviest instrumented path.

Attribution: request-serving threads register themselves in a
thread→request registry (:func:`register_thread`) carrying their route
and trace id; samples landing on a registered thread are folded under
that route, everything else under ``"-"``.  One profile therefore
answers both "where does wall-clock go overall" and "where does
``/sparql`` time go", and a slow trace id can be checked against the
per-trace sample counts.

Output formats:

* **folded** (:meth:`StackProfiler.folded`): Brendan Gregg's collapsed
  format — ``root;caller;leaf 42`` one stack per line — piped straight
  into ``flamegraph.pl`` or any folded-stack viewer;
* **speedscope** (:meth:`StackProfiler.speedscope`): the speedscope
  JSON file format (one sampled profile per attribution key), opened
  at https://www.speedscope.app/ with no server round-trip.

Sampling fidelity is bookkept, not assumed: when one sampling pass
overruns the tick interval the missed ticks count as *dropped*
samples, and ``repro_profiler_samples_total{state=kept|dropped}``,
``repro_profiler_overhead_seconds`` and the sampling-interval gauge
mirror the live counters onto ``/metrics`` through a registry
collector.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from . import metrics as _metrics

__all__ = [
    "DEFAULT_HZ",
    "StackProfiler",
    "get_profiler",
    "parse_folded",
    "profile_window",
    "register_thread",
    "render_folded",
    "render_speedscope",
    "start",
    "stop",
    "unregister_thread",
]

DEFAULT_HZ = 67.0
_UNATTRIBUTED = "-"
_MAX_TRACE_KEYS = 256  # bounded per-trace sample attribution

_SAMPLES = _metrics.counter(
    "repro_profiler_samples_total",
    "Profiler sampling ticks by outcome",
    labels=("state",),
)
for _state in ("kept", "dropped"):
    _SAMPLES.labels(_state)
del _state
_OVERHEAD = _metrics.counter(
    "repro_profiler_overhead_seconds",
    "Cumulative wall time spent inside the profiler's sampling passes",
)
_INTERVAL = _metrics.gauge(
    "repro_profiler_interval_seconds",
    "Configured sampling interval of the running profiler (0 = stopped)",
)

# -- thread → request registry ----------------------------------------

_registry_lock = threading.Lock()
_thread_requests: Dict[int, Tuple[str, Optional[str]]] = {}


def register_thread(route: str, trace_id: Optional[str] = None) -> None:
    """Attribute the calling thread's samples to *route* (and *trace_id*)."""
    with _registry_lock:
        _thread_requests[threading.get_ident()] = (route, trace_id)


def unregister_thread() -> None:
    with _registry_lock:
        _thread_requests.pop(threading.get_ident(), None)


def _frame_label(code) -> str:
    """A stable per-function frame label: ``name (tail/of/path.py:line)``.

    Keyed on the function (``co_firstlineno``), not the executing line,
    so one hot function folds into one frame instead of fanning out
    per-line.
    """
    filename = code.co_filename.replace("\\", "/")
    parts = filename.rsplit("/", 2)
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{code.co_name} ({short}:{code.co_firstlineno})"


class StackProfiler:
    """Samples all threads' stacks into aggregated collapsed counts."""

    def __init__(self, hz: float = DEFAULT_HZ, max_depth: int = 64):
        if hz <= 0:
            raise ValueError("profiler hz must be positive")
        self.hz = float(hz)
        self.interval = 1.0 / self.hz
        self.max_depth = int(max_depth)
        self._lock = threading.Lock()
        self._counts: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._trace_samples: "OrderedDict[str, int]" = OrderedDict()
        self._kept = 0
        self._dropped = 0
        self._overhead_s = 0.0
        self._started_at: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._collector = None
        self._label_cache: Dict[object, str] = {}

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._collector = self._make_collector()
        _metrics.get_registry().register_collector(self._collector)
        _INTERVAL.set(self.interval)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5)
        self._thread = None
        if self._collector is not None:
            # Mirror the final values, then detach.
            self._collector(_metrics.get_registry())
            _metrics.get_registry().unregister_collector(self._collector)
            self._collector = None
        _INTERVAL.set(0.0)

    def __enter__(self) -> "StackProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _make_collector(self):
        def collect(registry) -> None:
            with self._lock:
                kept, dropped, overhead = self._kept, self._dropped, self._overhead_s
            _SAMPLES.labels("kept").set_total(kept)
            _SAMPLES.labels("dropped").set_total(dropped)
            _OVERHEAD.set_total(round(overhead, 6))

        return collect

    # -- sampling ------------------------------------------------------

    def _loop(self) -> None:
        own_id = threading.get_ident()
        next_tick = time.monotonic() + self.interval
        while not self._stop.is_set():
            delay = next_tick - time.monotonic()
            if delay > 0 and self._stop.wait(delay):
                break
            started = time.monotonic()
            try:
                self.sample_once(skip_thread=own_id)
            except Exception:
                # The profiler must never take down the process it
                # observes; a failed pass counts as dropped.
                with self._lock:
                    self._dropped += 1
            cost = time.monotonic() - started
            next_tick += self.interval
            now = time.monotonic()
            if now > next_tick:
                # The pass overran one or more ticks: account for the
                # samples that never happened instead of bursting to
                # catch up (bursting would bias the profile toward
                # whatever runs right after a slow pass).
                missed = int((now - next_tick) / self.interval) + 1
                with self._lock:
                    self._dropped += missed
                next_tick += missed * self.interval

    def sample_once(self, skip_thread: Optional[int] = None) -> int:
        """Take one sampling pass over all threads; returns stacks kept.

        Exposed for deterministic tests — the background loop calls
        this once per tick.
        """
        started = time.monotonic()
        frames = sys._current_frames()
        with _registry_lock:
            attribution = dict(_thread_requests)
        stacks: List[Tuple[str, Optional[str], Tuple[str, ...]]] = []
        for tid, frame in frames.items():
            if tid == skip_thread:
                continue
            labels: List[str] = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                code = frame.f_code
                label = self._label_cache.get(code)
                if label is None:
                    label = _frame_label(code)
                    self._label_cache[code] = label
                labels.append(label)
                frame = frame.f_back
                depth += 1
            if not labels:
                continue
            labels.reverse()  # root → leaf, the folded-stack order
            route, trace_id = attribution.get(tid, (_UNATTRIBUTED, None))
            stacks.append((route, trace_id, tuple(labels)))
        cost = time.monotonic() - started
        with self._lock:
            for route, trace_id, stack in stacks:
                key = (route, stack)
                self._counts[key] = self._counts.get(key, 0) + 1
                if trace_id is not None:
                    if trace_id in self._trace_samples:
                        self._trace_samples[trace_id] += 1
                        self._trace_samples.move_to_end(trace_id)
                    else:
                        self._trace_samples[trace_id] = 1
                        while len(self._trace_samples) > _MAX_TRACE_KEYS:
                            self._trace_samples.popitem(last=False)
            self._kept += 1
            self._overhead_s += cost
        return len(stacks)

    # -- reading -------------------------------------------------------

    def counts(self) -> Dict[Tuple[str, Tuple[str, ...]], int]:
        with self._lock:
            return dict(self._counts)

    def trace_samples(self, trace_id: str) -> int:
        """Samples attributed to one trace id (0 if never seen/aged out)."""
        with self._lock:
            return self._trace_samples.get(trace_id, 0)

    def snapshot(self) -> Dict:
        with self._lock:
            elapsed = (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            return {
                "hz": self.hz,
                "interval_s": round(self.interval, 6),
                "running": self.running,
                "samples_kept": self._kept,
                "samples_dropped": self._dropped,
                "overhead_s": round(self._overhead_s, 6),
                "overhead_ratio": (
                    round(self._overhead_s / elapsed, 6) if elapsed > 0 else 0.0
                ),
                "distinct_stacks": len(self._counts),
                "elapsed_s": round(elapsed, 3),
            }

    def folded(
        self, counts: Optional[Dict[Tuple[str, Tuple[str, ...]], int]] = None
    ) -> str:
        """Brendan Gregg collapsed-stack text: ``attr;root;leaf N`` lines."""
        return render_folded(self.counts() if counts is None else counts)

    def speedscope(
        self,
        counts: Optional[Dict[Tuple[str, Tuple[str, ...]], int]] = None,
        name: str = "repro-profile",
    ) -> Dict:
        """The speedscope JSON file format (one profile per attribution)."""
        return render_speedscope(
            self.counts() if counts is None else counts, name=name
        )

    def window(self, seconds: float) -> Dict[Tuple[str, Tuple[str, ...]], int]:
        """Stack counts accumulated over the next *seconds* only.

        Diff of two snapshots around a sleep — the way
        ``GET /debug/profile?seconds=N`` carves a window out of the
        always-on profiler without resetting it.
        """
        before = self.counts()
        time.sleep(max(0.0, seconds))
        after = self.counts()
        delta: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        for key, count in after.items():
            diff = count - before.get(key, 0)
            if diff > 0:
                delta[key] = diff
        return delta


def render_folded(counts: Dict[Tuple[str, Tuple[str, ...]], int]) -> str:
    """Collapsed-stack text for ``{(attr, frames): count}`` aggregates."""
    lines = sorted(
        (route, stack, count) for (route, stack), count in counts.items()
    )
    return "\n".join(
        ";".join((route,) + stack) + f" {count}" for route, stack, count in lines
    ) + ("\n" if lines else "")


def render_speedscope(
    counts: Dict[Tuple[str, Tuple[str, ...]], int], name: str = "repro-profile"
) -> Dict:
    """Speedscope JSON for the same aggregates: one sampled profile per
    attribution key, all sharing one frame table."""
    frame_index: Dict[str, int] = {}
    frames: List[Dict] = []

    def index_of(label: str) -> int:
        idx = frame_index.get(label)
        if idx is None:
            idx = len(frames)
            frame_index[label] = idx
            frames.append({"name": label})
        return idx

    by_route: Dict[str, List[Tuple[Tuple[str, ...], int]]] = {}
    for (route, stack), count in sorted(counts.items()):
        by_route.setdefault(route, []).append((stack, count))
    profiles = []
    for route in sorted(by_route):
        samples = []
        weights = []
        total = 0
        for stack, count in by_route[route]:
            samples.append([index_of(label) for label in stack])
            weights.append(count)
            total += count
        profiles.append(
            {
                "type": "sampled",
                "name": route,
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        )
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro-corpus",
        "shared": {"frames": frames},
        "profiles": profiles,
    }


def parse_folded(text: str) -> Dict[Tuple[str, Tuple[str, ...]], int]:
    """Parse collapsed-stack text back into ``{(attr, frames): count}``.

    The exact inverse of :meth:`StackProfiler.folded` — the round-trip
    is pinned by tests, so folded files survive tooling hops.
    """
    counts: Dict[Tuple[str, Tuple[str, ...]], int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text or not count_text.isdigit():
            continue
        parts = stack_text.split(";")
        counts[(parts[0], tuple(parts[1:]))] = (
            counts.get((parts[0], tuple(parts[1:])), 0) + int(count_text)
        )
    return counts


# -- module-level singleton -------------------------------------------

_profiler: Optional[StackProfiler] = None
_profiler_lock = threading.Lock()


def get_profiler() -> Optional[StackProfiler]:
    return _profiler


def start(hz: float = DEFAULT_HZ) -> StackProfiler:
    """Start (or return) the process-wide always-on profiler."""
    global _profiler
    with _profiler_lock:
        if _profiler is not None and _profiler.running:
            return _profiler
        _profiler = StackProfiler(hz=hz).start()
        return _profiler


def stop() -> None:
    global _profiler
    with _profiler_lock:
        if _profiler is not None:
            _profiler.stop()
            _profiler = None


def profile_window(seconds: float, hz: float = DEFAULT_HZ):
    """Folded-stack counts for the next *seconds*.

    Uses the always-on profiler's window when one is running; otherwise
    spins up a temporary profiler for exactly the window.  Returns
    ``(counts, snapshot)``.
    """
    active = get_profiler()
    if active is not None and active.running:
        before = active.snapshot()
        counts = active.window(seconds)
        snapshot = active.snapshot()
        # Scope the counters to the window: the always-on profiler's
        # cumulative totals would misreport a 2 s request as the whole
        # process lifetime.
        for key in ("samples_kept", "samples_dropped"):
            snapshot[key] -= before[key]
        snapshot["overhead_s"] = round(
            max(0.0, snapshot["overhead_s"] - before["overhead_s"]), 6
        )
        snapshot["elapsed_s"] = round(max(0.0, seconds), 3)
        snapshot["overhead_ratio"] = (
            round(snapshot["overhead_s"] / seconds, 6) if seconds > 0 else 0.0
        )
        snapshot["distinct_stacks"] = len(counts)
        return counts, snapshot
    temporary = StackProfiler(hz=hz)
    with temporary:
        time.sleep(max(0.0, seconds))
    return temporary.counts(), temporary.snapshot()
